"""Tests for the versioned metrics schema and its CI validator."""

import json

import pytest

from repro.telemetry import SCHEMA_VERSION, SchemaError, validate_event, validate_file
from repro.telemetry.schema import main, validate_lines


def _span(**over):
    obj = {"v": SCHEMA_VERSION, "kind": "span", "name": "check",
           "ts": 1.0, "pid": 7, "seconds": 0.5, "fields": {"engine": "closure"}}
    obj.update(over)
    return obj


def _event(**over):
    obj = {"v": SCHEMA_VERSION, "kind": "event", "name": "pool.retry",
           "ts": 1.0, "pid": 7, "fields": {}}
    obj.update(over)
    return obj


def _snapshot(**over):
    obj = {"v": SCHEMA_VERSION, "kind": "snapshot", "name": "snapshot",
           "ts": 1.0, "pid": 7, "counters": {"a": 1},
           "timers": {"t": {"count": 1, "seconds": 0.5}},
           "histograms": {"h": {"count": 1, "total": 2.0, "min": 2.0,
                                "max": 2.0, "buckets": {"0": 1}}}}
    obj.update(over)
    return obj


class TestValidateEvent:
    def test_accepts_all_kinds(self):
        for obj in (_span(), _event(), _snapshot()):
            validate_event(obj)

    @pytest.mark.parametrize("bad", [
        _span(v=0),
        _span(v=None),
        _span(kind="metric"),
        _span(name=""),
        _span(ts="yesterday"),
        _span(pid="7"),
        _span(seconds=-1.0),
        _span(seconds=None),
        _span(fields=[]),
        _event(fields=None),
        _snapshot(counters=[]),
        _snapshot(timers={"t": {"count": 1}}),
        _snapshot(histograms={"h": {"count": 1}}),
        _snapshot(counters={"a": "lots"}),
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(SchemaError):
            validate_event(bad)


class TestValidateLines:
    def test_reports_line_numbers(self):
        lines = [json.dumps(_span()), "not json"]
        with pytest.raises(SchemaError, match="line 2"):
            validate_lines(lines)

    def test_skips_blank_lines(self):
        assert len(validate_lines([json.dumps(_span()), "", "  "])) == 1


class TestValidateFile:
    def test_counts_spans(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text("\n".join([
            json.dumps(_span(name="check")),
            json.dumps(_span(name="check")),
            json.dumps(_span(name="simulate")),
            json.dumps(_event()),
        ]) + "\n")
        nlines, spans = validate_file(str(path))
        assert nlines == 4
        assert spans == {"check": 2, "simulate": 1}

    def test_require_spans_missing(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(json.dumps(_span(name="check")) + "\n")
        with pytest.raises(SchemaError, match="generate"):
            validate_file(str(path), require_spans=["check", "generate"])


class TestCli:
    def test_ok_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        path.write_text(json.dumps(_span()) + "\n")
        assert main([str(path), "--require-spans", "check"]) == 0
        assert "1 event(s) ok" in capsys.readouterr().out

    def test_invalid_exit_one(self, tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        path.write_text('{"v":99}\n')
        assert main([str(path)]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_missing_file_exit_one(self, tmp_path):
        assert main([str(tmp_path / "absent.jsonl")]) == 1
