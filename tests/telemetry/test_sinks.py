"""Tests for the telemetry sinks."""

import json

from repro.telemetry import JsonlSink, MemorySink, NullSink


class TestNullSink:
    def test_drops_everything(self):
        sink = NullSink()
        sink.emit({"kind": "span"})
        sink.close()


class TestMemorySink:
    def test_collects_and_filters(self):
        sink = MemorySink()
        sink.emit({"kind": "span", "name": "a"})
        sink.emit({"kind": "event", "name": "b"})
        assert len(sink.payloads) == 2
        assert [p["name"] for p in sink.of_kind("span")] == ["a"]


class TestJsonlSink:
    def test_one_line_per_event(self, tmp_path):
        path = tmp_path / "m.jsonl"
        sink = JsonlSink(str(path), truncate=True)
        sink.emit({"kind": "event", "name": "a", "n": 1})
        sink.emit({"kind": "event", "name": "b", "n": 2})
        sink.close()
        lines = path.read_text().splitlines()
        assert [json.loads(l)["name"] for l in lines] == ["a", "b"]

    def test_truncate_vs_append(self, tmp_path):
        path = tmp_path / "m.jsonl"
        first = JsonlSink(str(path), truncate=True)
        first.emit({"name": "old"})
        first.close()
        appender = JsonlSink(str(path), truncate=False)
        appender.emit({"name": "new"})
        appender.close()
        assert len(path.read_text().splitlines()) == 2
        fresh = JsonlSink(str(path), truncate=True)
        fresh.emit({"name": "only"})
        fresh.close()
        assert [json.loads(l)["name"] for l in path.read_text().splitlines()] \
            == ["only"]

    def test_interleaved_writers_never_corrupt_lines(self, tmp_path):
        # Two descriptors on the same file (the parent/worker topology):
        # O_APPEND keeps every line whole regardless of write order.
        path = tmp_path / "m.jsonl"
        a = JsonlSink(str(path), truncate=True)
        b = JsonlSink(str(path), truncate=False)
        for i in range(50):
            (a if i % 2 else b).emit({"kind": "event", "name": "x", "i": i})
        a.close()
        b.close()
        parsed = [json.loads(l) for l in path.read_text().splitlines()]
        assert sorted(p["i"] for p in parsed) == list(range(50))

    def test_close_is_idempotent_and_silences_emit(self, tmp_path):
        path = tmp_path / "m.jsonl"
        sink = JsonlSink(str(path), truncate=True)
        sink.close()
        sink.close()
        sink.emit({"name": "late"})  # silently dropped, no crash
        assert path.read_text() == ""
