"""End-to-end telemetry: instrumented layers, CLI flags, worker funneling."""

import json

import pytest

from repro import telemetry
from repro.analysis.pool import run_tasks
from repro.cli import main
from repro.core.api import check
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.sim.machine import TsoMachine
from repro.telemetry import MemorySink, validate_file


@pytest.fixture(autouse=True)
def _reset_global_telemetry():
    yield
    telemetry.reset()


def _square(task):
    return task * task


class TestInstrumentedLayers:
    def test_full_pipeline_records_spans_and_counters(self):
        sink = MemorySink()
        tel = telemetry.configure(sinks=[sink])
        program = generate_program(
            GeneratorConfig(nprocs=2, ops_per_proc=30), seed=3
        )
        execution = TsoMachine(program, seed=3).run()
        result = check(program, execution)
        assert result.ok
        names = {p["name"] for p in sink.of_kind("span")}
        assert {"generate", "simulate", "expand", "check"} <= names
        snap = tel.snapshot()
        assert snap["counters"]["sim.runs"] == 1
        assert snap["counters"]["sim.cycles"] > 0
        assert snap["counters"]["check.runs"] == 1
        assert snap["counters"]["check.engine.vc"] == 1  # the default engine
        assert snap["histograms"]["sim.cycles_per_run"]["count"] == 1

    def test_every_engine_reports(self):
        telemetry.configure()
        program = generate_program(
            GeneratorConfig(nprocs=2, ops_per_proc=20), seed=5
        )
        execution = TsoMachine(program, seed=5).run()
        for engine in ("baseline", "closure", "matrix", "vc"):
            check(program, execution, engine=engine)
        counters = telemetry.get_telemetry().snapshot()["counters"]
        for engine in ("baseline", "closure", "matrix", "vc"):
            assert counters[f"check.engine.{engine}"] == 1
        assert counters["check.runs"] == 4
        assert counters["check.traversals"] > 0      # baseline
        assert counters["check.closure_rebuilds"] > 0  # closure + matrix
        assert counters["check.vc_queries"] > 0        # vc

    def test_disabled_pipeline_records_nothing(self):
        program = generate_program(
            GeneratorConfig(nprocs=2, ops_per_proc=20), seed=5
        )
        execution = TsoMachine(program, seed=5).run()
        check(program, execution)
        assert telemetry.get_telemetry().snapshot()["counters"] == {}

    def test_pool_batch_span_and_task_histogram(self):
        sink = MemorySink()
        tel = telemetry.configure(sinks=[sink])
        run_tasks(_square, [1, 2, 3], workers=1)
        [batch] = [p for p in sink.of_kind("span") if p["name"] == "pool.batch"]
        assert batch["fields"] == {"workers": 1, "tasks": 3}
        assert tel.snapshot()["histograms"]["pool.task_seconds"]["count"] == 3


class TestCliFlags:
    def test_run_writes_schema_valid_metrics(self, tmp_path):
        out = tmp_path / "run.jsonl"
        code = main([
            "run", "--procs", "2", "--ops", "20", "--seed", "1",
            "-o", str(tmp_path / "t.trace"), "--metrics-out", str(out),
        ])
        assert code == 0
        _, spans = validate_file(
            str(out), require_spans=["generate", "simulate", "expand", "check"]
        )
        assert spans["check"] >= 1
        # The CLI resets the global instance on the way out.
        assert not telemetry.get_telemetry().enabled
        assert telemetry.ENV_METRICS_OUT not in __import__("os").environ

    def test_summary_without_metrics_file(self, tmp_path, capsys):
        code = main([
            "run", "--procs", "2", "--ops", "20", "--seed", "1",
            "-o", str(tmp_path / "t.trace"), "--telemetry-summary",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "telemetry summary" in err
        assert "simulate" in err

    def test_campaign_workers_funnel_into_one_file(self, tmp_path, capsys):
        out = tmp_path / "campaign.jsonl"
        code = main([
            "campaign", "--cpu", "CPU1", "--tests-per-bug", "2",
            "--workers", "2", "--seed", "2004",
            "--metrics-out", str(out), "--telemetry-summary",
        ])
        assert code in (0, 1)  # never 2: no hunt may hang here
        nlines, spans = validate_file(str(out), require_spans=[
            "generate", "simulate", "expand", "check", "hunt", "pool.batch",
        ])
        assert nlines > 0
        # Worker-side spans really come from worker processes.
        pids = {
            json.loads(line)["pid"]
            for line in out.read_text().splitlines()
            if json.loads(line)["kind"] == "span"
        }
        assert len(pids) >= 2
        summary = capsys.readouterr().err
        assert "process(es)" in summary
        assert "check.runs" in summary

    def test_no_flags_leaves_telemetry_disabled(self, tmp_path):
        code = main([
            "run", "--procs", "2", "--ops", "20", "--seed", "1",
            "-o", str(tmp_path / "t.trace"),
        ])
        assert code == 0
        assert not telemetry.get_telemetry().enabled
