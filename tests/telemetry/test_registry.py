"""Tests for the telemetry registry: aggregation, spans, global wiring."""

import json
import os

import pytest

from repro import telemetry
from repro.core.result import CheckStats
from repro.telemetry import Histogram, MemorySink, Telemetry


@pytest.fixture(autouse=True)
def _reset_global_telemetry():
    """Every test leaves the process-global instance disabled."""
    yield
    telemetry.reset()


class TestHistogram:
    def test_decade_buckets(self):
        h = Histogram()
        for value in (0.5, 5.0, 50.0, 55.0, 0.0):
            h.record(value)
        d = h.to_dict()
        assert d["count"] == 5
        assert d["min"] == 0.0 and d["max"] == 55.0
        assert d["buckets"] == {"-1": 1, "0": 1, "1": 2, "zero": 1}
        assert d["total"] == pytest.approx(110.5)

    def test_empty(self):
        d = Histogram().to_dict()
        assert d["count"] == 0 and d["min"] is None and d["max"] is None


class TestTelemetryRegistry:
    def test_counters_timers_histograms_aggregate(self):
        tel = Telemetry(enabled=True)
        tel.count("a")
        tel.count("a", 4)
        tel.observe("t", 0.25)
        tel.observe("t", 0.75)
        tel.record("h", 3.0)
        snap = tel.snapshot()
        assert snap["counters"] == {"a": 5}
        assert snap["timers"] == {"t": {"count": 2, "seconds": 1.0}}
        assert snap["histograms"]["h"]["count"] == 1

    def test_disabled_records_nothing(self):
        tel = Telemetry(enabled=False)
        tel.count("a")
        tel.observe("t", 1.0)
        tel.record("h", 1.0)
        tel.event("e")
        snap = tel.snapshot()
        assert snap == {"counters": {}, "timers": {}, "histograms": {}}
        assert tel.events_seen == {}

    def test_disabled_span_is_shared_noop(self):
        tel = Telemetry(enabled=False)
        assert tel.span("x") is tel.span("y")  # allocation-free path

    def test_span_times_and_streams(self):
        sink = MemorySink()
        tel = Telemetry(enabled=True, sinks=[sink])
        with tel.span("check", engine="closure") as handle:
            pass
        assert handle.seconds >= 0
        assert tel.snapshot()["timers"]["check"]["count"] == 1
        [payload] = sink.of_kind("span")
        assert payload["name"] == "check"
        assert payload["fields"] == {"engine": "closure"}
        assert payload["v"] == 1
        assert payload["pid"] == os.getpid()

    def test_span_records_error_field(self):
        sink = MemorySink()
        tel = Telemetry(enabled=True, sinks=[sink])
        with pytest.raises(ValueError):
            with tel.span("check"):
                raise ValueError("boom")
        [payload] = sink.of_kind("span")
        assert payload["fields"]["error"] == "ValueError"

    def test_event_stream_and_tally(self):
        sink = MemorySink()
        tel = Telemetry(enabled=True, sinks=[sink])
        tel.event("pool.retry", index=3)
        tel.event("pool.retry", index=4)
        assert tel.events_seen == {"pool.retry": 2}
        assert [p["fields"]["index"] for p in sink.of_kind("event")] == [3, 4]

    def test_flush_emits_cumulative_snapshot(self):
        sink = MemorySink()
        tel = Telemetry(enabled=True, sinks=[sink])
        tel.count("a")
        tel.flush()
        tel.count("a")
        tel.flush()
        snaps = sink.of_kind("snapshot")
        assert [s["counters"]["a"] for s in snaps] == [1, 2]

    def test_summary_lists_everything(self):
        tel = Telemetry(enabled=True)
        tel.count("sim.runs", 2)
        tel.observe("check", 0.5)
        tel.record("h", 2.0)
        tel.event("pool.retry")
        text = tel.summary()
        for needle in ("sim.runs", "check", "pool.retry", "count=1"):
            assert needle in text

    def test_empty_summary(self):
        assert "(nothing recorded)" in Telemetry(enabled=True).summary()


class TestGlobalInstance:
    def test_default_is_disabled(self):
        assert not telemetry.get_telemetry().enabled
        # Module-level helpers are no-ops against the disabled default.
        telemetry.count("x")
        telemetry.observe("x", 1.0)
        telemetry.record("x", 1.0)
        telemetry.event("x")
        with telemetry.span("x"):
            pass
        assert telemetry.get_telemetry().snapshot()["counters"] == {}

    def test_configure_and_reset(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        tel = telemetry.configure(metrics_out=path)
        assert tel.enabled
        assert telemetry.get_telemetry() is tel
        assert os.environ[telemetry.ENV_METRICS_OUT] == os.path.abspath(path)
        telemetry.reset()
        assert not telemetry.get_telemetry().enabled
        assert telemetry.ENV_METRICS_OUT not in os.environ

    def test_configure_without_env_propagation(self, tmp_path):
        telemetry.configure(
            metrics_out=str(tmp_path / "m.jsonl"), propagate_env=False
        )
        assert telemetry.ENV_METRICS_OUT not in os.environ

    def test_init_worker_attaches_from_env(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        os.environ[telemetry.ENV_METRICS_OUT] = path
        try:
            telemetry.set_telemetry(Telemetry(enabled=False))
            tel = telemetry.init_worker()
            assert tel.enabled
            with telemetry.span("w"):
                pass
            tel.close()
            lines = open(path).read().splitlines()
            assert json.loads(lines[0])["name"] == "w"
        finally:
            os.environ.pop(telemetry.ENV_METRICS_OUT, None)

    def test_init_worker_without_env_stays_disabled(self):
        os.environ.pop(telemetry.ENV_METRICS_OUT, None)
        telemetry.set_telemetry(Telemetry(enabled=False))
        assert not telemetry.init_worker().enabled

    def test_init_worker_idempotent_when_enabled(self):
        tel = telemetry.configure()
        assert telemetry.init_worker() is tel


class TestRecordCheck:
    def test_folds_check_stats(self):
        telemetry.configure()
        stats = CheckStats(
            nodes=10, static_edges=5, observed_edges=3, inferred_edges=2,
            iterations=2, seconds=0.5, closure_rebuilds=2,
        )
        telemetry.record_check(stats, "closure")
        snap = telemetry.get_telemetry().snapshot()
        assert snap["counters"]["check.runs"] == 1
        assert snap["counters"]["check.engine.closure"] == 1
        assert snap["counters"]["check.edges.static"] == 5
        assert snap["counters"]["check.closure_rebuilds"] == 2
        assert snap["histograms"]["check.seconds"]["count"] == 1

    def test_noop_when_disabled(self):
        telemetry.record_check(CheckStats(nodes=1), "closure")
        assert telemetry.get_telemetry().snapshot()["counters"] == {}


class TestSummarizeFile:
    def test_keeps_last_snapshot_per_pid(self, tmp_path):
        path = tmp_path / "m.jsonl"
        lines = [
            # Two cumulative snapshots from pid 1: only the last counts.
            {"v": 1, "kind": "snapshot", "name": "snapshot", "ts": 1.0,
             "pid": 1, "counters": {"a": 1}, "timers": {}, "histograms": {}},
            {"v": 1, "kind": "snapshot", "name": "snapshot", "ts": 2.0,
             "pid": 1, "counters": {"a": 5}, "timers": {}, "histograms": {}},
            {"v": 1, "kind": "snapshot", "name": "snapshot", "ts": 2.0,
             "pid": 2, "counters": {"a": 2}, "timers": {}, "histograms": {}},
            {"v": 1, "kind": "event", "name": "pool.retry", "ts": 2.5,
             "pid": 2, "fields": {}},
        ]
        path.write_text("\n".join(json.dumps(l) for l in lines) + "\n")
        text = telemetry.summarize_file(str(path))
        assert "2 process(es)" in text
        assert "a" in text and "7" in text  # 5 + 2, not 1 + 5 + 2
        assert "pool.retry" in text

    def test_merges_timers_and_histograms(self, tmp_path):
        path = tmp_path / "m.jsonl"
        snap = {
            "v": 1, "kind": "snapshot", "name": "snapshot", "ts": 1.0,
            "counters": {},
            "timers": {"t": {"count": 2, "seconds": 1.0}},
            "histograms": {"h": {"count": 1, "total": 3.0, "min": 3.0,
                                 "max": 3.0, "buckets": {"0": 1}}},
        }
        lines = [dict(snap, pid=1), dict(snap, pid=2)]
        path.write_text("\n".join(json.dumps(l) for l in lines) + "\n")
        text = telemetry.summarize_file(str(path))
        assert "count=4" in text       # merged timer count
        assert "total=2.000s" in text  # merged timer seconds
        assert "count=2" in text       # merged histogram count
