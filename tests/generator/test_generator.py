"""Tests for the pseudo-random racy program generator."""

import pytest

from repro.generator.config import GeneratorConfig, InstructionMix
from repro.generator.generator import generate_program
from repro.model.ops import (
    IBlockLoad,
    IBlockStore,
    IBranch,
    ICas,
    ILoad,
    IMembar,
    INonFaultingLoad,
    IStore,
    ISwap,
)


class TestConfigValidation:
    def test_defaults_valid(self):
        GeneratorConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nprocs": 0},
            {"ops_per_proc": 0},
            {"shared_words": 0},
            {"stride_words": 0},
            {"base": 4},          # not 64-byte aligned
            {"loop_prob": 1.5},
            {"size_weights": {2: 1.0}},
        ],
    )
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GeneratorConfig(**kwargs)

    def test_word_addresses_follow_stride(self):
        config = GeneratorConfig(shared_words=4, stride_words=16)
        assert config.word_addresses() == [0, 64, 128, 192]

    def test_faulting_address_outside_shared_region(self):
        config = GeneratorConfig(shared_words=32)
        assert config.faulting_address not in set(config.word_addresses())
        assert config.faulting_address % 0x1000 == 0

    def test_empty_mix_rejected(self):
        mix = InstructionMix(
            load=0, store=0, swap=0, cas=0, membar=0, block_load=0,
            block_store=0, nonfaulting_load=0, prefetch=0, flush=0, branch=0,
            interrupt=0, nc_load=0, nc_store=0,
        )
        with pytest.raises(ValueError, match="empty"):
            mix.weights()

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            InstructionMix(load=-1.0).weights()


class TestGeneration:
    def test_deterministic(self):
        config = GeneratorConfig(nprocs=3, ops_per_proc=40)
        a = generate_program(config, seed=9)
        b = generate_program(config, seed=9)
        assert a.threads == b.threads

    def test_different_seeds_differ(self):
        config = GeneratorConfig(nprocs=3, ops_per_proc=40)
        a = generate_program(config, seed=1)
        b = generate_program(config, seed=2)
        assert a.threads != b.threads

    def test_exact_instruction_budget(self):
        config = GeneratorConfig(nprocs=5, ops_per_proc=73)
        program = generate_program(config, seed=4)
        assert [len(t) for t in program.threads] == [73] * 5

    def test_generated_programs_validate(self):
        for seed in range(20):
            generate_program(GeneratorConfig(nprocs=4, ops_per_proc=60), seed=seed)

    def test_all_shared_words_initialised(self):
        config = GeneratorConfig(shared_words=5)
        program = generate_program(config, seed=0)
        assert set(program.initial) == set(
            config.word_addresses() + config.nc_addresses()
        )

    def test_data_accesses_confined_near_shared_region(self):
        config = GeneratorConfig(nprocs=2, ops_per_proc=200, shared_words=8)
        program = generate_program(config, seed=3)
        limit = config.faulting_address + 0x1000
        for addr in program.addresses():
            assert 0 <= addr < limit

    def test_cas_always_paired_with_load(self):
        mix = InstructionMix(load=1, store=1, cas=50)
        config = GeneratorConfig(nprocs=2, ops_per_proc=60, mix=mix)
        program = generate_program(config, seed=7)
        found = 0
        for thread in program.threads:
            for idx, instr in enumerate(thread.instrs):
                if isinstance(instr, ICas):
                    found += 1
                    companion = thread.instrs[instr.compare_from]
                    assert isinstance(companion, ILoad)
                    assert companion.addr == instr.addr
                    assert companion.size == instr.size
                    assert instr.compare_from == idx - 1
        assert found > 0

    def test_zero_weight_suppresses_type(self):
        mix = InstructionMix(
            load=1.0, store=1.0, swap=0, cas=0, membar=0, block_load=0,
            block_store=0, nonfaulting_load=0, prefetch=0, flush=0, branch=0,
            interrupt=0,
        )
        program = generate_program(
            GeneratorConfig(nprocs=2, ops_per_proc=100, mix=mix), seed=1
        )
        for thread in program.threads:
            for instr in thread:
                assert isinstance(instr, (ILoad, IStore))

    def test_requested_types_appear(self):
        mix = InstructionMix(
            load=5, store=5, swap=5, cas=5, membar=5, block_load=5,
            block_store=5, nonfaulting_load=5, prefetch=5, flush=5, branch=5,
            interrupt=5,
        )
        program = generate_program(
            GeneratorConfig(nprocs=4, ops_per_proc=300, shared_words=32, mix=mix),
            seed=2,
        )
        types = {type(i) for t in program.threads for i in t}
        for expected in (
            ILoad, IStore, ISwap, ICas, IMembar, IBlockLoad, IBlockStore,
            INonFaultingLoad, IBranch,
        ):
            assert expected in types, expected

    def test_branches_stay_in_bounds(self):
        mix = InstructionMix(load=1, branch=20)
        program = generate_program(
            GeneratorConfig(nprocs=2, ops_per_proc=50, mix=mix), seed=5
        )
        for thread in program.threads:
            for idx, instr in enumerate(thread.instrs):
                if isinstance(instr, IBranch):
                    assert idx + instr.skip < len(thread)

    def test_loops_repeat_identical_bodies(self):
        config = GeneratorConfig(
            nprocs=1, ops_per_proc=200, loop_prob=1.0,
            loop_body_max=3, loop_count_max=4,
        )
        program = generate_program(config, seed=8)
        # With loop_prob=1 nearly all instructions come from unrolled
        # loops: look for at least one immediate repetition of a
        # non-trivial window.
        instrs = program.threads[0].instrs
        repeated = any(
            instrs[i] == instrs[i + 1] or instrs[i : i + 2] == instrs[i + 2 : i + 4]
            for i in range(len(instrs) - 4)
        )
        assert repeated

    def test_multiword_accesses_are_aligned(self):
        config = GeneratorConfig(
            nprocs=2, ops_per_proc=150, shared_words=16,
            size_weights={8: 5.0, 16: 5.0},
        )
        program = generate_program(config, seed=6)
        for thread in program.threads:
            for instr in thread:
                size = getattr(instr, "size", None)
                if size and not isinstance(instr, INonFaultingLoad):
                    assert instr.addr % size == 0

    def test_single_proc_single_word_minimal_config(self):
        program = generate_program(
            GeneratorConfig(nprocs=1, ops_per_proc=1, shared_words=1), seed=0
        )
        assert len(program.threads[0]) == 1
