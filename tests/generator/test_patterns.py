"""Tests for the directed corner-case sequences (Sec. 3.1)."""

import random

import pytest

from repro.core.api import check
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.generator.patterns import PATTERNS, build_pattern
from repro.model.ops import IBlockStore, ICas, ILoad, IMembar, IStore, Instr
from repro.model.program import Program, Thread
from repro.sim.machine import TsoMachine

WORDS = [0, 4, 8, 12, 16, 20]


@pytest.mark.parametrize("name", sorted(PATTERNS), ids=str)
class TestEveryPattern:
    def test_builds_nonempty_sequence(self, name):
        rng = random.Random(1)
        instrs = PATTERNS[name].build(rng, WORDS)
        assert instrs and all(isinstance(i, Instr) for i in instrs)

    def test_deterministic_per_seed(self, name):
        a = PATTERNS[name].build(random.Random(7), WORDS)
        b = PATTERNS[name].build(random.Random(7), WORDS)
        assert a == b

    def test_rebased_sequence_validates_inside_a_thread(self, name):
        rng = random.Random(3)
        prefix = [ILoad(addr=0), IStore(addr=4), IMembar()]
        sequence = build_pattern(name, rng, WORDS, base_index=len(prefix))
        program = Program(threads=[Thread(prefix + sequence)])
        program.validate()

    def test_sequence_runs_clean_on_golden_machine(self, name):
        rng = random.Random(5)
        sequence = build_pattern(name, rng, WORDS, base_index=0)
        program = Program(
            threads=[Thread(sequence)], initial={w: 0 for w in WORDS}
        )
        execution = TsoMachine(program, seed=5).run()
        assert check(program, execution).ok

    def test_single_word_pool_supported(self, name):
        rng = random.Random(9)
        instrs = PATTERNS[name].build(rng, [0])
        assert instrs


class TestPatternContent:
    def test_store_burst_overfills_default_buffer(self):
        instrs = PATTERNS["store_burst"].build(random.Random(0), WORDS)
        assert sum(isinstance(i, IStore) for i in instrs) > 8  # capacity

    def test_atomic_contention_cas_indices_relative(self):
        instrs = PATTERNS["atomic_contention"].build(random.Random(0), WORDS)
        cas_idx = [i for i, ins in enumerate(instrs) if isinstance(ins, ICas)]
        for idx in cas_idx:
            companion = instrs[instrs[idx].compare_from]
            assert isinstance(companion, ILoad)
            assert companion.addr == instrs[idx].addr

    def test_block_scalar_overlap_targets_one_line(self):
        instrs = PATTERNS["block_scalar_overlap"].build(random.Random(0), WORDS)
        block = instrs[0]
        assert isinstance(block, IBlockStore)
        for probe in instrs[1:]:
            assert block.addr <= probe.addr < block.addr + 64

    def test_message_passing_has_fence_between_stores(self):
        instrs = PATTERNS["message_passing"].build(random.Random(0), WORDS)
        kinds = [type(i) for i in instrs]
        assert kinds[:3] == [IStore, IMembar, IStore]


class TestGeneratorIntegration:
    def test_pattern_prob_validated(self):
        with pytest.raises(ValueError, match="pattern_prob"):
            GeneratorConfig(pattern_prob=1.5)
        with pytest.raises(ValueError, match="unknown pattern"):
            GeneratorConfig(patterns=("nope",))

    def test_patterned_programs_validate_and_run_clean(self):
        config = GeneratorConfig(
            nprocs=4, ops_per_proc=80, shared_words=8, pattern_prob=0.4
        )
        for seed in range(6):
            program = generate_program(config, seed=seed)
            assert all(len(t) == 80 for t in program.threads)
            execution = TsoMachine(program, seed=seed).run()
            assert check(program, execution).ok

    def test_pattern_subset_respected(self):
        config = GeneratorConfig(
            nprocs=2, ops_per_proc=60, shared_words=4,
            pattern_prob=1.0, patterns=("fence_ladder",),
        )
        program = generate_program(config, seed=2)
        # fence_ladder is the only membar source in this mix setup; with
        # pattern_prob 1.0 membars must appear.
        assert any(
            isinstance(i, IMembar) for t in program.threads for i in t
        )

    def test_zero_prob_changes_nothing(self):
        base = GeneratorConfig(nprocs=2, ops_per_proc=40, shared_words=4)
        patterned = GeneratorConfig(
            nprocs=2, ops_per_proc=40, shared_words=4, pattern_prob=0.0
        )
        assert generate_program(base, seed=1).threads == \
            generate_program(patterned, seed=1).threads
