"""Tests for the per-processor software LFSR."""

import pytest

from repro.generator.lfsr import Lfsr


class TestLfsr:
    def test_deterministic_per_seed(self):
        a = Lfsr(42)
        b = Lfsr(42)
        assert [a.next_bit() for _ in range(64)] == [b.next_bit() for _ in range(64)]

    def test_different_seeds_diverge(self):
        a = Lfsr(1)
        b = Lfsr(2)
        assert [a.next_bit() for _ in range(64)] != [b.next_bit() for _ in range(64)]

    def test_zero_seed_mapped_to_nonzero(self):
        lfsr = Lfsr(0)
        assert lfsr.state != 0

    def test_state_never_becomes_zero(self):
        lfsr = Lfsr(123)
        for _ in range(10_000):
            lfsr.next_bit()
            assert lfsr.state != 0

    def test_no_short_cycle(self):
        # The maximal-length polynomial has period 2**32 - 1; verify no
        # state repeats within a healthy sample.
        lfsr = Lfsr(7)
        seen = set()
        for _ in range(50_000):
            assert lfsr.state not in seen
            seen.add(lfsr.state)
            lfsr.next_bit()

    def test_bits_roughly_balanced(self):
        lfsr = Lfsr(99)
        ones = sum(lfsr.next_bit() for _ in range(20_000))
        assert 9_000 < ones < 11_000

    def test_next_bits_width(self):
        lfsr = Lfsr(5)
        for width in (1, 8, 16, 31):
            value = lfsr.next_bits(width)
            assert 0 <= value < (1 << width)

    def test_next_below_in_range_and_unbiased_support(self):
        lfsr = Lfsr(11)
        seen = {lfsr.next_below(5) for _ in range(500)}
        assert seen == {0, 1, 2, 3, 4}

    def test_next_below_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Lfsr(1).next_below(0)

    def test_chance_extremes(self):
        lfsr = Lfsr(3)
        assert not any(lfsr.chance(0, 4) for _ in range(100))
        assert all(lfsr.chance(4, 4) for _ in range(100))
