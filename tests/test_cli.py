"""End-to-end tests of the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestGenerate:
    def test_prints_listing(self, capsys):
        assert main(["generate", "--procs", "2", "--ops", "10", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("init")
        assert "P0:" in out and "P1:" in out

    def test_writes_file(self, tmp_path, capsys):
        target = tmp_path / "prog.txt"
        assert main(["generate", "--ops", "5", "-o", str(target)]) == 0
        assert target.read_text().strip()


class TestRunAndCheck:
    def test_run_reports_pass(self, tmp_path, capsys):
        trace = tmp_path / "run.trace"
        code = main(
            ["run", "--procs", "2", "--ops", "20", "--seed", "3", "-o", str(trace)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert trace.exists()

    def test_check_accepts_clean_trace(self, tmp_path, capsys):
        trace = tmp_path / "run.trace"
        main(["run", "--procs", "2", "--ops", "20", "--seed", "4", "-o", str(trace)])
        capsys.readouterr()
        assert main(["check", str(trace)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_check_flags_edited_trace_and_writes_dot(self, tmp_path, capsys):
        # The Sec. 3.4 what-if flow through the CLI.
        trace = tmp_path / "run.trace"
        main(["run", "--procs", "2", "--ops", "20", "--seed", "5", "-o", str(trace)])
        capsys.readouterr()
        import re

        text = trace.read_text()
        text = re.sub(r"loaded=(-?\d+)", "loaded=987654321", text, count=1)
        trace.write_text(text)
        dot = tmp_path / "fail.dot"
        code = main(["check", str(trace), "--dot", str(dot)])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert dot.exists() and dot.read_text().startswith("digraph")

    def test_check_with_baseline_engine(self, tmp_path, capsys):
        trace = tmp_path / "run.trace"
        main(["run", "--procs", "2", "--ops", "10", "--seed", "6", "-o", str(trace)])
        capsys.readouterr()
        assert main(["check", str(trace), "--engine", "baseline"]) == 0


class TestLitmus:
    def test_list(self, capsys):
        assert main(["litmus", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "SB" in out

    def test_named_case_matches_expectations(self, capsys):
        assert main(["litmus", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "FAIL (expected FAIL) — ok" in out

    def test_explain_flag_prints_cycle(self, capsys):
        assert main(["litmus", "fig6", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "cycle" in out

    def test_unknown_case_raises(self):
        with pytest.raises(KeyError):
            main(["litmus", "not-a-case"])


class TestCampaignAndRuntime:
    def test_campaign_single_cpu_speed_friendly(self, capsys):
        # Restrict to CPU1 to keep the CLI test fast.
        code = main(["campaign", "--table", "1", "--tests-per-bug", "8",
                     "--cpu", "CPU1"])
        assert code == 0  # all of CPU1's bugs detected -> success exit
        out = capsys.readouterr().out
        assert "Table 1" in out and "CPU1" in out
        assert "wall clock" in out and "analysis CPU" in out

    def test_campaign_parallel_workers(self, capsys):
        code = main(["campaign", "--table", "1", "--tests-per-bug", "8",
                     "--cpu", "CPU1", "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tasks" in out and "workers" in out  # throughput line

    def test_campaign_exit_1_when_bugs_missed(self, capsys, monkeypatch):
        # A zero-rate bug can never fire: the campaign completes but the
        # bug goes undetected, which must surface as exit code 1.
        import repro.cli as cli
        from repro.sim.cpus import BugSpec, CpuConfig
        from repro.sim.faults import BugClass, FuncUnit, StaleForwardFault

        dud = CpuConfig(
            name="DUDCPU", description="undetectable roster",
            bugs=(BugSpec(
                name="DUD-bug01", mechanism=StaleForwardFault,
                unit=FuncUnit.LSU, bug_class=BugClass.DESIGN, rate=0.0,
            ),),
        )
        real = cli.run_campaign
        monkeypatch.setattr(
            cli, "run_campaign",
            lambda cpus=None, **kw: real(cpus=[dud], **kw),
        )
        code = main(["campaign", "--tests-per-bug", "2"])
        assert code == 1
        assert "missed: DUD-bug01" in capsys.readouterr().out

    def test_campaign_exit_2_when_hunt_hangs(self, capsys, monkeypatch):
        import repro.cli as cli
        from repro.sim.cpus import BugSpec, CpuConfig
        from repro.sim.faults import BugClass, FuncUnit, HangFault

        hang = CpuConfig(
            name="HANGCPU", description="hung roster",
            bugs=(BugSpec(
                name="HANG-bug01", mechanism=HangFault,
                unit=FuncUnit.NONE, bug_class=BugClass.DESIGN, rate=1.0,
            ),),
        )
        real = cli.run_campaign
        monkeypatch.setattr(
            cli, "run_campaign",
            lambda cpus=None, **kw: real(cpus=[hang], **kw),
        )
        code = main(["campaign", "--tests-per-bug", "2", "--workers", "2",
                     "--task-timeout", "1.5"])
        assert code == 2
        assert "hung: HANG-bug01" in capsys.readouterr().out

    def test_task_timeout_without_workers_is_an_error(self, capsys):
        # --task-timeout is enforced by killing worker processes; with
        # the inline default it would be silently ignored, so reject it.
        for argv in (
            ["campaign", "--tests-per-bug", "2", "--task-timeout", "1.0"],
            ["runtime", "--ops-points", "40", "--task-timeout", "1.0"],
        ):
            assert main(argv) == 2
            err = capsys.readouterr().err
            assert "--task-timeout requires --workers" in err

    def test_campaign_exit_2_when_campaign_crashes(self, capsys, monkeypatch):
        import repro.cli as cli

        def boom(**kwargs):
            raise RuntimeError("mid-hunt crash")

        monkeypatch.setattr(cli, "run_campaign", boom)
        assert main(["campaign"]) == 2

    def test_campaign_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            main(["campaign", "--help"])
        out = capsys.readouterr().out
        assert "exit codes" in out
        assert "hung" in out

    def test_runtime_figure9(self, capsys):
        assert main(["runtime", "--figure", "9", "--ops-points", "40", "80"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 9" in out
        assert out.count("procs=4") == 6  # 3 word counts x 2 ops points

    def test_runtime_parallel_workers(self, capsys):
        code = main(["runtime", "--figure", "9", "--ops-points", "40",
                     "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 9" in out
        assert "tasks" in out  # throughput line printed for workers > 1


class TestHtmlAndGraphArtifacts:
    def test_check_writes_graph_and_html(self, tmp_path, capsys):
        trace = tmp_path / "run.trace"
        main(["run", "--procs", "2", "--ops", "15", "--seed", "2", "-o", str(trace)])
        capsys.readouterr()
        graph = tmp_path / "g.txt"
        page = tmp_path / "g.html"
        assert main(["check", str(trace), "--graph", str(graph),
                     "--html", str(page)]) == 0
        assert graph.read_text().startswith("# tsotool analysis graph")
        assert page.read_text().startswith("<!doctype html>")


class TestReportCommand:
    def test_report_writes_markdown(self, tmp_path, capsys, monkeypatch):
        # Shrink the report scales so the CLI test stays fast.
        import repro.cli as cli
        from repro.analysis.report import ReportConfig, build_report

        def tiny_report(config):
            return build_report(ReportConfig(
                tests_per_bug=config.tests_per_bug,
                fig8_procs=(2,), fig9_words=(4,), ops_points=(100,),
                ablation_ops=100,
            ))

        monkeypatch.setattr(cli, "build_report", tiny_report)
        out = tmp_path / "REPORT.md"
        assert main(["report", "-o", str(out), "--tests-per-bug", "10"]) == 0
        text = out.read_text()
        assert text.startswith("# TSOtool reproduction report")
        assert "## Litmus conformance" in text


class TestEmitAndCoverage:
    def test_emit_to_stdout(self, capsys):
        assert main(["emit", "--procs", "2", "--ops", "10", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "tsotool_thread_0" in out and ".global" in out

    def test_emit_c11(self, capsys):
        assert main(["emit", "--lang", "c11", "--procs", "2", "--ops", "10"]) == 0
        out = capsys.readouterr().out
        assert "#include <stdatomic.h>" in out
        assert "tsotool trace v1" in out

    def test_emit_to_file(self, tmp_path, capsys):
        target = tmp_path / "test.S"
        assert main(["emit", "--ops", "8", "-o", str(target)]) == 0
        assert "tsotool_thread_3" in target.read_text()

    def test_coverage_report(self, capsys):
        assert main(["coverage", "--procs", "2", "--ops", "30", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "coverage report" in out
        assert "machine.forwards" in out


class TestMinimize:
    def test_minimize_failing_trace(self, tmp_path, capsys):
        # Build a failing trace by corrupting a run, then minimize it.
        import re

        trace = tmp_path / "run.trace"
        main(["run", "--procs", "2", "--ops", "30", "--seed", "9", "-o", str(trace)])
        capsys.readouterr()
        # A CoRR-style corruption: duplicate an observed store value in
        # the wrong order is hard to fabricate textually, so instead swap
        # one load's value for another same-address store value until the
        # checker reports a cycle.
        from repro.model.trace import Execution
        from repro.core.api import check_execution
        from repro.core.result import ViolationKind

        base = Execution.load(trace.read_text())
        by_addr = {}
        for proc in base.records:
            for rec in proc:
                if rec.stored is not None:
                    for i, value in enumerate(rec.stored):
                        by_addr.setdefault(rec.instr.addr + 4 * i, []).append(value)
        found = False
        for pid, proc in enumerate(base.records):
            for idx, rec in enumerate(proc):
                if found or rec.loaded is None:
                    continue
                addr = rec.instr.addr
                for candidate in by_addr.get(addr, []):
                    if candidate == rec.loaded[0]:
                        continue
                    records = [list(p) for p in base.records]
                    records[pid][idx] = rec.with_loaded(
                        [candidate] + list(rec.loaded[1:])
                    )
                    verdict = check_execution(Execution(records=records))
                    if (not verdict.ok
                            and verdict.violation.kind == ViolationKind.CYCLE):
                        trace.write_text(Execution(records=records).dump())
                        found = True
                        break
        if not found:
            pytest.skip("no cycle-inducing corruption found for this seed")
        out_file = tmp_path / "min.trace"
        assert main(["minimize", str(trace), "-o", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "minimal failing core" in out
        assert out_file.exists()

    def test_minimize_rejects_passing_trace(self, tmp_path, capsys):
        trace = tmp_path / "run.trace"
        main(["run", "--procs", "2", "--ops", "10", "--seed", "1", "-o", str(trace)])
        capsys.readouterr()
        assert main(["minimize", str(trace)]) == 2
        assert "cannot minimize" in capsys.readouterr().out


class TestServiceVerbs:
    """submit / serve / status — the campaign-as-a-service flow."""

    @staticmethod
    def _manifest(tmp_path, **kwargs):
        from repro.service import CampaignManifest

        defaults = dict(
            name="cli", seeds=(1,), cpus=("CPU1",), tests_per_bug=4
        )
        defaults.update(kwargs)
        path = tmp_path / "m.json"
        CampaignManifest(**defaults).save(str(path))
        return str(path)

    def test_submit_then_serve_once_then_status(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        manifest = self._manifest(tmp_path)
        assert main(["submit", manifest, "--root", root]) == 0
        out = capsys.readouterr().out
        assert "submitted cli-" in out and "queued" in out

        assert main(["serve", "--root", root, "--once", "--no-http"]) == 0

        capsys.readouterr()
        assert main(["status", "--root", root]) == 0
        out = capsys.readouterr().out
        assert "done" in out
        assert "hunts 3/3" in out
        assert "exit 0" in out

    def test_submit_rejects_bad_manifest(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 1, "name": "no spaces allowed"}\n')
        assert main(["submit", str(bad), "--root", str(tmp_path / "s")]) == 2
        assert "cannot submit" in capsys.readouterr().err

    def test_submit_rejects_missing_file(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["submit", missing, "--root", str(tmp_path / "s")]) == 2
        assert "cannot submit" in capsys.readouterr().err

    def test_status_json_payload(self, tmp_path, capsys):
        import json

        root = str(tmp_path / "svc")
        manifest = self._manifest(tmp_path)
        main(["submit", manifest, "--root", root])
        main(["serve", "--root", root, "--once", "--no-http"])
        capsys.readouterr()
        assert main(["status", "--root", root, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["service"]["live"] is False
        [job] = payload["jobs"]
        assert job["state"] == "done"
        assert job["exit_code"] == 0

    def test_status_without_root_fails(self, tmp_path, capsys):
        assert main(["status", "--root", str(tmp_path / "absent")]) == 2
        assert "no service root" in capsys.readouterr().err

    def test_serve_timeout_requires_workers(self, tmp_path, capsys):
        code = main([
            "serve", "--root", str(tmp_path / "svc"),
            "--task-timeout", "5", "--once", "--no-http",
        ])
        assert code == 2
        assert "--task-timeout requires" in capsys.readouterr().err

    def test_serve_once_propagates_worst_exit_code(self, tmp_path, capsys):
        # tests_per_bug=1 leaves probabilistic bugs undetected — the
        # job exits 1 and --once must surface it.
        root = str(tmp_path / "svc")
        manifest = self._manifest(tmp_path, name="weak", tests_per_bug=1)
        main(["submit", manifest, "--root", root])
        code = main(["serve", "--root", root, "--once", "--no-http"])
        capsys.readouterr()
        from repro.service import CampaignManifest, ResultStore

        m = CampaignManifest.load(manifest)
        store = ResultStore(str(tmp_path / "svc" / "jobs" / m.job_id))
        summary = store.summary()
        expected = 0 if summary["hunts_detected"] == 3 else 1
        assert code == expected


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_model_choices(self):
        args = build_parser().parse_args(["run", "--model", "SC"])
        assert args.model == "SC"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--model", "XYZ"])
