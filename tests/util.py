"""Shared helpers for the test suite."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.api import check
from repro.core.policy import MemoryModel, TSO
from repro.generator.config import GeneratorConfig, InstructionMix
from repro.generator.generator import generate_program
from repro.model.expansion import AnalysisProgram, expand
from repro.model.program import Program, parse_litmus
from repro.model.trace import Execution
from repro.sim.machine import MachineConfig, TsoMachine

#: A small, intensely-racy generator config used across tests.
SMALL = GeneratorConfig(nprocs=4, ops_per_proc=50, shared_words=6)

#: Loads/stores/atomics only — no block ops, branches, or oddballs.
PLAIN_MIX = InstructionMix(
    load=40.0, store=40.0, swap=4.0, cas=4.0, membar=4.0,
    block_load=0.0, block_store=0.0, nonfaulting_load=0.0,
    prefetch=0.0, flush=0.0, branch=0.0, interrupt=0.0,
)


def golden_run(
    seed: int,
    config: Optional[GeneratorConfig] = None,
    machine_config: Optional[MachineConfig] = None,
) -> Tuple[Program, Execution, TsoMachine]:
    """Generate and execute one fault-free run."""
    config = config or SMALL
    program = generate_program(config, seed=seed)
    machine = TsoMachine(program, seed=seed, config=machine_config or MachineConfig())
    execution = machine.run()
    return program, execution, machine


def litmus_aprog(text: str) -> AnalysisProgram:
    """Parse litmus text and expand it to an analysis program."""
    program, execution = parse_litmus(text)
    return expand(execution, initial=program.initial, word_names=program.word_names)


def describe_map(aprog: AnalysisProgram) -> Dict[str, int]:
    """Map human descriptions to node ids, for edge-level assertions."""
    return {aprog.describe(op.id): op.id for op in aprog.ops}
