"""Tests for dynamic records and trace serialization (the Sec. 3.3
standalone-analysis interface)."""

import pytest

from repro.model.ops import (
    IBlockLoad,
    IBlockStore,
    IBranch,
    ICas,
    IFlushCache,
    IFlushPipe,
    ILoad,
    IMembar,
    INonFaultingLoad,
    IPrefetch,
    IStore,
    ISwap,
    PrefetchVariant,
)
from repro.model.trace import DynRecord, Execution
from tests.util import golden_run


def _roundtrip(execution: Execution) -> Execution:
    return Execution.load(execution.dump())


class TestDynRecord:
    def test_with_loaded_replaces_values(self):
        rec = DynRecord(instr=ILoad(addr=0), loaded=(1,))
        edited = rec.with_loaded([2])
        assert edited.loaded == (2,) and rec.loaded == (1,)

    def test_records_are_frozen(self):
        rec = DynRecord(instr=IMembar())
        with pytest.raises(Exception):
            rec.loaded = (1,)


class TestExecutionAccounting:
    def test_counts(self):
        execution = Execution(
            records=[
                [
                    DynRecord(instr=IStore(addr=0), stored=(1,)),
                    DynRecord(instr=IMembar()),
                    DynRecord(instr=ILoad(addr=0), loaded=(1,)),
                ],
                [DynRecord(instr=IBranch(skip=1), taken=True)],
            ]
        )
        assert execution.nprocs == 2
        assert execution.total_records() == 4
        assert execution.memory_operations() == 2


class TestSerializationRoundTrip:
    def test_every_record_kind_round_trips(self):
        records = [
            DynRecord(instr=ILoad(addr=8, size=8), loaded=(1, 2)),
            DynRecord(instr=IStore(addr=16, size=4), stored=(77,)),
            DynRecord(instr=ISwap(addr=0, size=4), loaded=(0,), stored=(5,)),
            DynRecord(
                instr=ICas(addr=0, size=4, compare_from=0),
                loaded=(5,), stored=(6,), cas_ok=True,
            ),
            DynRecord(
                instr=ICas(addr=0, size=4, compare_from=2),
                loaded=(9,), cas_ok=False,
            ),
            DynRecord(instr=IBlockStore(addr=0), stored=tuple(range(100, 116))),
            DynRecord(instr=IBlockLoad(addr=64), loaded=tuple(range(16))),
            DynRecord(
                instr=INonFaultingLoad(addr=4096, size=4, faulting=True),
                loaded=(0,), faulted=True,
            ),
            DynRecord(instr=IMembar()),
            DynRecord(instr=IBranch(skip=3), taken=False),
            DynRecord(
                instr=IPrefetch(addr=4, variant=PrefetchVariant.READ_MANY, strong=True)
            ),
            DynRecord(instr=IFlushCache(addr=8)),
            DynRecord(instr=IFlushPipe()),
        ]
        execution = Execution(records=[records])
        reloaded = _roundtrip(execution)
        assert reloaded.records == execution.records

    def test_golden_run_round_trips(self):
        _program, execution, _machine = golden_run(seed=5)
        assert _roundtrip(execution).records == execution.records

    def test_dump_has_header_and_one_line_per_record(self):
        _program, execution, _machine = golden_run(seed=6)
        lines = execution.dump().strip().splitlines()
        assert lines[0].startswith("#")
        assert len(lines) == 1 + execution.total_records()

    def test_load_rejects_malformed_line(self):
        with pytest.raises(ValueError, match="trace line"):
            Execution.load("P0 LD addr=nonsense")

    def test_load_rejects_unknown_opcode(self):
        with pytest.raises(ValueError, match="unknown opcode"):
            Execution.load("P0 XYZ addr=0")

    def test_load_rejects_missing_pid(self):
        with pytest.raises(ValueError):
            Execution.load("LD addr=0 loaded=1")

    def test_empty_trace_loads_empty_execution(self):
        execution = Execution.load("# only a comment\n")
        assert execution.nprocs == 0

    def test_sparse_processor_ids(self):
        execution = Execution.load("P2 MEMBAR")
        assert execution.nprocs == 3
        assert execution.records[0] == [] and len(execution.records[2]) == 1
