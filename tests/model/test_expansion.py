"""Tests for the Sec. 3.3 expansion into word-sized analysis operations."""

import pytest

from repro.model.expansion import (
    NO_GROUP,
    AnalysisOp,
    ExpansionError,
    OpKind,
    ROOT_PROC,
    expand,
)
from repro.model.ops import (
    IBlockStore,
    IBranch,
    ICas,
    IFlushPipe,
    ILoad,
    IMembar,
    INonFaultingLoad,
    IPrefetch,
    IStore,
    ISwap,
)
from repro.model.trace import DynRecord, Execution
from tests.util import litmus_aprog


def _expand(records, initial=None):
    return expand(Execution(records=[records]), initial=initial)


class TestRootStores:
    def test_one_root_per_address(self):
        aprog = litmus_aprog("P0: S[A]#1 ; S[B]#2")
        assert set(aprog.roots) == {0, 4}
        for root_id in aprog.roots.values():
            op = aprog.ops[root_id]
            assert op.is_root and op.is_store and op.proc == ROOT_PROC

    def test_roots_carry_initial_values(self):
        aprog = litmus_aprog("init A=9\nP0: L[A]=9")
        root = aprog.ops[aprog.roots[0]]
        assert root.value == 9
        assert aprog.map_value(0, 9) == root.id

    def test_initial_only_address_gets_root(self):
        aprog = expand(Execution(records=[[]]), initial={8: 3})
        assert 8 in aprog.roots


class TestScalarExpansion:
    def test_multiword_load_becomes_grouped_word_ops(self):
        aprog = _expand([DynRecord(instr=ILoad(addr=0, size=16), loaded=(0, 0, 0, 0))])
        ops = [aprog.ops[i] for i in aprog.per_proc[0]]
        assert len(ops) == 4
        assert all(op.kind == OpKind.LOAD for op in ops)
        assert len({op.group for op in ops}) == 1 and ops[0].group != NO_GROUP
        assert [op.addr for op in ops] == [0, 4, 8, 12]

    def test_single_word_ops_ungrouped(self):
        aprog = _expand([DynRecord(instr=IStore(addr=0, size=4), stored=(7,))])
        assert aprog.ops[aprog.per_proc[0][0]].group == NO_GROUP

    def test_value_count_mismatch_rejected(self):
        with pytest.raises(ExpansionError, match="expected 2"):
            _expand([DynRecord(instr=ILoad(addr=0, size=8), loaded=(1,))])

    def test_membar_becomes_membar_op(self):
        aprog = _expand([DynRecord(instr=IMembar())])
        op = aprog.ops[aprog.per_proc[0][0]]
        assert op.kind == OpKind.MEMBAR and op.addr is None


class TestAtomicExpansion:
    def test_swap_is_load_then_store_in_one_group(self):
        aprog = litmus_aprog("P0: SWAP[A]=0,#1")
        load, store = (aprog.ops[i] for i in aprog.per_proc[0])
        assert load.kind == OpKind.LOAD and store.kind == OpKind.STORE
        assert load.group == store.group != NO_GROUP
        assert aprog.group_first(store.id) == load.id
        assert aprog.group_last(load.id) == store.id

    def test_successful_cas_resolves_to_swap(self):
        # Sec. 3.3: "If the CAS completed, the instruction is converted
        # to a swap of the same size".
        aprog = litmus_aprog("P0: CAS[A]=0,#1")
        kinds = [aprog.ops[i].kind for i in aprog.per_proc[0]]
        # companion load + cas-load + cas-store
        assert kinds == [OpKind.LOAD, OpKind.LOAD, OpKind.STORE]
        cas_load, cas_store = aprog.ops[aprog.per_proc[0][1]], aprog.ops[aprog.per_proc[0][2]]
        assert cas_load.group == cas_store.group != NO_GROUP

    def test_failed_cas_resolves_to_plain_load(self):
        # "...else it is converted to a regular load."
        aprog = litmus_aprog("P0: CASF[A]=0")
        kinds = [aprog.ops[i].kind for i in aprog.per_proc[0]]
        assert kinds == [OpKind.LOAD, OpKind.LOAD]
        assert all(aprog.ops[i].group == NO_GROUP for i in aprog.per_proc[0])


class TestBlockExpansion:
    def test_block_store_becomes_eight_two_word_chunks(self):
        values = tuple(range(100, 116))
        aprog = _expand([DynRecord(instr=IBlockStore(addr=0), stored=values)])
        ops = [aprog.ops[i] for i in aprog.per_proc[0]]
        assert len(ops) == 16
        groups = [op.group for op in ops]
        assert len(set(groups)) == 8
        for chunk in range(8):
            assert groups[2 * chunk] == groups[2 * chunk + 1]
        assert [op.value for op in ops] == list(values)


class TestDroppedInstructions:
    def test_prefetch_flush_branch_dropped(self):
        aprog = _expand(
            [
                DynRecord(instr=IPrefetch(addr=0)),
                DynRecord(instr=IFlushPipe()),
                DynRecord(instr=IBranch(skip=1), taken=True),
                DynRecord(instr=IStore(addr=0), stored=(5,)),
            ]
        )
        assert len(aprog.per_proc[0]) == 1

    def test_faulting_nonfaulting_load_checked_then_dropped(self):
        aprog = _expand(
            [
                DynRecord(
                    instr=INonFaultingLoad(addr=0, faulting=True),
                    loaded=(0,), faulted=True,
                )
            ]
        )
        assert aprog.per_proc[0] == []
        assert aprog.precheck_failures == []

    def test_faulting_nonfaulting_load_nonzero_flagged(self):
        aprog = _expand(
            [
                DynRecord(
                    instr=INonFaultingLoad(addr=0, faulting=True),
                    loaded=(3,), faulted=True,
                )
            ]
        )
        codes = [code for code, _ in aprog.precheck_failures]
        assert codes == ["nonfaulting"]

    def test_valid_nonfaulting_load_becomes_regular_load(self):
        aprog = _expand(
            [
                DynRecord(instr=IStore(addr=0), stored=(5,)),
                DynRecord(
                    instr=INonFaultingLoad(addr=0, faulting=False),
                    loaded=(5,), faulted=False,
                ),
            ]
        )
        kinds = [aprog.ops[i].kind for i in aprog.per_proc[0]]
        assert kinds == [OpKind.STORE, OpKind.LOAD]


class TestValueMap:
    def test_map_value_resolves_stores(self):
        aprog = litmus_aprog("P0: S[A]#5\nP1: L[A]=5")
        store_id = aprog.per_proc[0][0]
        assert aprog.map_value(0, 5) == store_id

    def test_unmapped_load_recorded_as_precheck_failure(self):
        aprog = litmus_aprog("P0: L[A]=1234")
        codes = [code for code, _ in aprog.precheck_failures]
        assert codes == ["unmapped"]

    def test_duplicate_store_value_same_address_rejected(self):
        with pytest.raises(ExpansionError, match="unique-store-value"):
            litmus_aprog("P0: S[A]#1 ; S[A]#1")

    def test_same_value_different_addresses_allowed(self):
        aprog = litmus_aprog("P0: S[A]#1 ; S[B]#1")
        assert aprog.map_value(0, 1) != aprog.map_value(4, 1)

    def test_store_colliding_with_initial_value_rejected(self):
        with pytest.raises(ExpansionError, match="unique-store-value"):
            litmus_aprog("P0: S[A]#0")

    def test_readers_maps_stores_to_observing_loads(self):
        aprog = litmus_aprog("P0: S[A]#5\nP1: L[A]=5 ; L[A]=5")
        readers = aprog.readers()
        store_id = aprog.per_proc[0][0]
        assert sorted(readers[store_id]) == sorted(aprog.per_proc[1])


class TestDescribe:
    def test_describe_formats(self):
        aprog = litmus_aprog("P0: S[A]#5 ; L[A]=5 ; M")
        s, l, m = aprog.per_proc[0]
        assert aprog.describe(s) == "P0.0 S[A]#5"
        assert aprog.describe(l) == "P0.1 L[A]=5"
        assert aprog.describe(m) == "P0.2 MEMBAR"
        assert aprog.describe(aprog.roots[0]) == "init[A]#0"
