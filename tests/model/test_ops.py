"""Unit tests for the instruction vocabulary."""

import pytest

from repro.model.ops import (
    BLOCK_SIZE,
    WORD_SIZE,
    IBlockLoad,
    IBlockStore,
    IBranch,
    ICas,
    IFlushCache,
    IFlushPipe,
    ILoad,
    IMembar,
    INonFaultingLoad,
    IPrefetch,
    IStore,
    ISwap,
    PrefetchVariant,
)


class TestAlignmentAndSizes:
    def test_load_sizes(self):
        for size in (4, 8, 16):
            assert ILoad(addr=0, size=size).words() == size // WORD_SIZE

    def test_load_rejects_bad_size(self):
        with pytest.raises(ValueError):
            ILoad(addr=0, size=2)
        with pytest.raises(ValueError):
            ILoad(addr=0, size=32)

    def test_load_rejects_unaligned_address(self):
        with pytest.raises(ValueError):
            ILoad(addr=2, size=4)
        with pytest.raises(ValueError):
            ILoad(addr=4, size=8)  # 8-byte access must be 8-aligned

    def test_store_natural_alignment(self):
        IStore(addr=16, size=16)
        with pytest.raises(ValueError):
            IStore(addr=8, size=16)

    def test_swap_sizes_limited_to_4_and_8(self):
        ISwap(addr=0, size=4)
        ISwap(addr=8, size=8)
        with pytest.raises(ValueError):
            ISwap(addr=0, size=16)

    def test_block_ops_require_64_byte_alignment(self):
        IBlockLoad(addr=64)
        IBlockStore(addr=128)
        with pytest.raises(ValueError):
            IBlockLoad(addr=32)
        assert IBlockStore(addr=0).words() == BLOCK_SIZE // WORD_SIZE

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            ILoad(addr=-4)


class TestCas:
    def test_cas_requires_prior_load_index(self):
        ICas(addr=0, size=4, compare_from=0)
        with pytest.raises(ValueError):
            ICas(addr=0, size=4, compare_from=-1)


class TestBranch:
    def test_branch_skip_must_be_positive(self):
        IBranch(skip=1)
        with pytest.raises(ValueError):
            IBranch(skip=0)


class TestMiscInstructions:
    def test_membar_and_flushes_touch_no_words(self):
        assert IMembar().words() == 0
        assert IFlushPipe().words() == 0
        assert IFlushCache(addr=0).words() == 0
        assert IPrefetch(addr=0).words() == 0

    def test_nonfaulting_load_flags(self):
        instr = INonFaultingLoad(addr=0, size=8, faulting=True)
        assert instr.faulting and instr.words() == 2

    def test_mnemonics_are_distinct_and_informative(self):
        instrs = [
            ILoad(addr=4), IStore(addr=4), ISwap(addr=4),
            ICas(addr=4, size=4, compare_from=0), IMembar(),
            IBlockLoad(addr=0), IBlockStore(addr=0),
            IPrefetch(addr=0, variant=PrefetchVariant.WRITE_MANY, strong=True),
            INonFaultingLoad(addr=0, faulting=True),
            IFlushCache(addr=0), IFlushPipe(), IBranch(skip=2),
        ]
        mnemonics = [i.mnemonic() for i in instrs]
        assert len(set(mnemonics)) == len(mnemonics)

    def test_instructions_hashable_and_frozen(self):
        instr = ILoad(addr=4)
        assert hash(instr) == hash(ILoad(addr=4))
        with pytest.raises(Exception):
            instr.addr = 8  # frozen dataclass
