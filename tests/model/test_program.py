"""Tests for programs, validation, and the litmus notation parser."""

import pytest

from repro.model.ops import IBranch, ICas, ILoad, IMembar, IStore, ISwap
from repro.model.program import (
    LitmusError,
    Program,
    Thread,
    format_program,
    parse_litmus,
)


class TestProgram:
    def test_addresses_cover_multiword_accesses(self):
        program = Program(threads=[Thread([IStore(addr=0, size=16)])])
        assert program.addresses() == {0, 4, 8, 12}

    def test_addresses_include_initial(self):
        program = Program(threads=[Thread()], initial={32: 5})
        assert 32 in program.addresses()

    def test_initial_value_defaults_to_zero(self):
        program = Program(threads=[Thread()])
        assert program.initial_value(0) == 0

    def test_validate_accepts_well_formed_cas_pair(self):
        thread = Thread()
        idx = thread.append(ILoad(addr=0, size=4))
        thread.append(ICas(addr=0, size=4, compare_from=idx))
        Program(threads=[thread]).validate()

    def test_validate_rejects_cas_without_matching_load(self):
        thread = Thread()
        thread.append(IStore(addr=0))
        thread.append(ICas(addr=0, size=4, compare_from=0))
        with pytest.raises(ValueError, match="compare_from"):
            Program(threads=[thread]).validate()

    def test_validate_rejects_cas_with_wrong_address(self):
        thread = Thread()
        thread.append(ILoad(addr=4, size=4))
        thread.append(ICas(addr=0, size=4, compare_from=0))
        with pytest.raises(ValueError):
            Program(threads=[thread]).validate()

    def test_validate_rejects_branch_past_end(self):
        thread = Thread([IBranch(skip=2), ILoad(addr=0)])
        with pytest.raises(ValueError, match="branch"):
            Program(threads=[thread]).validate()

    def test_name_of_falls_back_to_hex(self):
        program = Program(threads=[Thread()], word_names={0: "A"})
        assert program.name_of(0) == "A"
        assert program.name_of(4) == "0x4"


class TestLitmusParsing:
    def test_store_and_load(self):
        program, execution = parse_litmus("P0: S[A]#5 ; L[A]=5")
        assert isinstance(program.threads[0].instrs[0], IStore)
        assert isinstance(program.threads[0].instrs[1], ILoad)
        recs = execution.records[0]
        assert recs[0].stored == (5,)
        assert recs[1].loaded == (5,)

    def test_symbolic_addresses_allocated_in_order(self):
        program, _ = parse_litmus("P0: S[A]#1 ; S[B]#2 ; S[C]#3")
        assert program.word_names == {0: "A", 4: "B", 8: "C"}

    def test_swap_notation(self):
        program, execution = parse_litmus("P0: SWAP[A]=0,#1")
        assert isinstance(program.threads[0].instrs[0], ISwap)
        rec = execution.records[0][0]
        assert rec.loaded == (0,) and rec.stored == (1,)

    def test_cas_success_emits_companion_load(self):
        program, execution = parse_litmus("P0: CAS[A]=0,#1")
        instrs = program.threads[0].instrs
        assert isinstance(instrs[0], ILoad) and isinstance(instrs[1], ICas)
        assert instrs[1].compare_from == 0
        assert execution.records[0][1].cas_ok is True

    def test_cas_failure_notation(self):
        _, execution = parse_litmus("P0: CASF[A]=9")
        rec = execution.records[0][1]
        assert rec.cas_ok is False and rec.stored is None

    def test_membar_notation(self):
        program, _ = parse_litmus("P0: S[A]#1 ; M ; MEMBAR")
        kinds = [type(i) for i in program.threads[0].instrs]
        assert kinds == [IStore, IMembar, IMembar]

    def test_bst_is_store_synonym(self):
        program, _ = parse_litmus("P0: BST[A]#1")
        assert isinstance(program.threads[0].instrs[0], IStore)

    def test_init_line(self):
        program, _ = parse_litmus("init A=7 B=-1\nP0: L[A]=7")
        assert program.initial == {0: 7, 4: -1}

    def test_missing_processors_get_empty_threads(self):
        program, execution = parse_litmus("P0: S[A]#1\nP3: L[A]=1")
        assert program.nprocs == 4
        assert len(program.threads[1]) == 0
        assert execution.records[2] == []

    def test_comment_and_blank_lines_ignored(self):
        program, _ = parse_litmus("# header\n\nP0: S[A]#1\n")
        assert program.nprocs == 1

    def test_duplicate_processor_rejected(self):
        with pytest.raises(LitmusError, match="duplicate"):
            parse_litmus("P0: S[A]#1\nP0: S[A]#2")

    def test_unknown_token_rejected(self):
        with pytest.raises(LitmusError, match="unrecognized operation"):
            parse_litmus("P0: FOO[A]#1")

    def test_garbage_line_rejected(self):
        with pytest.raises(LitmusError, match="unrecognized line"):
            parse_litmus("hello world")

    def test_empty_text_rejected(self):
        with pytest.raises(LitmusError, match="no processor"):
            parse_litmus("# nothing here")

    def test_negative_values_parse(self):
        program, execution = parse_litmus("P0: S[A]#-3 ; L[A]=-3")
        assert execution.records[0][0].stored == (-3,)


class TestFormatting:
    def test_format_round_trips_structure(self):
        program, _ = parse_litmus("init A=1\nP0: S[A]#2 ; M ; L[A]=2")
        text = format_program(program)
        assert text.splitlines()[0] == "init A=1"
        assert "P0:" in text and "MEMBAR" in text
