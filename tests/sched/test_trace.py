"""Record-and-replay: traces round-trip and replays are exact or loud."""

import pytest

from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.sched.pct import PctPolicy
from repro.sched.policy import RandomPolicy
from repro.sched.trace import (
    RecordingPolicy,
    ReplayPolicy,
    ScheduleDivergence,
    ScheduleTrace,
)
from repro.sim.faults import StoreBufferReorderFault
from repro.sim.machine import MachineConfig, TsoMachine

GEN = GeneratorConfig(nprocs=3, ops_per_proc=30, shared_words=4)


def _record(seed, config=None, faults=(), inner=None):
    program = generate_program(GEN, seed=seed)
    recorder = RecordingPolicy(inner or RandomPolicy(seed))
    machine = TsoMachine(
        program, seed=seed, config=config, faults=list(faults),
        policy=recorder,
    )
    execution = machine.run()
    return program, execution, recorder.trace


def _replay(program, trace, seed, config=None, faults=()):
    machine = TsoMachine(
        program, seed=seed, config=config, faults=list(faults),
        policy=ReplayPolicy(trace),
    )
    return machine.run()


def test_record_then_replay_is_identical():
    program, original, trace = _record(5)
    replayed = _replay(program, trace, seed=5)
    assert replayed.dump() == original.dump()


def test_record_then_replay_identical_under_active_fault():
    """Replay reproduces a faulty run: fault RNG comes from the machine
    seed and the schedule from the trace, so nothing is left to chance."""
    fault = lambda: [StoreBufferReorderFault(rate=0.7)]
    program, original, trace = _record(9, faults=fault())
    replayed = _replay(program, trace, seed=9, faults=fault())
    assert replayed.dump() == original.dump()


def test_record_wraps_any_policy():
    program, original, trace = _record(4, inner=PctPolicy(seed=4, depth=2))
    assert trace.policy == "pct"
    replayed = _replay(program, trace, seed=4)
    assert replayed.dump() == original.dump()


def test_trace_records_pso_and_drain_choices():
    config = MachineConfig(pso_mode=True, drain_bias=0.5)
    program, original, trace = _record(6, config=config)
    kinds = {k for k, _ in trace.choices}
    assert {"c", "d"} <= kinds
    replayed = _replay(program, trace, seed=6, config=config)
    assert replayed.dump() == original.dump()


def test_trace_records_delay_choices_with_jitter():
    config = MachineConfig(invalidate_jitter=3)
    program, original, trace = _record(8, config=config)
    assert any(k == "y" for k, _ in trace.choices)
    replayed = _replay(program, trace, seed=8, config=config)
    assert replayed.dump() == original.dump()


def test_json_round_trip(tmp_path):
    _, _, trace = _record(5)
    trace.meta["note"] = "hello"
    path = str(tmp_path / "t.json")
    trace.save(path)
    loaded = ScheduleTrace.load(path)
    assert loaded.policy == trace.policy
    assert loaded.choices == trace.choices
    assert loaded.meta == trace.meta
    assert loaded.to_json() == trace.to_json()


def test_from_json_rejects_bad_version_and_tags():
    with pytest.raises(ValueError, match="version"):
        ScheduleTrace.from_json('{"version": 99, "policy": "x", "choices": []}')
    with pytest.raises(ValueError, match="choice tag"):
        ScheduleTrace.from_json(
            '{"version": 1, "policy": "x", "choices": [["z", 0]], "meta": {}}'
        )


def test_replay_diverges_on_wrong_program():
    """Replaying against a different program fails loudly, not silently."""
    program, _, trace = _record(5)
    other = generate_program(GEN, seed=6)
    with pytest.raises(ScheduleDivergence):
        _replay(other, trace, seed=6)


def test_replay_diverges_on_truncated_trace():
    program, _, trace = _record(5)
    trace.choices = trace.choices[: len(trace.choices) // 2]
    with pytest.raises(ScheduleDivergence, match="exhausted"):
        _replay(program, trace, seed=5)


def test_replay_exhausted_property():
    program, _, trace = _record(5)
    policy = ReplayPolicy(trace)
    assert not policy.exhausted
    TsoMachine(program, seed=5, policy=policy).run()
    assert policy.exhausted
