"""Scheduler wiring through campaigns: determinism and exact replay."""

import json

import pytest

from repro.analysis.campaign import CampaignConfig, hunt_bug, run_campaign
from repro.analysis.minimize import minimize_recorded
from repro.analysis.replay import replay_hunt
from repro.generator.config import GeneratorConfig
from repro.sched.spec import SchedSpec
from repro.sched.trace import ScheduleTrace
from repro.sim.cpus import CPU_CONFIGS, cpu_by_name

_SMALL_GEN = GeneratorConfig(nprocs=3, ops_per_proc=40, shared_words=4)


def _config(sched):
    return CampaignConfig(
        tests_per_bug=4, generator=_SMALL_GEN, seed=77, sched=sched
    )


@pytest.mark.parametrize("sched", [SchedSpec(), SchedSpec(kind="pct")])
def test_sequential_and_parallel_campaigns_identical(sched):
    """Same seed + same policy ⇒ hunt-for-hunt identical results across
    worker counts (policies are built per attempt from the pickled spec)."""
    cpus = [cpu_by_name("CPU1")]
    sequential = run_campaign(cpus=cpus, config=_config(sched), workers=1)
    parallel = run_campaign(cpus=cpus, config=_config(sched), workers=4)
    assert sequential.hunts == parallel.hunts
    assert sequential.sched == sched.describe()


def test_hunt_records_schedule_of_detection():
    spec = cpu_by_name("CPU1").bugs[0]
    hunt = hunt_bug(spec, "CPU1", _config(SchedSpec()))
    assert hunt.detected
    assert hunt.schedule is not None
    doc = json.loads(hunt.schedule)
    assert doc["policy"] == "random"
    assert doc["meta"]["bug"] == spec.name
    assert doc["meta"]["seed"] == hunt.detected_on_seed


def test_recorded_hunt_replays_to_identical_violation():
    """The acceptance bar: a fault-detecting hunt replayed from its
    recorded ScheduleTrace reports the identical violation."""
    spec = cpu_by_name("CPU1").bugs[0]
    config = _config(SchedSpec())
    hunt = hunt_bug(spec, "CPU1", config)
    assert hunt.detected and hunt.schedule is not None
    replayed = replay_hunt(ScheduleTrace.from_json(hunt.schedule))
    assert replayed.detected
    assert replayed.via == hunt.via
    assert replayed.spec == spec


def test_recorded_hunt_replays_under_pct():
    spec = cpu_by_name("CPU1").bugs[0]
    config = _config(SchedSpec(kind="pct", pct_depth=2))
    hunt = hunt_bug(spec, "CPU1", config)
    if not hunt.detected:
        pytest.skip("pct did not detect this bug within the small budget")
    replayed = replay_hunt(ScheduleTrace.from_json(hunt.schedule))
    assert replayed.detected
    assert replayed.via == hunt.via


def test_record_dir_persists_replayable_traces(tmp_path):
    cpus = [cpu_by_name("CPU1")]
    result = run_campaign(
        cpus=cpus, config=_config(SchedSpec()), record_dir=str(tmp_path)
    )
    detected = [h for h in result.hunts if h.detected]
    assert detected
    for hunt in detected:
        path = tmp_path / f"{hunt.spec.name}.schedule.json"
        assert path.exists()
        replayed = replay_hunt(ScheduleTrace.load(str(path)))
        assert replayed.detected
        assert replayed.via == hunt.via


def test_minimize_recorded_shrinks_the_exact_failure():
    spec = cpu_by_name("CPU1").bugs[0]
    hunt = hunt_bug(spec, "CPU1", _config(SchedSpec()))
    assert hunt.detected and "violation" in hunt.via
    minimized = minimize_recorded(
        ScheduleTrace.from_json(hunt.schedule), max_checks=800
    )
    assert minimized.minimized_records < minimized.original_records
    assert not minimized.result.ok


def test_detection_line_mentions_policy():
    result = run_campaign(
        cpus=[cpu_by_name("CPU1")],
        config=_config(SchedSpec(kind="pct", pct_depth=3)),
    )
    line = result.detection_line()
    assert "pct(depth=3)" in line and "bugs detected" in line
