"""Golden-trace guard: RandomPolicy is bit-for-bit the old scheduler.

The digests below were captured from the pre-refactor machine (which
drew every decision from an inline ``random.Random(seed)``) at the
commit that introduced ``repro.sched``.  If any of them changes, the
refactor broke seed compatibility: every previously recorded seed,
campaign result and EXPERIMENTS.md number would silently shift.
"""

import hashlib

import pytest

from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.sched.policy import RandomPolicy
from repro.sim.faults import StoreBufferReorderFault, WritebackReorderFault
from repro.sim.machine import MachineConfig, TsoMachine

_GEN = GeneratorConfig(nprocs=4, ops_per_proc=60, shared_words=6)

#: (name, seed, machine config factory, fault factory) -> expected digest.
GOLDEN = {
    "tso7": "69210cb84a2c2437",
    "tso11": "5474c2f5a7400f3a",
    "pso7": "607e5cde4f427634",
    "sc7": "b365ed3b02227479",
    "wb7": "69210cb84a2c2437",
    "fault7": "b38641f7d11de493",
    "wrfault7": "4b68587691b374cc",
}

_CASES = {
    "tso7": (7, lambda: MachineConfig(), lambda: []),
    "tso11": (11, lambda: MachineConfig(), lambda: []),
    "pso7": (7, lambda: MachineConfig(pso_mode=True, drain_bias=0.2),
             lambda: []),
    "sc7": (7, lambda: MachineConfig(sc_mode=True), lambda: []),
    "wb7": (7, lambda: MachineConfig(writeback=True, cache_lines=2),
            lambda: []),
    "fault7": (7, lambda: MachineConfig(),
               lambda: [StoreBufferReorderFault(rate=0.5)]),
    "wrfault7": (7, lambda: MachineConfig(pso_mode=True),
                 lambda: [WritebackReorderFault(rate=0.6)]),
}


def _digest(seed, config, faults):
    program = generate_program(_GEN, seed=seed)
    machine = TsoMachine(program, seed=seed, config=config, faults=faults)
    execution = machine.run()
    h = hashlib.sha256()
    h.update(execution.dump().encode())
    h.update(repr(machine.commit_order).encode())
    return h.hexdigest()[:16]


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_default_policy_matches_pre_refactor_golden(name):
    seed, config_fn, faults_fn = _CASES[name]
    assert _digest(seed, config_fn(), faults_fn()) == GOLDEN[name]


def test_explicit_random_policy_matches_default():
    """Passing RandomPolicy(seed) explicitly is the default scheduler."""
    program = generate_program(_GEN, seed=7)
    default = TsoMachine(program, seed=7).run()
    explicit = TsoMachine(program, seed=7, policy=RandomPolicy(7)).run()
    assert explicit.dump() == default.dump()


def test_default_machine_uses_random_policy():
    program = generate_program(_GEN, seed=7)
    machine = TsoMachine(program, seed=7)
    assert machine.policy.name == "random"
    machine.run()
    assert machine.stats.sched_decisions > 0
