"""Systematic sweep mechanics: DFS stack, budget, determinism."""

import pytest

from repro.model.program import parse_litmus
from repro.sched.sweep import SweepPolicy, outcome_key, sweep_program

SB = """
P0: S[A]#1 ; L[B]=0
P1: S[B]#2 ; L[A]=0
"""


def _sb_program():
    program, _ = parse_litmus(SB)
    return program


def test_choice_stack_advances_depth_first():
    policy = SweepPolicy()

    class _M:  # minimal bind target
        class config:
            drain_bias = 0.35

    policy.bind(_M)
    assert policy.pick_cpu([0, 1, 2]) == 0
    assert policy.pick_cpu([0, 1]) == 0
    assert policy.stack == [[0, 3], [0, 2]]
    assert policy.advance()
    policy.bind(_M)
    assert policy.pick_cpu([0, 1, 2]) == 0
    assert policy.pick_cpu([0, 1]) == 1  # deepest choice incremented
    assert policy.advance()
    policy.bind(_M)
    assert policy.pick_cpu([0, 1, 2]) == 1  # deepest exhausted, pop up
    assert policy.pick_cpu([0, 1]) == 0


def test_advance_false_when_tree_exhausted():
    policy = SweepPolicy()

    class _M:
        class config:
            drain_bias = 0.35

    policy.bind(_M)
    policy.pick_cpu([0, 1])
    assert policy.advance()
    policy.bind(_M)
    policy.pick_cpu([0, 1])
    assert not policy.advance()


def test_unreached_suffix_is_discarded():
    """Choices past the cursor belong to abandoned subtrees and must not
    leak into the next schedule."""
    policy = SweepPolicy()

    class _M:
        class config:
            drain_bias = 0.35

    policy.bind(_M)
    policy.pick_cpu([0, 1])
    policy.pick_cpu([0, 1, 2])
    policy.advance()          # now [ [0,2],[1,3] ]
    policy.bind(_M)
    policy.pick_cpu([0, 1])   # re-follows prefix
    # This run never reaches the second decision; advance must drop it.
    assert policy.advance()
    assert policy.stack == [[1, 2]]


def test_budget_is_respected():
    result = sweep_program(_sb_program(), budget=3)
    assert result.stats.schedules_run == 3
    assert not result.stats.complete
    assert result.stats.budget == 3


def test_sweep_is_deterministic():
    a = sweep_program(_sb_program(), budget=200)
    b = sweep_program(_sb_program(), budget=200)
    assert list(a.outcomes) == list(b.outcomes)
    assert a.stats.schedules_run == b.stats.schedules_run
    assert a.stats.complete == b.stats.complete


def test_outcomes_deduplicate_by_execution():
    result = sweep_program(_sb_program(), budget=2000)
    assert result.stats.complete
    total = sum(o.count for o in result.outcomes.values())
    assert total == result.stats.schedules_run
    assert result.stats.distinct_outcomes == len(result.outcomes)
    for key, outcome in result.outcomes.items():
        assert key == outcome_key(outcome.execution)
    assert len(result.executions()) == len(result.outcomes)


def test_stats_render():
    result = sweep_program(_sb_program(), budget=2000)
    line = result.stats.render()
    assert "schedule" in line and "complete" in line
