"""PCT policy: validity, determinism, and priority-change behaviour."""

import pytest

from repro.core.api import check
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.sched.pct import PctPolicy
from repro.sched.spec import SchedSpec, make_policy
from repro.sim.machine import TsoMachine

GEN = GeneratorConfig(nprocs=4, ops_per_proc=40, shared_words=4)


def test_depth_validation():
    with pytest.raises(ValueError):
        PctPolicy(depth=0)


def test_runs_complete_and_pass_tso():
    """PCT schedules are legal interleavings: a healthy machine stays TSO."""
    for seed in range(5):
        program = generate_program(GEN, seed=seed)
        machine = TsoMachine(
            program, seed=seed, policy=PctPolicy(seed=seed, depth=3)
        )
        execution = machine.run()
        assert check(program, execution).ok


def test_same_seed_same_execution():
    program = generate_program(GEN, seed=3)
    a = TsoMachine(program, seed=3, policy=PctPolicy(seed=3, depth=3)).run()
    b = TsoMachine(program, seed=3, policy=PctPolicy(seed=3, depth=3)).run()
    assert a.dump() == b.dump()


def test_different_seeds_differ():
    program = generate_program(GEN, seed=3)
    a = TsoMachine(program, seed=3, policy=PctPolicy(seed=3, depth=3)).run()
    b = TsoMachine(program, seed=3, policy=PctPolicy(seed=99, depth=3)).run()
    assert a.dump() != b.dump()


def test_depth_one_runs_strict_priority_order():
    """With no change points the highest-priority runnable CPU always
    runs; every pick must be the max-priority member of runnable."""
    program = generate_program(GEN, seed=2)
    policy = PctPolicy(seed=2, depth=1)
    machine = TsoMachine(program, seed=2, policy=policy)
    assert not policy._change_points
    machine.run()


def test_change_points_demote():
    program = generate_program(GEN, seed=5)
    policy = PctPolicy(seed=5, depth=4)
    machine = TsoMachine(program, seed=5, policy=policy)
    assert len(policy._change_points) == 3
    machine.run()
    # Every change point the run actually reached demoted a processor
    # (points past the final step never fire — the horizon is an estimate).
    reached = sum(1 for cp in policy._change_points if cp <= policy._steps)
    assert policy._demotions == reached
    demoted = [p for p in policy._priorities.values() if p < policy.depth]
    assert len(demoted) <= reached


def test_spec_round_trip():
    spec = SchedSpec(kind="pct", pct_depth=5)
    policy = make_policy(spec, seed=11)
    assert isinstance(policy, PctPolicy)
    assert policy.depth == 5
    assert spec.describe() == "pct(depth=5)"
    assert SchedSpec.from_dict(spec.to_dict()) == spec
