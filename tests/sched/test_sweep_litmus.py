"""Sweep acceptance: full outcome enumeration on classic litmus shapes.

This file is the CI sweep smoke job (see .github/workflows/ci.yml): the
systematic scheduler must enumerate the complete outcome set of the
store-buffering and message-passing litmus programs on the TSO machine —
including SB's relaxed ``r1 = r2 = 0`` result, which needs both loads to
overtake both buffered stores, and *excluding* MP's forbidden ``(new,
old)`` result, which TSO's FIFO store buffers cannot produce.
"""

from repro.core.api import check
from repro.model.program import parse_litmus
from repro.sched.sweep import sweep_program

SB = """
P0: S[A]#1 ; L[B]=0
P1: S[B]#2 ; L[A]=0
"""

MP = """
P0: S[X]#1 ; S[Y]#2
P1: L[Y]=0 ; L[X]=0
"""


def _bit(loaded, new_value):
    """0 for the initial value, 1 for the (counter-sourced) stored value.

    The machine sources store values from a per-CPU counter at run time
    (unique-value guarantee), so the litmus ``#v`` literals are not what
    lands in memory — compare against the store's own recorded value.
    """
    if loaded == 0:
        return 0
    assert loaded == new_value, f"unexpected loaded value {loaded}"
    return 1


def test_sb_enumerates_all_four_outcomes():
    program, _ = parse_litmus(SB)
    result = sweep_program(program, budget=4096)
    assert result.stats.complete, "SB schedule tree should be finite"
    outcomes = set()
    for o in result.outcomes.values():
        recs = o.execution.records
        r0 = _bit(recs[0][1].loaded[0], recs[1][0].stored[0])  # P0: L[B]
        r1 = _bit(recs[1][1].loaded[0], recs[0][0].stored[0])  # P1: L[A]
        outcomes.add((r0, r1))
    # All four combinations are TSO-legal — including the relaxed (0, 0)
    # that SC forbids (both loads overtake both buffered stores).
    assert outcomes == {(0, 0), (0, 1), (1, 0), (1, 1)}
    for o in result.outcomes.values():
        assert check(program, o.execution).ok


def test_mp_never_produces_the_forbidden_outcome():
    program, _ = parse_litmus(MP)
    result = sweep_program(program, budget=4096)
    assert result.stats.complete, "MP schedule tree should be finite"
    outcomes = set()
    for o in result.outcomes.values():
        recs = o.execution.records
        ry = _bit(recs[1][0].loaded[0], recs[0][1].stored[0])  # P1: L[Y]
        rx = _bit(recs[1][1].loaded[0], recs[0][0].stored[0])  # P1: L[X]
        outcomes.add((ry, rx))
    # Seeing the new Y but the old X would require reordering P0's FIFO
    # stores — impossible under TSO.
    assert (1, 0) not in outcomes
    assert outcomes == {(0, 0), (0, 1), (1, 1)}
    for o in result.outcomes.values():
        assert check(program, o.execution).ok
