"""Property-based tests (hypothesis) for the core invariants.

The three load-bearing properties of the whole system:

1. **End-to-end soundness** — the checker never flags an execution the
   golden TSO machine produced ("we presume the machine innocent,
   unless proved guilty": no false positives, Sec. 1).
2. **Engine agreement** — all six checker engines (the literal
   Fig. 2 baseline, the bitset closure, the numpy matrix, the
   incremental vector-clock engine, its vectorized-kernel variant
   ``vck`` and the streaming engine at its default no-retirement
   window) return the same verdict — and, on failures, the same
   violation kind — on everything, including adversarially corrupted
   and fault-injected runs.  The vc/vck pair must additionally both
   produce a *valid* witness: a closed walk of explicit, reasoned
   edges in each engine's own final graph (vck shares vc's
   closing-edge mechanism but may close a different — equally real —
   cycle, because its batched R6 pass inserts edges in a different
   order and skips implied ones).
3. **Complete-checker consistency** — on small programs, the polynomial
   checker is sound w.r.t. the exponential ground truth: whatever it
   flags, the complete procedure also rejects.
"""

import random as stdlib_random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.api import ENGINES, check, check_execution
from repro.core.checker import BaselineChecker
from repro.core.closure import ClosureChecker
from repro.core.complete import complete_check
from repro.core.policy import PSO, SC, TSO
from repro.generator.config import GeneratorConfig, InstructionMix
from repro.generator.generator import generate_program
from repro.model.expansion import expand
from repro.model.trace import Execution
from repro.sim.faults import (
    MECHANISMS_BY_UNIT,
    MonitorFalseAlarmFault,
    TraceCorruptionFault,
)
from repro.sim.machine import MachineConfig, TsoMachine
from tests.util import PLAIN_MIX

FAST = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

small_configs = st.builds(
    GeneratorConfig,
    nprocs=st.integers(2, 6),
    ops_per_proc=st.integers(5, 40),
    shared_words=st.integers(1, 10),
    stride_words=st.sampled_from([1, 4, 16]),
)


@FAST
@given(config=small_configs, seed=st.integers(0, 10_000))
def test_golden_tso_runs_always_pass(config, seed):
    program = generate_program(config, seed=seed)
    execution = TsoMachine(program, seed=seed).run()
    result = check(program, execution)
    assert result.ok, result.explain()


@FAST
@given(config=small_configs, seed=st.integers(0, 10_000))
def test_sc_mode_runs_pass_under_every_model(config, seed):
    # SC executions are a subset of TSO and PSO executions.
    program = generate_program(config, seed=seed)
    machine = TsoMachine(program, seed=seed, config=MachineConfig(sc_mode=True))
    execution = machine.run()
    for model in (SC, TSO, PSO):
        assert check(program, execution, model=model).ok, model.name


@FAST
@given(config=small_configs, seed=st.integers(0, 10_000))
def test_writeback_machine_runs_always_pass(config, seed):
    # The write-back cache mode (dirty lines, snooping, evictions) must
    # be just as TSO-sound as the write-through default.
    program = generate_program(config, seed=seed)
    machine = TsoMachine(
        program, seed=seed,
        config=MachineConfig(writeback=True, cache_lines=2, hw_prefetch=True),
    )
    execution = machine.run()
    result = check(program, execution)
    assert result.ok, result.explain()


@FAST
@given(config=small_configs, seed=st.integers(0, 10_000))
def test_tso_runs_pass_under_pso(config, seed):
    # PSO is strictly weaker than TSO: every TSO execution is PSO-legal.
    program = generate_program(config, seed=seed)
    execution = TsoMachine(program, seed=seed).run()
    assert check(program, execution, model=PSO).ok


def _corrupt(execution: Execution, seed: int) -> Execution:
    """Swap one load's observed value for another value of the same
    address — a 'plausible' corruption that stays inside the value map."""
    rng = stdlib_random.Random(seed)
    by_addr = {}
    for proc in execution.records:
        for rec in proc:
            if rec.stored is not None:
                addr = rec.instr.addr
                for i, value in enumerate(rec.stored):
                    by_addr.setdefault(addr + 4 * i, []).append(value)
    candidates = []
    for pid, proc in enumerate(execution.records):
        for idx, rec in enumerate(proc):
            if rec.loaded is not None and rec.instr.words() >= 1:
                candidates.append((pid, idx))
    if not candidates:
        return execution
    pid, idx = rng.choice(candidates)
    rec = execution.records[pid][idx]
    word = rng.randrange(len(rec.loaded))
    addr = rec.instr.addr + 4 * word
    pool = [v for v in by_addr.get(addr, [0]) if v != rec.loaded[word]] or [0]
    loaded = list(rec.loaded)
    loaded[word] = rng.choice(pool)
    records = [list(p) for p in execution.records]
    records[pid][idx] = rec.with_loaded(loaded)
    return Execution(records=records)


@FAST
@given(config=small_configs, seed=st.integers(0, 10_000))
def test_engines_agree_on_golden_and_corrupted_runs(config, seed):
    program = generate_program(config, seed=seed)
    execution = TsoMachine(program, seed=seed).run()
    for trace in (execution, _corrupt(execution, seed)):
        verdicts = {
            engine: _verdict(check(program, trace, engine=engine))
            for engine in sorted(ENGINES)
        }
        assert len(set(verdicts.values())) == 1, verdicts
        _assert_witness_parity(program, trace)


def _verdict(result):
    """The cross-engine comparison key: verdict plus violation kind."""
    kind = result.violation.kind if result.violation is not None else None
    return result.ok, kind


def _strip_engine_header(text):
    return "\n".join(
        line for line in text.splitlines() if "engine=" not in line
    )


def _assert_valid_cycle_witness(result):
    """Every consecutive pair in the reported cycle must be an explicit,
    reasoned edge of the engine's final graph, with a reason the renderer
    can print — the witness is checkable, not just a node list."""
    cycle = result.violation.cycle
    reasons = result.violation.reasons
    assert len(cycle) >= 2
    assert len(reasons) == len(cycle)
    for i, node in enumerate(cycle):
        nxt = cycle[(i + 1) % len(cycle)]
        assert (node, nxt) in result.graph.reasons, (node, nxt)
        assert reasons[i].render()


def _assert_witness_parity(program, trace):
    """vc and vck share the closing-edge witness mechanism: on failures
    both must report a CYCLE backed by explicit edges in their own final
    graphs (the cycles themselves may differ; see the module docstring)."""
    vc = check(program, trace, engine="vc")
    vck = check(program, trace, engine="vck")
    assert vc.ok == vck.ok
    if not vc.ok and vc.violation.cycle:
        assert vc.violation.kind == vck.violation.kind
        _assert_valid_cycle_witness(vc)
        _assert_valid_cycle_witness(vck)
        assert _strip_engine_header(vc.explain())
        assert _strip_engine_header(vck.explain())


#: Every shipped fault mechanism except the deliberate-hang scaffolding
#: (which never completes a run, so there is nothing to analyze).
_FAULT_MECHANISMS = sorted(
    {m for ms in MECHANISMS_BY_UNIT.values() for m in ms}
    | {MonitorFalseAlarmFault, TraceCorruptionFault},
    key=lambda cls: cls.__name__,
)


@pytest.mark.parametrize(
    "mechanism", _FAULT_MECHANISMS, ids=lambda cls: cls.__name__
)
def test_engines_agree_under_fault_injection(mechanism):
    # Every fault configuration, several seeds each: enough runs that
    # most mechanisms produce at least one detected violation, so the
    # agreement below covers the failing path too, not just clean runs.
    config = GeneratorConfig(nprocs=4, ops_per_proc=30, shared_words=3)
    for seed in range(4):
        program = generate_program(config, seed=seed)
        machine = TsoMachine(
            program, seed=seed, faults=[mechanism(rate=0.3)]
        )
        trace = machine.run()
        verdicts = {
            engine: _verdict(check(program, trace, engine=engine))
            for engine in sorted(ENGINES)
        }
        assert len(set(verdicts.values())) == 1, (mechanism.__name__, verdicts)
        _assert_witness_parity(program, trace)


@FAST
@given(config=small_configs, seed=st.integers(0, 10_000))
def test_model_hierarchy_on_corrupted_runs(config, seed):
    # SC-pass implies TSO-pass implies PSO-pass (the models only relax).
    program = generate_program(config, seed=seed)
    trace = _corrupt(TsoMachine(program, seed=seed).run(), seed)
    sc_ok = check(program, trace, model=SC).ok
    tso_ok = check(program, trace, model=TSO).ok
    pso_ok = check(program, trace, model=PSO).ok
    if sc_ok:
        assert tso_ok
    if tso_ok:
        assert pso_ok


tiny_configs = st.builds(
    GeneratorConfig,
    nprocs=st.integers(2, 3),
    ops_per_proc=st.integers(2, 5),
    shared_words=st.integers(1, 3),
    mix=st.just(PLAIN_MIX),
)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(config=tiny_configs, seed=st.integers(0, 10_000))
def test_polynomial_checker_sound_wrt_complete(config, seed):
    # On tiny corrupted runs: if the polynomial checker flags, the
    # complete procedure must agree the outcome is invalid; if the
    # complete procedure finds a witness, the polynomial checker must
    # have passed it.
    program = generate_program(config, seed=seed)
    trace = _corrupt(TsoMachine(program, seed=seed).run(), seed)
    aprog = expand(trace, initial=program.initial, word_names=program.word_names)
    poly = ClosureChecker().run(aprog)
    truth = complete_check(aprog, max_states=200_000)
    if not truth.decided:
        return  # budget blown: nothing to compare
    if not poly.ok:
        assert truth.valid is False, "polynomial checker false-positive!"
    if truth.valid is True:
        assert poly.ok


@FAST
@given(config=small_configs, seed=st.integers(0, 10_000))
def test_trace_serialization_round_trips(config, seed):
    program = generate_program(config, seed=seed)
    execution = TsoMachine(program, seed=seed).run()
    reloaded = Execution.load(execution.dump())
    assert reloaded.records == execution.records


@FAST
@given(config=small_configs, seed=st.integers(0, 10_000))
def test_unique_store_values_per_address(config, seed):
    program = generate_program(config, seed=seed)
    execution = TsoMachine(program, seed=seed).run()
    seen = set()
    for proc in execution.records:
        for rec in proc:
            if rec.stored is None:
                continue
            for i, value in enumerate(rec.stored):
                key = (rec.instr.addr + 4 * i, value)
                assert key not in seen
                seen.add(key)


@FAST
@given(seed=st.integers(0, 10_000), nprocs=st.integers(1, 6),
       ops=st.integers(1, 60))
def test_generator_budget_exact_and_deterministic(seed, nprocs, ops):
    config = GeneratorConfig(nprocs=nprocs, ops_per_proc=ops, shared_words=4)
    a = generate_program(config, seed=seed)
    b = generate_program(config, seed=seed)
    assert a.threads == b.threads
    assert all(len(t) == ops for t in a.threads)


@FAST
@given(config=small_configs, seed=st.integers(0, 10_000),
       garbage=st.integers(10**9, 10**10))
def test_unwritten_value_always_flagged(config, seed, garbage):
    # Inject a value that no store could have produced: the analysis
    # must fail, whatever else happens (Sec. 4's up-front check).
    program = generate_program(config, seed=seed)
    execution = TsoMachine(program, seed=seed).run()
    records = [list(p) for p in execution.records]
    for pid, proc in enumerate(records):
        for idx, rec in enumerate(proc):
            if rec.loaded:
                loaded = list(rec.loaded)
                loaded[0] = garbage
                records[pid][idx] = rec.with_loaded(loaded)
                result = check(
                    program, Execution(records=records)
                )
                assert not result.ok
                return
