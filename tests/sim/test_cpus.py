"""The six CPU rosters must reproduce the paper's tables by construction."""

import pytest

from repro.sim.cpus import CPU_CONFIGS, cpu_by_name
from repro.sim.faults import BugClass, FuncUnit

#: Table 1 of the paper: (architecture, design, monitor, environment).
PAPER_TABLE1 = {
    "CPU1": (0, 3, 0, 0),
    "CPU2": (0, 4, 3, 0),
    "CPU3": (0, 11, 8, 5),
    "CPU4": (0, 17, 8, 0),
    "CPU5": (2, 20, 5, 0),
    "CPU6": (5, 14, 1, 0),
}

#: Table 2 of the paper: (Pipe, Caches, TLB, LSU, Mem Cntlr, Interconnect).
PAPER_TABLE2 = {
    "CPU1": (0, 3, 0, 0, 0, 0),
    "CPU2": (1, 5, 0, 0, 1, 0),
    "CPU3": (0, 17, 0, 0, 0, 2),
    "CPU4": (0, 8, 0, 0, 8, 9),
    "CPU5": (3, 11, 6, 4, 0, 1),
    "CPU6": (0, 5, 0, 10, 0, 0),
}

CLASS_ORDER = (
    BugClass.ARCHITECTURE, BugClass.DESIGN, BugClass.MONITOR, BugClass.ENVIRONMENT,
)
UNIT_ORDER = (
    FuncUnit.PIPE, FuncUnit.CACHES, FuncUnit.TLB, FuncUnit.LSU,
    FuncUnit.MEM_CNTLR, FuncUnit.INTERCONNECT,
)


@pytest.mark.parametrize("cpu", CPU_CONFIGS, ids=lambda c: c.name)
def test_class_counts_match_table1(cpu):
    counts = cpu.class_counts()
    assert tuple(counts[c] for c in CLASS_ORDER) == PAPER_TABLE1[cpu.name]


@pytest.mark.parametrize("cpu", CPU_CONFIGS, ids=lambda c: c.name)
def test_unit_counts_match_table2(cpu):
    counts = cpu.unit_counts()
    assert tuple(counts[u] for u in UNIT_ORDER) == PAPER_TABLE2[cpu.name]


def test_totals_match_paper():
    # Table 1 totals: 7 / 69 / 25 / 5 (106 bugs); Table 2: 4/49/6/14/9/12.
    class_totals = [0, 0, 0, 0]
    unit_totals = [0] * 6
    for cpu in CPU_CONFIGS:
        for i, cls in enumerate(CLASS_ORDER):
            class_totals[i] += cpu.class_counts()[cls]
        for i, unit in enumerate(UNIT_ORDER):
            unit_totals[i] += cpu.unit_counts()[unit]
    assert class_totals == [7, 69, 25, 5]
    assert sum(class_totals) == 106
    assert unit_totals == [4, 49, 6, 14, 9, 12]


def test_bug_names_unique_across_cpus():
    names = [bug.name for cpu in CPU_CONFIGS for bug in cpu.bugs]
    assert len(names) == len(set(names))


def test_derivatives_have_no_architecture_bugs():
    # "CPU1 to CPU4 are derivative processors ... TSOtool did not expose
    # architecture bugs (since the architecture was already stable)".
    for cpu in CPU_CONFIGS[:4]:
        assert cpu.class_counts()[BugClass.ARCHITECTURE] == 0


def test_new_designs_have_architecture_bugs():
    for cpu in CPU_CONFIGS[4:]:
        assert cpu.class_counts()[BugClass.ARCHITECTURE] > 0


def test_every_bug_instantiates_a_fault():
    for cpu in CPU_CONFIGS:
        for spec in cpu.bugs:
            fault = spec.instantiate()
            assert fault.name == spec.name
            assert fault.unit == spec.unit
            assert fault.bug_class == spec.bug_class
            assert 0.0 < fault.rate <= 1.0


def test_environment_bugs_have_no_unit():
    for cpu in CPU_CONFIGS:
        for spec in cpu.bugs:
            if spec.bug_class == BugClass.ENVIRONMENT:
                assert spec.unit == FuncUnit.NONE


def test_cpu_lookup():
    assert cpu_by_name("CPU3").name == "CPU3"
    with pytest.raises(KeyError):
        cpu_by_name("CPU9")
