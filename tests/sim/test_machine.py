"""Behavioural tests of the golden TSO machine."""

import pytest

from repro.core.api import check
from repro.core.policy import SC
from repro.generator.config import GeneratorConfig, InstructionMix
from repro.generator.generator import generate_program
from repro.model.ops import (
    IBlockStore,
    IBranch,
    ICas,
    ILoad,
    IMembar,
    INonFaultingLoad,
    IStore,
    ISwap,
)
from repro.model.program import Program, Thread
from repro.sim.machine import MachineConfig, TsoMachine
from tests.util import PLAIN_MIX, golden_run


def _run_program(threads, seed=0, config=None, initial=None):
    program = Program(threads=[Thread(t) for t in threads], initial=initial or {})
    machine = TsoMachine(program, seed=seed, config=config or MachineConfig())
    return program, machine.run(), machine


class TestDeterminism:
    def test_same_seed_same_execution(self):
        p1, e1, _ = golden_run(seed=21)
        p2, e2, _ = golden_run(seed=21)
        assert p1.threads == p2.threads
        assert e1.records == e2.records

    def test_different_seed_different_interleaving(self):
        config = GeneratorConfig(nprocs=4, ops_per_proc=50, shared_words=4)
        program = generate_program(config, seed=1)
        e1 = TsoMachine(program, seed=1).run()
        e2 = TsoMachine(program, seed=2).run()
        assert e1.records != e2.records


class TestGoldenSoundness:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_runs_pass_tso_check(self, seed):
        program, execution, _machine = golden_run(seed=seed)
        result = check(program, execution)
        assert result.ok, result.explain()

    def test_runs_with_all_instruction_types_pass(self):
        mix = InstructionMix(
            load=10, store=10, swap=5, cas=5, membar=5, block_load=3,
            block_store=3, nonfaulting_load=3, prefetch=3, flush=3, branch=3,
        )
        config = GeneratorConfig(nprocs=4, ops_per_proc=80, shared_words=16, mix=mix)
        for seed in range(5):
            program = generate_program(config, seed=seed)
            execution = TsoMachine(program, seed=seed).run()
            assert check(program, execution).ok

    def test_sc_mode_passes_sc_check(self):
        config = GeneratorConfig(
            nprocs=4, ops_per_proc=40, shared_words=6, mix=PLAIN_MIX
        )
        for seed in range(5):
            program = generate_program(config, seed=seed)
            machine = TsoMachine(
                program, seed=seed, config=MachineConfig(sc_mode=True)
            )
            execution = machine.run()
            assert check(program, execution, model=SC).ok

    def test_monitor_raises_no_alarms_on_golden_runs(self):
        _p, _e, machine = golden_run(
            seed=33, machine_config=MachineConfig(enable_monitor=True)
        )
        assert machine.monitor_alarms == []

    def test_true_execution_equals_observed_without_faults(self):
        _p, execution, machine = golden_run(seed=34)
        assert machine.true_execution.records == execution.records


class TestStoreBufferSemantics:
    def test_own_store_forwarded_before_global_visibility(self):
        # With drain_bias=0 the buffer only drains when forced, so the
        # load must get its value by forwarding.
        program, execution, machine = _run_program(
            [[IStore(addr=0), ILoad(addr=0)]],
            config=MachineConfig(drain_bias=0.0),
        )
        recs = execution.records[0]
        assert recs[1].loaded == recs[0].stored

    def test_store_buffering_confines_new_value_to_writer(self):
        # P0 stores then P1 loads; with zero drain bias P1 can read the
        # old value while P0's store is still buffered.  We cannot force
        # the interleaving directly, so scan seeds for one where P1
        # misses the store — it must exist if buffering works.
        saw_old = False
        for seed in range(40):
            program, execution, _m = _run_program(
                [[IStore(addr=0)], [ILoad(addr=0)]],
                seed=seed,
                config=MachineConfig(drain_bias=0.05),
            )
            if execution.records[1][0].loaded == (0,):
                saw_old = True
                break
        assert saw_old, "P1 always saw the store instantly: no buffering?"

    def test_membar_publishes_buffered_stores(self):
        # After P0's membar retires, its store is globally visible, so a
        # load on P1 that executes later in every interleaving sees it.
        program, execution, machine = _run_program(
            [[IStore(addr=0), IMembar(), ILoad(addr=4)]],
            config=MachineConfig(drain_bias=0.0),
        )
        assert machine.memory.read(0) == execution.records[0][0].stored[0]

    def test_buffer_capacity_forces_drains(self):
        stores = [IStore(addr=0) for _ in range(20)]
        program, execution, machine = _run_program(
            [stores], config=MachineConfig(buffer_capacity=2, drain_bias=0.0)
        )
        # All stores eventually commit; memory holds the last value.
        assert machine.memory.read(0) == execution.records[0][-1].stored[0]


class TestAtomics:
    def test_swap_returns_old_writes_new(self):
        program, execution, machine = _run_program(
            [[IStore(addr=0), ISwap(addr=0)]]
        )
        store_rec, swap_rec = execution.records[0]
        assert swap_rec.loaded == store_rec.stored
        assert machine.memory.read(0) == swap_rec.stored[0]

    def test_cas_succeeds_after_quiet_load(self):
        thread = [ILoad(addr=0), ICas(addr=0, size=4, compare_from=0)]
        program, execution, machine = _run_program([thread])
        cas_rec = execution.records[0][1]
        assert cas_rec.cas_ok is True
        assert machine.memory.read(0) == cas_rec.stored[0]

    def test_cas_fails_when_value_changed(self):
        # P1 loads 0, P0 floods the address with stores, P1's CAS then
        # compares against a stale value on most interleavings.
        failures = 0
        for seed in range(30):
            p0 = [IStore(addr=0) for _ in range(10)]
            p1 = [ILoad(addr=0), ICas(addr=0, size=4, compare_from=0)]
            _p, execution, _m = _run_program([p0, p1], seed=seed)
            if execution.records[1][1].cas_ok is False:
                failures += 1
        assert failures > 0

    def test_failed_cas_writes_nothing(self):
        for seed in range(30):
            p0 = [IStore(addr=0) for _ in range(10)]
            p1 = [ILoad(addr=0), ICas(addr=0, size=4, compare_from=0)]
            _p, execution, machine = _run_program([p0, p1], seed=seed)
            rec = execution.records[1][1]
            if rec.cas_ok is False:
                assert rec.stored is None
                return
        pytest.skip("no failing CAS observed in 30 seeds")

    def test_branch_skipped_companion_degenerates_cas_to_load(self):
        # A branch that always skips the companion load leaves the CAS
        # without a compare value; the machine treats it as a failed CAS.
        thread = [
            IBranch(skip=1),
            ILoad(addr=0),
            ICas(addr=0, size=4, compare_from=1),
        ]
        for seed in range(20):
            _p, execution, _m = _run_program([thread], seed=seed)
            recs = execution.records[0]
            if recs[0].taken:
                cas_rec = recs[1]
                assert cas_rec.cas_ok is False
                return
        pytest.skip("branch never taken in 20 seeds")


class TestOddballs:
    def test_faulting_nonfaulting_load_returns_zero(self):
        program, execution, _m = _run_program(
            [[INonFaultingLoad(addr=0x5000, faulting=True)]]
        )
        rec = execution.records[0][0]
        assert rec.loaded == (0,) and rec.faulted is True

    def test_valid_nonfaulting_load_behaves_like_load(self):
        program, execution, _m = _run_program(
            [[IStore(addr=0), IMembar(), INonFaultingLoad(addr=0, faulting=False)]]
        )
        recs = execution.records[0]
        assert recs[2].loaded == recs[0].stored
        assert recs[2].faulted is False

    def test_block_store_commits_all_sixteen_words(self):
        program, execution, machine = _run_program([[IBlockStore(addr=0)]])
        stored = execution.records[0][0].stored
        assert len(stored) == 16
        for i, value in enumerate(stored):
            assert machine.memory.read(i * 4) == value

    def test_branch_records_direction_and_skips(self):
        thread = [IBranch(skip=2), IStore(addr=0), IStore(addr=4), IStore(addr=8)]
        taken = not_taken = False
        for seed in range(30):
            _p, execution, _m = _run_program([thread], seed=seed)
            recs = execution.records[0]
            if recs[0].taken:
                taken = True
                assert len(recs) == 2  # branch + final store only
            else:
                not_taken = True
                assert len(recs) == 4
        assert taken and not_taken

    def test_livelock_guard_raises(self):
        # 2000 stores need more than the floor of 1000 ticks allowed by
        # max_tick_factor=0, so the guard must fire.
        program = Program(threads=[Thread([IStore(addr=0) for _ in range(2000)])])
        machine = TsoMachine(program, config=MachineConfig(max_tick_factor=0))
        with pytest.raises(RuntimeError, match="quiesce"):
            machine.run()


class TestValueUniqueness:
    def test_all_stored_values_unique_per_address(self):
        _p, execution, _m = golden_run(seed=40)
        seen = set()
        for proc in execution.records:
            for rec in proc:
                if rec.stored is None:
                    continue
                addr = rec.instr.addr
                for offset, value in enumerate(rec.stored):
                    key = (addr + 4 * offset, value)
                    assert key not in seen
                    seen.add(key)

    def test_counter_values_never_collide_with_initial_zero(self):
        _p, execution, _m = golden_run(seed=41)
        for proc in execution.records:
            for rec in proc:
                for value in rec.stored or ():
                    assert value != 0
