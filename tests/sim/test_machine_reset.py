"""``TsoMachine.reset``: a reset machine is indistinguishable from a
fresh one.

The batched campaign path re-arms one machine per worker instead of
constructing a new one per attempt; the contract is *behavioral
identity* — same program, seed, faults and policy in, byte-identical
execution out, whether the machine is fresh or carries any amount of
prior-run state (drained buffers, warm caches, fault history).
"""

from repro import telemetry
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.sim.cpus import CPU_CONFIGS
from repro.sim.faults import MonitorFalseAlarmFault, StaleForwardFault
from repro.sim.machine import MachineConfig, TsoMachine

GEN = GeneratorConfig(nprocs=3, ops_per_proc=60, shared_words=6)


def _programs():
    return generate_program(GEN, seed=11), generate_program(GEN, seed=22)


class TestResetIdentity:
    def test_reset_run_equals_fresh_run(self):
        p1, p2 = _programs()
        machine = TsoMachine(p1, seed=11)
        machine.run()
        reset_exec = machine.reset(p2, seed=22).run()
        fresh = TsoMachine(p2, seed=22)
        fresh_exec = fresh.run()
        assert reset_exec.dump() == fresh_exec.dump()
        assert machine.true_execution.dump() == fresh.true_execution.dump()
        assert machine.stats == fresh.stats

    def test_reset_with_faults_and_monitor_state(self):
        p1, p2 = _programs()
        machine = TsoMachine(p1, seed=11, faults=[MonitorFalseAlarmFault()])
        machine.run()
        machine.reset(p2, seed=22, faults=[StaleForwardFault()])
        reset_exec = machine.run()
        fresh = TsoMachine(p2, seed=22, faults=[StaleForwardFault()])
        assert reset_exec.dump() == fresh.run().dump()
        assert machine.monitor_alarms == fresh.monitor_alarms

    def test_reset_same_program_same_seed_reproduces(self):
        p1, _ = _programs()
        machine = TsoMachine(p1, seed=11)
        first = machine.run()
        second = machine.reset(seed=11).run()
        assert first.dump() == second.dump()

    def test_reset_across_nproc_change_rebuilds(self):
        """A program with a different CPU count can't reuse the old
        interconnect/caches — reset rebuilds them and still matches."""
        p1, _ = _programs()
        wide = generate_program(
            GeneratorConfig(nprocs=5, ops_per_proc=40, shared_words=6),
            seed=9,
        )
        machine = TsoMachine(p1, seed=11)
        machine.run()
        reset_exec = machine.reset(wide, seed=9).run()
        assert reset_exec.dump() == TsoMachine(wide, seed=9).run().dump()

    def test_chained_resets_stay_identical(self):
        """Many resets in a row (the batch shape) never drift."""
        machine = None
        for seed in range(30, 36):
            program = generate_program(GEN, seed=seed)
            fault = [CPU_CONFIGS[0].bugs[0].instantiate()]
            if machine is None:
                machine = TsoMachine(program, seed=seed, faults=fault)
            else:
                machine.reset(program, seed=seed, faults=fault)
            reused = machine.run()
            fresh = TsoMachine(
                program, seed=seed,
                faults=[CPU_CONFIGS[0].bugs[0].instantiate()],
            ).run()
            assert reused.dump() == fresh.dump()


class TestResetTelemetry:
    def test_resets_counted(self):
        tel = telemetry.configure()
        try:
            p1, p2 = _programs()
            machine = TsoMachine(p1, seed=11)
            machine.run()
            machine.reset(p2, seed=22)
            machine.run()
            assert tel.snapshot()["counters"]["sim.machine_resets"] == 1
        finally:
            telemetry.reset()

    def test_config_survives_reset(self):
        config = MachineConfig()
        p1, p2 = _programs()
        machine = TsoMachine(p1, seed=11, config=config)
        machine.reset(p2, seed=22)
        assert machine.config is config
