"""Tests for the machine's relaxation modes and perturbation features:
PSO drain mode, inter-processor interrupts, and the hardware prefetcher."""

import pytest

from repro.core.api import check
from repro.core.policy import PSO, SC, TSO
from repro.generator.config import GeneratorConfig, InstructionMix
from repro.generator.generator import generate_program
from repro.model.ops import IInterrupt, ILoad, IMembar, IStore
from repro.model.program import Program, Thread
from repro.sim.machine import MachineConfig, TsoMachine
from tests.util import PLAIN_MIX

PSO_CONFIG = MachineConfig(pso_mode=True, drain_bias=0.2)


class TestPsoMode:
    def test_sc_and_pso_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            MachineConfig(sc_mode=True, pso_mode=True)

    @pytest.mark.parametrize("seed", range(6))
    def test_pso_runs_pass_pso_check(self, seed):
        config = GeneratorConfig(
            nprocs=4, ops_per_proc=60, shared_words=6, mix=PLAIN_MIX
        )
        program = generate_program(config, seed=seed)
        execution = TsoMachine(program, seed=seed, config=PSO_CONFIG).run()
        result = check(program, execution, model=PSO)
        assert result.ok, result.explain()

    def test_pso_machine_can_violate_tso(self):
        # Message passing: data then flag.  A PSO machine may commit the
        # flag first, so some run must show flag-without-data — a TSO
        # violation but PSO-legal.
        program = Program(
            threads=[
                Thread([IStore(addr=0), IStore(addr=4)]),
                Thread([ILoad(addr=4), ILoad(addr=0)] * 3),
            ]
        )
        tso_failures = 0
        for seed in range(60):
            execution = TsoMachine(program, seed=seed, config=PSO_CONFIG).run()
            assert check(program, execution, model=PSO).ok
            if not check(program, execution, model=TSO).ok:
                tso_failures += 1
        assert tso_failures > 0, "PSO machine never exhibited MP reordering"

    def test_pso_preserves_same_address_order(self):
        # Two stores to one address must still commit in order: no run
        # may show a CoRR violation even under PSO draining.
        program = Program(
            threads=[
                Thread([IStore(addr=0), IStore(addr=0), IStore(addr=0)]),
                Thread([ILoad(addr=0), ILoad(addr=0), ILoad(addr=0)]),
            ]
        )
        for seed in range(40):
            execution = TsoMachine(program, seed=seed, config=PSO_CONFIG).run()
            result = check(program, execution, model=PSO)
            assert result.ok, f"seed {seed}: {result.explain()}"

    def test_membar_restores_order_under_pso(self):
        # MP with a fenced writer can never show flag-without-data.
        program = Program(
            threads=[
                Thread([IStore(addr=0), IMembar(), IStore(addr=4)]),
                Thread([ILoad(addr=4), ILoad(addr=0)]),
            ]
        )
        for seed in range(40):
            execution = TsoMachine(program, seed=seed, config=PSO_CONFIG).run()
            flag, data = execution.records[1]
            if flag.loaded != (0,):
                assert data.loaded != (0,), f"seed {seed}: fence ignored"


class TestInterrupts:
    def test_ipi_serializes_target_buffer(self):
        # P0 stores (possibly buffered) then P1 IPIs P0: after P0 takes
        # the interrupt its buffer must be empty.  Verified statistically
        # through the final memory state being reached before the end in
        # a directed scenario: the IPI forces the drain even with
        # drain_bias 0.
        program = Program(
            threads=[
                Thread([IStore(addr=0)] + [ILoad(addr=4)] * 10),
                Thread([IInterrupt(target=0)] + [ILoad(addr=4)] * 10),
            ]
        )
        machine = TsoMachine(
            program, seed=3, config=MachineConfig(drain_bias=0.0)
        )
        machine.run()
        stored = machine.cpus[0].records[0].stored[0]
        assert machine.memory.read(0) == stored

    def test_self_interrupt_is_harmless(self):
        program = Program(threads=[Thread([IInterrupt(target=0), ILoad(addr=0)])])
        execution = TsoMachine(program, seed=0).run()
        assert len(execution.records[0]) == 2

    def test_interrupts_keep_runs_tso_clean(self):
        mix = InstructionMix(load=20, store=20, membar=2, interrupt=10)
        config = GeneratorConfig(nprocs=4, ops_per_proc=60, shared_words=6, mix=mix)
        for seed in range(6):
            program = generate_program(config, seed=seed)
            execution = TsoMachine(program, seed=seed).run()
            assert check(program, execution).ok

    def test_generator_never_targets_self(self):
        mix = InstructionMix(load=1, interrupt=30)
        config = GeneratorConfig(nprocs=3, ops_per_proc=60, mix=mix)
        program = generate_program(config, seed=4)
        found = 0
        for pid, thread in enumerate(program.threads):
            for instr in thread:
                if isinstance(instr, IInterrupt):
                    found += 1
                    assert instr.target != pid
                    assert 0 <= instr.target < config.nprocs
        assert found > 0

    def test_single_proc_generator_emits_no_interrupts(self):
        mix = InstructionMix(load=1, interrupt=30)
        config = GeneratorConfig(nprocs=1, ops_per_proc=40, mix=mix)
        program = generate_program(config, seed=5)
        assert not any(
            isinstance(i, IInterrupt) for i in program.threads[0]
        )


class TestHardwarePrefetch:
    def test_sequential_loads_install_next_line(self):
        # Words at 0, 64, 128 are on consecutive lines; loading the first
        # two should prefetch the third.
        program = Program(
            threads=[Thread([ILoad(addr=0), ILoad(addr=64)])],
            initial={0: 0, 64: 0, 128: 0},
        )
        machine = TsoMachine(
            program, seed=0, config=MachineConfig(hw_prefetch=True)
        )
        machine.run()
        assert machine.caches[0].lookup(128) is not None

    def test_non_sequential_loads_do_not_prefetch(self):
        program = Program(
            threads=[Thread([ILoad(addr=0), ILoad(addr=128)])],
            initial={0: 0, 128: 0, 192: 0},
        )
        machine = TsoMachine(
            program, seed=0, config=MachineConfig(hw_prefetch=True)
        )
        machine.run()
        assert machine.caches[0].lookup(192) is None

    @pytest.mark.parametrize("seed", range(5))
    def test_prefetcher_is_value_transparent(self, seed):
        config = GeneratorConfig(
            nprocs=4, ops_per_proc=60, shared_words=32, stride_words=8
        )
        program = generate_program(config, seed=seed)
        execution = TsoMachine(
            program, seed=seed, config=MachineConfig(hw_prefetch=True)
        ).run()
        assert check(program, execution).ok
