"""Unit tests for the machine's building blocks: memory, store buffer,
cache, interconnect."""

import pytest

from repro.sim.cache import LINE_SIZE, CpuCache, line_of
from repro.sim.interconnect import DELAY, DELIVER, DROP, Interconnect
from repro.sim.memory import Memory
from repro.sim.storebuffer import BufferedStore, StoreBuffer


class TestMemory:
    def test_unwritten_words_read_zero(self):
        assert Memory().read(4) == 0

    def test_write_then_read(self):
        mem = Memory()
        mem.write(8, 42)
        assert mem.read(8) == 42

    def test_initial_contents(self):
        mem = Memory(initial={0: 7})
        assert mem.read(0) == 7

    def test_unaligned_access_rejected(self):
        mem = Memory()
        with pytest.raises(ValueError):
            mem.read(2)
        with pytest.raises(ValueError):
            mem.write(6, 1)

    def test_previous_value_tracks_overwrites(self):
        mem = Memory(initial={0: 1})
        mem.write(0, 2)
        assert mem.previous_value(0) == 1
        mem.write(0, 3)
        assert mem.previous_value(0) == 2

    def test_previous_value_before_any_write(self):
        mem = Memory(initial={0: 9})
        assert mem.previous_value(0) == 9

    def test_page_validity(self):
        mem = Memory(initial={0: 0})
        assert mem.is_valid(0x10)        # same page as a known word
        assert not mem.is_valid(0x5000)  # untouched page
        mem.register_valid([0x5000])
        assert mem.is_valid(0x5FFC)

    def test_snapshot_is_a_copy(self):
        mem = Memory(initial={0: 1})
        snap = mem.snapshot()
        mem.write(0, 2)
        assert snap[0] == 1


class TestStoreBuffer:
    def _entry(self, addr, value, tag=""):
        return BufferedStore(words=((addr, value),), tag=tag)

    def test_fifo_order(self):
        buf = StoreBuffer(capacity=4)
        buf.push(self._entry(0, 1))
        buf.push(self._entry(4, 2))
        assert buf.pop().words[0] == (0, 1)
        assert buf.pop().words[0] == (4, 2)

    def test_capacity_enforced(self):
        buf = StoreBuffer(capacity=1)
        buf.push(self._entry(0, 1))
        assert buf.full
        with pytest.raises(OverflowError):
            buf.push(self._entry(4, 2))

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            StoreBuffer(capacity=0)

    def test_forward_returns_newest_match(self):
        buf = StoreBuffer()
        buf.push(self._entry(0, 1))
        buf.push(self._entry(0, 2))
        assert buf.forward(0) == 2

    def test_forward_oldest_first_mode(self):
        buf = StoreBuffer()
        buf.push(self._entry(0, 1))
        buf.push(self._entry(0, 2))
        assert buf.forward(0, newest_first=False) == 1

    def test_forward_miss(self):
        buf = StoreBuffer()
        buf.push(self._entry(0, 1))
        assert buf.forward(8) is None

    def test_forward_multiword_entry(self):
        buf = StoreBuffer()
        buf.push(BufferedStore(words=((0, 1), (4, 2))))
        assert buf.forward(4) == 2

    def test_out_of_order_pop(self):
        buf = StoreBuffer()
        buf.push(self._entry(0, 1))
        buf.push(self._entry(4, 2))
        assert buf.pop(1).words[0] == (4, 2)
        assert buf.pop().words[0] == (0, 1)

    def test_swap_entries(self):
        buf = StoreBuffer()
        buf.push(self._entry(0, 1))
        buf.push(self._entry(4, 2))
        buf.swap(-1, -2)
        assert buf.pop().words[0] == (4, 2)


class TestCache:
    def test_line_of(self):
        assert line_of(0) == 0
        assert line_of(63) == 0
        assert line_of(64) == 64
        assert line_of(130) == 128

    def test_install_and_lookup(self):
        cache = CpuCache()
        cache.install(4, 9)
        assert cache.lookup(4) == 9
        assert cache.lookup(8) is None  # same line, word not snapshotted

    def test_invalidate_drops_whole_line(self):
        cache = CpuCache()
        cache.install(0, 1)
        cache.install(60, 2)  # same 64-byte line
        assert cache.invalidate(32)
        assert cache.lookup(0) is None and cache.lookup(60) is None

    def test_invalidate_miss_returns_false(self):
        assert not CpuCache().invalidate(0)

    def test_update_if_resident(self):
        cache = CpuCache()
        cache.update_if_resident(0, 5)  # not resident: no-op
        assert cache.lookup(0) is None
        cache.install(0, 1)
        cache.update_if_resident(0, 5)
        assert cache.lookup(0) == 5

    def test_ttl_expiry_drops_line(self):
        cache = CpuCache()
        cache.install(0, 1)
        cache.line(0).ttl = 2
        assert cache.lookup(0) == 1
        assert cache.lookup(0) == 1
        assert cache.lookup(0) is None  # expired and dropped

    def test_clear(self):
        cache = CpuCache()
        cache.install(0, 1)
        cache.clear()
        assert cache.lookup(0) is None


class TestInterconnect:
    def test_immediate_delivery(self):
        ic = Interconnect(3)
        delivered = []
        ic.broadcast(
            src=0, addr=4, tick=0,
            deliver=lambda v, a: delivered.append((v, a)),
            verdict=lambda s, v, a: (DELIVER, 0),
        )
        assert delivered == [(1, 4), (2, 4)]

    def test_drop_skips_victim(self):
        ic = Interconnect(2)
        delivered = []
        ic.broadcast(
            src=0, addr=4, tick=0,
            deliver=lambda v, a: delivered.append(v),
            verdict=lambda s, v, a: (DROP, 0),
        )
        assert delivered == [] and ic.pending == []

    def test_delay_queues_until_due(self):
        ic = Interconnect(2)
        delivered = []
        ic.broadcast(
            src=0, addr=4, tick=10,
            deliver=lambda v, a: delivered.append(v),
            verdict=lambda s, v, a: (DELAY, 5),
        )
        assert delivered == []
        assert ic.deliver_due(14, lambda v, a: delivered.append(v)) == 0
        assert ic.deliver_due(15, lambda v, a: delivered.append(v)) == 1
        assert delivered == [1]

    def test_flush_delivers_everything(self):
        ic = Interconnect(2)
        delivered = []
        ic.broadcast(
            src=0, addr=4, tick=0,
            deliver=lambda v, a: delivered.append(v),
            verdict=lambda s, v, a: (DELAY, 100),
        )
        ic.flush(lambda v, a: delivered.append(v))
        assert delivered == [1] and ic.pending == []
