"""Fault mechanisms reproduce the paper's Sec. 5.1 bug signatures.

Fig. 6 (lost dirty bit) and Fig. 7 (atomicity hole) are silicon bugs the
paper shows as litmus outcomes; here the corresponding fault models are
driven on the simulator with directed programs until the checker's
violation matches the paper's signature.
"""

import pytest

from repro.core.api import check
from repro.model.ops import ICas, ILoad, IMembar, IStore, ISwap
from repro.model.program import Program, Thread
from repro.sim.faults import AtomicityHoleFault, DroppedInvalidateFault, LostDirtyBitFault
from repro.sim.machine import MachineConfig, TsoMachine


def _drive(program, fault, seeds=range(60), config=None):
    """Run until the fault produces a checker-visible violation."""
    for seed in seeds:
        fresh = fault()
        machine = TsoMachine(
            program, seed=seed, faults=[fresh], config=config or MachineConfig()
        )
        execution = machine.run()
        result = check(program, execution)
        if not result.ok and fresh.activations > 0:
            return seed, execution, result
    return None, None, None


class TestFig6Signature:
    def test_lost_swap_store_after_concurrent_store(self):
        # The Fig. 6 scenario: P0 stores to A while P1 swaps A and then
        # loads it back.  When the swap's store is lost (dirty bit), P1's
        # later loads re-read stale data — the paper's exact outcome.
        # The lost line serves its writer for ttl reads, so several
        # trailing loads are needed to step past the silent replacement;
        # the fault rate is below 1.0 so P0's store can still land.
        program = Program(
            threads=[
                Thread([IStore(addr=0), IMembar()]),
                Thread([ISwap(addr=0)] + [ILoad(addr=0)] * 6),
            ]
        )
        seed, execution, result = _drive(
            program, lambda: LostDirtyBitFault(rate=0.5, ttl=1)
        )
        assert seed is not None, "lost-dirty-bit never produced a violation"
        # Some load after the swap does not see the swap's own store.
        swap_rec = execution.records[1][0]
        trailing = [rec.loaded for rec in execution.records[1][1:]]
        assert any(loaded != swap_rec.stored for loaded in trailing)

    def test_own_processor_sees_value_then_loses_it(self):
        # The lost line serves the writer a few reads, then silently
        # reverts — "the data update being lost when the line was later
        # replaced".
        program = Program(
            threads=[Thread([IStore(addr=0)] + [ILoad(addr=0)] * 8)]
        )
        fault = LostDirtyBitFault(rate=1.0, ttl=2)
        machine = TsoMachine(
            program, seed=1, faults=[fault], config=MachineConfig(drain_bias=1.0)
        )
        execution = machine.run()
        loads = [rec.loaded[0] for rec in execution.records[0][1:]]
        stored = execution.records[0][0].stored[0]
        assert loads[0] == stored       # freshly written line still serves
        assert loads[-1] == 0           # ...but the update is eventually lost
        assert not check(program, execution).ok


class TestFig7Signature:
    def test_cross_cas_atomicity_violation(self):
        # Fig. 7: two CAS from the initial values on two locations plus
        # trailing loads; the atomicity window lets the other processor's
        # store sneak between read and write.
        def cas_thread(addr, other):
            return Thread(
                [
                    ILoad(addr=addr),
                    ICas(addr=addr, size=4, compare_from=0),
                    ILoad(addr=other),
                ]
            )

        program = Program(threads=[cas_thread(0, 4), cas_thread(4, 0)])
        seed, _execution, result = _drive(
            program, lambda: AtomicityHoleFault(rate=1.0)
        )
        assert seed is not None, "atomicity hole never produced a violation"

    def test_swap_mutual_exclusion_broken(self):
        # Two swaps on one location must never both see the initial
        # value; the hole makes exactly that happen.
        program = Program(
            threads=[Thread([ISwap(addr=0)]), Thread([ISwap(addr=0)])]
        )

        def both_read_init(execution):
            return (
                execution.records[0][0].loaded == (0,)
                and execution.records[1][0].loaded == (0,)
            )

        for seed in range(80):
            fault = AtomicityHoleFault(rate=1.0)
            machine = TsoMachine(program, seed=seed, faults=[fault])
            execution = machine.run()
            if both_read_init(execution):
                assert not check(program, execution).ok
                return
        pytest.fail("atomicity hole never let both swaps read the initial value")


class TestStaleDataSignature:
    def test_dropped_invalidate_serves_stale_line(self):
        # Sec. 5.1: "a prefetch cache dropped an invalidate request, and
        # later returned stale data to the pipeline."  Stale data alone is
        # legal (the load just orders early), so the message-passing shape
        # pins it down: the victim warms its A line, the writer publishes
        # A then the flag B, and the victim sees the flag but still the
        # stale A — the coherence violation the checker flags.
        program = Program(
            threads=[
                Thread([ILoad(addr=0), ILoad(addr=4), ILoad(addr=0)] * 3),
                Thread([IStore(addr=0), IMembar(), IStore(addr=4), IMembar()]),
            ]
        )
        seed, execution, result = _drive(
            program, lambda: DroppedInvalidateFault(rate=1.0)
        )
        assert seed is not None, "dropped invalidate never produced a violation"
