"""Tests for non-cacheable (ASI) accesses through the whole stack."""

import pytest

from repro.core.api import check
from repro.generator.config import GeneratorConfig, InstructionMix
from repro.generator.generator import generate_program
from repro.model.ops import ILoad, IMembar, IStore
from repro.model.program import Program, Thread
from repro.model.trace import Execution
from repro.sim.faults import WritebackReorderFault
from repro.sim.machine import MachineConfig, TsoMachine

NC = dict(cacheable=False)


def _run(threads, seed=0, config=None, initial=None, faults=()):
    program = Program(threads=[Thread(t) for t in threads], initial=initial or {})
    machine = TsoMachine(
        program, seed=seed, config=config or MachineConfig(), faults=list(faults)
    )
    return program, machine.run(), machine


class TestMachineSemantics:
    def test_nc_load_bypasses_cache(self):
        program, execution, machine = _run(
            [[ILoad(addr=0, **NC), ILoad(addr=0, **NC)]], initial={0: 5}
        )
        assert machine.caches[0].lookup(0) is None
        assert execution.records[0][0].loaded == (5,)
        assert machine.stats.cache_hits == 0
        assert machine.stats.memory_reads == 2

    def test_nc_store_skips_own_cache_install(self):
        program, execution, machine = _run(
            [[IStore(addr=0, **NC), IMembar()]]
        )
        assert machine.caches[0].lookup(0) is None
        assert machine.memory.read(0) == execution.records[0][0].stored[0]

    def test_nc_store_forwards_to_own_loads(self):
        program, execution, _machine = _run(
            [[IStore(addr=0, **NC), ILoad(addr=0, **NC)]],
            config=MachineConfig(drain_bias=0.0),
        )
        recs = execution.records[0]
        assert recs[1].loaded == recs[0].stored

    def test_nc_runs_are_tso_clean(self):
        mix = InstructionMix(load=15, store=15, nc_load=15, nc_store=15, membar=3)
        config = GeneratorConfig(
            nprocs=4, ops_per_proc=60, shared_words=6, nc_words=4, mix=mix
        )
        for seed in range(6):
            program = generate_program(config, seed=seed)
            execution = TsoMachine(program, seed=seed).run()
            assert check(program, execution).ok

    def test_trace_round_trips_nc_flag(self):
        program, execution, _machine = _run(
            [[IStore(addr=0, **NC), ILoad(addr=0, **NC), IStore(addr=4)]]
        )
        reloaded = Execution.load(execution.dump())
        assert reloaded.records == execution.records
        assert reloaded.records[0][0].instr.cacheable is False
        assert reloaded.records[0][2].instr.cacheable is True


class TestGeneratorLayout:
    def test_nc_region_disjoint_from_cacheable(self):
        config = GeneratorConfig(shared_words=16, nc_words=4)
        cacheable = set(config.word_addresses())
        nc = set(config.nc_addresses())
        assert not (cacheable & nc)
        assert len(nc) == 4

    def test_nc_accesses_target_nc_region_only(self):
        mix = InstructionMix(load=1, nc_load=20, nc_store=20)
        config = GeneratorConfig(
            nprocs=2, ops_per_proc=80, shared_words=4, nc_words=3, mix=mix
        )
        program = generate_program(config, seed=2)
        nc_region = set(config.nc_addresses())
        found = 0
        for thread in program.threads:
            for instr in thread:
                if getattr(instr, "cacheable", True) is False:
                    found += 1
                    assert instr.addr in nc_region
        assert found > 0

    def test_zero_nc_words_suppresses_nc_accesses(self):
        mix = InstructionMix(load=1, nc_load=20, nc_store=20)
        config = GeneratorConfig(
            nprocs=2, ops_per_proc=40, shared_words=4, nc_words=0, mix=mix
        )
        program = generate_program(config, seed=3)
        assert all(
            getattr(i, "cacheable", True) for t in program.threads for i in t
        )


class TestWriteQueueRace:
    def test_fault_races_mixed_cacheability_entries(self):
        # P0 writes cacheable data then a non-cacheable flag; the fault
        # drains the NC queue first, so an observer can see the flag
        # before the data — the Sec. 5.1 ordering violation.
        data, flag = 0, 64
        p0 = [IStore(addr=data), IStore(addr=flag, **NC), IMembar()]
        p1 = [ILoad(addr=flag, **NC), ILoad(addr=data)] * 3
        for seed in range(80):
            program, execution, machine = _run(
                [p0, p1], seed=seed,
                faults=[WritebackReorderFault(rate=1.0)],
                config=MachineConfig(drain_bias=0.15),
            )
            result = check(program, execution)
            if not result.ok:
                return
        pytest.fail("write-queue race never produced a violation")

    def test_fault_inactive_on_homogeneous_singleton_buffer(self):
        fault = WritebackReorderFault(rate=1.0)
        program, execution, machine = _run(
            [[IStore(addr=0), IMembar()]], faults=[fault]
        )
        assert check(program, execution).ok
