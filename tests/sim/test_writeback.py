"""Tests for the write-back cache mode.

Historical note worth keeping: while this mode was being built, the
TSOtool checker itself caught two genuine coherence bugs in the cache
implementation — a dirty-line write-back that resurrected stale clean
snapshot words, and prefetch fills that bypassed the dirty-line snoop.
Both are pinned as regression tests here; EXPERIMENTS.md tells the story.
"""

import pytest

from repro.core.api import check
from repro.generator.config import GeneratorConfig, InstructionMix
from repro.generator.generator import generate_program
from repro.model.ops import IFlushCache, ILoad, IMembar, IPrefetch, IStore
from repro.model.program import Program, Thread
from repro.sim.cache import CpuCache
from repro.sim.machine import MachineConfig, TsoMachine

WB = MachineConfig(writeback=True)
WB_TINY = MachineConfig(writeback=True, cache_lines=1)


def _run(threads, seed=0, config=WB, initial=None):
    program = Program(threads=[Thread(t) for t in threads], initial=initial or {})
    machine = TsoMachine(program, seed=seed, config=config)
    return program, machine.run(), machine


class TestCacheDirtyTracking:
    def test_per_word_dirty(self):
        cache = CpuCache()
        cache.install(0, 5, dirty=True)
        cache.install(4, 9)  # clean snapshot in the same line
        line = cache.line(0)
        assert line.dirty
        assert line.dirty_words == {0}
        assert line.dirty_items() == [(0, 5)]
        assert cache.dirty_value(0) == 5
        assert cache.dirty_value(4) is None

    def test_eviction_returns_victim(self):
        cache = CpuCache(capacity=1)
        cache.install(0, 1, dirty=True)
        cache.install(64, 2)
        assert cache.needs_eviction()
        addr, line = cache.evict_victim()
        assert addr == 0 and line.dirty
        assert not cache.needs_eviction()


class TestWritebackSemantics:
    def test_commit_dirties_cache_not_memory(self):
        program, execution, machine = _run(
            [[IStore(addr=0), IMembar(), ILoad(addr=4)] + [ILoad(addr=4)] * 20]
        )
        stored = execution.records[0][0].stored[0]
        assert machine.caches[0].dirty_value(0) == stored
        assert machine.memory.read(0) != stored  # memory lags the dirty line

    def test_other_cpu_snoops_dirty_data(self):
        # P0 commits (dirty); P1 must still read the new value.
        program, execution, machine = _run(
            [
                [IStore(addr=0), IMembar()] + [ILoad(addr=4)] * 10,
                [ILoad(addr=0)] * 10,
            ],
            seed=3,
        )
        stored = execution.records[0][0].stored[0]
        assert execution.records[1][-1].loaded == (stored,)
        assert machine.stats.snoop_hits > 0

    def test_eviction_writes_back(self):
        # Capacity 1: a second line evicts the first, flushing its data.
        program, execution, machine = _run(
            [[IStore(addr=0), IMembar(), IStore(addr=64), IMembar()]],
            config=MachineConfig(writeback=True, cache_lines=1),
        )
        first = execution.records[0][0].stored[0]
        assert machine.memory.read(0) == first
        assert machine.stats.writebacks >= 1

    def test_flush_writes_back_dirty_line(self):
        program, execution, machine = _run(
            [[IStore(addr=0), IMembar(), IFlushCache(addr=0)]]
        )
        stored = execution.records[0][0].stored[0]
        assert machine.memory.read(0) == stored
        assert machine.caches[0].line(0) is None

    def test_ownership_transfer_preserves_other_words(self):
        # P0 dirties word 0; P1 then commits to word 4 of the same line:
        # P0's data must survive via write-back, and a third CPU must see
        # both final values.
        program, execution, machine = _run(
            [
                [IStore(addr=0), IMembar()],
                [IStore(addr=4), IMembar()],
                [IMembar()] * 6 + [ILoad(addr=0), ILoad(addr=4)],
            ],
            seed=9,
        )
        v0 = execution.records[0][0].stored[0]
        v4 = execution.records[1][0].stored[0]
        got0 = execution.records[2][-2].loaded[0]
        got4 = execution.records[2][-1].loaded[0]
        assert got0 in (0, v0) and got4 in (0, v4)
        result = check(program, execution)
        assert result.ok, result.explain()


class TestRegressions:
    """The two coherence bugs the checker itself caught during bring-up."""

    def test_stale_clean_words_never_written_back(self):
        # A dirty line carrying a clean snapshot word must not write that
        # word back (it may be older than memory).  Reproduced by: P0
        # reads word 4 (clean snapshot) into the line it dirties at word
        # 0; P1 meanwhile advances word 4; P0's eviction must not undo it.
        program, execution, machine = _run(
            [
                [IStore(addr=0), IMembar(), ILoad(addr=4),
                 IStore(addr=64), IMembar(), IStore(addr=128), IMembar()],
                [IStore(addr=4), IMembar()] + [ILoad(addr=4)] * 4,
            ],
            config=MachineConfig(writeback=True, cache_lines=1),
            seed=5,
        )
        assert check(program, execution).ok
        # P1's store must survive in memory or P1's dirty line.
        v4 = execution.records[1][0].stored[0]
        assert (
            machine.memory.read(4) == v4
            or machine.caches[1].dirty_value(4) == v4
        )

    def test_prefetch_fills_snoop_dirty_owners(self):
        # A prefetch while another CPU holds the word dirty must install
        # the dirty data, not stale memory.
        program, execution, machine = _run(
            [
                [IStore(addr=0), IMembar()] + [ILoad(addr=64)] * 6,
                [IPrefetch(addr=0)] * 6 + [ILoad(addr=0)] * 2,
            ],
            seed=2,
        )
        assert check(program, execution).ok
        stored = execution.records[0][0].stored[0]
        final = execution.records[1][-1].loaded[0]
        assert final in (0, stored)
        if machine.caches[1].lookup(0) is not None:
            assert machine.caches[1].lookup(0) in (0, stored)

    @pytest.mark.parametrize("seed", [15, 25])
    def test_original_failing_seeds_now_pass(self, seed):
        # The exact configurations that exposed both bugs.
        cfg_a = GeneratorConfig(nprocs=4, ops_per_proc=60, shared_words=16,
                                stride_words=16)
        program = generate_program(cfg_a, seed=seed)
        machine = TsoMachine(
            program, seed=seed,
            config=MachineConfig(writeback=True, cache_lines=2),
        )
        assert check(program, machine.run()).ok
        cfg_b = GeneratorConfig(nprocs=4, ops_per_proc=60, shared_words=8)
        program = generate_program(cfg_b, seed=seed)
        machine = TsoMachine(
            program, seed=seed,
            config=MachineConfig(writeback=True, cache_lines=1,
                                 hw_prefetch=True),
        )
        assert check(program, machine.run()).ok


class TestGoldenSoundness:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_writeback_runs_pass(self, seed):
        config = GeneratorConfig(nprocs=4, ops_per_proc=60, shared_words=8)
        program = generate_program(config, seed=seed)
        machine = TsoMachine(
            program, seed=seed,
            config=MachineConfig(writeback=True, cache_lines=2,
                                 hw_prefetch=True, enable_monitor=True),
        )
        execution = machine.run()
        assert check(program, execution).ok
        assert machine.monitor_alarms == []

    def test_cache_faults_still_detectable_in_writeback_mode(self):
        from repro.sim.faults import DroppedInvalidateFault

        config = GeneratorConfig(nprocs=4, ops_per_proc=80, shared_words=6)
        for seed in range(15):
            program = generate_program(config, seed=seed)
            machine = TsoMachine(
                program, seed=seed, config=WB,
                faults=[DroppedInvalidateFault(rate=0.7)],
            )
            if not check(program, machine.run()).ok:
                return
        pytest.fail("dropped invalidate undetectable in write-back mode")
