"""Fault-injection tests: every bug mechanism is detectable end to end.

For each fault class the test runs generated racy tests on a machine
with exactly that fault active, until the TSOtool analysis (or the
class-appropriate triage) flags it — the Sec. 5 story in miniature.
"""

import pytest

from repro.core.api import check
from repro.generator.config import GeneratorConfig, InstructionMix
from repro.generator.generator import generate_program
from repro.sim.faults import (
    AtomicityHoleFault,
    BugClass,
    DroppedInvalidateFault,
    DroppedSpeculativeLoadFault,
    Fault,
    FuncUnit,
    InterconnectDelayFault,
    LostDirtyBitFault,
    MembarSkipFault,
    MonitorFalseAlarmFault,
    StaleForwardFault,
    StoreBufferReorderFault,
    TlbAliasFault,
    TraceCorruptionFault,
    WritebackReorderFault,
)
from repro.sim.machine import MachineConfig, TsoMachine

RACY = GeneratorConfig(
    nprocs=4,
    ops_per_proc=80,
    shared_words=6,
    mix=InstructionMix(
        load=30.0, store=30.0, swap=6.0, cas=6.0, membar=8.0,
        block_load=1.0, block_store=1.0, nonfaulting_load=1.0,
        prefetch=1.0, flush=1.0, branch=1.0,
    ),
)

MAX_TESTS = 15


def _hunt(fault_factory, predicate, config=RACY):
    """Run tests until the predicate triages a detection; return info."""
    for seed in range(MAX_TESTS):
        program = generate_program(config, seed=seed)
        fault = fault_factory()
        machine = TsoMachine(program, seed=seed, faults=[fault])
        observed = machine.run()
        if predicate(program, machine, observed, fault):
            return seed, fault
    return None, None


def _tso_fails(program, machine, observed, fault):
    return fault.activations > 0 and not check(program, observed).ok


DETECTABLE_FAULTS = [
    StoreBufferReorderFault,
    StaleForwardFault,
    AtomicityHoleFault,
    MembarSkipFault,
    LostDirtyBitFault,
    DroppedInvalidateFault,
    InterconnectDelayFault,
    WritebackReorderFault,
    DroppedSpeculativeLoadFault,
    TlbAliasFault,
]


@pytest.mark.parametrize("mechanism", DETECTABLE_FAULTS, ids=lambda f: f.__name__)
def test_hardware_fault_detected_by_tso_analysis(mechanism):
    from repro.sim.cpus import _RATES

    seed, fault = _hunt(
        lambda: mechanism(rate=_RATES[mechanism]), _tso_fails
    )
    assert seed is not None, f"{mechanism.__name__} never caught in {MAX_TESTS} tests"


class TestGoldenBaseline:
    def test_zero_rate_faults_change_nothing(self):
        program = generate_program(RACY, seed=3)
        golden = TsoMachine(program, seed=3).run()
        nulled = TsoMachine(
            program, seed=3,
            faults=[StoreBufferReorderFault(rate=0.0), TlbAliasFault(rate=0.0)],
        ).run()
        assert golden.records == nulled.records

    def test_fault_rate_validation(self):
        with pytest.raises(ValueError):
            Fault(rate=1.5)

    def test_report_carries_identity(self):
        fault = LostDirtyBitFault(
            rate=0.1, unit=FuncUnit.CACHES, bug_class=BugClass.ARCHITECTURE,
            name="bug-x",
        )
        report = fault.report()
        assert report.name == "bug-x"
        assert report.unit == FuncUnit.CACHES
        assert report.bug_class == BugClass.ARCHITECTURE
        assert report.activations == 0

    def test_attach_resets_activations(self):
        fault = MembarSkipFault(rate=1.0)
        fault.activations = 7
        program = generate_program(RACY, seed=0)
        TsoMachine(program, seed=0, faults=[fault])
        assert fault.activations == 0


class TestMonitorBug:
    def test_spurious_alarm_on_clean_run(self):
        def triage(program, machine, observed, fault):
            return bool(machine.monitor_alarms) and check(program, observed).ok

        seed, fault = _hunt(lambda: MonitorFalseAlarmFault(rate=0.05), triage)
        assert seed is not None

    def test_alarm_fires_at_most_once_per_run(self):
        program = generate_program(RACY, seed=1)
        fault = MonitorFalseAlarmFault(rate=1.0)
        machine = TsoMachine(program, seed=1, faults=[fault])
        machine.run()
        assert len(machine.monitor_alarms) == 1


class TestEnvironmentBug:
    def test_observed_fails_but_true_trace_passes(self):
        def triage(program, machine, observed, fault):
            if fault.activations == 0:
                return False
            if check(program, observed).ok:
                return False
            return check(program, machine.true_execution).ok

        seed, fault = _hunt(lambda: TraceCorruptionFault(rate=0.05), triage)
        assert seed is not None

    def test_corruption_leaves_machine_state_alone(self):
        program = generate_program(RACY, seed=2)
        fault = TraceCorruptionFault(rate=0.5)
        machine = TsoMachine(program, seed=2, faults=[fault])
        observed = machine.run()
        # The true trace is the machine's honest record.
        assert check(program, machine.true_execution).ok
        assert fault.activations > 0
        assert observed.records != machine.true_execution.records


class TestMechanismSpecifics:
    def test_stale_forward_makes_load_miss_own_store(self):
        # Single CPU, no drains: the load must see the buffered store —
        # unless the fault makes it read memory.
        from repro.model.ops import ILoad, IStore
        from repro.model.program import Program, Thread

        program = Program(
            threads=[Thread([IStore(addr=0), ILoad(addr=0)])]
        )
        fault = StaleForwardFault(rate=1.0)
        machine = TsoMachine(
            program, seed=0, config=MachineConfig(drain_bias=0.0), faults=[fault]
        )
        execution = machine.run()
        assert execution.records[0][1].loaded == (0,)  # initial value
        assert not check(program, execution).ok

    def test_lost_dirty_bit_never_reaches_memory(self):
        from repro.model.ops import IMembar, IStore
        from repro.model.program import Program, Thread

        program = Program(threads=[Thread([IStore(addr=0), IMembar()])])
        fault = LostDirtyBitFault(rate=1.0)
        machine = TsoMachine(program, seed=0, faults=[fault])
        machine.run()
        assert machine.memory.read(0) == 0  # the store vanished

    def test_tlb_alias_returns_other_words_value(self):
        def triage(program, machine, observed, fault):
            result = check(program, observed)
            return fault.activations > 0 and not result.ok

        seed, _fault = _hunt(lambda: TlbAliasFault(rate=0.3), triage)
        assert seed is not None

    def test_atomicity_hole_opens_write_window(self):
        from repro.model.ops import ISwap
        from repro.model.program import Program, Thread

        program = Program(threads=[Thread([ISwap(addr=0)])])
        fault = AtomicityHoleFault(rate=1.0)
        machine = TsoMachine(program, seed=0, faults=[fault])
        machine.run()
        # Even split across ticks, the lone swap still completes.
        assert machine.memory.read(0) != 0


class TestDrainIndexZeroRegression:
    """``Fault.pick_drain_index`` returning 0 means "force the FIFO head",
    which is distinct from ``None`` ("no opinion").  A truthiness check in
    ``TsoMachine._drain_one`` used to conflate the two and hand index 0
    over to the scheduling policy instead."""

    class _HeadPinningFault(Fault):
        """Always forces the FIFO head to drain."""

        def pick_drain_index(self, pid, buffer):
            self.activations += 1
            return 0

    class _TailPickingPolicy:
        """Policy that always drains the *last* eligible entry — the
        opposite of what a head-pinning fault demands, so any fall-through
        from the fault to the policy is visible."""

        name = "tail"
        drain_bias = 1.0

        def bind(self, machine):
            pass

        def pick_cpu(self, runnable):
            return runnable[0]

        def should_drain(self, pid, buffer):
            return True

        def pick_drain_index(self, eligible):
            return eligible[-1]

        def pick_delay(self, lo, hi):
            return lo

    def _machine(self, faults):
        from repro.model.ops import IStore
        from repro.model.program import Program, Thread

        program = Program(threads=[Thread([IStore(addr=0)])])
        return TsoMachine(
            program,
            seed=0,
            config=MachineConfig(pso_mode=True),
            faults=faults,
            policy=self._TailPickingPolicy(),
        )

    def _load_buffer(self, machine):
        from repro.sim.storebuffer import BufferedStore

        buffer = machine.buffers[0]
        buffer.push(BufferedStore(words=((0, 11),), tag="head"))
        buffer.push(BufferedStore(words=((8, 22),), tag="tail"))
        return buffer

    def test_fault_index_zero_forces_fifo_head(self):
        fault = self._HeadPinningFault(rate=1.0)
        machine = self._machine([fault])
        buffer = self._load_buffer(machine)
        machine._drain_one(machine.cpus[0])
        # The head entry (addr 0) must be gone; the tail must remain.
        assert fault.activations == 1
        assert len(buffer) == 1
        assert buffer.peek(0).tag == "tail"
        assert machine.commit_order[-1] == (0, 11)

    def test_no_fault_defers_to_policy(self):
        """Sanity for the same setup: with no fault opinion, the PSO
        policy's pick (the tail) wins — proving the previous test really
        exercises the fault override and not a policy coincidence."""
        machine = self._machine([])
        buffer = self._load_buffer(machine)
        machine._drain_one(machine.cpus[0])
        assert buffer.peek(0).tag == "head"
        assert machine.commit_order[-1] == (8, 22)
