"""Tests for the silicon bring-up harness."""

import pytest

from repro.analysis.bringup import BringupEvent, BringupLog, bringup
from repro.sim.cpus import cpu_by_name
from repro.sim.faults import BugClass


class TestBringup:
    @pytest.fixture(scope="class")
    def cpu1_log(self):
        return bringup(cpu_by_name("CPU1"))

    def test_all_hardware_bugs_fixed(self, cpu1_log):
        assert cpu1_log.fixed == 3
        assert cpu1_log.remaining == []

    def test_events_name_roster_bugs(self, cpu1_log):
        roster = {spec.name for spec in cpu_by_name("CPU1").bugs}
        for event in cpu1_log.events:
            assert event.bug in roster

    def test_no_bug_fixed_twice(self, cpu1_log):
        names = [event.bug for event in cpu1_log.events]
        assert len(names) == len(set(names))

    def test_deterministic(self):
        a = bringup(cpu_by_name("CPU1"))
        b = bringup(cpu_by_name("CPU1"))
        assert [e.bug for e in a.events] == [e.bug for e in b.events]
        assert a.total_tests == b.total_tests

    def test_diary_renders(self, cpu1_log):
        text = cpu1_log.render()
        assert "bring-up of CPU1" in text
        assert "root-caused" in text

    def test_monitor_and_environment_bugs_excluded(self):
        log = bringup(cpu_by_name("CPU3"), max_tests=250)
        hardware = [
            spec.name for spec in cpu_by_name("CPU3").bugs
            if spec.bug_class in (BugClass.ARCHITECTURE, BugClass.DESIGN)
        ]
        fixed_or_latent = {e.bug for e in log.events} | set(log.remaining)
        assert fixed_or_latent <= set(hardware)

    def test_budget_respected(self):
        log = bringup(cpu_by_name("CPU5"), max_tests=3)
        assert log.total_tests <= 3
        assert log.remaining  # cannot fix 22 bugs in 3 tests

    def test_new_design_bringup_fixes_most_of_the_roster(self):
        # CPU5 is a "completely new design" with 22 hardware bugs; early
        # silicon fails virtually every test, so bring-up converges fast.
        log = bringup(cpu_by_name("CPU5"), max_tests=600)
        assert log.fixed >= 20
        assert log.total_tests < 200

    def test_attribution_mostly_single_fault(self):
        log = bringup(cpu_by_name("CPU5"), max_tests=600)
        attributed = sum(1 for e in log.events if e.attributed)
        assert attributed >= log.fixed * 3 // 4
