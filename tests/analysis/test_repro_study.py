"""Unit tests for the Sec. 5.2 reproduction study harness."""

import pytest

from repro.analysis.repro_study import (
    ReproductionPoint,
    reproduction_study,
    sweep_reproduction,
)
from repro.sim.faults import StaleForwardFault, StoreBufferReorderFault


class TestReproductionStudy:
    def test_finds_failures_and_reports_rate(self):
        point = reproduction_study(
            StoreBufferReorderFault, rate=0.5, ops_per_proc=60,
            failures=3, reruns=5,
        )
        assert point is not None
        assert point.failures_found == 3
        assert 0.0 <= point.reproduction_rate <= 1.0
        assert point.mechanism == "StoreBufferReorderFault"

    def test_zero_rate_fault_finds_nothing(self):
        point = reproduction_study(
            StoreBufferReorderFault, rate=0.0, ops_per_proc=40,
            failures=2, reruns=3, search_budget=10,
        )
        assert point is None

    def test_deterministic(self):
        kwargs = dict(rate=0.5, ops_per_proc=50, failures=2, reruns=4)
        a = reproduction_study(StaleForwardFault, **kwargs)
        b = reproduction_study(StaleForwardFault, **kwargs)
        assert a.reproduction_rate == b.reproduction_rate
        assert a.search_tests == b.search_tests

    def test_highly_deterministic_bug_reproduces_reliably(self):
        # A stale-forward bug at rate 1.0 fires on the first forwarding
        # opportunity of any run: reproduction should be near-certain.
        point = reproduction_study(
            StaleForwardFault, rate=1.0, ops_per_proc=60,
            failures=3, reruns=6,
        )
        assert point.reproduction_rate >= 0.9

    def test_sweep_collects_all_cells(self):
        points = sweep_reproduction(
            [(StoreBufferReorderFault, 0.5)], ops_points=(40, 80),
            failures=2, reruns=3,
        )
        assert [p.ops_per_proc for p in points] == [40, 80]

    def test_row_rendering(self):
        point = ReproductionPoint(
            mechanism="X", ops_per_proc=50, failures_found=3,
            reruns_per_failure=10, reproduction_rate=0.5, search_tests=20,
        )
        row = point.row()
        assert "ops=50" in row and "50.0%" in row
