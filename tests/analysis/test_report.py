"""Tests for the one-command reproduction report."""

import pytest

from repro.analysis.report import ReportConfig, build_report
from repro.sim import cpus


@pytest.fixture(scope="module")
def report(monkeypatch_module=None):
    # A down-scaled report: one CPU's roster and tiny sweeps keep this
    # test in seconds while exercising every section builder.
    config = ReportConfig(
        tests_per_bug=10,
        fig8_procs=(2, 4),
        fig9_words=(4, 16),
        ops_points=(100, 200),
        ablation_ops=200,
    )
    return build_report(config)


class TestReport:
    def test_all_sections_present(self, report):
        for heading in (
            "# TSOtool reproduction report",
            "## Litmus conformance",
            "## Tables 1 and 2",
            "## Figures 8 and 9",
            "## Engine ablation",
        ):
            assert heading in report

    def test_litmus_table_has_no_mismatches(self, report):
        assert "0 mismatches" in report
        assert "(!)" not in report

    def test_campaign_totals_reported(self, report):
        assert "106/106 seeded bugs" in report
        assert "missed:" not in report

    def test_tables_render_paper_shape(self, report):
        assert "Architecture" in report and "Interconnect" in report
        assert "Total  7             69      25       5" in report

    def test_runtime_series_rows(self, report):
        assert "procs=2" in report and "procs=4" in report
        assert "words=4" in report and "words=16" in report

    def test_speedup_reported(self, report):
        assert "speedup:" in report
        assert "identical verdicts" in report

    def test_is_valid_markdown_table_header(self, report):
        line = next(l for l in report.splitlines() if l.startswith("| case |"))
        assert line.count("|") >= 5
