"""Batched dispatch and pipelined campaigns: determinism regressions.

The contract under test is the tentpole invariant of the batching work:
``batch``, ``workers`` and ``pipeline`` change *how* a campaign's hunts
execute — task granularity, process fan-out, check/simulate overlap —
never *which* hunts run or what they record.  Hunt-digest-set equality
(the store's resume witness, schedule and ops excluded) is the
observable.
"""

import dataclasses

import pytest

from repro import telemetry
from repro.analysis.campaign import (
    BugHunt,
    CampaignConfig,
    HuntScratch,
    hunt_batch,
    hunt_bug,
    run_campaign,
)
from repro.generator.config import GeneratorConfig
from repro.service.store import hunt_digest
from repro.sim.cpus import CPU_CONFIGS
from repro.telemetry import MemorySink

#: Small but non-trivial: one CPU roster (three seeded bugs), two
#: attempts each, short racy programs — every (batch, workers) cell
#: below re-runs the identical hunts.
SMALL = CampaignConfig(
    tests_per_bug=2,
    generator=GeneratorConfig(nprocs=2, ops_per_proc=30, shared_words=4),
)
CPUS = CPU_CONFIGS[:1]


@pytest.fixture(autouse=True)
def _reset_global_telemetry():
    yield
    telemetry.reset()


def _digests(result):
    return sorted(hunt_digest(h) for h in result.hunts)


class TestBatchDeterminism:
    def test_digest_set_invariant_across_batch_and_workers(self):
        """The satellite regression: batch x workers never changes the
        hunt-digest set."""
        baseline = _digests(run_campaign(CPUS, SMALL, workers=1))
        assert baseline  # the campaign actually ran hunts
        for batch in (4, 16):
            for workers in (1, 4):
                config = dataclasses.replace(SMALL, batch=batch)
                result = run_campaign(CPUS, config, workers=workers)
                assert _digests(result) == baseline, (
                    f"batch={batch} workers={workers} changed the hunts"
                )

    def test_batch_one_with_workers_matches_sequential(self):
        baseline = _digests(run_campaign(CPUS, SMALL, workers=1))
        parallel = _digests(run_campaign(CPUS, SMALL, workers=4))
        assert parallel == baseline

    def test_hunt_batch_matches_individual_hunts(self):
        """One shared scratch across a batch reproduces solo hunts."""
        cpu = CPUS[0]
        work = [(spec, cpu.name, i) for i, spec in enumerate(cpu.bugs)]
        batched = hunt_batch(work, SMALL, scratch=HuntScratch())
        solo = [
            hunt_bug(spec, cpu.name, SMALL, bug_index=i)
            for spec, _, i in work
        ]
        assert [hunt_digest(h) for h in batched] == [
            hunt_digest(h) for h in solo
        ]

    def test_batch_validation(self):
        with pytest.raises(ValueError, match="batch"):
            CampaignConfig(batch=0)


class TestPipelineParity:
    def test_pipeline_digest_set_matches_conventional(self):
        """Stream-checked hunts reach the identical verdicts/digests."""
        baseline = _digests(run_campaign(CPUS, SMALL, workers=1))
        piped = dataclasses.replace(SMALL, pipeline=True)
        assert _digests(run_campaign(CPUS, piped, workers=1)) == baseline

    def test_pipeline_composes_with_batching(self):
        baseline = _digests(run_campaign(CPUS, SMALL, workers=1))
        both = dataclasses.replace(SMALL, batch=4, pipeline=True)
        assert _digests(run_campaign(CPUS, both, workers=1)) == baseline

    def test_pipeline_skipped_when_program_exceeds_window(self):
        """Programs too long for the streaming window fall back to the
        conventional path (still digest-identical by construction)."""
        big = dataclasses.replace(
            SMALL,
            generator=GeneratorConfig(
                nprocs=4, ops_per_proc=600, shared_words=4
            ),
            tests_per_bug=1,
            pipeline=True,
        )
        from repro.analysis.campaign import _pipeline_applies

        spec = CPUS[0].bugs[0]
        assert not _pipeline_applies(spec, big)
        assert _pipeline_applies(spec, dataclasses.replace(SMALL, pipeline=True))


class TestHungChunks:
    def test_hung_chunk_tombstones_every_member(self, monkeypatch):
        """A crashed/timed-out batch task yields one hung tombstone per
        member hunt — batching never silently drops work."""

        def fake_run_tasks(fn, tasks, **kwargs):
            from repro.core.result import PoolStats

            return [None for _ in tasks], PoolStats(tasks=len(tasks))

        import repro.analysis.campaign as campaign

        monkeypatch.setattr(campaign, "run_tasks", fake_run_tasks)
        config = dataclasses.replace(SMALL, batch=4)
        result = run_campaign(CPUS, config, workers=1)
        assert len(result.hunts) == len(CPUS[0].bugs)
        assert all(h.hung and not h.detected for h in result.hunts)
        assert result.exit_code() == 2


class TestBatchTelemetry:
    def test_batch_size_histogram_recorded(self):
        sink = MemorySink()
        tel = telemetry.configure(sinks=[sink])
        cpu = CPUS[0]
        work = [(spec, cpu.name, i) for i, spec in enumerate(cpu.bugs)]
        hunt_batch(work, SMALL)
        hist = tel.snapshot()["histograms"]["pool.batch_size"]
        assert hist["count"] == 1
        assert hist["max"] == len(work)

    def test_machine_resets_counted(self):
        tel = telemetry.configure()
        cpu = CPUS[0]
        work = [(spec, cpu.name, i) for i, spec in enumerate(cpu.bugs)]
        hunt_batch(work, SMALL, scratch=HuntScratch())
        counters = tel.snapshot()["counters"]
        # The first attempt builds the machine; every later attempt in
        # the batch reuses it via reset().
        assert counters["sim.machine_resets"] >= len(work) - 1


class TestOpsAccounting:
    def test_ops_counted_and_digest_excluded(self):
        hunt = hunt_bug(CPUS[0].bugs[0], CPUS[0].name, SMALL)
        assert hunt.ops > 0
        stripped = dataclasses.replace(hunt, ops=0)
        assert hunt_digest(hunt) == hunt_digest(stripped)

    def test_ops_round_trips(self):
        hunt = hunt_bug(CPUS[0].bugs[0], CPUS[0].name, SMALL)
        assert BugHunt.from_dict(hunt.to_dict()).ops == hunt.ops
