"""Tests for the Fig. 8/9 runtime-measurement harness."""

import pytest

from repro.analysis.runtime import (
    RuntimePoint,
    format_series,
    measure_runtime,
    sweep_runtime,
)


class TestMeasureRuntime:
    def test_point_fields(self):
        point = measure_runtime(nprocs=2, shared_words=8, total_ops=80, seed=1)
        assert point.nprocs == 2
        assert point.shared_words == 8
        assert point.total_ops == 80
        assert point.nodes > 80  # expansion splits multi-word ops, adds roots
        assert point.edges > 0
        assert point.iterations >= 1
        assert point.seconds > 0

    def test_ops_split_across_processors(self):
        point = measure_runtime(nprocs=4, shared_words=8, total_ops=100, seed=1)
        # 25 instructions per CPU, each at least one node.
        assert point.nodes >= 100

    def test_baseline_engine_supported(self):
        point = measure_runtime(
            nprocs=2, shared_words=4, total_ops=60, seed=2, engine="baseline"
        )
        assert point.seconds > 0

    def test_repeats_take_minimum(self):
        a = measure_runtime(nprocs=2, shared_words=4, total_ops=60, seed=3, repeats=3)
        assert a.seconds > 0

    def test_row_rendering(self):
        point = RuntimePoint(
            nprocs=4, shared_words=16, total_ops=1000, nodes=1200,
            edges=3000, iterations=3, seconds=0.5,
        )
        row = point.row()
        assert "procs=4" in row and "ops=1000" in row and "ms" in row


class TestSweep:
    def test_cartesian_sweep_shape(self):
        points = sweep_runtime(
            proc_counts=[2, 4], word_counts=[4], ops_points=[40, 80], seed=0
        )
        assert len(points) == 4
        assert {(p.nprocs, p.total_ops) for p in points} == {
            (2, 40), (2, 80), (4, 40), (4, 80),
        }

    def test_runtime_grows_with_ops(self):
        points = sweep_runtime(
            proc_counts=[4], word_counts=[8], ops_points=[100, 800], seed=1
        )
        assert points[1].seconds > points[0].seconds

    def test_format_series(self):
        points = sweep_runtime(
            proc_counts=[2], word_counts=[4], ops_points=[40], seed=0
        )
        text = format_series(points, "title")
        assert text.splitlines()[0] == "title"
        assert len(text.splitlines()) == 2
