"""Tests for the Fig. 8/9 runtime-measurement harness."""

import pytest

import repro.analysis.runtime as runtime_mod
from repro.analysis.runtime import (
    RuntimePoint,
    SweepResult,
    format_series,
    measure_runtime,
    sweep_runtime,
)


class TestMeasureRuntime:
    def test_point_fields(self):
        point = measure_runtime(nprocs=2, shared_words=8, total_ops=80, seed=1)
        assert point.nprocs == 2
        assert point.shared_words == 8
        assert point.total_ops == 80
        assert point.nodes > 80  # expansion splits multi-word ops, adds roots
        assert point.edges > 0
        assert point.iterations >= 1
        assert point.seconds > 0

    def test_ops_split_across_processors(self):
        point = measure_runtime(nprocs=4, shared_words=8, total_ops=100, seed=1)
        # 25 instructions per CPU, each at least one node.
        assert point.nodes >= 100

    def test_baseline_engine_supported(self):
        point = measure_runtime(
            nprocs=2, shared_words=4, total_ops=60, seed=2, engine="baseline"
        )
        assert point.seconds > 0

    def test_repeats_take_minimum(self):
        a = measure_runtime(nprocs=2, shared_words=4, total_ops=60, seed=3, repeats=3)
        assert a.seconds > 0

    def test_failing_runs_capped_not_unbounded(self, monkeypatch):
        # Force every analysis to fail: generation must be retried a
        # bounded number of times, then raise an error naming the
        # generator config — never loop forever.
        calls = []
        real = runtime_mod.make_checker

        class _AlwaysFail:
            def run(self, aprog):
                calls.append(1)
                result = real(runtime_mod.TSO, "closure").run(aprog)
                result.ok = False
                if result.violation is None:
                    from repro.core.result import Violation, ViolationKind

                    result.violation = Violation(
                        kind=ViolationKind.PRECHECK, message="injected failure"
                    )
                return result

        monkeypatch.setattr(
            runtime_mod, "make_checker", lambda model, engine: _AlwaysFail()
        )
        with pytest.raises(RuntimeError) as excinfo:
            measure_runtime(
                nprocs=2, shared_words=4, total_ops=40, seed=1, max_attempts=3
            )
        message = str(excinfo.value)
        assert "3 attempt(s)" in message
        assert "GeneratorConfig" in message  # names the offending config
        assert len(calls) == 3  # capped, one checker run per attempt

    def test_retry_uses_derived_seed_then_succeeds(self, monkeypatch):
        # First attempt "fails", second runs the real checker: the
        # measurement must come back from a retried, derived seed.
        real = runtime_mod.make_checker
        state = {"attempt": 0}

        class _FailOnce:
            def __init__(self, model, engine):
                self.inner = real(model, engine)

            def run(self, aprog):
                result = self.inner.run(aprog)
                state["attempt"] += 1
                if state["attempt"] == 1:
                    result.ok = False
                    from repro.core.result import Violation, ViolationKind

                    result.violation = Violation(
                        kind=ViolationKind.PRECHECK, message="injected failure"
                    )
                return result

        monkeypatch.setattr(runtime_mod, "make_checker", _FailOnce)
        point = measure_runtime(
            nprocs=2, shared_words=4, total_ops=40, seed=1, max_attempts=3
        )
        assert state["attempt"] == 2
        assert point.total_ops == 40

    def test_row_rendering(self):
        point = RuntimePoint(
            nprocs=4, shared_words=16, total_ops=1000, nodes=1200,
            edges=3000, iterations=3, seconds=0.5,
        )
        row = point.row()
        assert "procs=4" in row and "ops=1000" in row and "ms" in row


class TestSweep:
    def test_cartesian_sweep_shape(self):
        points = sweep_runtime(
            proc_counts=[2, 4], word_counts=[4], ops_points=[40, 80], seed=0
        )
        assert len(points) == 4
        assert {(p.nprocs, p.total_ops) for p in points} == {
            (2, 40), (2, 80), (4, 40), (4, 80),
        }

    def test_runtime_grows_with_ops(self):
        points = sweep_runtime(
            proc_counts=[4], word_counts=[8], ops_points=[100, 800], seed=1
        )
        assert points[1].seconds > points[0].seconds

    def test_format_series(self):
        points = sweep_runtime(
            proc_counts=[2], word_counts=[4], ops_points=[40], seed=0
        )
        text = format_series(points, "title")
        assert text.splitlines()[0] == "title"
        assert len(text.splitlines()) == 2

    def test_sweep_result_is_sequence_like_with_stats(self):
        result = sweep_runtime(
            proc_counts=[2], word_counts=[4], ops_points=[40, 80], seed=0
        )
        assert isinstance(result, SweepResult)
        assert len(result) == 2
        assert result[0].total_ops == 40
        assert [p.total_ops for p in result] == [40, 80]
        assert result.stats is not None
        assert result.stats.completed == 2
        assert result.stats.wall_seconds > 0

    def test_parallel_sweep_same_series_as_sequential(self):
        kwargs = dict(
            proc_counts=[2, 4], word_counts=[4], ops_points=[40, 80], seed=3
        )
        sequential = sweep_runtime(**kwargs, workers=1)
        parallel = sweep_runtime(**kwargs, workers=3)
        # Graph shape is deterministic per point seed; only wall-clock
        # timing may differ between the two runs.
        shape = lambda p: (p.nprocs, p.shared_words, p.total_ops,
                           p.nodes, p.edges, p.iterations)
        assert [shape(p) for p in parallel] == [shape(p) for p in sequential]
