"""Fault-injection tests for the process pool.

Exercises every way a task can go wrong — raising, exiting, killing its
own pipe, sleeping past the timeout — and pins the batch-level contract:
results stay in order, :class:`PoolStats` accounts for every attempt,
and the batch always terminates.  The close-pipe case runs under an
outer watchdog process because the pre-fix failure mode was an infinite
100% CPU busy-loop in the parent.
"""

import os
import sys
import time

import pytest

from repro import telemetry
from repro.analysis import pool as pool_module
from repro.analysis.pool import _mp_context, run_tasks
from repro.telemetry import MemorySink


def _raise(task):
    raise ValueError(f"boom {task}")


def _faulty(task):
    """Task behaviours keyed by kind: ok / raise / exit / close / sleep."""
    kind, n = task
    if kind == "raise":
        raise ValueError("boom")
    if kind == "exit":
        sys.exit(1)
    if kind == "die":
        # A real worker death: sys.exit would be caught and reported as
        # an in-worker error; only _exit leaves the parent a dead pipe.
        os._exit(1)
    if kind == "close":
        # Sever the worker's pipe to the parent, then stay alive: the
        # parent sees EOF on a conn whose process is still running.
        os.closerange(3, 1024)
        time.sleep(600)
    if kind == "sleep":
        time.sleep(600)
    return n * n


class TestRaisingTasks:
    """Satellite #1: inline and pooled raising tasks behave identically."""

    def test_inline_raise_does_not_crash_the_batch(self):
        results, stats = run_tasks(_raise, [1, 2, 3], workers=1)
        assert results == [None, None, None]
        assert stats.hung == 3
        assert stats.retries == 3
        assert stats.completed == 0

    def test_inline_and_pool_hung_counts_match(self):
        _, inline = run_tasks(_raise, [1, 2, 3], workers=1)
        _, pooled = run_tasks(_raise, [1, 2, 3], workers=4)
        assert inline.hung == pooled.hung == 3
        assert inline.retries == pooled.retries == 3
        assert inline.completed == pooled.completed == 0

    def test_inline_mixed_batch_results_in_order(self):
        tasks = [("ok", 2), ("raise", 0), ("ok", 3)]
        results, stats = run_tasks(_faulty, tasks, workers=1)
        assert results == [4, None, 9]
        assert stats.completed == 2 and stats.hung == 1

    def test_inline_retry_budget_respected(self):
        _, stats = run_tasks(_raise, [1], workers=1, retries=3)
        assert stats.retries == 3
        assert stats.hung == 1

    def test_inline_zero_retries(self):
        _, stats = run_tasks(_raise, [1], workers=1, retries=0)
        assert stats.retries == 0
        assert stats.hung == 1

    def test_keyboard_interrupt_still_aborts_inline(self):
        import pytest

        def interrupt(task):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_tasks(interrupt, [1], workers=1)


class TestExitingTasks:
    def test_sys_exit_in_worker_is_retried_then_hung(self):
        tasks = [("ok", 2), ("exit", 0)]
        results, stats = run_tasks(_faulty, tasks, workers=2)
        assert results == [4, None]
        assert stats.hung == 1
        assert stats.retries == 1


class TestTimeouts:
    def test_sleep_past_timeout_is_killed(self):
        tasks = [("ok", 2), ("sleep", 0), ("ok", 3)]
        results, stats = run_tasks(
            _faulty, tasks, workers=2, task_timeout=0.5
        )
        assert results == [4, None, 9]
        assert stats.hung == 1
        assert stats.completed == 2


def _broken_pipe_batch():
    """Child entry point: a close-pipe task with no task timeout.

    Pre-fix this never returns — the parent pool busy-loops on the dead
    conn (the worker process is alive, so the liveness scan never fires
    and ``task_timeout=None`` means nothing else can).  Post-fix the
    failed recv is treated as worker death and the batch finishes.
    """
    tasks = [("ok", 2), ("close", 0)]
    results, stats = run_tasks(_faulty, tasks, workers=2, task_timeout=None)
    assert results == [4, None]
    assert stats.hung == 1
    assert stats.retries == 1
    os._exit(0)


class TestBrokenPipe:
    """Satellite #2: a failed recv() is worker death, not a busy-loop."""

    def test_broken_pipe_batch_terminates(self):
        # The pool's workers are daemonic, so the batch under test runs
        # in a fresh non-daemon process; the join timeout is the
        # watchdog that converts the pre-fix infinite loop into a
        # failure instead of hanging the suite.
        ctx = _mp_context()
        child = ctx.Process(target=_broken_pipe_batch)
        child.start()
        child.join(timeout=60)
        try:
            assert child.exitcode == 0, (
                "broken-pipe batch did not terminate cleanly "
                f"(exitcode={child.exitcode})"
            )
        finally:
            if child.is_alive():
                child.kill()
                child.join(timeout=5)


class TestRespawnAccounting:
    """A worker death is visible: PoolStats.respawns + pool.respawns."""

    def test_worker_death_counts_respawns(self):
        tasks = [("ok", 2), ("die", 0)]
        _, stats = run_tasks(_faulty, tasks, workers=2)
        assert stats.respawns >= 1
        assert "respawn" in stats.throughput_line()

    def test_in_worker_error_is_not_a_respawn(self):
        # sys.exit / raise are reported over the pipe; the worker lives.
        _, stats = run_tasks(_faulty, [("ok", 2), ("exit", 0)], workers=2)
        assert stats.respawns == 0

    def test_clean_batch_has_no_respawns(self):
        _, stats = run_tasks(_faulty, [("ok", 2), ("ok", 3)], workers=2)
        assert stats.respawns == 0
        assert "respawn" not in stats.throughput_line()

    def test_inline_path_never_respawns(self):
        _, stats = run_tasks(_raise, [1, 2], workers=1)
        assert stats.respawns == 0

    def test_timeout_kill_counts_as_respawn(self):
        tasks = [("ok", 2), ("sleep", 0)]
        _, stats = run_tasks(_faulty, tasks, workers=2, task_timeout=0.5)
        assert stats.respawns >= 1

    def test_respawns_reach_the_telemetry_counter(self):
        telemetry.configure(sinks=[MemorySink()])
        try:
            run_tasks(_faulty, [("die", 0)], workers=2)
            counters = telemetry.get_telemetry().snapshot()["counters"]
            assert counters.get("pool.respawns", 0) >= 1
        finally:
            telemetry.reset()

    def test_respawns_round_trip_through_to_dict(self):
        _, stats = run_tasks(_faulty, [("die", 0)], workers=2)
        from repro.core.result import PoolStats

        back = PoolStats.from_dict(stats.to_dict())
        assert back.respawns == stats.respawns >= 1


class TestOnResult:
    """The streaming callback: every success, in the parent, no hungs."""

    def test_inline_streams_in_completion_order(self):
        seen = []
        results, _ = run_tasks(
            _faulty, [("ok", 2), ("ok", 3)], workers=1,
            on_result=lambda i, v: seen.append((i, v)),
        )
        assert seen == [(0, 4), (1, 9)]
        assert results == [4, 9]

    def test_pool_streams_every_success(self):
        seen = []
        tasks = [("ok", n) for n in range(5)]
        results, _ = run_tasks(
            _faulty, tasks, workers=2,
            on_result=lambda i, v: seen.append((i, v)),
        )
        assert sorted(seen) == [(i, n * n) for i, (_, n) in enumerate(tasks)]
        assert results == [n * n for _, n in tasks]

    def test_hung_tasks_never_reach_on_result(self):
        seen = []
        tasks = [("ok", 2), ("raise", 0), ("ok", 3)]
        run_tasks(
            _faulty, tasks, workers=1,
            on_result=lambda i, v: seen.append(i),
        )
        assert seen == [0, 2]

    def test_pool_hung_tasks_never_reach_on_result(self):
        seen = []
        tasks = [("ok", 2), ("exit", 0)]
        run_tasks(
            _faulty, tasks, workers=2,
            on_result=lambda i, v: seen.append(i),
        )
        assert seen == [0]

    def test_callback_exception_aborts_the_batch(self):
        def boom(index, value):
            raise RuntimeError("sink failed")

        with pytest.raises(RuntimeError, match="sink failed"):
            run_tasks(_faulty, [("ok", 2)], workers=1, on_result=boom)

    def test_callback_exception_aborts_the_pool_batch(self):
        def boom(index, value):
            raise RuntimeError("sink failed")

        with pytest.raises(RuntimeError, match="sink failed"):
            run_tasks(_faulty, [("ok", 2)], workers=2, on_result=boom)


def _double_send_worker_main(worker_id, fn, conn):
    """A worker that delivers every reply twice — the duplicate/late
    delivery fault.  Pre-fix, the second copy was credited to whatever
    task the worker held next, firing ``on_result`` twice for one index
    (which the service store turned into a job-killing ValueError)."""
    telemetry.init_worker()
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        index, task = item
        start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            value = fn(task)
        except BaseException as exc:  # noqa: BLE001 - mirror the real loop
            msg = (index, "error", time.perf_counter() - start,
                   time.process_time() - cpu_start, repr(exc))
        else:
            msg = (index, "done", time.perf_counter() - start,
                   time.process_time() - cpu_start, value)
        conn.send(msg)
        conn.send(msg)


class TestStaleResults:
    """Satellite: a late/duplicate worker reply is dropped by its echoed
    task index, never misattributed or delivered twice."""

    @pytest.fixture
    def double_send(self, monkeypatch):
        if _mp_context().get_start_method() != "fork":
            pytest.skip("double-send injection needs fork inheritance")
        monkeypatch.setattr(
            pool_module, "_worker_main", _double_send_worker_main
        )

    def test_duplicate_replies_are_dropped(self, double_send):
        seen = []
        tasks = [("ok", n) for n in range(6)]
        results, stats = run_tasks(
            _faulty, tasks, workers=2,
            on_result=lambda i, v: seen.append(i),
        )
        # Results are correct and on_result fired exactly once per task
        # — the duplicates were dropped, not credited to later tasks.
        assert results == [n * n for _, n in tasks]
        assert sorted(seen) == list(range(6))
        assert stats.completed == 6
        assert stats.hung == 0
        assert stats.stale_results >= 1

    def test_duplicate_error_replies_do_not_double_retry(self, double_send):
        tasks = [("ok", 2), ("raise", 0), ("ok", 3)]
        results, stats = run_tasks(_faulty, tasks, workers=2)
        assert results == [4, None, 9]
        assert stats.hung == 1
        # One retry per real attempt; the echoed duplicates added none.
        assert stats.retries == 1

    def test_stale_results_reach_the_telemetry_counter(self, double_send):
        telemetry.configure(sinks=[MemorySink()])
        try:
            run_tasks(_faulty, [("ok", n) for n in range(6)], workers=2)
            counters = telemetry.get_telemetry().snapshot()["counters"]
            assert counters.get("pool.stale_results", 0) >= 1
        finally:
            telemetry.reset()

    def test_stale_results_round_trip_through_to_dict(self):
        _, stats = run_tasks(_faulty, [("ok", 2)], workers=2)
        from repro.core.result import PoolStats

        back = PoolStats.from_dict(stats.to_dict())
        assert back.stale_results == stats.stale_results == 0


class TestProgressAccounting:
    """Satellite #3: ``completed`` always includes the reported event."""

    @staticmethod
    def _check_sequence(events, total):
        resolved = 0
        for event in events:
            assert event.total == total
            if event.kind in ("done", "hung"):
                resolved += 1
            assert event.completed == resolved
        return resolved

    def test_inline_sequence_counts_current_event(self):
        events = []
        tasks = [("raise", 0), ("ok", 2), ("ok", 3)]
        run_tasks(_faulty, tasks, workers=1, progress=events.append)
        assert [e.kind for e in events] == ["retry", "hung", "done", "done"]
        assert self._check_sequence(events, len(tasks)) == len(tasks)

    def test_pool_sequence_counts_current_event(self):
        events = []
        tasks = [("raise", 0), ("ok", 2), ("ok", 3), ("exit", 0)]
        run_tasks(_faulty, tasks, workers=2, progress=events.append)
        assert self._check_sequence(events, len(tasks)) == len(tasks)
        kinds = sorted(e.kind for e in events)
        assert kinds.count("done") == 2
        assert kinds.count("hung") == 2
        assert kinds.count("retry") == 2
