"""Tests for the coverage-reporting module."""

import pytest

from repro.analysis.coverage import CoverageReport, measure_coverage
from repro.generator.config import GeneratorConfig, InstructionMix
from repro.generator.generator import generate_program
from repro.model.ops import IBranch, ILoad, IMembar, IStore, ISwap
from repro.model.program import Program, Thread
from repro.model.trace import Execution
from repro.sim.machine import MachineConfig, TsoMachine
from tests.util import golden_run


def _run(threads, seed=0, config=None, initial=None):
    program = Program(threads=[Thread(t) for t in threads], initial=initial or {})
    machine = TsoMachine(program, seed=seed, config=config or MachineConfig())
    execution = machine.run()
    return program, execution, machine


class TestTraceMetrics:
    def test_instruction_mix_counted(self):
        program, execution, machine = _run(
            [[IStore(addr=0), ILoad(addr=0), IMembar(), ISwap(addr=0)]]
        )
        report = measure_coverage(program, execution, machine)
        assert report.instr_counts["store"] == 1
        assert report.instr_counts["load"] == 1
        assert report.instr_counts["membar"] == 1
        assert report.instr_counts["swap"] == 1
        assert report.total_memory_ops == 3

    def test_write_shared_words(self):
        program, execution, _m = _run(
            [[IStore(addr=0), IStore(addr=4)], [IStore(addr=0)]]
        )
        report = measure_coverage(program, execution)
        assert report.words_touched == 2
        assert report.write_shared_words == 1  # word 0 only

    def test_race_pairs_require_a_writer(self):
        # Two readers never race; writer+reader and writer+writer do.
        program, execution, _m = _run(
            [[ILoad(addr=0)], [ILoad(addr=0)]], initial={0: 0}
        )
        assert measure_coverage(program, execution).race_pairs == 0
        program, execution, _m = _run(
            [[IStore(addr=0)], [ILoad(addr=0)]]
        )
        assert measure_coverage(program, execution).race_pairs == 1

    def test_atomic_contention_counted(self):
        program, execution, _m = _run(
            [[ISwap(addr=0)], [ISwap(addr=0)], [ISwap(addr=4)]]
        )
        report = measure_coverage(program, execution)
        assert report.atomic_contended_words == 1

    def test_branch_directions(self):
        threads = [[IBranch(skip=1), ILoad(addr=0), ILoad(addr=0)]]
        taken = not_taken = 0
        for seed in range(20):
            program, execution, _m = _run(threads, seed=seed, initial={0: 0})
            report = measure_coverage(program, execution)
            taken += report.branch_taken
            not_taken += report.branch_not_taken
        assert taken > 0 and not_taken > 0

    def test_failed_cas_is_its_own_bucket(self):
        from repro.model.ops import ICas

        p0 = [IStore(addr=0) for _ in range(10)]
        p1 = [ILoad(addr=0), ICas(addr=0, size=4, compare_from=0)]
        for seed in range(30):
            program, execution, _m = _run([p0, p1], seed=seed)
            report = measure_coverage(program, execution)
            if report.instr_counts.get("cas_fail"):
                return
        pytest.skip("no failing CAS in 30 seeds")

    def test_multiword_access_touches_every_word(self):
        program, execution, _m = _run([[IStore(addr=0, size=16)]])
        report = measure_coverage(program, execution)
        assert report.words_touched == 4


class TestMachineMetrics:
    def test_machine_counters_merged(self):
        program, execution, machine = golden_run(seed=50)
        report = measure_coverage(program, execution, machine)
        assert report.machine["commits"] > 0
        assert report.machine["memory_reads"] >= 0
        assert len(report.machine["buffer_highwater"]) == program.nprocs

    def test_forwarding_counted(self):
        program, execution, machine = _run(
            [[IStore(addr=0), ILoad(addr=0)]],
            config=MachineConfig(drain_bias=0.0),
        )
        report = measure_coverage(program, execution, machine)
        assert report.machine["forwards"] == 1

    def test_buffer_highwater_reflects_bursts(self):
        stores = [IStore(addr=i * 4) for i in range(6)]
        program, execution, machine = _run(
            [stores], config=MachineConfig(drain_bias=0.0, buffer_capacity=8)
        )
        report = measure_coverage(program, execution, machine)
        assert report.machine["buffer_highwater"][0] == 6

    def test_without_machine_metrics_absent(self):
        program, execution, _machine = golden_run(seed=51)
        report = measure_coverage(program, execution)
        assert report.machine == {}


class TestRendering:
    def test_render_mentions_key_lines(self):
        program, execution, machine = golden_run(seed=52)
        text = measure_coverage(program, execution, machine).render()
        assert "instruction mix" in text
        assert "write-shared words" in text
        assert "machine.forwards" in text

    def test_intense_sharing_config_actually_shares(self):
        # The defaults must produce the "intense sharing" the paper wants:
        # most shared words written by several CPUs.
        config = GeneratorConfig(nprocs=4, ops_per_proc=80, shared_words=6)
        program = generate_program(config, seed=1)
        machine = TsoMachine(program, seed=1)
        execution = machine.run()
        report = measure_coverage(program, execution, machine)
        assert report.write_shared_words >= 4
        assert report.race_pairs >= 10
