"""Tests for the coverage-guided generator tuner."""

import pytest

from repro.analysis.coverage import CoverageReport
from repro.analysis.tuning import (
    TuningResult,
    atomic_contention_objective,
    race_pair_objective,
    tune,
)
from repro.generator.config import GeneratorConfig, InstructionMix


class TestObjectives:
    def test_race_pair_objective_normalizes_by_ops(self):
        report = CoverageReport(
            instr_counts={"load": 10, "store": 10}, race_pairs=5
        )
        assert race_pair_objective(report) == 5 / 20

    def test_race_pair_objective_empty_report(self):
        assert race_pair_objective(CoverageReport()) == 0.0

    def test_atomic_objective_counts_contention_and_failed_cas(self):
        report = CoverageReport(
            instr_counts={"cas_fail": 3}, atomic_contended_words=2
        )
        # 2 contended words x 10 + 3 failed CAS + 0.1 x 3 atomic ops.
        assert atomic_contention_objective(report) == pytest.approx(23.3)

    def test_atomic_objective_smooth_term_rewards_mere_atomics(self):
        # No contention yet, but atomics present: nonzero gradient.
        quiet = CoverageReport(instr_counts={"swap": 4, "cas_ok": 1})
        assert atomic_contention_objective(quiet) == pytest.approx(0.5)


class TestTune:
    def test_never_worse_than_baseline(self):
        result = tune(rounds=6, seeds_per_eval=2, seed=1)
        assert result.best_score >= result.baseline_score
        assert result.improvement >= 1.0

    def test_deterministic(self):
        a = tune(rounds=5, seeds_per_eval=2, seed=3)
        b = tune(rounds=5, seeds_per_eval=2, seed=3)
        assert a.best_score == b.best_score
        assert a.best_config == b.best_config

    def test_history_monotone_nondecreasing(self):
        result = tune(rounds=8, seeds_per_eval=2, seed=4)
        scores = [score for _round, score in result.history]
        assert scores == sorted(scores)

    def test_tuning_toward_atomic_contention_raises_atomic_weights(self):
        # Starting from a mix with almost no atomics, the tuner should
        # find a configuration scoring far better on atomic contention.
        base = GeneratorConfig(
            nprocs=4, ops_per_proc=60, shared_words=16,
            mix=InstructionMix(load=40, store=40, swap=0.2, cas=0.2),
        )
        result = tune(
            base=base, objective=atomic_contention_objective,
            rounds=25, seeds_per_eval=2, seed=7,
        )
        assert result.improvement > 1.5

    def test_result_fields(self):
        result = tune(rounds=3, seeds_per_eval=1, seed=9)
        assert isinstance(result, TuningResult)
        assert result.evaluations >= 1
        assert isinstance(result.best_config, GeneratorConfig)
