"""Tests for the parallel execution engine behind campaigns and sweeps."""

import os
import time
import warnings

import pytest

from repro import telemetry
from repro.analysis.pool import PoolEvent, run_tasks
from repro.core.result import PoolStats


def _square(task):
    return task * task


def _misbehave(task):
    """Task behaviours keyed by kind: ok / sleep / crash / raise."""
    kind, n = task
    if kind == "sleep":
        time.sleep(60)
    if kind == "crash":
        os._exit(3)
    if kind == "raise":
        raise ValueError("boom")
    return n * n


def _work_then_raise(task):
    """Burn measurable wall and CPU time, then fail."""
    t0 = time.perf_counter()
    while time.perf_counter() - t0 < 0.05:
        pass
    raise ValueError("boom after work")


class TestInline:
    def test_results_in_order(self):
        results, stats = run_tasks(_square, [1, 2, 3, 4])
        assert results == [1, 4, 9, 16]
        assert stats.completed == stats.tasks == 4
        assert stats.hung == stats.retries == 0
        assert stats.workers == 1

    def test_wall_and_cpu_seconds_populated(self):
        _, stats = run_tasks(_square, list(range(50)))
        assert stats.wall_seconds > 0
        assert stats.cpu_seconds >= 0

    def test_progress_events(self):
        events = []
        run_tasks(_square, [5, 6], progress=events.append)
        assert [e.kind for e in events] == ["done", "done"]
        assert [e.completed for e in events] == [1, 2]
        assert events[0].total == 2

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValueError):
            run_tasks(_square, [1, 2], labels=["only-one"])


class TestParallel:
    def test_matches_inline_results(self):
        tasks = list(range(20))
        inline, _ = run_tasks(_square, tasks, workers=1)
        parallel, stats = run_tasks(_square, tasks, workers=4)
        assert parallel == inline
        assert stats.completed == 20
        assert sum(stats.per_worker.values()) == 20

    def test_timeout_kills_and_records_hung(self):
        tasks = [("ok", 1), ("sleep", 2), ("ok", 3)]
        results, stats = run_tasks(
            _misbehave, tasks, workers=2, task_timeout=0.5
        )
        assert results == [1, None, 9]
        assert stats.hung == 1
        assert stats.retries == 1  # retried once before giving up
        assert stats.completed == 2

    def test_worker_crash_is_retried_then_hung(self):
        tasks = [("ok", 1), ("crash", 2)]
        results, stats = run_tasks(_misbehave, tasks, workers=2)
        assert results == [1, None]
        assert stats.hung == 1
        assert stats.retries == 1

    def test_task_exception_is_not_fatal(self):
        tasks = [("raise", 1), ("ok", 2)]
        results, stats = run_tasks(_misbehave, tasks, workers=2)
        assert results == [None, 4]
        assert stats.hung == 1

    def test_progress_reports_retries_and_hangs(self):
        events = []
        run_tasks(
            _misbehave, [("sleep", 1)], workers=2,
            task_timeout=0.3, progress=events.append,
        )
        kinds = [e.kind for e in events]
        assert kinds == ["retry", "hung"]
        assert "retrying" in events[0].render()
        assert "HUNG" in events[1].render()

    def test_more_workers_than_tasks(self):
        results, stats = run_tasks(_square, [7], workers=8)
        assert results == [49]

    def test_results_deterministic_across_worker_counts(self):
        # The dispatch queue is FIFO with retries re-entering at the
        # tail; whatever the worker count or interleaving, per-task
        # outcomes (each task determines its own result) are identical.
        tasks = [
            ("raise", 1), ("ok", 2), ("raise", 3), ("ok", 4), ("ok", 5),
            ("ok", 6), ("raise", 7), ("ok", 8),
        ]
        expected = [None, 4, None, 16, 25, 36, None, 64]
        for workers in (1, 2, 4):
            results, stats = run_tasks(_misbehave, tasks, workers=workers)
            assert results == expected, workers
            assert stats.retries == 3 and stats.hung == 3, workers
            assert stats.completed == 5, workers


class TestTimeoutRequiresWorkers:
    def test_inline_timeout_warns(self):
        with pytest.warns(RuntimeWarning, match="task_timeout"):
            results, _ = run_tasks(_square, [3], workers=1, task_timeout=0.5)
        assert results == [9]  # the batch still runs, just untimed

    def test_pooled_timeout_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            results, _ = run_tasks(_square, [3], workers=2, task_timeout=30.0)
        assert results == [9]


class TestFailureTiming:
    """Failed-but-measured attempts carry their elapsed time, both paths."""

    def test_inline_failure_events_carry_elapsed(self):
        events = []
        results, stats = run_tasks(
            _work_then_raise, [0], progress=events.append
        )
        assert results == [None]
        assert [e.kind for e in events] == ["retry", "hung"]
        assert all(e.seconds >= 0.05 for e in events)
        assert stats.cpu_seconds > 0.0

    def test_pooled_failure_events_carry_elapsed(self):
        events = []
        results, stats = run_tasks(
            _work_then_raise, [0], workers=2, progress=events.append
        )
        assert results == [None]
        assert [e.kind for e in events] == ["retry", "hung"]
        assert all(e.seconds >= 0.05 for e in events)
        assert stats.cpu_seconds > 0.0

    def test_failed_attempts_land_in_task_seconds_histogram(self):
        tel = telemetry.configure()
        try:
            run_tasks(_work_then_raise, [0])
            hist = tel.snapshot()["histograms"]["pool.task_seconds"]
        finally:
            telemetry.reset()
        # Both measured attempts (initial + retry) are recorded.
        assert hist["count"] == 2
        assert hist["min"] >= 0.05


class TestPoolEvent:
    def test_done_rendering(self):
        event = PoolEvent(
            kind="done", index=0, label="CPU1-bug01", worker=2,
            seconds=1.25, attempt=1, completed=3, total=10,
        )
        text = event.render()
        assert "[worker 2]" in text and "3/10" in text
        assert "CPU1-bug01" in text and "1.25s" in text


class TestPoolStats:
    def test_round_trips_through_dict(self):
        stats = PoolStats(
            tasks=10, completed=8, hung=2, retries=3, workers=4,
            wall_seconds=1.5, cpu_seconds=5.0, per_worker={0: 5, 3: 3},
        )
        assert PoolStats.from_dict(stats.to_dict()) == stats

    def test_to_dict_is_json_safe(self):
        import json

        stats = PoolStats(tasks=2, completed=2, per_worker={1: 2})
        assert json.loads(json.dumps(stats.to_dict()))["per_worker"] == {"1": 2}

    def test_throughput_line(self):
        stats = PoolStats(
            tasks=6, completed=5, hung=1, retries=2, workers=3,
            wall_seconds=2.0, cpu_seconds=5.5,
        )
        line = stats.throughput_line()
        assert "5/6 tasks" in line
        assert "2.0s wall" in line and "5.5s CPU" in line
        assert "2.50 tasks/s" in line
        assert "1 hung" in line and "2 retries" in line

    def test_worker_lines(self):
        stats = PoolStats(per_worker={2: 1, 0: 4})
        assert stats.worker_lines() == [
            "worker 0: 4 tasks", "worker 2: 1 task",
        ]

    def test_zero_wall_throughput(self):
        assert PoolStats(tasks=1, completed=1).tasks_per_second == 0.0
