"""Tests for the failing-trace minimizer."""

import pytest

from repro.analysis.minimize import (
    MinimizationResult,
    minimize_failure,
    render_minimized,
)
from repro.core.api import check, check_execution
from repro.core.result import ViolationKind
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.model.program import parse_litmus
from repro.sim.faults import StoreBufferReorderFault
from repro.sim.machine import TsoMachine


def _failing_run(seed_start=0):
    config = GeneratorConfig(nprocs=4, ops_per_proc=80, shared_words=6)
    for seed in range(seed_start, seed_start + 60):
        program = generate_program(config, seed=seed)
        machine = TsoMachine(
            program, seed=seed, faults=[StoreBufferReorderFault(rate=0.5)]
        )
        execution = machine.run()
        result = check(program, execution)
        if not result.ok and result.violation.kind == ViolationKind.CYCLE:
            return program, execution
    pytest.fail("no failing run found")


class TestMinimizeFailure:
    @pytest.fixture(scope="class")
    def minimized(self):
        program, execution = _failing_run()
        return program, execution, minimize_failure(
            execution, initial=program.initial
        )

    def test_still_fails_with_cycle(self, minimized):
        program, _execution, result = minimized
        verdict = check_execution(result.execution, initial=program.initial)
        assert not verdict.ok
        assert verdict.violation.kind == ViolationKind.CYCLE

    def test_substantial_shrinkage(self, minimized):
        _program, execution, result = minimized
        assert result.minimized_records < execution.total_records() // 4

    def test_one_minimality(self, minimized):
        # Removing any single remaining record must break the failure
        # (or turn it into a non-cycle failure).
        from repro.analysis.minimize import _fails_with_cycle
        from repro.core.policy import TSO

        program, _execution, result = minimized
        records = result.execution.records
        for pid, proc in enumerate(records):
            for idx in range(len(proc)):
                candidate = [list(p) for p in records]
                del candidate[pid][idx]
                assert _fails_with_cycle(candidate, program.initial, TSO) is None, (
                    f"record P{pid}[{idx}] is removable"
                )

    def test_accounting(self, minimized):
        _program, execution, result = minimized
        assert result.original_records == execution.total_records()
        assert result.checks_run > 0

    def test_render(self, minimized):
        _program, _execution, result = minimized
        text = render_minimized(result)
        assert "minimal failing core" in text
        assert "FAIL" in text


class TestEdgeCases:
    def test_passing_trace_rejected(self):
        program, execution = parse_litmus("P0: S[A]#1 ; L[A]=1")
        with pytest.raises(ValueError, match="does not fail"):
            minimize_failure(execution, initial=program.initial)

    def test_already_minimal_litmus_unchanged_in_size(self):
        # CoRR is already a 4-record minimal core.
        program, execution = parse_litmus(
            "P0: S[A]#1 ; S[A]#2\nP1: L[A]=2 ; L[A]=1"
        )
        result = minimize_failure(execution, initial=program.initial)
        assert result.minimized_records == 4

    def test_budget_exhaustion_still_returns_failing_trace(self):
        program, execution = _failing_run(seed_start=100)
        result = minimize_failure(
            execution, initial=program.initial, max_checks=5
        )
        verdict = check_execution(result.execution, initial=program.initial)
        assert not verdict.ok
