"""Tests for the campaign statistics module."""

import math

import pytest

from repro.analysis.campaign import BugHunt, CampaignResult
from repro.analysis.stats import (
    LatencySummary,
    bootstrap_detection_rate,
    detection_latency,
    latency_by_mechanism,
    latency_by_unit,
    render_campaign_stats,
)
from repro.sim.cpus import BugSpec
from repro.sim.faults import BugClass, FuncUnit, StaleForwardFault, TlbAliasFault


def _hunt(name, mechanism, unit, detected, tests_run):
    spec = BugSpec(name=name, mechanism=mechanism, unit=unit,
                   bug_class=BugClass.DESIGN)
    return BugHunt(spec=spec, cpu="CPUX", detected=detected,
                   tests_run=tests_run)


@pytest.fixture
def hunts():
    return [
        _hunt("a", StaleForwardFault, FuncUnit.LSU, True, 1),
        _hunt("b", StaleForwardFault, FuncUnit.LSU, True, 3),
        _hunt("c", TlbAliasFault, FuncUnit.TLB, True, 5),
        _hunt("d", TlbAliasFault, FuncUnit.TLB, False, 10),
    ]


class TestDetectionLatency:
    def test_summary_values(self, hunts):
        summary = detection_latency(hunts)
        assert summary.count == 4
        assert summary.detected == 3
        assert summary.mean == pytest.approx(3.0)
        assert summary.median == pytest.approx(3.0)
        assert summary.maximum == 5

    def test_p90_interpolates(self, hunts):
        summary = detection_latency(hunts)
        assert 3.0 <= summary.p90 <= 5.0

    def test_empty_and_undetected(self):
        empty = detection_latency([])
        assert empty.count == 0 and math.isnan(empty.mean)
        censored = detection_latency(
            [_hunt("x", TlbAliasFault, FuncUnit.TLB, False, 8)]
        )
        assert censored.detected == 0 and math.isnan(censored.median)

    def test_row_rendering(self, hunts):
        assert "mean= 3.00" in detection_latency(hunts).row()


class TestGroupings:
    def test_by_mechanism(self, hunts):
        groups = latency_by_mechanism(CampaignResult(hunts=hunts))
        assert set(groups) == {"StaleForwardFault", "TlbAliasFault"}
        assert groups["StaleForwardFault"].detected == 2
        assert groups["TlbAliasFault"].detected == 1

    def test_by_unit(self, hunts):
        groups = latency_by_unit(CampaignResult(hunts=hunts))
        assert groups["LSU"].mean == pytest.approx(2.0)
        assert groups["TLB"].count == 2


class TestBootstrap:
    def test_degenerate_inputs(self):
        rate, low, high = bootstrap_detection_rate(0, 0)
        assert math.isnan(rate) and math.isnan(low) and math.isnan(high)

    def test_certain_rates_have_tight_intervals(self):
        rate, low, high = bootstrap_detection_rate(50, 50)
        assert rate == 1.0 and low == 1.0 and high == 1.0

    def test_interval_brackets_rate(self):
        rate, low, high = bootstrap_detection_rate(30, 40, seed=1)
        assert low <= rate <= high
        assert 0.0 <= low < high <= 1.0

    def test_deterministic(self):
        a = bootstrap_detection_rate(7, 10, seed=5)
        b = bootstrap_detection_rate(7, 10, seed=5)
        assert a == b

    def test_more_trials_tighten_the_interval(self):
        _r1, low1, high1 = bootstrap_detection_rate(7, 10, seed=2)
        _r2, low2, high2 = bootstrap_detection_rate(700, 1000, seed=2)
        assert (high2 - low2) < (high1 - low1)


class TestRendering:
    def test_full_block(self, hunts):
        text = render_campaign_stats(CampaignResult(hunts=hunts))
        assert "by mechanism" in text
        assert "StaleForwardFault" in text
        assert "detection rate" in text
        assert "CI" in text

    def test_on_a_real_campaign(self):
        from repro.analysis.campaign import CampaignConfig, run_campaign
        from repro.sim.cpus import cpu_by_name

        result = run_campaign(
            cpus=[cpu_by_name("CPU1")], config=CampaignConfig(tests_per_bug=8)
        )
        text = render_campaign_stats(result)
        assert "detection rate     100.0%" in text
