"""Tests for the Table 1/2 campaign harness."""

import pytest

from repro.analysis.campaign import (
    BugHunt,
    CampaignConfig,
    CampaignResult,
    format_table1,
    format_table2,
    hunt_bug,
    run_campaign,
)
from repro.sim.cpus import CPU_CONFIGS, BugSpec, CpuConfig, cpu_by_name
from repro.sim.faults import (
    BugClass,
    FuncUnit,
    HangFault,
    MonitorFalseAlarmFault,
    StaleForwardFault,
    TraceCorruptionFault,
)

FAST = CampaignConfig(tests_per_bug=8)


class TestHuntBug:
    def test_design_bug_detected_via_tso_failure(self):
        spec = BugSpec(
            name="t-design", mechanism=StaleForwardFault,
            unit=FuncUnit.LSU, bug_class=BugClass.DESIGN,
        )
        hunt = hunt_bug(spec, "CPUX", FAST)
        assert hunt.detected
        assert "TSO violation" in hunt.via
        assert hunt.detected_on_seed is not None
        assert 1 <= hunt.tests_run <= FAST.tests_per_bug

    def test_monitor_bug_detected_via_spurious_alarm(self):
        spec = BugSpec(
            name="t-monitor", mechanism=MonitorFalseAlarmFault,
            unit=FuncUnit.CACHES, bug_class=BugClass.MONITOR,
        )
        hunt = hunt_bug(spec, "CPUX", FAST)
        assert hunt.detected
        assert "alarm" in hunt.via

    def test_environment_bug_detected_via_trace_divergence(self):
        spec = BugSpec(
            name="t-env", mechanism=TraceCorruptionFault,
            unit=FuncUnit.NONE, bug_class=BugClass.ENVIRONMENT,
            rate=0.05,
        )
        hunt = hunt_bug(spec, "CPUX", FAST)
        assert hunt.detected
        assert "true trace passes" in hunt.via

    def test_undetectable_bug_reports_miss(self):
        spec = BugSpec(
            name="t-dud", mechanism=StaleForwardFault,
            unit=FuncUnit.LSU, bug_class=BugClass.DESIGN, rate=0.0,
        )
        hunt = hunt_bug(spec, "CPUX", CampaignConfig(tests_per_bug=2))
        assert not hunt.detected
        assert hunt.tests_run == 2

    def test_reproducible_given_same_config(self):
        spec = cpu_by_name("CPU1").bugs[0]
        a = hunt_bug(spec, "CPU1", FAST, bug_index=0)
        b = hunt_bug(spec, "CPU1", FAST, bug_index=0)
        assert a.detected_on_seed == b.detected_on_seed


class TestCampaignTables:
    @pytest.fixture(scope="class")
    def small_campaign(self):
        return run_campaign(cpus=[cpu_by_name("CPU1"), cpu_by_name("CPU2")], config=FAST)

    def test_cpu1_and_cpu2_rows_match_paper(self, small_campaign):
        rows = dict(small_campaign.table1_rows())
        assert rows["CPU1"][BugClass.DESIGN] == 3
        assert rows["CPU2"][BugClass.DESIGN] == 4
        assert rows["CPU2"][BugClass.MONITOR] == 3

    def test_table2_rows(self, small_campaign):
        rows = dict(small_campaign.table2_rows())
        assert rows["CPU1"][FuncUnit.CACHES] == 3
        assert rows["CPU2"][FuncUnit.PIPE] == 1
        assert rows["CPU2"][FuncUnit.MEM_CNTLR] == 1

    def test_formatting_contains_totals(self, small_campaign):
        t1 = format_table1(small_campaign)
        t2 = format_table2(small_campaign)
        assert "Total" in t1 and "Total" in t2
        assert "Architecture" in t1
        assert "Interconnect" in t2

    def test_no_misses_on_small_campaign(self, small_campaign):
        assert small_campaign.missed() == []

    def test_by_cpu_grouping(self, small_campaign):
        grouped = small_campaign.by_cpu()
        assert set(grouped) == {"CPU1", "CPU2"}
        assert len(grouped["CPU1"]) == 3
        assert len(grouped["CPU2"]) == 7

    def test_wall_and_cpu_seconds_split(self, small_campaign):
        # Sequential campaign: both axes populated, and the deprecated
        # alias keeps pointing at wall clock.
        assert small_campaign.wall_seconds > 0
        assert small_campaign.cpu_seconds >= 0
        assert small_campaign.seconds == small_campaign.wall_seconds
        assert small_campaign.stats is not None
        assert small_campaign.stats.completed == len(small_campaign.hunts)


class TestSerialization:
    """Satellite: stable round-trip dicts; derived rows are recomputed."""

    def test_bug_hunt_round_trip(self):
        hunt = hunt_bug(cpu_by_name("CPU1").bugs[0], "CPU1", FAST, 0)
        back = BugHunt.from_dict(hunt.to_dict())
        assert back == hunt
        # Derived properties are recomputed, never stored.
        assert back.unit is hunt.unit
        assert back.bug_class is hunt.bug_class
        assert "unit" not in hunt.to_dict()

    def test_bug_hunt_dict_is_json_safe(self):
        import json

        hunt = hunt_bug(cpu_by_name("CPU1").bugs[0], "CPU1", FAST, 0)
        assert json.loads(json.dumps(hunt.to_dict())) == hunt.to_dict()

    def test_campaign_result_round_trip(self):
        result = run_campaign(cpus=[cpu_by_name("CPU1")], config=FAST)
        back = CampaignResult.from_dict(result.to_dict())
        assert back.hunts == result.hunts
        assert back.wall_seconds == result.wall_seconds
        assert back.cpu_seconds == result.cpu_seconds
        assert back.sched == result.sched
        assert back.stats == result.stats
        # Tables and exit code come out identical because they are
        # derived from the hunts on both sides.
        assert format_table1(back) == format_table1(result)
        assert format_table2(back) == format_table2(result)
        assert back.exit_code() == result.exit_code()
        assert back.detection_line() == result.detection_line()

    def test_campaign_result_without_stats(self):
        result = CampaignResult(hunts=[])
        back = CampaignResult.from_dict(result.to_dict())
        assert back.stats is None


class TestExitCode:
    def test_all_detected_is_zero(self):
        result = run_campaign(cpus=[cpu_by_name("CPU1")], config=FAST)
        assert result.exit_code() == 0

    def test_missed_is_one(self):
        dud = BugSpec(
            name="dud", mechanism=StaleForwardFault,
            unit=FuncUnit.LSU, bug_class=BugClass.DESIGN, rate=0.0,
        )
        hunt = hunt_bug(dud, "CPUX", CampaignConfig(tests_per_bug=1))
        assert CampaignResult(hunts=[hunt]).exit_code() == 1

    def test_hung_is_two_even_with_misses(self):
        dud = BugSpec(
            name="dud", mechanism=StaleForwardFault,
            unit=FuncUnit.LSU, bug_class=BugClass.DESIGN, rate=0.0,
        )
        missed = hunt_bug(dud, "CPUX", CampaignConfig(tests_per_bug=1))
        hung = BugHunt(
            spec=dud, cpu="CPUX", detected=False, tests_run=0,
            via="worker crashed or timed out", hung=True,
        )
        assert CampaignResult(hunts=[missed, hung]).exit_code() == 2


class TestParallelCampaign:
    def test_workers4_hunt_for_hunt_identical_to_sequential(self):
        # The seed-determinism contract: every BugHunt record — spec,
        # detection verdict, tests_run, detecting seed, triage text —
        # must be identical whatever the worker count.
        cpus = [cpu_by_name("CPU1"), cpu_by_name("CPU2")]
        config = CampaignConfig(tests_per_bug=4)
        sequential = run_campaign(cpus=cpus, config=config, workers=1)
        parallel = run_campaign(cpus=cpus, config=config, workers=4)
        assert parallel.hunts == sequential.hunts

    def test_timeout_injection_records_hung_hunt(self):
        # A deliberately hung fault wedges the simulated machine; the
        # pool's per-task timeout must kill the worker (twice: retry
        # once) and record the hunt as hung, never block the campaign.
        hang = BugSpec(
            name="HANG-bug01", mechanism=HangFault,
            unit=FuncUnit.NONE, bug_class=BugClass.DESIGN, rate=1.0,
        )
        live = BugSpec(
            name="HANG-bug02", mechanism=StaleForwardFault,
            unit=FuncUnit.LSU, bug_class=BugClass.DESIGN,
        )
        cpu = CpuConfig(
            name="HANGCPU", description="timeout-injection test roster",
            bugs=(hang, live),
        )
        result = run_campaign(
            cpus=[cpu], config=CampaignConfig(tests_per_bug=4),
            workers=2, task_timeout=2.0,
        )
        hung = result.hung_hunts()
        assert [h.spec.name for h in hung] == ["HANG-bug01"]
        assert not hung[0].detected and hung[0].tests_run == 0
        assert hung[0] in result.missed()
        assert result.stats.hung == 1
        assert result.stats.retries == 1
        # The healthy hunt of the same roster still completes.
        other = next(h for h in result.hunts if h.spec.name == "HANG-bug02")
        assert other.detected
