"""Structural tests for the SPARC assembler backend."""

import re

import pytest

from repro.emit.sparc import RESULT_BUFFER_SLOTS, EmitConfig, emit_sparc
from repro.generator.config import GeneratorConfig, InstructionMix
from repro.generator.generator import generate_program
from repro.model.ops import (
    IBlockStore,
    IBranch,
    ICas,
    ILoad,
    IMembar,
    IPrefetch,
    IStore,
    ISwap,
    PrefetchVariant,
)
from repro.model.program import Program, Thread


def _emit(threads, initial=None, config=None):
    program = Program(threads=[Thread(t) for t in threads], initial=initial or {})
    return emit_sparc(program, config)


class TestModuleStructure:
    def test_one_global_routine_per_thread(self):
        asm = _emit([[ILoad(addr=0)], [IStore(addr=0)], [IMembar()]])
        for pid in range(3):
            assert f".global tsotool_thread_{pid}" in asm
            assert f"tsotool_thread_{pid}:" in asm

    def test_header_documents_conventions(self):
        asm = _emit([[ILoad(addr=0)]])
        assert "%i0 = shared base" in asm
        assert "LFSR" in asm

    def test_initial_values_annotated(self):
        asm = _emit([[ILoad(addr=0)]], initial={0: 7, 4: 9})
        assert "! init word +0x0 = 7" in asm
        assert "! init word +0x4 = 9" in asm

    def test_every_op_gets_a_label(self):
        asm = _emit([[ILoad(addr=0), IStore(addr=4), IMembar()]])
        for idx in range(3):
            assert f".L0_op{idx}:" in asm

    def test_routine_epilogue(self):
        asm = _emit([[ILoad(addr=0)]])
        assert "ret" in asm and "restore" in asm


class TestInstructionMapping:
    def test_load_opcodes_by_size(self):
        asm = _emit([[ILoad(addr=0, size=4), ILoad(addr=8, size=8),
                      ILoad(addr=16, size=16)]])
        assert "lduw" in asm and "ldx " in asm and "ldq" in asm

    def test_store_draws_from_integer_counter(self):
        asm = _emit([[IStore(addr=0)]])
        # Counter bump precedes the store of %l0.
        assert asm.index("add     %l0, %l1, %l0") < asm.index("stw     %l0")

    def test_multiword_store_bumps_counter_per_word(self):
        asm = _emit([[IStore(addr=0, size=16)]])
        assert asm.count("add     %l0, %l1, %l0") == 4

    def test_swap_and_cas(self):
        thread = [ISwap(addr=0), ILoad(addr=4), ICas(addr=4, size=4, compare_from=1)]
        asm = _emit([thread])
        assert "swap    [%i0 + 0]" in asm
        assert "casa    [%i0 + 4]" in asm

    def test_casx_for_8_byte(self):
        thread = [ILoad(addr=8, size=8), ICas(addr=8, size=8, compare_from=0)]
        asm = _emit([thread])
        assert "casxa" in asm

    def test_noncacheable_accesses_use_alternate_space(self):
        asm = _emit([[ILoad(addr=0, cacheable=False),
                      IStore(addr=4, cacheable=False)]])
        assert "lduwa   [%i0 + 0] #ASI_REAL_IO, %g1" in asm
        assert "stwa    %l0, [%i0 + 4] #ASI_REAL_IO" in asm

    def test_membar(self):
        asm = _emit([[IMembar()]])
        assert "membar  #Sync" in asm

    def test_block_store_uses_fp_counter_and_blk_asi(self):
        asm = _emit([[IBlockStore(addr=0)]])
        assert "faddd   %f2, %f4, %f2" in asm
        assert "stda    %f32, [%i0 + 0] #ASI_BLK_P" in asm

    def test_prefetch_function_codes(self):
        weak = _emit([[IPrefetch(addr=0, variant=PrefetchVariant.READ_ONCE,
                                 strong=False)]])
        strong = _emit([[IPrefetch(addr=0, variant=PrefetchVariant.WRITE_MANY,
                                   strong=True)]])
        assert "prefetch [%i0 + 0], #0" in weak
        assert "prefetch [%i0 + 0], #23" in strong

    def test_branch_targets_resolved_label(self):
        thread = [IBranch(skip=2), ILoad(addr=0), ILoad(addr=0), ILoad(addr=0)]
        asm = _emit([thread])
        assert "bne,pn  %icc, .L0_op3" in asm
        assert re.search(r"xor\s+%l6, %l7, %l6", asm)  # LFSR feedback


class TestResultBuffering:
    def test_flush_after_buffer_fills(self):
        loads = [ILoad(addr=0) for _ in range(RESULT_BUFFER_SLOTS)]
        asm = _emit([loads])
        assert "results buffer full" in asm
        for slot in range(RESULT_BUFFER_SLOTS):
            assert f"stx     %o{slot}, [%i1 + {slot * 8}]" in asm

    def test_partial_buffer_flushed_at_end(self):
        asm = _emit([[ILoad(addr=0), ILoad(addr=4)]])
        assert "final results flush" in asm
        assert "stx     %o1, [%i1 + 8]" in asm

    def test_result_offsets_monotonic(self):
        loads = [ILoad(addr=0) for _ in range(RESULT_BUFFER_SLOTS + 2)]
        asm = _emit([loads])
        offsets = [int(m) for m in re.findall(r"stx\s+%o\d, \[%i1 \+ (\d+)\]", asm)]
        assert offsets == sorted(offsets)
        assert len(offsets) == RESULT_BUFFER_SLOTS + 2


class TestGeneratedPrograms:
    def test_full_generator_output_emits(self):
        mix = InstructionMix(
            load=5, store=5, swap=5, cas=5, membar=5, block_load=5,
            block_store=5, nonfaulting_load=5, prefetch=5, flush=5, branch=5,
            interrupt=5,
        )
        config = GeneratorConfig(nprocs=4, ops_per_proc=120, shared_words=32,
                                 mix=mix)
        program = generate_program(config, seed=11)
        asm = emit_sparc(program)
        assert asm.count(".global") == 4
        assert len(asm.splitlines()) > 400

    def test_comments_can_be_disabled(self):
        program = generate_program(
            GeneratorConfig(nprocs=1, ops_per_proc=20), seed=0
        )
        dense = emit_sparc(program, EmitConfig(comment_ops=False))
        commented = emit_sparc(program, EmitConfig(comment_ops=True))
        assert len(dense) < len(commented)

    def test_emission_deterministic(self):
        program = generate_program(
            GeneratorConfig(nprocs=2, ops_per_proc=30), seed=3
        )
        assert emit_sparc(program) == emit_sparc(program)
