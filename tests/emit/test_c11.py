"""Tests for the C11/pthreads backend — including, when a compiler is
available, the full loop: emit → compile → run on the host (x86 = TSO)
→ parse the printed trace → check."""

import platform
import shutil
import subprocess

import pytest

from repro.core.api import check_execution
from repro.emit.c11 import (
    C11_MIX,
    UnsupportedForC11,
    c11_generator_config,
    emit_c11,
)
from repro.generator.generator import generate_program
from repro.model.ops import (
    IBlockStore,
    IBranch,
    ICas,
    ILoad,
    IMembar,
    INonFaultingLoad,
    IPrefetch,
    IStore,
    ISwap,
)
from repro.model.program import Program, Thread
from repro.model.trace import Execution


def _emit(threads, initial=None):
    program = Program(threads=[Thread(t) for t in threads], initial=initial or {})
    return emit_c11(program)


class TestStructure:
    def test_one_function_per_thread_plus_main(self):
        src = _emit([[ILoad(addr=0)], [IStore(addr=0)]])
        assert "static void *thread_0(" in src
        assert "static void *thread_1(" in src
        assert "int main(void)" in src
        assert "pthread_create" in src

    def test_trace_header_printed(self):
        src = _emit([[ILoad(addr=0)]])
        assert 'printf("# tsotool trace v1' in src

    def test_initial_values_installed(self):
        src = _emit([[ILoad(addr=8)]], initial={8: 42})
        assert "atomic_store_explicit(&shared_mem[2], 42u" in src

    def test_store_uses_unique_counter_with_thread_id(self):
        src = _emit([[IStore(addr=0)], [IStore(addr=0)]])
        assert "(++counter << 8) | 1u" in src
        assert "(++counter << 8) | 2u" in src

    def test_membar_is_seq_cst_fence(self):
        src = _emit([[IMembar(), ILoad(addr=0)]])
        assert "atomic_thread_fence(memory_order_seq_cst)" in src

    def test_swap_is_atomic_exchange(self):
        src = _emit([[ISwap(addr=4)]])
        assert "atomic_exchange_explicit(&shared_mem[1]" in src

    def test_cas_references_companion_load_slot(self):
        thread = [ILoad(addr=0), ICas(addr=0, size=4, compare_from=0)]
        src = _emit([thread])
        assert "expect = rec[0].loaded;" in src
        assert "atomic_compare_exchange_strong_explicit" in src

    def test_branch_emits_label_and_lfsr(self):
        thread = [IBranch(skip=1), ILoad(addr=0), ILoad(addr=0)]
        src = _emit([thread])
        assert "lfsr_next(&lfsr)" in src
        assert "goto op_0_2;" in src
        assert "op_0_2: ;" in src

    def test_faulting_nonfaulting_load_is_constant_zero(self):
        src = _emit([[INonFaultingLoad(addr=0x5000, faulting=True)]],
                    initial={0: 0})
        assert "rec[0].loaded = 0; rec[0].flag = 1;" in src

    def test_compiler_order_fences_between_ops(self):
        src = _emit([[ILoad(addr=0), IStore(addr=0)]])
        assert src.count("PO();") == 2


class TestRejections:
    @pytest.mark.parametrize(
        "instr",
        [
            ILoad(addr=0, size=8),
            IStore(addr=0, size=16),
            ISwap(addr=0, size=8),
            IBlockStore(addr=0),
            IPrefetch(addr=0),
        ],
        ids=lambda i: type(i).__name__ + str(getattr(i, "size", "")),
    )
    def test_unsupported_instructions_rejected(self, instr):
        with pytest.raises(UnsupportedForC11):
            _emit([[instr]])

    def test_c11_config_generates_only_supported_programs(self):
        for seed in range(5):
            program = generate_program(
                c11_generator_config(nprocs=4, ops_per_proc=60), seed=seed
            )
            emit_c11(program)  # must not raise


_CC = shutil.which("cc") or shutil.which("gcc")
_X86 = platform.machine() in ("x86_64", "AMD64", "i686", "i386")


@pytest.mark.skipif(
    _CC is None or not _X86,
    reason="needs a C compiler and TSO (x86) hardware",
)
class TestRealHardwareLoop:
    """The full Fig. 1 loop with the host machine as the platform."""

    def test_compile_run_check(self, tmp_path):
        program = generate_program(
            c11_generator_config(nprocs=4, ops_per_proc=60, shared_words=6),
            seed=7,
        )
        source = tmp_path / "test.c"
        binary = tmp_path / "test"
        source.write_text(emit_c11(program))
        subprocess.run(
            [_CC, "-O2", "-pthread", "-Wall", "-Werror", str(source),
             "-o", str(binary)],
            check=True, capture_output=True,
        )
        for run in range(3):
            output = subprocess.run(
                [str(binary)], check=True, capture_output=True, text=True,
                timeout=60,
            ).stdout
            execution = Execution.load(output)
            assert execution.nprocs == 4
            result = check_execution(execution, initial=program.initial)
            assert result.ok, (
                "real x86 hardware flagged as TSO-violating?!\n"
                + result.explain()
            )

    def test_run_has_real_concurrency_effects(self, tmp_path):
        # Two runs of a racy binary rarely produce identical traces;
        # tolerate the unlucky case by trying a few times.
        program = generate_program(
            c11_generator_config(nprocs=4, ops_per_proc=120, shared_words=4),
            seed=8,
        )
        source = tmp_path / "test.c"
        binary = tmp_path / "test"
        source.write_text(emit_c11(program))
        subprocess.run(
            [_CC, "-O2", "-pthread", str(source), "-o", str(binary)],
            check=True, capture_output=True,
        )
        outputs = {
            subprocess.run(
                [str(binary)], check=True, capture_output=True, text=True,
                timeout=60,
            ).stdout
            for _ in range(6)
        }
        if len(outputs) == 1:
            pytest.skip("scheduler produced identical interleavings")
        assert len(outputs) > 1
