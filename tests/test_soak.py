"""Soak test: exotic machine/generator configurations, end to end.

The per-module suites exercise features in isolation; this file sweeps
combined configurations — PSO draining with hardware prefetch, interrupt
storms over block operations, strided layouts with deep buffers — and
holds the one invariant that matters everywhere: the checker never flags
a legal machine's run.
"""

import pytest

from repro.core.api import check
from repro.core.policy import PSO, SC, TSO
from repro.generator.config import GeneratorConfig, InstructionMix
from repro.generator.generator import generate_program
from repro.sim.machine import MachineConfig, TsoMachine

EXOTIC_MIXES = {
    "block-heavy": InstructionMix(
        load=10, store=10, block_load=10, block_store=10, membar=3,
        swap=2, cas=2,
    ),
    "atomic-storm": InstructionMix(
        load=5, store=5, swap=20, cas=20, membar=5,
    ),
    "interrupt-storm": InstructionMix(
        load=15, store=15, interrupt=15, membar=5,
    ),
    "branchy-loops": InstructionMix(
        load=20, store=20, branch=15, membar=2,
    ),
    "oddballs": InstructionMix(
        load=10, store=10, nonfaulting_load=10, prefetch=10, flush=10,
        nc_load=5, nc_store=5,
    ),
}

EXOTIC_MACHINES = {
    "deep-buffer": MachineConfig(buffer_capacity=32, drain_bias=0.05),
    "shallow-buffer": MachineConfig(buffer_capacity=1, drain_bias=0.9),
    "pso+prefetch": MachineConfig(pso_mode=True, hw_prefetch=True),
    "sc+monitor": MachineConfig(sc_mode=True, enable_monitor=True),
    "writeback-tiny": MachineConfig(writeback=True, cache_lines=1),
    "writeback-prefetch": MachineConfig(
        writeback=True, cache_lines=2, hw_prefetch=True, enable_monitor=True
    ),
}


@pytest.mark.parametrize("mix_name", sorted(EXOTIC_MIXES))
@pytest.mark.parametrize("machine_name", sorted(EXOTIC_MACHINES))
def test_exotic_configurations_stay_sound(mix_name, machine_name):
    machine_config = EXOTIC_MACHINES[machine_name]
    model = PSO if machine_config.pso_mode else TSO
    for seed in range(3):
        config = GeneratorConfig(
            nprocs=4,
            ops_per_proc=50,
            shared_words=8,
            stride_words=4 if seed % 2 else 1,
            mix=EXOTIC_MIXES[mix_name],
            loop_prob=0.1 if mix_name == "branchy-loops" else 0.0,
        )
        program = generate_program(config, seed=seed)
        machine = TsoMachine(program, seed=seed, config=machine_config)
        execution = machine.run()
        result = check(program, execution, model=model)
        assert result.ok, (
            f"{mix_name}/{machine_name}/seed{seed}:\n" + result.explain()
        )
        if machine_config.enable_monitor:
            assert machine.monitor_alarms == []


def test_many_processors_few_words():
    # Sixteen CPUs hammering two words: maximal contention.
    config = GeneratorConfig(nprocs=16, ops_per_proc=25, shared_words=2)
    for seed in range(3):
        program = generate_program(config, seed=seed)
        execution = TsoMachine(program, seed=seed).run()
        assert check(program, execution).ok


def test_single_processor_is_trivially_sequential():
    # One CPU: every model accepts every golden run.
    config = GeneratorConfig(nprocs=1, ops_per_proc=120, shared_words=4)
    for seed in range(3):
        program = generate_program(config, seed=seed)
        execution = TsoMachine(program, seed=seed).run()
        for model in (SC, TSO, PSO):
            assert check(program, execution, model=model).ok


def test_wide_strides_isolate_lines():
    # Every word on its own cache line: no false sharing, prefetcher busy.
    config = GeneratorConfig(nprocs=4, ops_per_proc=60, shared_words=8,
                             stride_words=16)
    for seed in range(3):
        program = generate_program(config, seed=seed)
        machine = TsoMachine(
            program, seed=seed, config=MachineConfig(hw_prefetch=True)
        )
        assert check(program, machine.run()).ok
