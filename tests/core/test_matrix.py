"""Tests for the numpy bit-matrix engine."""

import numpy as np
import pytest

from repro.core.kernels import packed_bit as _bit, set_packed_bit as _set_bit
from repro.core.matrix import MatrixChecker
from repro.core.prep import iter_packed_bits


def _row_members(matrix, row, n):
    return iter_packed_bits(matrix[row])
from repro.core.policy import SC, TSO
from repro.core.result import ViolationKind
from repro.generator.litmus import LITMUS_LIBRARY, litmus_by_name
from tests.util import golden_run, litmus_aprog


class TestBitHelpers:
    def test_set_and_test_bits_across_word_boundaries(self):
        matrix = np.zeros((2, 3), dtype=np.uint64)
        for col in (0, 1, 63, 64, 65, 127, 130):
            assert not _bit(matrix, 1, col)
            _set_bit(matrix, 1, col)
            assert _bit(matrix, 1, col)
        assert not _bit(matrix, 0, 0)

    def test_row_members_round_trip(self):
        matrix = np.zeros((1, 4), dtype=np.uint64)
        cols = [0, 5, 63, 64, 100, 200, 255]
        for col in cols:
            _set_bit(matrix, 0, col)
        assert _row_members(matrix, 0, 256) == cols


class TestVerdicts:
    @pytest.mark.parametrize(
        "case", LITMUS_LIBRARY, ids=lambda c: c.name
    )
    def test_litmus_verdicts_match_expectations(self, case):
        for model_name, expect_ok in case.expect.items():
            model = {"TSO": TSO, "SC": SC}.get(model_name)
            if model is None:
                continue
            result = MatrixChecker(model).run(litmus_aprog(case.text))
            assert result.ok == expect_ok, (case.name, model_name)

    def test_fig3_cycle_witness(self):
        result = MatrixChecker().run(litmus_aprog(litmus_by_name("fig3").text))
        assert not result.ok
        assert result.violation.kind == ViolationKind.CYCLE
        names = {result.aprog.describe(n) for n in result.violation.cycle}
        assert "P0.0 S[B]#91" in names

    def test_golden_run_passes(self):
        program, execution, _machine = golden_run(seed=61)
        from repro.core.api import check

        assert check(program, execution, engine="matrix").ok

    def test_graph_attached_for_debug(self):
        result = MatrixChecker().run(litmus_aprog("P0: S[A]#1 ; L[A]=1"))
        assert result.graph is not None
        assert "node" in result.dump_graph()

    def test_stats_populated(self):
        result = MatrixChecker().run(
            litmus_aprog("P0: S[A]#1 ; M ; L[B]=0\nP1: S[B]#1 ; M ; L[A]=0")
        )
        assert not result.ok
        assert result.stats.static_edges > 0
        assert result.stats.iterations >= 1
