"""Randomized kernel-vs-scalar unit tests for ``repro.core.kernels``.

Every vectorized kernel ships with a pure-Python reference (the vck
engine's fallback path).  These tests drive both over the same randomly
generated DAGs, chain decompositions, and query batches and demand
bit-identical results — the contract that lets the vck engine swap the
scalar loops for array calls without changing a single verdict.
"""

import random
from types import SimpleNamespace

import pytest

from repro.core.closure import compute_closure
from repro.core.kernels import (
    HAVE_NUMPY,
    AddrSpanIndex,
    build_frontiers,
    build_frontiers_scalar,
    concat_ranges,
    concat_ranges_scalar,
    packed_bit,
    packed_closure,
    r6_spans,
    r6_spans_scalar,
    r7_spans,
    r7_spans_scalar,
    refresh_backward,
    refresh_forward,
    run_sweep,
    suppression_mask,
    suppression_mask_scalar,
    sweep_schedule,
)

np = pytest.importorskip("numpy") if HAVE_NUMPY else pytest.skip(
    "numpy not installed; kernel fast paths unavailable", allow_module_level=True
)

SEEDS = range(8)


def _random_dag(rng, n):
    """A random DAG over ``0..n-1`` whose identity order is topological."""
    pred = [[] for _ in range(n)]
    succ = [[] for _ in range(n)]
    for v in range(1, n):
        for u in rng.sample(range(v), min(v, rng.randrange(0, 4))):
            pred[v].append(u)
            succ[u].append(v)
    return pred, succ


def _random_chains(rng, n, k):
    """Assign every node a (chain, position) with positions increasing
    along the identity (topological) order within each chain."""
    chain_of = [rng.randrange(k) for _ in range(n)]
    counters = [0] * k
    pos_of = [0] * n
    for node in range(n):
        pos_of[node] = counters[chain_of[node]]
        counters[chain_of[node]] += 1
    return chain_of, pos_of


@pytest.mark.parametrize("seed", SEEDS)
def test_build_frontiers_matches_scalar(seed):
    rng = random.Random(seed)
    n, k = rng.randrange(2, 40), rng.randrange(1, 6)
    pred, succ = _random_dag(rng, n)
    chain_of, pos_of = _random_chains(rng, n, k)
    order = list(range(n))
    m_to, m_from = build_frontiers(n, k, order, pred, succ, chain_of, pos_of)
    rows_to, rows_from = build_frontiers_scalar(
        n, k, order, pred, succ, chain_of, pos_of
    )
    assert m_to.tolist() == rows_to
    assert m_from.tolist() == rows_from


@pytest.mark.parametrize("seed", SEEDS)
def test_refresh_matches_rebuild_after_edge_inserts(seed):
    # The delta refresh (per-node wavefront) and the level-scheduled
    # sweep must both reproduce exactly what a from-scratch build of the
    # post-insert graph computes.
    rng = random.Random(seed)
    n, k = rng.randrange(4, 40), rng.randrange(1, 6)
    pred, succ = _random_dag(rng, n)
    chain_of, pos_of = _random_chains(rng, n, k)
    order = list(range(n))
    m_to, m_from = build_frontiers(n, k, order, pred, succ, chain_of, pos_of)
    sweep_to = m_to.copy()
    sweep_from = m_from.copy()

    fwd_dirty, bwd_dirty = [], []
    for _ in range(rng.randrange(1, 5)):
        u = rng.randrange(n - 1)
        v = rng.randrange(u + 1, n)
        if v in succ[u]:
            continue
        succ[u].append(v)
        pred[v].append(u)
        # Mirror the vck engine: insertion does the shallow row merge
        # immediately; the refresh must still propagate past the merged
        # row even though its recompute shows no further change.
        np.maximum(m_to[v], m_to[u], out=m_to[v])
        np.minimum(m_from[u], m_from[v], out=m_from[u])
        np.maximum(sweep_to[v], sweep_to[u], out=sweep_to[v])
        np.minimum(sweep_from[u], sweep_from[v], out=sweep_from[u])
        fwd_dirty.append(v)
        bwd_dirty.append(u)

    want_to, want_from = build_frontiers(
        n, k, order, pred, succ, chain_of, pos_of
    )

    refresh_forward(m_to, order, pred, succ, fwd_dirty)
    refresh_backward(m_from, order, pred, succ, bwd_dirty)
    assert (m_to == want_to).all()
    assert (m_from == want_from).all()

    run_sweep(sweep_to, sweep_schedule(order, pred))
    rev = list(reversed(order))
    run_sweep(sweep_from, sweep_schedule(rev, succ), minimize=True)
    assert (sweep_to == want_to).all()
    assert (sweep_from == want_from).all()


@pytest.mark.parametrize("seed", SEEDS)
def test_concat_ranges_matches_scalar(seed):
    rng = random.Random(seed)
    m = rng.randrange(0, 12)
    starts = [rng.randrange(0, 50) for _ in range(m)]
    counts = [rng.randrange(0, 6) for _ in range(m)]
    got = concat_ranges(
        np.asarray(starts, dtype=np.int64), np.asarray(counts, dtype=np.int64)
    )
    assert got.tolist() == concat_ranges_scalar(starts, counts)


def _random_span_index(rng, n, k):
    """A fabricated per-address span index: each chain gets synthetic
    node ids at increasing positions, a random subset of chains holds
    stores of the address."""
    chain_nodes = []
    node = 0
    for _ in range(k):
        members = []
        for _ in range(rng.randrange(1, 8)):
            members.append(node)
            node += 1
        chain_nodes.append(members)
    entries = []
    for chain in rng.sample(range(k), rng.randrange(1, k + 1)):
        npos = len(chain_nodes[chain])
        positions = sorted(rng.sample(range(npos), rng.randrange(1, npos + 1)))
        entries.append((chain, positions))
    return AddrSpanIndex(entries, chain_nodes, n)


def _encode(index, rows):
    flat = []
    for row in rows:
        for j in range(len(index.chains)):
            flat.append(row[j] + j * index.stride)
    return np.asarray(flat, dtype=np.int64)


@pytest.mark.parametrize("seed", SEEDS)
def test_r6_spans_matches_scalar_across_rounds(seed):
    rng = random.Random(seed)
    n, k = 64, rng.randrange(2, 6)
    index = _random_span_index(rng, n, k)
    m = len(index.chains)
    items = rng.randrange(1, 5)
    marks_np = np.zeros(items * m, dtype=np.int64)
    marks_sc = [[0] * m for _ in range(items)]
    # Monotonically widen the (lo, hi] windows round over round, the way
    # moving frontiers do; the watermark must make each candidate appear
    # exactly once across the whole sequence.
    lo = [[-1] * m for _ in range(items)]
    hi = [[-1] * m for _ in range(items)]
    for _ in range(4):
        for row in hi:
            for j in range(m):
                row[j] = min(n, row[j] + rng.randrange(0, 4))
        for i, row in enumerate(lo):
            for j in range(m):
                row[j] = min(hi[i][j], max(row[j], rng.randrange(-1, 3)))
        pair, cand = r6_spans(index, _encode(index, lo), _encode(index, hi), marks_np)
        pairs_sc, cands_sc = r6_spans_scalar(index, lo, hi, marks_sc)
        got = ([], []) if pair is None else (pair.tolist(), cand.tolist())
        assert got == (pairs_sc, cands_sc)
    assert marks_np.tolist() == [x for row in marks_sc for x in row]


@pytest.mark.parametrize("seed", SEEDS)
def test_r7_spans_matches_scalar_across_rounds(seed):
    rng = random.Random(seed)
    n, k = 64, rng.randrange(2, 6)
    index = _random_span_index(rng, n, k)
    m = len(index.chains)
    items = rng.randrange(1, 5)
    seg_start = [0] + index.seg_end[:-1]
    marks_np = np.asarray(index.seg_end * items, dtype=np.int64).reshape(
        items, m
    ).flatten()
    marks_sc = [list(index.seg_end) for _ in range(items)]
    # R7 windows only extend downward (backward frontiers improve).
    lo = [[n + 1] * m for _ in range(items)]
    for _ in range(4):
        for row in lo:
            for j in range(m):
                row[j] = max(0, row[j] - rng.randrange(0, 4))
        pair, cand = r7_spans(index, _encode(index, lo), marks_np)
        pairs_sc, cands_sc = r7_spans_scalar(index, lo, marks_sc)
        got = ([], []) if pair is None else (pair.tolist(), cand.tolist())
        assert got == (pairs_sc, cands_sc)
    assert marks_np.tolist() == [x for row in marks_sc for x in row]
    assert all(
        mark >= start
        for row in marks_sc
        for mark, start in zip(row, seg_start)
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_suppression_mask_matches_scalar(seed):
    rng = random.Random(seed)
    n, k, t = 30, 4, 25
    from_rows = [[rng.randrange(0, n + 2) for _ in range(k)] for _ in range(n)]
    nodes = [rng.randrange(n) for _ in range(t)]
    chains = [rng.randrange(k) for _ in range(t)]
    limits = [rng.randrange(-1, n + 2) for _ in range(t)]
    got = suppression_mask(
        np.asarray(from_rows, dtype=np.int64),
        np.asarray(nodes, dtype=np.int64),
        np.asarray(chains, dtype=np.int64),
        np.asarray(limits, dtype=np.int64),
    )
    assert got.tolist() == suppression_mask_scalar(from_rows, nodes, chains, limits)


@pytest.mark.parametrize("seed", SEEDS)
def test_packed_closure_matches_python_int_bitsets(seed):
    rng = random.Random(seed)
    n = rng.randrange(2, 90)  # straddles the 64-bit word boundary
    pred, succ = _random_dag(rng, n)
    order = list(range(n))
    graph = SimpleNamespace(n=n, pred=pred, succ=succ)
    want_from, want_to = compute_closure(graph, order)
    reach_from, reach_to = packed_closure(n, order, succ, pred)
    for u in range(n):
        for v in range(n):
            assert packed_bit(reach_from, u, v) == bool(want_from[u] >> v & 1)
            assert packed_bit(reach_to, u, v) == bool(want_to[u] >> v & 1)
