"""The Fig. 5 incompleteness story and the complete decision procedure.

The polynomial algorithm is sound but incomplete (Sec. 4): it never
enforces the Order axiom.  These tests pin down both halves:

* the base Fig. 5 outcome is legal, and the fixed point indeed leaves
  ``S[A]#1`` / ``S[A]#2`` unordered;
* the mirrored extension is a genuine violation (the complete procedure
  proves it) that the polynomial checker accepts — the documented miss.
"""

import pytest

from repro.core.checker import BaselineChecker, observed_edges
from repro.core.closure import ClosureChecker, compute_closure, topological_order
from repro.core.complete import complete_check
from repro.core.graph import ConstraintGraph
from repro.core.policy import TSO, static_edges
from repro.core.result import EdgeReason
from repro.generator.litmus import litmus_by_name
from tests.util import describe_map, litmus_aprog

BASE = litmus_by_name("fig5_base").text
MIRRORED = litmus_by_name("fig5_mirrored").text


def _fixed_point_graph(aprog):
    """Run the baseline rules to fixed point, returning the graph."""
    from repro.core.result import CheckStats

    checker = BaselineChecker(TSO)
    graph = ConstraintGraph(aprog)
    for u, v, rule in static_edges(aprog, TSO):
        graph.add_edge(u, v, EdgeReason(rule))
    for u, v, reason, _rule in observed_edges(aprog):
        graph.add_edge(u, v, reason)
    assert checker._fixed_point(aprog, graph, CheckStats(nodes=aprog.n)) is None
    return graph


class TestFig5Base:
    def test_polynomial_checkers_accept(self):
        for engine in (BaselineChecker, ClosureChecker):
            assert engine().run(litmus_aprog(BASE)).ok

    def test_complete_procedure_accepts(self):
        result = complete_check(litmus_aprog(BASE))
        assert result.decided and result.valid is True

    def test_a_stores_left_unordered_at_fixed_point(self):
        # The paper's point: S[A]#1 and S[A]#2 stay unordered although
        # the Order axiom implies S[A]#1 <= S[A]#2.
        aprog = litmus_aprog(BASE)
        graph = _fixed_point_graph(aprog)
        ids = describe_map(aprog)
        s1 = ids["P2.0 S[A]#1"]
        s2 = ids["P0.2 S[A]#2"]
        order = topological_order(graph)
        assert order is not None
        reach_from, _ = compute_closure(graph, order)
        assert not (reach_from[s1] >> s2) & 1
        assert not (reach_from[s2] >> s1) & 1

    def test_b_stores_left_unordered_at_fixed_point(self):
        aprog = litmus_aprog(BASE)
        graph = _fixed_point_graph(aprog)
        ids = describe_map(aprog)
        b3 = ids["P1.0 S[B]#3"]
        b4 = ids["P0.0 S[B]#4"]
        order = topological_order(graph)
        reach_from, _ = compute_closure(graph, order)
        assert not (reach_from[b3] >> b4) & 1
        assert not (reach_from[b4] >> b3) & 1

    def test_every_witness_orders_s1_before_s2(self):
        # Ground truth for the paper's reasoning: in any valid total
        # order, S[A]#1 <= S[A]#2.
        aprog = litmus_aprog(BASE)
        result = complete_check(aprog)
        ids = describe_map(aprog)
        s1 = ids["P2.0 S[A]#1"]
        s2 = ids["P0.2 S[A]#2"]
        witness = result.witness
        assert witness.index(s1) < witness.index(s2)


class TestFig5Mirrored:
    def test_polynomial_checkers_miss_the_violation(self):
        for engine in (BaselineChecker, ClosureChecker):
            assert engine().run(litmus_aprog(MIRRORED)).ok

    def test_complete_procedure_rejects(self):
        result = complete_check(litmus_aprog(MIRRORED))
        assert result.decided and result.valid is False

    def test_incompleteness_gap_is_exactly_the_order_axiom(self):
        # Once either ordering of the two A-stores is pinned down with an
        # observer thread, the polynomial checker finds the cycle: the
        # only missing ingredient was the store total order.
        pinned = MIRRORED + "\nP4: L[A]=1 ; L[A]=2\n"
        result = ClosureChecker().run(litmus_aprog(pinned))
        assert not result.ok
        pinned_rev = MIRRORED + "\nP4: L[A]=2 ; L[A]=1\n"
        result_rev = ClosureChecker().run(litmus_aprog(pinned_rev))
        assert not result_rev.ok


class TestCompleteProcedure:
    def test_rejects_what_polynomial_rejects(self):
        # Soundness consistency on the paper's violating examples.
        for name in ("fig3", "fig6", "fig7", "SB+membars", "MP", "IRIW"):
            aprog = litmus_aprog(litmus_by_name(name).text)
            result = complete_check(aprog)
            assert result.decided and result.valid is False, name

    def test_accepts_legal_outcomes_with_witness(self):
        for name in ("SB", "store-forwarding", "CoRR-ok"):
            aprog = litmus_aprog(litmus_by_name(name).text)
            result = complete_check(aprog)
            assert result.decided and result.valid is True, name
            assert result.witness is not None

    def test_witness_is_a_permutation_of_all_ops(self):
        aprog = litmus_aprog(litmus_by_name("SB").text)
        result = complete_check(aprog)
        assert sorted(result.witness) == list(range(aprog.n))

    def test_witness_respects_program_order_constraints(self):
        aprog = litmus_aprog(litmus_by_name("store-forwarding").text)
        result = complete_check(aprog)
        position = {node: i for i, node in enumerate(result.witness)}
        # Load-load program order must hold in the witness.
        for stream in aprog.per_proc:
            loads = [op for op in stream if aprog.ops[op].is_load]
            for earlier, later in zip(loads, loads[1:]):
                assert position[earlier] < position[later]

    def test_budget_exhaustion_reports_undecided(self):
        aprog = litmus_aprog(MIRRORED)
        result = complete_check(aprog, max_states=3)
        assert not result.decided and result.valid is None

    def test_precheck_failure_is_invalid(self):
        aprog = litmus_aprog("P0: L[A]=77")  # value never written
        result = complete_check(aprog)
        assert result.decided and result.valid is False
