"""Tests for the public one-call API and result objects."""

import pytest

from repro.core.api import ENGINES, check, check_execution, check_litmus, make_checker
from repro.core.kernels import HAVE_NUMPY
from repro.core.policy import SC, TSO
from repro.core.result import (
    CheckResult,
    CheckStats,
    EdgeReason,
    Violation,
    ViolationKind,
)
from repro.model.trace import Execution
from tests.util import golden_run


class TestMakeChecker:
    def test_engines_registered(self):
        expected = {"baseline", "closure", "stream", "vc", "vck"}
        if HAVE_NUMPY:
            expected.add("matrix")
        assert set(ENGINES) == expected

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            make_checker(TSO, "quantum")

    def test_model_threaded_through(self):
        checker = make_checker(SC, "baseline")
        assert checker.model is SC


class TestCheck:
    def test_check_uses_program_initial_values(self):
        program, execution, _machine = golden_run(seed=11)
        result = check(program, execution)
        assert result.ok
        assert result.model_name == "TSO"

    def test_check_execution_standalone_roundtrip(self):
        # The Sec. 3.3 standalone interface: dump, reload, re-check.
        program, execution, _machine = golden_run(seed=12)
        reloaded = Execution.load(execution.dump())
        result = check_execution(reloaded, initial=program.initial)
        assert result.ok

    def test_what_if_edit_flips_verdict(self):
        # Sec. 3.4: edit one load value in the dumped trace and re-run
        # the analyzer.
        program, execution, _machine = golden_run(seed=13)
        text = execution.dump()
        assert "loaded=" in text
        # Corrupt the first loaded value to one nothing ever wrote.
        import re

        corrupted = re.sub(r"loaded=(-?\d+)", "loaded=999999999", text, count=1)
        result = check_execution(Execution.load(corrupted), initial=program.initial)
        assert not result.ok
        assert result.violation.kind in (
            ViolationKind.UNMAPPED_VALUE,
            ViolationKind.CYCLE,
        )

    def test_check_litmus_parses_and_checks(self):
        assert check_litmus("P0: S[A]#1 ; L[A]=1").ok
        assert not check_litmus("P0: S[A]#1 ; S[A]#2\nP1: L[A]=2 ; L[A]=1").ok


class TestResultObjects:
    def test_stats_edge_total(self):
        stats = CheckStats(static_edges=3, observed_edges=2, inferred_edges=5)
        assert stats.edges == 10

    def test_stats_to_dict_is_json_safe(self):
        import json

        stats = CheckStats(
            nodes=4, static_edges=3, observed_edges=2, inferred_edges=5,
            iterations=2, seconds=0.5, closure_rebuilds=3,
        )
        d = json.loads(json.dumps(stats.to_dict()))
        assert d["nodes"] == 4
        assert d["closure_rebuilds"] == 3
        assert d["seconds"] == 0.5

    def test_closure_rebuilds_counted_by_closure_engines(self):
        program, execution, _machine = golden_run(seed=11)
        for engine in ("closure", "matrix"):
            result = check(program, execution, engine=engine)
            assert result.stats.closure_rebuilds >= 1
        baseline = check(program, execution, engine="baseline")
        assert baseline.stats.closure_rebuilds == 0
        # The incremental engine builds its closure exactly once.
        vc = check(program, execution, engine="vc")
        assert vc.stats.closure_rebuilds == 1

    def test_explain_pass_is_one_line(self):
        result = check_litmus("P0: S[A]#1 ; L[A]=1")
        assert "\n" not in result.explain()
        assert "PASS" in result.explain()

    def test_edge_reason_render(self):
        assert EdgeReason("R4").render() == "R4"
        assert EdgeReason("R5", "why").render() == "R5: why"

    def test_to_dot_requires_aprog(self):
        result = CheckResult(ok=False, model_name="TSO", engine="closure")
        with pytest.raises(ValueError):
            result.to_dot()

    def test_precheck_violation_surfaces_messages(self):
        result = check_litmus("P0: L[A]=42")
        assert not result.ok
        assert result.violation.kind == ViolationKind.UNMAPPED_VALUE
        assert "42" in result.violation.message
