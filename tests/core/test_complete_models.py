"""The complete decision procedure under SC and PSO, plus internals.

``complete_check`` takes the same ordering policy as the polynomial
checker; the SC case needs no special-casing of the Value axiom's
store-buffer term because SC's store→load static edges force every own
store to be placed before the loads that follow it — the buffer branch
simply never fires.
"""

import pytest

from repro.core.axioms import verify_witness
from repro.core.complete import complete_check
from repro.core.policy import PSO, SC, TSO
from repro.generator.litmus import litmus_by_name
from tests.util import litmus_aprog

SB = litmus_by_name("SB").text
MP = litmus_by_name("MP").text
S_SHAPE = litmus_by_name("S").text


class TestAcrossModels:
    def test_sb_valid_tso_invalid_sc(self):
        aprog = litmus_aprog(SB)
        assert complete_check(aprog, model=TSO).valid is True
        assert complete_check(aprog, model=SC).valid is False

    def test_sb_witness_satisfies_tso_axioms(self):
        aprog = litmus_aprog(SB)
        result = complete_check(aprog, model=TSO)
        assert verify_witness(aprog, result.witness, model=TSO) == []
        # ...and that same witness must violate SC somewhere.
        assert verify_witness(aprog, result.witness, model=SC) != []

    def test_mp_invalid_tso_valid_pso(self):
        aprog = litmus_aprog(MP)
        assert complete_check(aprog, model=TSO).valid is False
        result = complete_check(aprog, model=PSO)
        assert result.valid is True
        assert verify_witness(aprog, result.witness, model=PSO) == []

    def test_s_shape_valid_only_under_pso(self):
        aprog = litmus_aprog(S_SHAPE)
        assert complete_check(aprog, model=TSO).valid is False
        assert complete_check(aprog, model=PSO).valid is True

    def test_store_forwarding_needs_the_buffer_term(self):
        text = litmus_by_name("store-forwarding").text
        aprog = litmus_aprog(text)
        assert complete_check(aprog, model=TSO).valid is True
        assert complete_check(aprog, model=SC).valid is False


class TestInternals:
    def test_atomic_groups_collapse_to_units(self):
        from repro.core.complete import _Search, _closure_constraints

        aprog = litmus_aprog("init A=0\nP0: SWAP[A]=0,#1\nP1: L[A]=1")
        flagged, reach_to = _closure_constraints(aprog, TSO)
        assert not flagged
        search = _Search(aprog, reach_to, max_states=1000)
        # swap (2 ops) is one unit; the load is another; roots separate.
        assert len(search.units) == 2
        assert sorted(len(u) for u in search.units) == [1, 2]

    def test_witness_places_roots_first(self):
        aprog = litmus_aprog("P0: S[A]#1 ; L[A]=1\nP1: S[B]#2")
        result = complete_check(aprog)
        roots = set(aprog.roots.values())
        assert set(result.witness[: len(roots)]) == roots

    def test_explored_counter_grows_with_difficulty(self):
        easy = complete_check(litmus_aprog("P0: S[A]#1 ; L[A]=1"))
        hard = complete_check(litmus_aprog(litmus_by_name("fig5_mirrored").text))
        assert hard.explored > easy.explored

    def test_polynomial_flag_shortcuts_search(self):
        # A poly-detected violation must return immediately (0 states).
        aprog = litmus_aprog(litmus_by_name("fig3").text)
        result = complete_check(aprog)
        assert result.valid is False
        assert result.explored == 0

    def test_max_states_one_still_decides_trivial(self):
        aprog = litmus_aprog("P0: S[A]#1")
        result = complete_check(aprog, max_states=1)
        assert result.decided and result.valid is True
