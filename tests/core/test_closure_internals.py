"""Unit tests for the closure engine's building blocks and graph dump."""

import pytest

from repro.core.closure import compute_closure, iter_bits, topological_order
from repro.core.graph import ConstraintGraph
from repro.core.result import EdgeReason
from repro.core.api import check_litmus
from tests.util import litmus_aprog

R = EdgeReason("test")


class TestIterBits:
    def test_empty(self):
        assert list(iter_bits(0)) == []

    def test_single_bits(self):
        for position in (0, 1, 63, 64, 130):
            assert list(iter_bits(1 << position)) == [position]

    def test_increasing_order(self):
        mask = (1 << 3) | (1 << 70) | (1 << 5) | (1 << 200)
        assert list(iter_bits(mask)) == [3, 5, 70, 200]

    def test_dense_word(self):
        assert list(iter_bits(0b1111)) == [0, 1, 2, 3]


class TestTopologicalOrder:
    def _graph(self, n_text, edges):
        aprog = litmus_aprog(n_text)
        graph = ConstraintGraph(aprog)
        for u, v in edges:
            graph.add_edge(u, v, R)
        return graph

    def test_respects_edges(self):
        graph = self._graph("P0: S[A]#1 ; S[B]#2 ; S[A]#3", [(1, 3), (3, 2)])
        order = topological_order(graph)
        assert order is not None
        position = {node: i for i, node in enumerate(order)}
        assert position[1] < position[3] < position[2]

    def test_cycle_returns_none(self):
        graph = self._graph("P0: S[A]#1 ; S[B]#2", [(1, 2), (2, 1)])
        assert topological_order(graph) is None

    def test_all_nodes_present(self):
        graph = self._graph("P0: S[A]#1 ; S[B]#2", [])
        order = topological_order(graph)
        assert sorted(order) == list(range(graph.n))


class TestComputeClosure:
    def test_reachability_both_directions(self):
        aprog = litmus_aprog("P0: S[A]#1 ; S[B]#2 ; S[A]#3")
        graph = ConstraintGraph(aprog)
        graph.add_edge(1, 2, R)
        graph.add_edge(2, 3, R)
        order = topological_order(graph)
        reach_from, reach_to = compute_closure(graph, order)
        assert (reach_from[1] >> 3) & 1  # 1 reaches 3 transitively
        assert (reach_to[3] >> 1) & 1
        assert not (reach_from[3] >> 1) & 1
        # Reflexive by construction.
        for node in range(graph.n):
            assert (reach_from[node] >> node) & 1
            assert (reach_to[node] >> node) & 1


class TestGraphDump:
    def test_dump_lists_nodes_edges_and_cycle(self):
        result = check_litmus("P0: S[A]#1 ; S[A]#2\nP1: L[A]=2 ; L[A]=1")
        text = result.dump_graph()
        assert text.splitlines()[0].startswith("# tsotool analysis graph")
        assert "verdict=FAIL" in text
        assert "node 0" in text
        assert "edge " in text and "[R" in text
        assert "cycle " in text

    def test_pass_dump_has_no_cycle_line(self):
        result = check_litmus("P0: S[A]#1 ; L[A]=1")
        text = result.dump_graph()
        assert "verdict=PASS" in text
        assert "cycle " not in text

    def test_edge_count_matches_stats(self):
        result = check_litmus("P0: S[A]#1 ; M ; L[B]=0\nP1: S[B]#1")
        text = result.dump_graph()
        edge_lines = [l for l in text.splitlines() if l.startswith("edge ")]
        assert len(edge_lines) == result.stats.edges

    def test_all_engines_attach_graphs(self):
        for engine in ("closure", "baseline", "matrix", "vc"):
            result = check_litmus("P0: S[A]#1 ; L[A]=1", engine=engine)
            assert result.graph is not None
            assert "node" in result.dump_graph()
