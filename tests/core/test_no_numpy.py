"""The no-numpy fallback contract, tested for real.

numpy is an optional extra (``pip install repro[fast]``).  Without it
the ``matrix`` engine must disappear from the registry, ``vck`` must
stay registered and silently degrade to the shared scalar path, and
verdicts must not change.  Monkeypatching ``sys.modules`` in-process is
unreliable once numpy has been imported anywhere, so this runs a fresh
interpreter with numpy stubbed out of ``sys.modules`` before any repro
import (the standard ``sys.modules[name] = None`` import blocker).
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

_PROBE = textwrap.dedent(
    """
    import json
    import sys

    # Block numpy before any repro import: a None entry makes every
    # `import numpy` raise ImportError, exactly like an uninstalled
    # package.
    sys.modules["numpy"] = None

    from repro.core.api import ENGINES, check, check_litmus
    from repro.core.kernels import HAVE_NUMPY
    from repro.generator.config import GeneratorConfig
    from repro.generator.generator import generate_program
    from repro.sim.machine import TsoMachine

    FIG3 = '''
        P0: S[B]#91 ; S[A]#1 ; L[A]=2
        P1: S[A]#2
        P2: S[B]#92 ; L[A]=2 ; L[B]=92
        P3: L[B]=92 ; L[B]=91
    '''

    def strip(text):
        return "\\n".join(
            line for line in text.splitlines() if "engine=" not in line
        )

    vck = check_litmus(FIG3, engine="vck")
    vc = check_litmus(FIG3, engine="vc")

    program = generate_program(
        GeneratorConfig(nprocs=4, ops_per_proc=60, shared_words=4), seed=11
    )
    trace = TsoMachine(program, seed=11).run()
    clean_vck = check(program, trace, engine="vck")
    clean_vc = check(program, trace, engine="vc")

    print(json.dumps({
        "have_numpy": HAVE_NUMPY,
        "engines": sorted(ENGINES),
        "fig3_ok": vck.ok,
        "fig3_engine": vck.engine,
        "fig3_cycle": vck.violation.cycle,
        "fig3_explains_match": strip(vck.explain()) == strip(vc.explain()),
        "clean_ok": clean_vck.ok and clean_vc.ok,
        "clean_edges_match": clean_vck.stats.edges == clean_vc.stats.edges,
        "kernel_batches": clean_vck.stats.kernel_batches,
    }))
    """
)


def test_vck_falls_back_without_numpy():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.run(
        [sys.executable, "-c", _PROBE],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(proc.stdout)
    assert report["have_numpy"] is False
    assert "matrix" not in report["engines"]
    assert "vck" in report["engines"]
    # Fig. 3 must still fail, attributed to the vck engine, with the
    # same witness the scalar vc engine reports (the fallback *is* the
    # scalar path, so parity here is exact).
    assert report["fig3_ok"] is False
    assert report["fig3_engine"] == "vck"
    assert report["fig3_cycle"]
    assert report["fig3_explains_match"] is True
    # A clean golden run passes with identical inferred-edge counts, and
    # no kernel batches run (there are no kernels to run).
    assert report["clean_ok"] is True
    assert report["clean_edges_match"] is True
    assert report["kernel_batches"] == 0


@pytest.mark.skipif(
    not any(
        os.path.exists(os.path.join(p, "numpy"))
        for p in sys.path
        if p
    )
    and "numpy" not in sys.modules,
    reason="numpy not installed; fast path covered by the fallback test",
)
def test_vck_fast_path_counts_kernel_batches():
    # Counterpart smoke check in the numpy-enabled interpreter: the fast
    # path actually runs batches (telemetry counter is non-zero).
    pytest.importorskip("numpy")
    from repro.core.api import check
    from repro.generator.config import GeneratorConfig
    from repro.generator.generator import generate_program
    from repro.sim.machine import TsoMachine

    program = generate_program(
        GeneratorConfig(nprocs=4, ops_per_proc=60, shared_words=4), seed=11
    )
    trace = TsoMachine(program, seed=11).run()
    result = check(program, trace, engine="vck")
    assert result.ok
    assert result.stats.kernel_batches > 0
