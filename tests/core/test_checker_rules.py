"""Rule-level tests of the Fig. 2 algorithm (R4–R7), on hand-built traces.

Each test pins down one inference rule by constructing the smallest
outcome where the rule's edge is the difference between pass and fail.
"""

import pytest

from repro.core.api import check_litmus
from repro.core.checker import BaselineChecker, observed_edges, po_prev_stores
from repro.core.closure import ClosureChecker
from repro.core.result import ViolationKind
from tests.util import litmus_aprog

ENGINES = [BaselineChecker, ClosureChecker]


def _rules_of(text):
    aprog = litmus_aprog(text)
    return aprog, [(u, v, rule) for u, v, _r, rule in observed_edges(aprog)]


class TestR4:
    def test_r4_edge_for_cross_processor_read(self):
        aprog, edges = _rules_of("P0: S[A]#1\nP1: L[A]=1")
        store = aprog.per_proc[0][0]
        load = aprog.per_proc[1][0]
        assert (store, load, "R4") in edges

    def test_no_r4_edge_for_own_earlier_store(self):
        # The Value axiom lets a processor see its own buffered store
        # before it is globally visible, so no S <= L edge may be added.
        aprog, edges = _rules_of("P0: S[A]#1 ; L[A]=1")
        assert all(rule != "R4" for _u, _v, rule in edges)

    def test_r4_edge_for_initial_value_read(self):
        aprog, edges = _rules_of("P0: L[A]=0")
        root = aprog.roots[0]
        load = aprog.per_proc[0][0]
        assert (root, load, "R4") in edges

    def test_r4_edge_for_own_later_store_creates_violation(self):
        # Reading a value one's own *later* store will write: R4 adds the
        # store <= load edge, LoadOp adds load <= store — a cycle.
        for engine in ENGINES:
            result = engine().run(litmus_aprog("P0: L[A]=1 ; S[A]#1"))
            assert not result.ok
            assert result.violation.kind == ViolationKind.CYCLE


class TestR5:
    def test_po_prev_stores_map(self):
        aprog = litmus_aprog("P0: S[A]#1 ; S[A]#2 ; L[A]=2 ; L[B]=0")
        prev = po_prev_stores(aprog)
        load_a = aprog.per_proc[0][2]
        load_b = aprog.per_proc[0][3]
        s2 = aprog.per_proc[0][1]
        assert prev[load_a] == s2
        assert load_b not in prev

    def test_r5_orders_overwritten_store_before_observed(self):
        # P0's load skips its own last store and reads P1's value: the own
        # store must be ordered before the observed one.
        aprog, edges = _rules_of("P0: S[A]#1 ; L[A]=2\nP1: S[A]#2")
        own = aprog.per_proc[0][0]
        other = aprog.per_proc[1][0]
        assert (own, other, "R5") in edges

    def test_r5_detects_lost_own_store(self):
        # A processor that stores and then reads the *initial* value: R5
        # orders its store before the root store, closing a cycle with
        # the init edge.
        for engine in ENGINES:
            result = engine().run(litmus_aprog("P0: S[A]#1 ; L[A]=0"))
            assert not result.ok

    def test_no_r5_edge_when_reading_own_store(self):
        aprog, edges = _rules_of("P0: S[A]#1 ; L[A]=1")
        assert all(rule != "R5" for _u, _v, rule in edges)


class TestR6:
    # R6: any same-address store predecessor of L precedes map(L).
    TEXT = """
        P0: S[A]#1 ; M ; L[A]=2
        P1: S[A]#2
    """

    @pytest.mark.parametrize("engine", ENGINES)
    def test_r6_outcome_is_legal(self, engine):
        # S1 <= L (membar), L observed S2, so R6 infers S1 <= S2 — which
        # is satisfiable; the run passes.
        assert engine().run(litmus_aprog(self.TEXT)).ok

    @pytest.mark.parametrize("engine", ENGINES)
    def test_r6_cycle_when_observation_contradicts(self, engine):
        # Second observer sees the two stores in the opposite order:
        # R6 derives both S1 <= S2 and S2 <= S1.
        text = """
            P0: S[A]#1
            P1: S[A]#2
            P2: L[A]=1 ; L[A]=2
            P3: L[A]=2 ; L[A]=1
        """
        result = engine().run(litmus_aprog(text))
        assert not result.ok
        if isinstance(engine(), ClosureChecker):
            # The closure engine's witness is the first closing edge —
            # an R6 inference; the baseline may surface another cycle.
            cycle_rules = {r.rule for r in result.violation.reasons}
            assert "R6" in cycle_rules


class TestR7:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_r7_detects_fenced_store_buffering(self, engine):
        # SB with membars: both loads read the initial value; R7 places
        # each load before the other processor's store, closing the cycle
        # through the membars.
        text = """
            P0: S[A]#1 ; M ; L[B]=0
            P1: S[B]#1 ; M ; L[A]=0
        """
        result = engine().run(litmus_aprog(text))
        assert not result.ok

    @pytest.mark.parametrize("engine", ENGINES)
    def test_r7_spares_unfenced_store_buffering(self, engine):
        text = """
            P0: S[A]#1 ; L[B]=0
            P1: S[B]#1 ; L[A]=0
        """
        assert engine().run(litmus_aprog(text)).ok

    @pytest.mark.parametrize("engine", ENGINES)
    def test_r7_iriw(self, engine):
        # IRIW needs two chained R7 inferences — exercises the fixed point.
        text = """
            P0: S[A]#1
            P1: S[B]#1
            P2: L[A]=1 ; L[B]=0
            P3: L[B]=1 ; L[A]=0
        """
        result = engine().run(litmus_aprog(text))
        assert not result.ok


class TestFixedPoint:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_iteration_count_reported(self, engine):
        result = engine().run(litmus_aprog("P0: S[A]#1 ; L[A]=1"))
        assert result.ok
        assert result.stats.iterations >= 1

    @pytest.mark.parametrize("engine", ENGINES)
    def test_stats_edges_partitioned(self, engine):
        result = engine().run(
            litmus_aprog("P0: S[A]#1 ; M ; L[A]=1 ; L[B]=0\nP1: S[B]#9 ; L[A]=1")
        )
        stats = result.stats
        assert stats.static_edges > 0
        assert stats.observed_edges > 0
        assert stats.edges == (
            stats.static_edges + stats.observed_edges + stats.inferred_edges
        )

    def test_inferred_rules_can_be_disabled(self):
        # The rule ablation: without R6/R7 the IRIW violation is missed.
        text = """
            P0: S[A]#1
            P1: S[B]#1
            P2: L[A]=1 ; L[B]=0
            P3: L[B]=1 ; L[A]=0
        """
        full = ClosureChecker().run(litmus_aprog(text))
        ablated = ClosureChecker(inferred_rules=False).run(litmus_aprog(text))
        assert not full.ok
        assert ablated.ok  # blind without the inferred edges
