"""Every litmus case in the library, across models and engines."""

import pytest

from repro.core.api import check_litmus
from repro.core.complete import complete_check
from repro.core.policy import PSO, SC, TSO
from repro.generator.litmus import LITMUS_LIBRARY, LitmusCase, litmus_by_name
from tests.util import litmus_aprog

MODELS = {"TSO": TSO, "SC": SC, "PSO": PSO}

CASES = [(case, model) for case in LITMUS_LIBRARY for model in case.expect]


@pytest.mark.parametrize(
    "case,model",
    CASES,
    ids=[f"{c.name}-{m}" for c, m in CASES],
)
@pytest.mark.parametrize("engine", ["closure", "baseline"])
def test_expected_verdict(case: LitmusCase, model: str, engine: str):
    result = check_litmus(case.text, model=MODELS[model], engine=engine)
    assert result.ok == case.expect[model], result.explain()


@pytest.mark.parametrize(
    "case",
    [c for c in LITMUS_LIBRARY if c.complete_valid is not None],
    ids=lambda c: c.name,
)
def test_complete_ground_truth(case: LitmusCase):
    aprog = litmus_aprog(case.text)
    result = complete_check(aprog)
    assert result.decided
    assert result.valid == case.complete_valid


def test_library_contains_all_paper_figures():
    names = {case.name for case in LITMUS_LIBRARY}
    assert {"fig3", "fig5_base", "fig5_mirrored", "fig6", "fig7"} <= names


def test_library_names_unique():
    names = [case.name for case in LITMUS_LIBRARY]
    assert len(names) == len(set(names))


def test_lookup_by_name():
    assert litmus_by_name("SB").name == "SB"
    with pytest.raises(KeyError):
        litmus_by_name("nope")


def test_tso_strictly_weaker_than_sc_on_library():
    # Anything SC accepts, TSO must accept (TSO admits more behaviours).
    for case in LITMUS_LIBRARY:
        if case.expect.get("SC") is True:
            assert (
                check_litmus(case.text, model=TSO).ok
            ), f"{case.name}: SC-legal outcome rejected under TSO"


def test_pso_weaker_than_tso_on_library():
    for case in LITMUS_LIBRARY:
        if case.expect.get("TSO") is True and "PSO" in case.expect:
            assert (
                check_litmus(case.text, model=PSO).ok
            ), f"{case.name}: TSO-legal outcome rejected under PSO"
