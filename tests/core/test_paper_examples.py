"""The paper's worked examples, verified edge by edge.

* Fig. 3/4 — the 4-processor outcome whose analysis infers edges E1–E10
  and finds the S[B]#91 / S[B]#92 cycle.
* Fig. 6 — the block-store vs swap write-cache bug.
* Fig. 7 — the CAS atomicity bug.
"""

import pytest

from repro.core.api import check_litmus
from repro.core.checker import BaselineChecker
from repro.core.closure import ClosureChecker
from repro.core.graph import ConstraintGraph
from repro.core.policy import TSO, static_edges
from repro.core.checker import observed_edges
from repro.core.result import EdgeReason, ViolationKind
from repro.generator.litmus import litmus_by_name
from tests.util import describe_map, litmus_aprog

ENGINES = [BaselineChecker, ClosureChecker]

FIG3 = litmus_by_name("fig3").text
FIG6 = litmus_by_name("fig6").text
FIG7 = litmus_by_name("fig7").text


class TestFig3:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_violation_detected(self, engine):
        result = engine().run(litmus_aprog(FIG3))
        assert not result.ok
        assert result.violation.kind == ViolationKind.CYCLE

    def test_cycle_is_between_the_two_b_stores(self):
        # The paper: "A cycle ... formed by edges E9 and E10 indicating a
        # conflicting order between S[B]#91 and S[B]#92".  The closure
        # engine stops at the first edge that closes a cycle, which is
        # exactly the paper's E9/E10 pair; the baseline engine may report
        # any of the equivalent cycles, so only the closure witness is
        # pinned down here.
        result = ClosureChecker().run(litmus_aprog(FIG3))
        names = {result.aprog.describe(n) for n in result.violation.cycle}
        assert "P0.0 S[B]#91" in names
        assert "P2.0 S[B]#92" in names

    def test_observed_edges_match_paper_e4_to_e8(self):
        aprog = litmus_aprog(FIG3)
        ids = describe_map(aprog)
        edges = {(u, v) for u, v, _r, _rule in observed_edges(aprog)}
        s_a1 = ids["P0.1 S[A]#1"]
        s_a2 = ids["P1.0 S[A]#2"]
        s_b91 = ids["P0.0 S[B]#91"]
        s_b92 = ids["P2.0 S[B]#92"]
        # E4..E7 (R4): each load is preceded by the store it observed.
        assert (s_a2, ids["P0.2 L[A]=2"]) in edges
        assert (s_a2, ids["P2.1 L[A]=2"]) in edges
        assert (s_b92, ids["P3.0 L[B]=92"]) in edges
        assert (s_b91, ids["P3.1 L[B]=91"]) in edges
        # The paper: "rule R4 does not create an edge from S[B]#92 to
        # L[B]=92 on [its own processor]".
        assert (s_b92, ids["P2.2 L[B]=92"]) not in edges
        # E8 (R5): P0's L[A]=2 after its own S[A]#1 orders S#1 <= S#2.
        assert (s_a1, s_a2) in edges

    def test_inferred_cycle_edges_use_r6(self):
        result = ClosureChecker().run(litmus_aprog(FIG3))
        rules = [r.rule for r in result.violation.reasons]
        assert all(rule == "R6" for rule in rules)


class TestFig6:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_violation_detected(self, engine):
        result = engine().run(litmus_aprog(FIG6))
        assert not result.ok

    def test_paper_reasoning_edges(self):
        # Rebuild the static+observed graph and verify the four relations
        # of the paper's Sec. 5.1 walkthrough.
        aprog = litmus_aprog(FIG6)
        ids = describe_map(aprog)
        bst = ids["P0.0 S[A]#1"]
        swap_load = ids["P1.0 L[A]=1"]
        swap_store = ids["P1.1 S[A]#2"]
        ld = ids["P1.2 L[A]=1"]
        graph = ConstraintGraph(aprog)
        for u, v, rule in static_edges(aprog, TSO):
            graph.add_edge(u, v, EdgeReason(rule))
        for u, v, reason, _rule in observed_edges(aprog):
            graph.add_edge(u, v, reason)
        # SWAP <= LD (program order through the atomic group).
        assert graph.has_edge(swap_load, swap_store)
        assert graph.shortest_path(swap_store, ld) or graph.has_edge(swap_store, ld)
        # BST <= SWAP and BST <= LD (rule R4; incoming edges land on the
        # group's first node).
        assert graph.has_edge(bst, swap_load)
        assert graph.shortest_path(bst, ld) is not None
        # SWAP <= BST (rule R5 on the BST-LD pair; outgoing edges leave
        # from the group's last node).
        assert graph.has_edge(swap_store, bst)
        # Those relations alone already close the cycle.
        assert graph.find_cycle() is not None


class TestFig7:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_violation_detected(self, engine):
        result = engine().run(litmus_aprog(FIG7))
        assert not result.ok

    @pytest.mark.parametrize("engine", ENGINES)
    def test_passes_when_one_cas_fails(self, engine):
        # If P1's CAS had failed (seen A=1 already), the outcome is legal.
        text = """
            init A=0 B=0
            P0: CAS[A]=0,#1 ; L[B]=0
            P1: CASF[B]=7
            P2: S[B]#7
        """
        assert engine().run(litmus_aprog(text)).ok

    def test_cycle_involves_both_cas_groups(self):
        result = ClosureChecker().run(litmus_aprog(FIG7))
        descs = {result.aprog.describe(n) for n in result.violation.cycle}
        procs = {d.split(".")[0] for d in descs}
        assert procs == {"P0", "P1"}


class TestExplainRendering:
    def test_explain_mentions_rules_and_operations(self):
        result = check_litmus(FIG3)
        text = result.explain()
        assert "FAIL" in text
        assert "S[B]#91" in text and "S[B]#92" in text
        assert "R6" in text

    def test_dot_output_marks_cycle(self):
        result = check_litmus(FIG3)
        dot = result.to_dot()
        assert dot.startswith("digraph")
        assert "color=red" in dot
        assert "S[B]#91" in dot
