"""Unit tests for the constraint graph: redirection, cycles, witnesses."""

import pytest

from repro.core.graph import ConstraintGraph, CycleDetected
from repro.core.result import EdgeReason
from tests.util import litmus_aprog

R = EdgeReason("test")


def _graph(text):
    aprog = litmus_aprog(text)
    return aprog, ConstraintGraph(aprog)


class TestAddEdge:
    def test_new_edge_returns_true_duplicate_false(self):
        _, g = _graph("P0: S[A]#1 ; S[B]#2")
        assert g.add_edge(1, 2, R) is True
        assert g.add_edge(1, 2, R) is False
        assert g.edge_count == 1

    def test_adjacency_both_directions(self):
        _, g = _graph("P0: S[A]#1 ; S[B]#2")
        g.add_edge(1, 2, R)
        assert 2 in g.succ[1]
        assert 1 in g.pred[2]
        assert g.has_edge(1, 2) and not g.has_edge(2, 1)

    def test_reason_recorded(self):
        _, g = _graph("P0: S[A]#1 ; S[B]#2")
        reason = EdgeReason("R4", "because")
        g.add_edge(1, 2, reason)
        assert g.reason_of(1, 2) is reason


class TestAtomicRedirection:
    def test_incoming_edge_lands_on_group_first(self):
        # SWAP expands to [load; store] — an atomic group.
        aprog, g = _graph("P0: S[A]#1\nP1: SWAP[A]=1,#2")
        store = aprog.per_proc[0][0]
        swap_load, swap_store = aprog.per_proc[1]
        g.add_edge(store, swap_store, R)
        assert g.has_edge(store, swap_load)
        assert not g.has_edge(store, swap_store)

    def test_outgoing_edge_leaves_from_group_last(self):
        aprog, g = _graph("P0: S[A]#1\nP1: SWAP[A]=1,#2")
        store = aprog.per_proc[0][0]
        swap_load, swap_store = aprog.per_proc[1]
        g.add_edge(swap_load, store, R)
        assert g.has_edge(swap_store, store)

    def test_intra_group_edge_not_redirected(self):
        aprog, g = _graph("P0: SWAP[A]=0,#1")
        swap_load, swap_store = aprog.per_proc[0]
        g.add_edge(swap_load, swap_store, R)
        assert g.has_edge(swap_load, swap_store)

    def test_group_to_group_redirection(self):
        aprog, g = _graph("P0: SWAP[A]=0,#1\nP1: SWAP[B]=0,#2")
        a_load, a_store = aprog.per_proc[0]
        b_load, b_store = aprog.per_proc[1]
        g.add_edge(a_load, b_store, R)
        # source -> last of A's group; dest -> first of B's group
        assert g.has_edge(a_store, b_load)


class TestCycles:
    def test_acyclic_graph_has_no_cycle(self):
        _, g = _graph("P0: S[A]#1 ; S[B]#2 ; S[A]#3")
        g.add_edge(0, 2, R)
        g.add_edge(2, 3, R)
        assert g.find_cycle() is None

    def test_two_node_cycle_found(self):
        _, g = _graph("P0: S[A]#1 ; S[B]#2")
        g.add_edge(1, 2, R)
        g.add_edge(2, 1, R)
        cycle = g.find_cycle()
        assert cycle is not None and sorted(cycle) == [1, 2]

    def test_longer_cycle_found(self):
        _, g = _graph("P0: S[A]#1 ; S[B]#2 ; S[A]#3 ; S[B]#4")
        g.add_edge(1, 2, R)
        g.add_edge(2, 3, R)
        g.add_edge(3, 4, R)
        g.add_edge(4, 1, R)
        cycle = g.find_cycle()
        assert cycle is not None and len(cycle) == 4

    def test_cycle_through_edge_witness(self):
        _, g = _graph("P0: S[A]#1 ; S[B]#2 ; S[A]#3")
        g.add_edge(1, 2, R)
        g.add_edge(2, 3, R)
        # Adding 3 -> 1 would close a cycle; build the witness for it.
        cycle = g.cycle_through_edge(3, 1)
        assert cycle == [1, 2, 3]

    def test_cycle_through_edge_requires_path(self):
        _, g = _graph("P0: S[A]#1 ; S[B]#2")
        with pytest.raises(ValueError):
            g.cycle_through_edge(1, 2)

    def test_shortest_path(self):
        _, g = _graph("P0: S[A]#1 ; S[B]#2 ; S[A]#3 ; S[B]#4")
        g.add_edge(1, 2, R)
        g.add_edge(2, 4, R)
        g.add_edge(1, 3, R)
        g.add_edge(3, 4, R)
        path = g.shortest_path(1, 4)
        assert path is not None and len(path) == 3 and path[0] == 1 and path[-1] == 4

    def test_shortest_path_absent(self):
        _, g = _graph("P0: S[A]#1 ; S[B]#2")
        assert g.shortest_path(1, 2) is None

    def test_cycle_reasons_align_with_edges(self):
        _, g = _graph("P0: S[A]#1 ; S[B]#2")
        g.add_edge(1, 2, EdgeReason("R6"))
        g.add_edge(2, 1, EdgeReason("R7"))
        reasons = g.cycle_reasons([1, 2])
        assert [r.rule for r in reasons] == ["R6", "R7"]
