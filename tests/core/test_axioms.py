"""The axiom verifier, and the correctness triangle it closes.

Three independent artifacts must agree:

* the polynomial checker (rules R1–R7),
* the exponential complete search (witness orders),
* this literal axiom verifier (no shared machinery with either).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.axioms import verify_witness
from repro.core.complete import complete_check
from repro.core.policy import PSO, SC, TSO
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.generator.litmus import LITMUS_LIBRARY
from repro.model.expansion import expand
from repro.sim.machine import MachineConfig, TsoMachine
from tests.util import PLAIN_MIX, litmus_aprog


class TestVerifierBasics:
    def test_accepts_a_trivial_valid_order(self):
        aprog = litmus_aprog("P0: S[A]#1 ; L[A]=1")
        # root, store, load — the obvious order.
        order = [aprog.roots[0], aprog.per_proc[0][0], aprog.per_proc[0][1]]
        assert verify_witness(aprog, order) == []

    def test_rejects_non_permutation(self):
        aprog = litmus_aprog("P0: S[A]#1 ; L[A]=1")
        problems = verify_witness(aprog, [0, 0, 1])
        assert problems and "permutation" in problems[0]

    def test_flags_storestore_reversal(self):
        aprog = litmus_aprog("P0: S[A]#1 ; S[B]#2")
        root_a, root_b = aprog.roots[0], aprog.roots[4]
        s1, s2 = aprog.per_proc[0]
        problems = verify_witness(aprog, [root_a, root_b, s2, s1])
        assert any("StoreStore" in p for p in problems)

    def test_storestore_reversal_fine_under_pso(self):
        aprog = litmus_aprog("P0: S[A]#1 ; S[B]#2")
        root_a, root_b = aprog.roots[0], aprog.roots[4]
        s1, s2 = aprog.per_proc[0]
        assert verify_witness(aprog, [root_a, root_b, s2, s1], model=PSO) == []

    def test_flags_value_axiom_break(self):
        aprog = litmus_aprog("P0: S[A]#1\nP1: L[A]=0")
        root = aprog.roots[0]
        store = aprog.per_proc[0][0]
        load = aprog.per_proc[1][0]
        # Load placed after the store, yet it returned the initial value.
        problems = verify_witness(aprog, [root, store, load])
        assert any("Value-axiom" in p for p in problems)
        # Placed before the store, the same outcome is fine.
        assert verify_witness(aprog, [root, load, store]) == []

    def test_store_buffer_term_honoured(self):
        # The load returns its own po-earlier store placed *after* it —
        # legal: the store is in the buffer.
        aprog = litmus_aprog("P0: S[A]#1 ; L[A]=1")
        root = aprog.roots[0]
        store, load = aprog.per_proc[0]
        assert verify_witness(aprog, [root, load, store]) == []

    def test_flags_atomicity_break(self):
        aprog = litmus_aprog("init A=0\nP0: SWAP[A]=0,#1\nP1: S[A]#5")
        root = aprog.roots[0]
        swap_load, swap_store = aprog.per_proc[0]
        foreign = aprog.per_proc[1][0]
        problems = verify_witness(
            aprog, [root, swap_load, foreign, swap_store]
        )
        assert any("Atomicity" in p for p in problems)

    def test_membar_pairs_always_preserved(self):
        aprog = litmus_aprog("P0: S[A]#1 ; M ; L[B]=0")
        root_a, root_b = aprog.roots[0], aprog.roots[4]
        store, membar, load = aprog.per_proc[0]
        problems = verify_witness(aprog, [root_a, root_b, load, membar, store])
        assert any("Membar" in p for p in problems)


class TestTriangle:
    @pytest.mark.parametrize(
        "case",
        [c for c in LITMUS_LIBRARY if c.complete_valid is True],
        ids=lambda c: c.name,
    )
    def test_complete_witnesses_satisfy_the_axioms(self, case):
        aprog = litmus_aprog(case.text)
        result = complete_check(aprog)
        assert result.valid is True
        assert verify_witness(aprog, result.witness) == [], case.name

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000))
    def test_witnesses_of_tiny_golden_runs_verify(self, seed):
        config = GeneratorConfig(
            nprocs=2, ops_per_proc=4, shared_words=2, mix=PLAIN_MIX
        )
        program = generate_program(config, seed=seed)
        execution = TsoMachine(program, seed=seed).run()
        aprog = expand(execution, initial=program.initial)
        result = complete_check(aprog, max_states=200_000)
        if not result.decided:
            return
        assert result.valid is True  # golden machine
        assert verify_witness(aprog, result.witness) == []

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000))
    def test_shuffles_that_verify_imply_polynomial_pass(self, seed):
        # Any random order the verifier accepts is a genuine witness, so
        # the (sound) polynomial checker must accept the outcome too.
        from repro.core.closure import ClosureChecker

        config = GeneratorConfig(
            nprocs=2, ops_per_proc=4, shared_words=2, mix=PLAIN_MIX
        )
        program = generate_program(config, seed=seed)
        execution = TsoMachine(program, seed=seed).run()
        aprog = expand(execution, initial=program.initial)
        rng = random.Random(seed)
        order = list(range(aprog.n))
        rng.shuffle(order)
        if verify_witness(aprog, order) == []:
            assert ClosureChecker().run(aprog).ok

    def test_sc_witness_stricter_than_tso(self):
        # An order valid under TSO thanks to the buffer term fails SC.
        aprog = litmus_aprog("P0: S[A]#1 ; L[A]=1")
        root = aprog.roots[0]
        store, load = aprog.per_proc[0]
        buffered = [root, load, store]
        assert verify_witness(aprog, buffered, model=TSO) == []
        assert verify_witness(aprog, buffered, model=SC) != []
