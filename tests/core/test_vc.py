"""Unit tests for the vector-clock engine's internals.

The engine-level verdicts are covered by the cross-engine agreement
suite in ``tests/test_properties.py``; these tests aim at the three
mechanisms that make the engine correct on their own:

* the chain decomposition (every node in exactly one chain, and chains
  really are paths in the static constraint graph);
* the frontier vectors (exact reachability, including after a batch of
  incremental insertions — the delta propagation must leave them
  identical to a from-scratch closure of the final graph);
* Pearce–Kelly local reordering (the maintained order stays a valid
  topological order under adversarial back-edge insertions, and a
  cycle-closing edge raises with the edge recorded for the witness).
"""

import pytest

from repro.core.closure import compute_closure, topological_order
from repro.core.graph import ConstraintGraph, CycleDetected
from repro.core.policy import PSO, SC, TSO, static_edges
from repro.core.result import CheckStats, EdgeReason
from repro.core.vc import VectorClockChecker, _Chains
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.model.expansion import expand
from repro.sim.machine import TsoMachine
from tests.util import litmus_aprog

R = EdgeReason("test")

MIXED = """
P0: S[A]#1 ; M ; L[B]=4 ; S[A]#2
P1: S[B]#3 ; S[B]#4 ; L[A]=2
P2: SWAP[A]=2,#5 ; L[B]=4
"""


def _prepared(text, model=TSO):
    """A checker with phase-1 state built (static edges only), exposing
    the incremental machinery for direct driving."""
    aprog = litmus_aprog(text)
    checker = VectorClockChecker(model)
    checker._stats = CheckStats(nodes=aprog.n)
    graph = ConstraintGraph(aprog)
    checker._graph = graph
    for u, v, rule in static_edges(aprog, model):
        graph.add_edge(u, v, EdgeReason(rule, "program order"))
    order = topological_order(graph)
    assert order is not None
    checker._chains = _Chains(aprog, model)
    checker._init_state(graph, order)
    return aprog, checker, graph


def _assert_topological(graph, ord_):
    for u in range(graph.n):
        for v in graph.succ[u]:
            assert ord_[u] < ord_[v], f"edge {u}->{v} violates the order"


def _assert_frontiers_exact(checker, graph):
    """Frontiers must answer reachability exactly like a from-scratch
    closure of the graph as it stands now."""
    order = topological_order(graph)
    assert order is not None
    reach_from, _ = compute_closure(graph, order)
    for u in range(graph.n):
        for v in range(graph.n):
            expected = bool((reach_from[u] >> v) & 1)
            assert checker._reaches(u, v) == expected, (u, v)


class TestChains:
    @pytest.mark.parametrize("model", [TSO, SC, PSO], ids=lambda m: m.name)
    def test_partition_and_path_property(self, model):
        aprog = litmus_aprog(MIXED)
        chains = _Chains(aprog, model)
        # Exactly one (chain, position) per node, positions consecutive.
        seen = set()
        for chain, members in enumerate(chains.nodes):
            for pos, node in enumerate(members):
                assert chains.chain_of[node] == chain
                assert chains.pos_of[node] == pos
                seen.add(node)
        assert seen == set(range(aprog.n))
        # Consecutive members must be connected by a static-edge path —
        # the property that makes a frontier entry an exact summary.
        graph = ConstraintGraph(aprog)
        for u, v, rule in static_edges(aprog, model):
            graph.add_edge(u, v, EdgeReason(rule, "program order"))
        reach_from, _ = compute_closure(graph, topological_order(graph))
        for members in chains.nodes:
            for earlier, later in zip(members, members[1:]):
                assert (reach_from[earlier] >> later) & 1, (earlier, later)

    def test_addr_store_index_is_complete_and_sorted(self):
        aprog = litmus_aprog(MIXED)
        chains = _Chains(aprog, TSO)
        indexed = set()
        for addr, slices in chains.addr_stores.items():
            for chain, positions in slices:
                assert positions == sorted(positions)
                for pos in positions:
                    node = chains.nodes[chain][pos]
                    assert aprog.ops[node].is_store
                    assert aprog.ops[node].addr == addr
                    indexed.add(node)
        assert indexed == {op.id for op in aprog.ops if op.is_store}

    def test_sc_merges_each_processor_into_one_chain(self):
        aprog = litmus_aprog("P0: S[A]#1 ; L[A]=1 ; S[B]#2\nP1: L[B]=2")
        chains = _Chains(aprog, SC)
        for stream in aprog.per_proc:
            assert len({chains.chain_of[node] for node in stream}) == 1

    def test_tso_splits_loads_and_stores(self):
        aprog = litmus_aprog("P0: S[A]#1 ; L[A]=1 ; S[B]#2 ; L[B]=2")
        chains = _Chains(aprog, TSO)
        ops = aprog.ops
        for stream in aprog.per_proc:
            loads = {chains.chain_of[n] for n in stream if ops[n].is_load}
            stores = {chains.chain_of[n] for n in stream if ops[n].is_store}
            assert len(loads) == 1 and len(stores) == 1
            assert loads != stores


class TestFrontiers:
    def test_initial_frontiers_match_closure(self):
        _, checker, graph = _prepared(MIXED)
        _assert_frontiers_exact(checker, graph)

    def test_frontiers_exact_after_incremental_insertions(self):
        aprog, checker, graph = _prepared(MIXED)
        stores = [op.id for op in aprog.ops if op.is_store and not op.is_root]
        # Cross-processor insertions, deliberately including order-hostile
        # ones; after every single insertion the delta propagation must
        # leave the frontiers indistinguishable from a full rebuild.
        pairs = [
            (u, v)
            for u in stores
            for v in stores
            if aprog.ops[u].proc != aprog.ops[v].proc
        ]
        inserted = 0
        for u, v in pairs:
            if checker._reaches(v, u):
                continue  # would close a cycle; adversarial cases below
            checker._add_edge(u, v, R)
            inserted += 1
            _assert_topological(graph, checker._ord)
            _assert_frontiers_exact(checker, graph)
        assert inserted >= 3

    def test_run_leaves_frontiers_matching_final_graph(self):
        config = GeneratorConfig(nprocs=3, ops_per_proc=12, shared_words=2)
        program = generate_program(config, seed=5)
        execution = TsoMachine(program, seed=5).run()
        aprog = expand(
            execution, initial=program.initial, word_names=program.word_names
        )
        checker = VectorClockChecker()
        result = checker.run(aprog)
        assert result.ok
        assert result.stats.closure_rebuilds == 1
        _assert_frontiers_exact(checker, result.graph)


class TestReorder:
    def test_back_edge_insertions_keep_order_valid(self):
        aprog, checker, graph = _prepared(
            "P0: S[A]#1 ; S[A]#2\nP1: S[B]#3 ; S[B]#4\nP2: S[C]#5 ; S[C]#6"
        )
        ord_ = checker._ord
        procs = [
            [op.id for op in aprog.ops if op.proc == pid and not op.is_root]
            for pid in range(3)
        ]
        # Chain the processors against the maintained order: insert the
        # cross-processor edge whose source currently sits *latest* so
        # every insertion is a back edge and must trigger reordering.
        first = {pid: stream[0] for pid, stream in enumerate(procs)}
        last = {pid: stream[-1] for pid, stream in enumerate(procs)}
        by_pos = sorted(range(3), key=lambda pid: ord_[first[pid]])
        before = checker._stats.reorder_visits
        checker._add_edge(last[by_pos[2]], first[by_pos[1]], R)
        _assert_topological(graph, checker._ord)
        checker._add_edge(last[by_pos[1]], first[by_pos[0]], R)
        _assert_topological(graph, checker._ord)
        assert checker._stats.reorder_visits > before
        _assert_frontiers_exact(checker, graph)

    def test_order_compatible_insert_visits_nothing(self):
        aprog, checker, _ = _prepared(
            "P0: S[A]#1 ; S[A]#2\nP1: S[B]#3 ; S[B]#4"
        )
        ord_ = checker._ord
        stores = [op.id for op in aprog.ops if op.is_store and not op.is_root]
        u, v = min(stores, key=ord_.__getitem__), max(stores, key=ord_.__getitem__)
        checker._add_edge(u, v, R)
        assert checker._stats.reorder_visits == 0

    def test_cycle_closing_edge_raises_with_edge_recorded(self):
        aprog, checker, graph = _prepared(
            "P0: S[A]#1 ; S[A]#2\nP1: S[B]#3 ; S[B]#4"
        )
        stores = {
            (op.proc, op.value): op.id
            for op in aprog.ops
            if op.is_store and not op.is_root
        }
        checker._add_edge(stores[(0, 2)], stores[(1, 3)], R)
        with pytest.raises(CycleDetected) as exc:
            checker._add_edge(stores[(1, 4)], stores[(0, 1)], R)
        # The closing edge is recorded before raising so the violation
        # witness can name its rule.
        assert graph.has_edge(exc.value.u, exc.value.v)
        cycle = graph.cycle_through_edge(exc.value.u, exc.value.v)
        assert cycle[0] == exc.value.v or exc.value.v in cycle

    def test_self_loop_raises(self):
        aprog, checker, _ = _prepared("P0: S[A]#1 ; S[A]#2")
        store = next(
            op.id for op in aprog.ops if op.is_store and not op.is_root
        )
        with pytest.raises(CycleDetected):
            checker._add_edge(store, store, R)

    def test_intra_group_reverse_edge_raises(self):
        # A swap's companion load precedes its store ("atomic" chain);
        # proposing the reverse relation must surface as a cycle.
        aprog, checker, _ = _prepared("P0: S[A]#1 ; SWAP[A]=1,#2")
        group_ops = [op.id for op in aprog.ops if op.group != -1]
        first, last = min(group_ops), max(group_ops)
        assert first != last
        with pytest.raises(CycleDetected):
            checker._add_edge(last, first, R)
