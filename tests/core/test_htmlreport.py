"""Tests for the Sec. 3.4 HTML debug report."""

import pytest

from repro.core.api import check_litmus
from repro.core.htmlreport import render_html
from repro.core.result import CheckResult
from repro.generator.litmus import litmus_by_name


class TestRenderHtml:
    @pytest.fixture(scope="class")
    def failing(self):
        return check_litmus(litmus_by_name("fig3").text)

    @pytest.fixture(scope="class")
    def passing(self):
        return check_litmus("P0: S[A]#1 ; L[A]=1\nP1: L[A]=1")

    def test_self_contained_document(self, failing):
        page = render_html(failing)
        assert page.startswith("<!doctype html>")
        assert page.endswith("</html>")
        assert "<script" not in page  # no JS needed
        assert "http" not in page.split("</title>")[1]  # no external assets

    def test_verdict_rendered(self, failing, passing):
        assert "FAIL" in render_html(failing)
        assert "verdict-fail" in render_html(failing)
        assert "PASS" in render_html(passing)
        assert "verdict-pass" in render_html(passing)

    def test_all_operations_listed_per_processor(self, failing):
        page = render_html(failing)
        for desc in ("P0.0 S[B]#91", "P2.2 L[B]=92", "P3.1 L[B]=91"):
            assert desc in page
        assert page.count("<div class='proc'>") == 5  # 4 procs + initials

    def test_cycle_nodes_highlighted(self, failing):
        page = render_html(failing)
        assert "cycle-node" in page
        assert "the cycle" in page

    def test_clickable_edges_carry_reasons(self, failing):
        page = render_html(failing)
        assert "<details class=\"cycle-edge\">" in page
        assert "Value axiom" in page
        assert "<summary>" in page

    def test_region_edges_present(self, failing):
        assert "other edges touching the cycle" in render_html(failing)

    def test_passing_small_graph_lists_all_edges(self, passing):
        page = render_html(passing)
        assert "all inferred edges" in page
        assert "R4" in page

    def test_html_escaping(self, failing):
        page = render_html(failing, title="<bad & title>")
        assert "<bad & title>" not in page
        assert "&lt;bad &amp; title&gt;" in page

    def test_requires_analysis_program(self):
        bare = CheckResult(ok=True, model_name="TSO", engine="closure")
        with pytest.raises(ValueError):
            render_html(bare)
