"""The Sec. 4 VSC→VTSO reduction, verified empirically.

"Every instance of a VSC-read problem can be trivially mapped to an
instance of the VTSO-read problem by inserting memory barriers after
every store which is succeeded by a load in program order."
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.api import check, check_execution
from repro.core.policy import SC, TSO
from repro.core.reduction import fence_count, vsc_to_vtso
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.generator.litmus import LITMUS_LIBRARY
from repro.model.ops import IMembar
from repro.model.program import parse_litmus
from repro.sim.machine import TsoMachine
from tests.test_properties import _corrupt
from tests.util import PLAIN_MIX


class TestConstruction:
    def test_fence_after_store_followed_by_load(self):
        _program, execution = parse_litmus("P0: S[A]#1 ; L[B]=0")
        transformed = vsc_to_vtso(execution)
        kinds = [type(r.instr).__name__ for r in transformed.records[0]]
        assert kinds == ["IStore", "IMembar", "ILoad"]

    def test_no_fence_when_no_later_load(self):
        _program, execution = parse_litmus("P0: L[A]=0 ; S[A]#1 ; S[B]#2")
        transformed = vsc_to_vtso(execution)
        assert not any(
            isinstance(r.instr, IMembar) for r in transformed.records[0]
        )

    def test_swap_counts_as_store(self):
        _program, execution = parse_litmus("P0: SWAP[A]=0,#1 ; L[B]=0")
        transformed = vsc_to_vtso(execution)
        kinds = [type(r.instr).__name__ for r in transformed.records[0]]
        assert kinds == ["ISwap", "IMembar", "ILoad"]

    def test_fence_count_metric(self):
        _program, execution = parse_litmus(
            "P0: S[A]#1 ; L[B]=0\nP1: S[B]#1 ; L[A]=0"
        )
        transformed = vsc_to_vtso(execution)
        assert fence_count(execution, transformed) == 2

    def test_original_untouched(self):
        _program, execution = parse_litmus("P0: S[A]#1 ; L[B]=0")
        before = [list(p) for p in execution.records]
        vsc_to_vtso(execution)
        assert execution.records == before


class TestReductionTheorem:
    def test_on_the_litmus_library(self):
        # For every case with an SC expectation, SC(original) must equal
        # TSO(transformed).
        for case in LITMUS_LIBRARY:
            if "SC" not in case.expect:
                continue
            program, execution = parse_litmus(case.text)
            sc_verdict = check(program, execution, model=SC).ok
            tso_verdict = check_execution(
                vsc_to_vtso(execution),
                initial=program.initial,
                word_names=program.word_names,
                model=TSO,
            ).ok
            assert sc_verdict == tso_verdict, case.name
            assert sc_verdict == case.expect["SC"], case.name

    def test_sb_is_the_canonical_witness(self):
        # Store buffering: TSO-legal, SC-illegal; after the reduction the
        # TSO checker rejects it too.
        program, execution = parse_litmus(
            "P0: S[A]#1 ; L[B]=0\nP1: S[B]#1 ; L[A]=0"
        )
        assert check(program, execution, model=TSO).ok
        assert not check(program, execution, model=SC).ok
        assert not check_execution(
            vsc_to_vtso(execution), initial=program.initial, model=TSO
        ).ok

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000), nprocs=st.integers(2, 4),
           ops=st.integers(5, 30), words=st.integers(1, 6))
    def test_equivalence_on_random_corrupted_runs(self, seed, nprocs, ops, words):
        config = GeneratorConfig(
            nprocs=nprocs, ops_per_proc=ops, shared_words=words, mix=PLAIN_MIX
        )
        program = generate_program(config, seed=seed)
        execution = TsoMachine(program, seed=seed).run()
        for trace in (execution, _corrupt(execution, seed)):
            sc_verdict = check(program, trace, model=SC).ok
            tso_verdict = check_execution(
                vsc_to_vtso(trace),
                initial=program.initial,
                word_names=program.word_names,
                model=TSO,
            ).ok
            assert sc_verdict == tso_verdict
