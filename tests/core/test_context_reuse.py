"""Checker-context reuse safety: reused scratch never changes verdicts.

A :class:`~repro.core.context.CheckContext` lends its buffers to every
check of a batch; the contract is that a checker must *never* trust
leftover contents — a check through a context that just analyzed a
different (larger, violating, differently-shaped) execution must return
exactly what a fresh checker returns, witness included.  Each engine is
exercised twice on the same reused context, interleaving executions so
buffer sizes both grow and shrink between checks.
"""

import pytest

from repro.core.api import ENGINES, check, make_checker
from repro.core.context import CheckContext, HAVE_NUMPY
from repro.core.policy import TSO
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.model.program import parse_litmus
from repro.sim.cpus import CPU_CONFIGS
from repro.sim.faults import StaleForwardFault
from repro.sim.machine import TsoMachine

FIG3 = """
    P0: S[B]#91 ; S[A]#1 ; L[A]=2
    P1: S[A]#2
    P2: S[B]#92 ; L[A]=2 ; L[B]=92
    P3: L[B]=92 ; L[B]=91
"""


def _cases():
    """(program, execution) pairs of varied size and verdict."""
    cases = [parse_litmus(FIG3)]
    big = generate_program(
        GeneratorConfig(nprocs=4, ops_per_proc=60, shared_words=4), seed=11
    )
    cases.append((big, TsoMachine(big, seed=11).run()))
    small = generate_program(
        GeneratorConfig(nprocs=2, ops_per_proc=20, shared_words=3), seed=7
    )
    cases.append((small, TsoMachine(small, seed=7).run()))
    # A genuinely violating simulated run (not just the litmus case).
    faulty = generate_program(
        GeneratorConfig(nprocs=3, ops_per_proc=50, shared_words=4), seed=3
    )
    for seed in range(3, 40):
        faulty = generate_program(
            GeneratorConfig(nprocs=3, ops_per_proc=50, shared_words=4),
            seed=seed,
        )
        trace = TsoMachine(
            faulty, seed=seed, faults=[StaleForwardFault()]
        ).run()
        if not check(faulty, trace).ok:
            cases.append((faulty, trace))
            break
    return cases


CASES = _cases()


class TestReuseParity:
    @pytest.mark.parametrize("engine", sorted(ENGINES))
    def test_fresh_vs_reused_verdict_and_witness(self, engine):
        """Every engine, twice through one reused context: verdicts and
        witnesses match the fresh-checker run case for case."""
        context = CheckContext()
        for _round in range(2):
            for program, execution in CASES:
                fresh = check(program, execution, engine=engine)
                reused = check(
                    program, execution, engine=engine, context=context
                )
                assert reused.ok == fresh.ok
                assert reused.explain() == fresh.explain()
                if fresh.violation is not None:
                    assert reused.violation is not None
                    assert reused.violation.kind == fresh.violation.kind
                    assert reused.violation.cycle == fresh.violation.cycle

    def test_context_shared_across_engines(self):
        """One context may serve every engine in turn — engines that
        can't use the buffers carry it inert, never corrupt it."""
        context = CheckContext()
        verdicts = {}
        for engine in sorted(ENGINES):
            for program, execution in CASES:
                result = check(
                    program, execution, engine=engine, context=context
                )
                verdicts.setdefault((id(program)), set()).add(result.ok)
        # Engines agree case for case even through the shared context.
        assert all(len(v) == 1 for v in verdicts.values())
        assert context.checks == len(ENGINES) * len(CASES)


class TestContextAccounting:
    def test_counters_track_checker_construction(self):
        context = CheckContext()
        for _ in range(3):
            make_checker(TSO, "vck", context=context)
        assert context.checks == 3

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy buffers")
    def test_buffers_allocated_once_for_stable_sizes(self):
        context = CheckContext()
        pair = context.frontier_pair(64, 8)
        assert pair is not None
        first_to = context._flat_to
        for _ in range(5):
            context.frontier_pair(64, 8)
        assert context._flat_to is first_to
        assert context.allocations == 1
        assert context.reuses == 5

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy buffers")
    def test_buffers_grow_then_serve_smaller_checks(self):
        context = CheckContext()
        context.frontier_pair(16, 4)
        context.frontier_pair(128, 16)   # grow
        assert context.allocations == 2
        m_to, m_from = context.frontier_pair(8, 2)  # shrink: reuse
        assert context.allocations == 2
        assert m_to.shape == (8, 2) and m_from.shape == (8, 2)

    def test_frontier_pair_without_numpy(self, monkeypatch):
        import repro.core.context as ctx_mod

        monkeypatch.setattr(ctx_mod, "HAVE_NUMPY", False)
        assert CheckContext().frontier_pair(16, 4) is None


class TestCampaignContextReuse:
    def test_reused_context_in_triage_matches_fresh(self):
        """The campaign-shaped reuse: several hunts' worth of checks
        through one scratch context, compared against fresh checks."""
        from repro.analysis.campaign import CampaignConfig, HuntScratch, hunt_bug
        from repro.service.store import hunt_digest

        config = CampaignConfig(
            tests_per_bug=2,
            generator=GeneratorConfig(
                nprocs=2, ops_per_proc=30, shared_words=4
            ),
        )
        cpu = CPU_CONFIGS[0]
        scratch = HuntScratch()
        for index, spec in enumerate(cpu.bugs):
            with_scratch = hunt_bug(
                spec, cpu.name, config, bug_index=index, scratch=scratch
            )
            without = hunt_bug(spec, cpu.name, config, bug_index=index)
            assert hunt_digest(with_scratch) == hunt_digest(without)
        if HAVE_NUMPY:
            assert scratch.context.checks > 0
