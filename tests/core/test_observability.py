"""Extra-observability checking (Sec. 3.2): store order closes the gap."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.api import check
from repro.core.observability import (
    ObservabilityChecker,
    check_with_store_order,
    store_order_edges,
)
from repro.core.policy import TSO
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.generator.litmus import litmus_by_name
from repro.model.program import parse_litmus
from repro.sim.faults import StoreBufferReorderFault
from repro.sim.machine import MachineConfig, TsoMachine
from tests.util import PLAIN_MIX, litmus_aprog


class TestStoreOrderEdges:
    def test_chains_consecutive_commits(self):
        aprog = litmus_aprog("P0: S[A]#1\nP1: S[B]#2")
        s_a = aprog.per_proc[0][0]
        s_b = aprog.per_proc[1][0]
        edges = store_order_edges(aprog, [(0, 1), (4, 2)])
        assert [(u, v) for u, v, _r in edges] == [(s_a, s_b)]
        assert edges[0][2].rule == "obs"

    def test_unknown_events_skipped(self):
        aprog = litmus_aprog("P0: S[A]#1\nP1: S[B]#2")
        edges = store_order_edges(
            aprog, [(0, 1), (0x999, 77), (4, 2)]  # middle event unknown
        )
        assert len(edges) == 1

    def test_empty_order_no_edges(self):
        aprog = litmus_aprog("P0: S[A]#1")
        assert store_order_edges(aprog, []) == []


class TestSoundness:
    @pytest.mark.parametrize("seed", range(5))
    def test_golden_runs_pass_with_their_own_commit_order(self, seed):
        config = GeneratorConfig(nprocs=4, ops_per_proc=60, shared_words=6)
        program = generate_program(config, seed=seed)
        machine = TsoMachine(program, seed=seed)
        execution = machine.run()
        result = check_with_store_order(
            execution, machine.commit_order, initial=program.initial
        )
        assert result.ok, result.explain()

    def test_writeback_mode_commit_order_is_sound_too(self):
        config = GeneratorConfig(nprocs=4, ops_per_proc=60, shared_words=8)
        for seed in range(4):
            program = generate_program(config, seed=seed)
            machine = TsoMachine(
                program, seed=seed,
                config=MachineConfig(writeback=True, cache_lines=2),
            )
            execution = machine.run()
            result = check_with_store_order(
                execution, machine.commit_order, initial=program.initial
            )
            assert result.ok, result.explain()

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 10_000))
    def test_property_golden_plus_observability_passes(self, seed):
        config = GeneratorConfig(
            nprocs=3, ops_per_proc=30, shared_words=4, mix=PLAIN_MIX
        )
        program = generate_program(config, seed=seed)
        machine = TsoMachine(program, seed=seed)
        execution = machine.run()
        assert check_with_store_order(
            execution, machine.commit_order, initial=program.initial
        ).ok


class TestCompletenessUpgrade:
    def test_fig5_mirrored_caught_with_store_order(self):
        # The paper's canonical polynomial miss: once the environment
        # reveals either ordering of the two A-stores, the cycle appears.
        case = litmus_by_name("fig5_mirrored")
        program, execution = parse_litmus(case.text)
        assert check(program, execution, model=TSO).ok  # the documented miss

        aprog = litmus_aprog(case.text)
        s1 = next(op.id for op in aprog.ops
                  if aprog.describe(op.id).endswith("S[A]#1"))
        s2 = next(op.id for op in aprog.ops
                  if aprog.describe(op.id).endswith("S[A]#2"))
        for order in ([(8, 1), (8, 2)], [(8, 2), (8, 1)]):
            # address of A is 8 in this litmus (B=0, D=4, A=8, ...).
            a_addr = aprog.ops[s1].addr
            events = [(a_addr, pair[1]) for pair in order]
            result = check_with_store_order(
                execution, events,
                initial=program.initial, word_names=program.word_names,
            )
            assert not result.ok, f"order {order} should expose the cycle"

    def test_detection_rate_never_drops_with_observability(self):
        # Same faulty runs, checked with and without the commit order:
        # observability can only add detections.
        config = GeneratorConfig(nprocs=4, ops_per_proc=60, shared_words=6)
        plain_hits = obs_hits = 0
        for seed in range(12):
            program = generate_program(config, seed=seed)
            machine = TsoMachine(
                program, seed=seed,
                faults=[StoreBufferReorderFault(rate=0.4)],
            )
            execution = machine.run()
            plain = check(program, execution)
            obs = check_with_store_order(
                execution, machine.commit_order, initial=program.initial
            )
            plain_hits += not plain.ok
            obs_hits += not obs.ok
            if not plain.ok:
                assert not obs.ok  # observability never hides a violation
        assert obs_hits >= plain_hits

    def test_engine_name_reported(self):
        aprog_text = "P0: S[A]#1 ; L[A]=1"
        program, execution = parse_litmus(aprog_text)
        result = check_with_store_order(execution, [], initial=program.initial)
        assert result.engine == "closure+observability"
