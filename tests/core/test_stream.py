"""Tests for the streaming online checker (``repro.core.stream``).

Four concerns, in rising order of streaming-specificity:

* batch parity — as ``--engine stream`` the checker must agree with the
  vc engine on verdict *and* violation kind (the property suite covers
  this at scale; here are deterministic spot checks including the
  witness format);
* retirement soundness — golden runs must pass at *any* window, because
  frontier retirement may only lose inference, never invent edges;
* window-boundary detection — a cycle whose closing edge reaches back
  into a retired epoch must still be caught and fully witnessed (the
  graph survives retirement; only frontier vectors are dropped);
* session semantics — live feeding reports the violation at the record
  that closes the cycle, not at end of run, and pipelining with the
  machine via the observer hook yields the same trace ``run()`` returns.
"""

import pytest

from repro.core.api import check
from repro.core.policy import PSO, SC, TSO, MemoryModel
from repro.core.result import ViolationKind
from repro.core.stream import DEFAULT_WINDOW, StreamingChecker, stream_check_machine
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.model.expansion import expand
from repro.model.program import parse_litmus
from repro.sim.machine import TsoMachine
from tests.util import golden_run, litmus_aprog


def _aprog_of(program, execution):
    return expand(
        execution, initial=program.initial, word_names=program.word_names
    )


class TestBatchParity:
    def test_fig3_violation_matches_vc(self):
        text = """
            P0: S[B]#91 ; S[A]#1 ; L[A]=2
            P1: S[A]#2
            P2: S[B]#92 ; L[A]=2 ; L[B]=92
            P3: L[B]=92 ; L[B]=91
        """
        program, execution = parse_litmus(text)
        stream = check(program, execution, engine="stream")
        vc = check(program, execution, engine="vc")
        assert not stream.ok and not vc.ok
        assert stream.violation.kind == vc.violation.kind == ViolationKind.CYCLE
        # Same witness contract: a closed cycle with per-edge reasons.
        assert len(stream.violation.cycle) >= 2
        assert len(stream.violation.reasons) == len(stream.violation.cycle)
        assert "cycle" in stream.explain()

    def test_unmapped_value_kind_matches_batch(self):
        result = StreamingChecker().run(litmus_aprog("P0: L[A]=42"))
        assert not result.ok
        assert result.violation.kind == ViolationKind.UNMAPPED_VALUE
        assert "42" in result.violation.message

    def test_golden_runs_pass_under_each_model(self):
        program, execution, _machine = golden_run(seed=21)
        aprog = _aprog_of(program, execution)
        for model in (TSO, PSO):
            result = StreamingChecker(model).run(aprog)
            assert result.ok, result.explain()
        # SC machine runs pass the SC stream checker too.
        from repro.sim.machine import MachineConfig

        program, execution, _machine = golden_run(
            seed=22, machine_config=MachineConfig(sc_mode=True)
        )
        assert StreamingChecker(SC).run(_aprog_of(program, execution)).ok

    def test_stats_populated(self):
        program, execution, _machine = golden_run(seed=23)
        result = StreamingChecker().run(_aprog_of(program, execution))
        stats = result.stats
        assert stats.nodes > 0 and stats.static_edges > 0
        assert stats.observed_edges > 0
        assert stats.live_peak > 0
        # Default window exceeds the run: nothing retires, vc parity holds.
        assert stats.retired_nodes == 0
        assert stats.nodes < DEFAULT_WINDOW

    def test_unsupported_model_rejected_up_front(self):
        rmo_like = MemoryModel(
            "RMOish", load_load=False, load_store=False,
            store_store=False, store_load=False,
        )
        with pytest.raises(ValueError, match="load_load"):
            StreamingChecker(rmo_like).run(litmus_aprog("P0: S[A]#1 ; L[A]=1"))


class TestRetirementSoundness:
    def test_golden_runs_pass_at_any_window(self):
        # Retirement may lose inference (windowed verification) but must
        # never create a false positive — golden runs pass even with a
        # window of a single op.
        config = GeneratorConfig(nprocs=4, ops_per_proc=40, shared_words=4)
        for seed in range(5):
            program = generate_program(config, seed=seed)
            execution = TsoMachine(program, seed=seed).run()
            aprog = _aprog_of(program, execution)
            for window in (1, 2, 7, 64):
                result = StreamingChecker(window=window).run(aprog)
                assert result.ok, (seed, window, result.explain())

    def test_small_window_actually_retires(self):
        program, execution, _machine = golden_run(seed=24)
        aprog = _aprog_of(program, execution)
        result = StreamingChecker(window=16).run(aprog)
        assert result.ok
        assert result.stats.retired_nodes > 0
        assert result.stats.live_peak < result.stats.nodes


class TestWindowBoundaryDetection:
    def _retired_epoch_case(self):
        # P0's two stores to A are program-ordered (R2).  P1 observes the
        # second store, then — after enough filler that the window has
        # long retired both the first store and the early loads — the
        # first one.  R6 then needs the edge S[A]#2 -> S[A]#1, closing a
        # cycle whose other arc lies entirely in a retired epoch.
        filler = " ; ".join("L[C]=0" for _ in range(40))
        return parse_litmus(f"""
            P0: S[A]#1 ; S[A]#2
            P1: L[A]=2 ; {filler} ; L[A]=1
        """)

    def test_cycle_across_retired_epoch_detected_and_witnessed(self):
        program, execution = self._retired_epoch_case()
        aprog = _aprog_of(program, execution)
        result = StreamingChecker(window=4).run(aprog)
        assert not result.ok
        assert result.violation.kind == ViolationKind.CYCLE
        assert result.stats.retired_nodes > 0  # the epoch really retired
        # The witness is complete despite retirement: a closed cycle with
        # one reason per edge, renderable end to end.
        cycle = result.violation.cycle
        assert len(cycle) >= 2
        assert len(result.violation.reasons) == len(cycle)
        text = result.explain()
        assert "S[A]#1" in text and "S[A]#2" in text

    def test_agrees_with_vc_at_every_window(self):
        program, execution = self._retired_epoch_case()
        aprog = _aprog_of(program, execution)
        vc = check(program, execution, engine="vc")
        for window in (2, 4, 16, DEFAULT_WINDOW):
            result = StreamingChecker(window=window).run(aprog)
            assert result.ok == vc.ok
            assert result.violation.kind == vc.violation.kind


class TestStreamSession:
    def test_violation_reported_at_closing_record(self):
        # The cycle closes at P1's second load; the two trailing records
        # must not be needed to surface it.
        program, execution = parse_litmus("""
            P0: S[A]#1 ; S[A]#2 ; S[B]#7
            P1: L[A]=2 ; L[A]=1 ; L[B]=7 ; L[B]=7
        """)
        session = StreamingChecker().open_session(
            addresses=sorted(program.addresses()),
            initial=program.initial,
            word_names=program.word_names,
            nprocs=len(execution.records),
        )
        fed = []
        for pid, records in enumerate(execution.records):
            for rec in records:
                fed.append((pid, session.feed(pid, rec)))
        # No verdict while only P0's stores were in.
        assert all(v is None for pid, v in fed if pid == 0)
        p1 = [v for pid, v in fed if pid == 1]
        assert p1[0] is None                      # L[A]=2: consistent so far
        assert p1[1] is not None                  # L[A]=1 closes the cycle
        assert p1[1].kind == ViolationKind.CYCLE
        assert p1[2] is p1[1] and p1[3] is p1[1]  # sticky thereafter
        result = session.finish()
        assert not result.ok
        assert result.violation is p1[1]

    def test_session_verdict_matches_batch_on_golden_run(self):
        program, execution, _machine = golden_run(seed=25)
        session = StreamingChecker(window=64).open_session(
            addresses=sorted(program.addresses()),
            initial=program.initial,
            word_names=program.word_names,
            nprocs=len(execution.records),
        )
        # Round-robin feed: a legal arrival order the batch path never
        # exercises (it replays proc-major).
        cursors = [0] * len(execution.records)
        remaining = sum(len(r) for r in execution.records)
        pid = 0
        while remaining:
            if cursors[pid] < len(execution.records[pid]):
                session.feed(pid, execution.records[pid][cursors[pid]])
                cursors[pid] += 1
                remaining -= 1
            pid = (pid + 1) % len(execution.records)
        result = session.finish()
        assert result.ok, result.explain()
        assert result.stats.retired_nodes > 0

    def test_unresolved_load_is_unmapped_at_finish(self):
        program, execution = parse_litmus("P0: S[A]#1 ; L[A]=1")
        session = StreamingChecker().open_session(
            addresses=sorted(program.addresses()),
            initial=program.initial,
            nprocs=1,
        )
        # Feed only the load: its store never arrives.
        assert session.feed(0, execution.records[0][1]) is None
        result = session.finish()
        assert not result.ok
        assert result.violation.kind == ViolationKind.UNMAPPED_VALUE


class TestMachinePipelining:
    def test_stream_check_machine_matches_run(self):
        config = GeneratorConfig(nprocs=4, ops_per_proc=60, shared_words=4)
        program = generate_program(config, seed=26)
        machine = TsoMachine(program, seed=26)
        result, execution = stream_check_machine(machine, window=32)
        assert result.ok, result.explain()
        assert execution is not None
        assert result.stats.retired_nodes > 0
        assert result.stats.live_peak < result.stats.nodes
        # The streamed trace is the machine's observed trace: a separate
        # identically-seeded batch run produces exactly the same records.
        batch = TsoMachine(program, seed=26).run()
        assert execution.records == batch.records

    def test_observer_sees_every_record_in_retire_order(self):
        program = generate_program(
            GeneratorConfig(nprocs=2, ops_per_proc=20, shared_words=2), seed=27
        )
        seen = []
        machine = TsoMachine(
            program, seed=27,
            observer=lambda pid, idx, rec: seen.append((pid, idx)),
        )
        execution = machine.run()
        total = sum(len(r) for r in execution.records)
        assert len(seen) == total
        # Per-cpu indices arrive in order 0, 1, 2, ...
        for pid in range(2):
            indices = [i for p, i in seen if p == pid]
            assert indices == list(range(len(indices)))
