"""Unit tests for memory-model policies and static edge generation."""

import pytest

from repro.core.policy import PSO, SC, TSO, MemoryModel, static_edges
from repro.model.expansion import OpKind
from tests.util import litmus_aprog


def _edges(text, model):
    aprog = litmus_aprog(text)
    return aprog, list(static_edges(aprog, model))


def _has(edges, u, v, rule=None):
    return any(
        (eu, ev) == (u, v) and (rule is None or r == rule) for eu, ev, r in edges
    )


class TestModelDefinitions:
    def test_tso_relaxes_only_store_load(self):
        assert TSO.load_load and TSO.load_store and TSO.store_store
        assert not TSO.store_load

    def test_sc_relaxes_nothing(self):
        assert SC.load_load and SC.load_store and SC.store_store and SC.store_load

    def test_pso_relaxes_store_store_and_store_load(self):
        assert PSO.load_load and PSO.load_store
        assert not PSO.store_store and not PSO.store_load
        assert PSO.same_addr_store_store

    def test_str_is_name(self):
        assert str(TSO) == "TSO"
        assert str(PSO) == "PSO"


class TestProgramOrderEdges:
    def test_store_store_edge_under_tso(self):
        aprog, edges = _edges("P0: S[A]#1 ; S[B]#2", TSO)
        s1 = aprog.per_proc[0][0]
        s2 = aprog.per_proc[0][1]
        assert _has(edges, s1, s2, "R2")

    def test_no_store_load_edge_under_tso(self):
        aprog, edges = _edges("P0: S[A]#1 ; L[B]=0", TSO)
        store, load = aprog.per_proc[0]
        assert not _has(edges, store, load)

    def test_store_load_edge_under_sc(self):
        aprog, edges = _edges("P0: S[A]#1 ; L[B]=0", SC)
        store, load = aprog.per_proc[0]
        assert _has(edges, store, load, "R2")

    def test_load_load_and_load_store_edges(self):
        aprog, edges = _edges("P0: L[A]=0 ; L[B]=0 ; S[C]#1", TSO)
        l1, l2, st = aprog.per_proc[0]
        assert _has(edges, l1, l2, "R1")
        assert _has(edges, l2, st, "R1")

    def test_no_store_store_edge_under_pso_different_addresses(self):
        aprog, edges = _edges("P0: S[A]#1 ; S[B]#2", PSO)
        s1, s2 = aprog.per_proc[0]
        assert not _has(edges, s1, s2)

    def test_pso_keeps_same_address_store_order(self):
        aprog, edges = _edges("P0: S[A]#1 ; S[B]#2 ; S[A]#3", PSO)
        s1, _s2, s3 = aprog.per_proc[0]
        assert _has(edges, s1, s3, "R2")

    def test_membar_orders_store_before_later_load_tso(self):
        aprog, edges = _edges("P0: S[A]#1 ; M ; L[B]=0", TSO)
        store, membar, load = aprog.per_proc[0]
        assert _has(edges, store, membar, "R3")
        assert _has(edges, membar, load, "R3")

    def test_membar_collects_all_unordered_stores_under_pso(self):
        aprog, edges = _edges("P0: S[A]#1 ; S[B]#2 ; S[C]#3 ; M ; S[D]#4", PSO)
        s1, s2, s3, membar, s4 = aprog.per_proc[0]
        for s in (s1, s2, s3):
            assert _has(edges, s, membar, "R3")
        assert _has(edges, membar, s4, "R3")

    def test_membar_chain(self):
        aprog, edges = _edges("P0: M ; M", TSO)
        m1, m2 = aprog.per_proc[0]
        assert _has(edges, m1, m2, "R3")

    def test_edges_are_per_processor(self):
        aprog, edges = _edges("P0: S[A]#1\nP1: S[B]#2", TSO)
        s0 = aprog.per_proc[0][0]
        s1 = aprog.per_proc[1][0]
        assert not _has(edges, s0, s1) and not _has(edges, s1, s0)


class TestGroupAndRootEdges:
    def test_swap_internal_chain(self):
        aprog, edges = _edges("P0: SWAP[A]=0,#1", TSO)
        load, store = aprog.per_proc[0]
        assert _has(edges, load, store, "atomic")

    def test_root_precedes_every_store_to_its_address(self):
        aprog, edges = _edges("P0: S[A]#1\nP1: S[A]#2", TSO)
        root = aprog.roots[0]
        for proc in aprog.per_proc:
            assert _has(edges, root, proc[0], "init")

    def test_root_does_not_precede_other_addresses(self):
        aprog, edges = _edges("P0: S[A]#1 ; S[B]#2", TSO)
        root_b = aprog.roots[4]
        s_a = aprog.per_proc[0][0]
        assert not _has(edges, root_b, s_a)


class TestCustomModel:
    def test_rmo_like_model_generates_no_plain_po_edges(self):
        rmo = MemoryModel(
            "RMOish", load_load=False, load_store=False,
            store_store=False, store_load=False, same_addr_store_store=False,
        )
        aprog, edges = _edges("P0: L[A]=0 ; S[B]#1 ; S[B]#2 ; L[B]=2", rmo)
        rules = {r for _, _, r in edges}
        assert "R1" not in rules and "R2" not in rules
