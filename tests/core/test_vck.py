"""Deterministic vck engine tests (fast path, numpy required).

The randomized kernel-vs-scalar comparisons live in
``test_kernels.py``; cross-engine verdict agreement in
``tests/test_properties.py``; the fallback path in
``test_no_numpy.py``.  Here: the paper's Fig. 3 witness must come out
*identical* to the vc engine's — same cycle, same per-edge reasons —
because on this example both engines insert the same closing edge.
"""

import pytest

pytest.importorskip("numpy")

from repro.core.api import check_litmus

FIG3 = """
    P0: S[B]#91 ; S[A]#1 ; L[A]=2
    P1: S[A]#2
    P2: S[B]#92 ; L[A]=2 ; L[B]=92
    P3: L[B]=92 ; L[B]=91
"""


def _strip_engine_header(text):
    return "\n".join(
        line for line in text.splitlines() if "engine=" not in line
    )


def test_fig3_witness_identical_to_vc():
    vck = check_litmus(FIG3, engine="vck")
    vc = check_litmus(FIG3, engine="vc")
    assert not vck.ok and not vc.ok
    assert vck.engine == "vck"
    assert vck.violation.cycle == vc.violation.cycle
    assert [r.render() for r in vck.violation.reasons] == [
        r.render() for r in vc.violation.reasons
    ]
    assert _strip_engine_header(vck.explain()) == _strip_engine_header(
        vc.explain()
    )


def test_fig3_fast_path_ran_kernels():
    result = check_litmus(FIG3, engine="vck")
    assert result.stats.kernel_batches > 0


def test_vck_edge_sets_closure_equivalent_to_vc():
    # vck may insert a different *explicit* edge set than vc — its
    # descending-run R6 pass skips some implied edges vc inserts, while
    # its between-refresh frontier staleness admits some vc suppresses —
    # but every difference is an implied (true) edge, so the transitive
    # closures must be identical.
    import numpy as np

    from repro.core.api import check
    from repro.core.kernels import packed_closure
    from repro.generator.config import GeneratorConfig
    from repro.generator.generator import generate_program
    from repro.sim.machine import TsoMachine

    for seed in range(3):
        program = generate_program(
            GeneratorConfig(nprocs=4, ops_per_proc=80, shared_words=4),
            seed=seed,
        )
        trace = TsoMachine(program, seed=seed).run()
        vck = check(program, trace, engine="vck")
        vc = check(program, trace, engine="vc")
        assert vck.ok and vc.ok
        closures = []
        for result in (vck, vc):
            graph = result.graph
            order = _topo_order(graph)
            closures.append(
                packed_closure(graph.n, order, graph.succ, graph.pred)[0]
            )
        assert np.array_equal(closures[0], closures[1])


def _topo_order(graph):
    indeg = [len(graph.pred[v]) for v in range(graph.n)]
    ready = [v for v in range(graph.n) if indeg[v] == 0]
    order = []
    while ready:
        node = ready.pop()
        order.append(node)
        for child in graph.succ[node]:
            indeg[child] -= 1
            if indeg[child] == 0:
                ready.append(child)
    assert len(order) == graph.n
    return order
