"""Tests for the campaign manifest document and its shard expansion."""

import pytest

from repro.analysis.campaign import CampaignConfig
from repro.generator.config import GeneratorConfig
from repro.sched.spec import SchedSpec
from repro.service.manifest import CampaignManifest, Shard


def small(**kwargs):
    defaults = dict(name="t", seeds=(1, 2), cpus=("CPU1", "CPU2"))
    defaults.update(kwargs)
    return CampaignManifest(**defaults)


class TestValidation:
    def test_bad_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            CampaignManifest(name="has spaces")
        with pytest.raises(ValueError, match="name"):
            CampaignManifest(name="")

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            small(seeds=(1, 1))

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            small(seeds=())

    def test_unknown_cpu_rejected(self):
        with pytest.raises(ValueError, match="CPU9"):
            small(cpus=("CPU9",))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            small(engine="nope")

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="model"):
            small(model="RMO")

    def test_sweep_sched_rejected(self):
        # Same restriction as `tsotool campaign`: a sweep cannot be
        # re-instantiated per hunt attempt.
        with pytest.raises(ValueError, match="sweep"):
            small(sched=SchedSpec(kind="sweep"))

    def test_nonpositive_tests_per_bug_rejected(self):
        with pytest.raises(ValueError, match="tests_per_bug"):
            small(tests_per_bug=0)


class TestIdentity:
    def test_job_id_is_content_addressed(self):
        assert small().job_id == small().job_id
        assert small().job_id != small(seeds=(1, 3)).job_id
        assert small().job_id.startswith("t-")

    def test_shard_ids_deterministic_and_distinct(self):
        a, b = small().shards(), small().shards()
        assert [s.shard_id for s in a] == [s.shard_id for s in b]
        assert len({s.shard_id for s in a}) == len(a)

    def test_shard_expansion_is_seed_major(self):
        shards = small().shards()
        assert [(s.seed, s.cpu) for s in shards] == [
            (1, "CPU1"), (1, "CPU2"), (2, "CPU1"), (2, "CPU2"),
        ]
        assert [s.index for s in shards] == [0, 1, 2, 3]

    def test_different_manifests_never_share_shard_ids(self):
        ours = {s.shard_id for s in small().shards()}
        theirs = {s.shard_id for s in small(tests_per_bug=5).shards()}
        assert not ours & theirs


class TestExpansion:
    def test_empty_cpus_means_all_six(self):
        m = CampaignManifest(name="all", seeds=(1,))
        assert [c.name for c in m.cpu_configs()] == [
            "CPU1", "CPU2", "CPU3", "CPU4", "CPU5", "CPU6",
        ]
        assert len(m.shards()) == 6

    def test_hunt_count_sums_rosters(self):
        m = small()  # CPU1 has 3 bugs, CPU2 has 7; two seeds
        per_seed = sum(s.hunt_count() for s in m.shards()[:2])
        assert m.hunt_count() == 2 * per_seed

    def test_campaign_config_mirrors_manifest(self):
        m = small(tests_per_bug=5, sched=SchedSpec(kind="pct", pct_depth=2),
                  engine="closure")
        config = m.campaign_config(7)
        assert config.tests_per_bug == 5
        assert config.seed == 7
        assert config.sched.kind == "pct"
        assert config.engine == "closure"
        # Default generator = the campaign default, not None.
        assert config.generator == CampaignConfig().generator


class TestSerialization:
    def test_round_trip_default(self):
        m = small()
        assert CampaignManifest.from_json(m.to_json()) == m

    def test_round_trip_with_generator(self):
        m = small(generator=GeneratorConfig(nprocs=2, ops_per_proc=40,
                                            shared_words=8))
        back = CampaignManifest.from_json(m.to_json())
        assert back == m
        assert back.digest() == m.digest()

    def test_save_load(self, tmp_path):
        path = str(tmp_path / "m.json")
        m = small()
        m.save(path)
        assert CampaignManifest.load(path) == m

    def test_unsupported_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            CampaignManifest.from_dict({"version": 99, "name": "x"})
