"""Tests for the JobRunner: dispatch, resume, and merged equivalence."""

import pytest

from repro.analysis.campaign import format_table1, format_table2, run_campaign
from repro.service.manifest import CampaignManifest
from repro.service.queue import JobRunner
from repro.service.store import ResultStore, hunt_digest
from repro.sim.cpus import cpu_by_name

FAST = dict(tests_per_bug=4)


def manifest(**kwargs):
    defaults = dict(name="q", seeds=(2004,), cpus=("CPU1",), **FAST)
    defaults.update(kwargs)
    return CampaignManifest(**defaults)


class TestRun:
    def test_fresh_run_matches_run_campaign(self, tmp_path):
        m = manifest()
        runner = JobRunner(m, ResultStore(str(tmp_path)))
        result = runner.run()
        reference = run_campaign(
            cpus=[cpu_by_name("CPU1")], config=m.campaign_config(2004)
        )
        # Hunt-for-hunt identity — the service must not perturb seeds.
        assert result.hunts == reference.hunts
        assert format_table1(result) == format_table1(reference)
        assert format_table2(result) == format_table2(reference)
        assert result.exit_code() == reference.exit_code()

    def test_multi_seed_order_is_seed_major(self, tmp_path):
        m = manifest(seeds=(1, 2), cpus=("CPU1", "CPU2"))
        result = JobRunner(m, ResultStore(str(tmp_path))).run()
        assert len(result.hunts) == m.hunt_count()
        specs = [(h.cpu, h.spec.name) for h in result.hunts]
        per_seed = specs[: len(specs) // 2]
        assert specs == per_seed + per_seed  # same roster, seed-major

    def test_persists_incrementally_with_markers(self, tmp_path):
        m = manifest()
        store = ResultStore(str(tmp_path))
        JobRunner(m, store).run()
        shard = m.shards()[0]
        assert store.shard_done(shard.shard_id)
        assert set(store.completed_hunts(shard.shard_id)) == set(
            range(shard.hunt_count())
        )

    def test_manifest_saved_alongside_results(self, tmp_path):
        m = manifest()
        store = ResultStore(str(tmp_path))
        JobRunner(m, store)
        assert store.load_manifest() == m


class TestResume:
    def test_completed_store_runs_nothing(self, tmp_path):
        m = manifest()
        JobRunner(m, ResultStore(str(tmp_path))).run()

        store = ResultStore(str(tmp_path))
        runner = JobRunner(m, store)
        assert runner.complete()
        # A completed hunt must never be re-recorded; record_hunt raises
        # on duplicates, so a clean second run proves zero re-execution.
        result = runner.run()
        assert len(result.hunts) == m.hunt_count()

    def test_partial_store_runs_only_missing(self, tmp_path):
        m = manifest(seeds=(1, 2))
        shard_a, shard_b = m.shards()

        # Seed the store with shard A complete, shard B empty.
        full_store = ResultStore(str(tmp_path))
        runner = JobRunner(m, full_store)
        [(_, missing_a), (_, _)] = runner.pending()
        config = m.campaign_config(shard_a.seed)
        from repro.analysis.campaign import hunt_bug
        for i in missing_a:
            spec = cpu_by_name(shard_a.cpu).bugs[i]
            full_store.record_hunt(
                shard_a.shard_id, i, hunt_bug(spec, shard_a.cpu, config, i)
            )
        full_store.mark_shard_done(shard_a.shard_id)
        full_store.close()

        store = ResultStore(str(tmp_path))
        resumed = JobRunner(m, store)
        pending = resumed.pending()
        assert [s.shard_id for s, _ in pending] == [shard_b.shard_id]
        result = resumed.run()
        assert result.exit_code() == 0

        # Digest-set equality with a from-scratch run of the same job.
        scratch = ResultStore(str(tmp_path / "scratch"))
        JobRunner(m, scratch).run()
        assert store.hunt_digests() == scratch.hunt_digests()

    def test_torn_marker_is_reappended_without_rerun(self, tmp_path):
        m = manifest()
        shard = m.shards()[0]
        store = ResultStore(str(tmp_path))
        runner = JobRunner(m, store)
        from repro.analysis.campaign import hunt_bug
        config = m.campaign_config(shard.seed)
        for i in range(shard.hunt_count()):
            spec = cpu_by_name(shard.cpu).bugs[i]
            store.record_hunt(
                shard.shard_id, i, hunt_bug(spec, shard.cpu, config, i)
            )
        # All hunts recorded, marker lost (torn away): run() must only
        # re-append the marker — record_hunt would raise on any re-run.
        assert not store.shard_done(shard.shard_id)
        result = runner.run()
        assert store.shard_done(shard.shard_id)
        assert len(result.hunts) == shard.hunt_count()


class TestMerged:
    def test_merge_of_incomplete_store_raises(self, tmp_path):
        m = manifest()
        runner = JobRunner(m, ResultStore(str(tmp_path)))
        with pytest.raises(ValueError, match="not recorded"):
            runner.merged()

    def test_merged_sched_describes_manifest_policy(self, tmp_path):
        m = manifest()
        result = JobRunner(m, ResultStore(str(tmp_path))).run()
        assert result.sched == m.sched.describe()
