"""End-to-end kill/resume test for the campaign service.

The acceptance scenario: a multi-shard manifest survives a SIGKILL of
the daemon mid-campaign, resumes without re-running completed hunts,
reports live progress over the status endpoint while running, and the
merged result is identical to a from-scratch run of the same manifest.
"""

import glob
import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.cli import main
from repro.service.manifest import CampaignManifest
from repro.service.queue import JobRunner
from repro.service.store import ResultStore


def make_manifest():
    # Several shards with a non-trivial hunt count each, so the daemon
    # is reliably mid-campaign when the kill lands.
    return CampaignManifest(
        name="e2e", seeds=(1, 2, 3, 4), cpus=("CPU1",), tests_per_bug=8
    )


def hunt_lines(root):
    """All persisted hunt records across every shard file."""
    out = []
    for path in glob.glob(os.path.join(root, "jobs", "*", "shards", "*.jsonl")):
        with open(path) as fh:
            for line in fh:
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    continue  # the torn line the kill may have left
                if doc.get("kind") == "hunt":
                    out.append((doc["shard"], doc["bug_index"]))
    return out


@pytest.mark.slow
class TestKillResume:
    def test_sigkill_mid_campaign_then_resume(self, tmp_path):
        root = str(tmp_path / "svc")
        manifest_path = str(tmp_path / "m.json")
        m = make_manifest()
        m.save(manifest_path)
        assert main(["submit", manifest_path, "--root", root]) == 0

        # Short lease so the resumed daemon (a different owner) does not
        # have to wait out the killed daemon's full lease window.
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--root", root,
             "--lease-seconds", "2"],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            # Wait until the campaign is demonstrably mid-flight: at
            # least two hunts persisted but not all of them.
            deadline = time.time() + 120
            while time.time() < deadline:
                if len(hunt_lines(root)) >= 2:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("daemon never persisted any hunts")

            # Live progress over the status endpoint while running.
            with open(os.path.join(root, "status.address")) as fh:
                host, port = fh.read().split()
            with urllib.request.urlopen(
                f"http://{host}:{port}/status", timeout=10
            ) as resp:
                payload = json.load(resp)
            [job] = payload["jobs"]
            assert job["id"] == m.job_id
            assert job["hunts"]["recorded"] >= 2

            daemon.send_signal(signal.SIGKILL)
            daemon.wait(timeout=30)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30)

        prekill = hunt_lines(root)
        assert 2 <= len(prekill) < m.hunt_count(), (
            "kill did not land mid-campaign; tune the manifest size"
        )

        # Resume in-process; duplicate-record delivery would surface in
        # the line-count check below, and exit 0 means every seeded bug
        # was detected.
        assert main(["serve", "--root", root, "--once", "--no-http",
                     "--lease-seconds", "2"]) == 0

        # No hunt executed twice: every (shard, bug) appears exactly
        # once across the whole store, and everything recorded before
        # the kill is still there.
        final = hunt_lines(root)
        assert len(final) == len(set(final)) == m.hunt_count()
        assert set(prekill) <= set(final)

        # Merged result identical to a from-scratch run: digest-set
        # equality plus table/exit-code agreement via result.json.
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            resumed = ResultStore(os.path.join(root, "jobs", m.job_id))
        scratch = ResultStore(str(tmp_path / "scratch"))
        scratch_result = JobRunner(m, scratch).run()
        assert resumed.hunt_digests() == scratch.hunt_digests()

        with open(os.path.join(root, "jobs", m.job_id, "result.json")) as fh:
            doc = json.load(fh)
        from repro.analysis.campaign import (
            CampaignResult,
            format_table1,
            format_table2,
        )
        merged = CampaignResult.from_dict(doc["result"])
        assert doc["exit_code"] == scratch_result.exit_code()
        assert format_table1(merged) == format_table1(scratch_result)
        assert format_table2(merged) == format_table2(scratch_result)
        assert merged.detection_line() == scratch_result.detection_line()
