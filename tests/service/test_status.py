"""Tests for the status HTTP endpoint and the daemon's status payload."""

import json
import urllib.error
import urllib.request

import pytest

from repro.service.daemon import CampaignService, ServiceConfig
from repro.service.manifest import CampaignManifest
from repro.service.status import StatusServer
from repro.telemetry import validate_event


def fetch(address, route):
    host, port = address
    with urllib.request.urlopen(
        f"http://{host}:{port}{route}", timeout=10
    ) as resp:
        return resp.status, json.load(resp)


@pytest.fixture()
def server():
    state = {
        "v": 1,
        "service": {"root": "/tmp/x"},
        "jobs": [{"id": "job-1", "state": "running"}],
    }
    srv = StatusServer(lambda: state).start()
    yield srv
    srv.close()


class TestRoutes:
    def test_healthz(self, server):
        status, body = fetch(server.address, "/healthz")
        assert (status, body) == (200, {"ok": True})

    def test_status_serves_state_fn(self, server):
        status, body = fetch(server.address, "/status")
        assert status == 200
        assert body["jobs"][0]["id"] == "job-1"

    def test_jobs_listing_and_lookup(self, server):
        _, body = fetch(server.address, "/jobs")
        assert [j["id"] for j in body["jobs"]] == ["job-1"]
        _, body = fetch(server.address, "/jobs/job-1")
        assert body["state"] == "running"

    def test_unknown_job_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            fetch(server.address, "/jobs/nope")
        assert err.value.code == 404

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            fetch(server.address, "/bogus")
        assert err.value.code == 404

    def test_metrics_is_a_valid_v1_snapshot(self, server):
        _, body = fetch(server.address, "/metrics")
        assert body["kind"] == "snapshot"
        validate_event(body)  # v1 telemetry schema

    def test_port_zero_resolves_to_real_port(self, server):
        host, port = server.address
        assert host == "127.0.0.1"
        assert port > 0


class TestServiceStatusPayload:
    def test_payload_tracks_store_progress(self, tmp_path):
        m = CampaignManifest(
            name="st", seeds=(1,), cpus=("CPU1",), tests_per_bug=4
        )
        service = CampaignService(
            ServiceConfig(root=str(tmp_path), http_port=None, once=True)
        )
        service.submit(m)
        before = service.status()
        [job] = before["jobs"]
        assert job["state"] == "queued"
        assert job["hunts"]["recorded"] == 0
        assert job["exit_code"] is None

        assert service.serve() == 0
        after = service.status()
        [job] = after["jobs"]
        assert job["state"] == "done"
        assert job["shards"] == {"total": 1, "done": 1}
        assert job["hunts"]["recorded"] == job["hunts"]["total"] == 3
        assert job["exit_code"] == 0
        # The whole payload must be JSON-serializable for the endpoint.
        assert json.loads(json.dumps(after)) == after

    def test_submit_is_idempotent(self, tmp_path):
        m = CampaignManifest(name="idem", seeds=(1,), cpus=("CPU1",))
        service = CampaignService(
            ServiceConfig(root=str(tmp_path), http_port=None)
        )
        assert service.submit(m) == service.submit(m)
        assert len(service.spooled()) == 1

    def test_empty_spool_serves_exit_zero(self, tmp_path):
        service = CampaignService(
            ServiceConfig(root=str(tmp_path), http_port=None, once=True)
        )
        assert service.serve() == 0
