"""Fleet tests: N runners on one job, takeover, hung-retry, compaction.

The in-process tests drive two :class:`JobRunner`\\ s over *separate*
store instances on one root — the same coupling as two daemon processes
sharing a filesystem — with a fast injected hunt task so the scheduling
logic (not the simulator) dominates the runtime.  The slow-marked e2e
drives two real daemons through the CLI and SIGKILLs one mid-shard.
"""

import glob
import json
import os
import signal
import subprocess
import sys
import threading
import time
import warnings

import pytest

from repro.analysis.campaign import BugHunt
from repro.cli import main
from repro.service.lease import LeaseManager
from repro.service.manifest import CampaignManifest
from repro.service.queue import JobRunner
from repro.service.store import ResultStore


def manifest(**kwargs):
    defaults = dict(name="fleet", seeds=(1, 2, 3, 4), cpus=("CPU1",),
                    tests_per_bug=2)
    defaults.update(kwargs)
    return CampaignManifest(**defaults)


def fake_hunt_task(task):
    """Deterministic, fast stand-in for a real hunt (always detects)."""
    spec, cpu, config, index = task
    time.sleep(0.01)  # long enough for runners to interleave
    return BugHunt(
        spec=spec, cpu=cpu, detected=True, tests_run=1,
        detected_on_seed=config.seed, via="TSO violation",
    )


@pytest.fixture
def fast_hunts(monkeypatch):
    monkeypatch.setattr("repro.service.queue._hunt_task", fake_hunt_task)


def hunt_lines(root):
    out = []
    for path in glob.glob(os.path.join(root, "shards", "*.jsonl")):
        for line in open(path):
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                continue
            if doc.get("kind") == "hunt":
                out.append((doc["shard"], doc["bug_index"]))
    return out


def quiet_store(root, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return ResultStore(root, **kwargs)


class TestConcurrentRunners:
    def test_two_runners_drain_one_job_without_duplicates(
        self, tmp_path, fast_hunts
    ):
        m = manifest()
        root = str(tmp_path / "job")
        runners = [
            JobRunner(
                m, quiet_store(root), owner=f"host-{i}",
                lease_seconds=5.0, poll_seconds=0.02,
            )
            for i in range(2)
        ]
        results = [None, None]
        errors = []

        def drain(i):
            try:
                results[i] = runners[i].run()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=drain, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors

        # Zero duplicated hunt records across the whole store.
        lines = hunt_lines(root)
        assert len(lines) == len(set(lines)) == m.hunt_count()

        # Both runners converge on the same merged result, and it is
        # bit-identical to a single-runner run of the same manifest.
        scratch = ResultStore(str(tmp_path / "scratch"))
        single = JobRunner(m, scratch, owner="solo").run()
        for result in results:
            assert result is not None
            assert result.hunts == single.hunts
            assert result.exit_code() == single.exit_code()
        assert quiet_store(root).hunt_digests() == scratch.hunt_digests()

    def test_runner_takes_over_a_dead_peers_lease(
        self, tmp_path, fast_hunts
    ):
        m = manifest(seeds=(1,))
        [shard] = m.shards()
        root = str(tmp_path / "job")

        # A "daemon" claims the only shard and dies without releasing:
        # no renewals, the lease just sits there until expiry.
        dead_store = quiet_store(root)
        dead = LeaseManager(dead_store, "dead-peer", lease_seconds=0.6)
        assert dead.claim(shard.shard_id)
        dead_store.close()

        start = time.monotonic()
        runner = JobRunner(
            m, quiet_store(root), owner="live",
            lease_seconds=0.6, poll_seconds=0.02,
        )
        result = runner.run()
        elapsed = time.monotonic() - start

        assert result.exit_code() == 0
        assert len(result.hunts) == m.hunt_count()
        # The takeover had to wait out the dead peer's lease window.
        assert elapsed >= 0.3
        # The store's lease history shows the live owner's claim landing
        # after the dead peer's.
        path = os.path.join(root, "shards", f"{shard.shard_id}.jsonl")
        claims = [
            json.loads(x)["owner"] for x in open(path)
            if json.loads(x).get("kind") == "lease"
            and json.loads(x)["op"] == "claim"
        ]
        assert claims == ["dead-peer", "live"]

    def test_completion_marker_requires_ownership(self, tmp_path, fast_hunts):
        """A runner whose lease was taken over must not append the
        done marker over the new holder's in-flight work."""
        m = manifest(seeds=(1,))
        [shard] = m.shards()
        root = str(tmp_path / "job")
        runner = JobRunner(
            m, quiet_store(root), owner="stalled", lease_seconds=5.0
        )
        assert runner.lease.claim(shard.shard_id)
        # A peer takes the shard over (as if we stalled past expiry).
        peer_store = quiet_store(root)
        peer_store.append_lease(
            shard.shard_id, "claim", "thief",
            time=time.time() + 10.0, expires=time.time() + 60.0,
        )
        peer_store.close()
        runner._finish_shard(shard.shard_id)
        store = quiet_store(root)
        assert not store.shard_done(shard.shard_id)


class TestHungRetryAcrossSessions:
    """Satellite: kill/resume after a hang retries the hunt and can
    reach exit 0 — a transient stall no longer pins exit code 2."""

    def test_resume_retries_hung_hunt_and_reaches_exit_0(
        self, tmp_path, monkeypatch
    ):
        m = manifest(seeds=(1,))
        [shard] = m.shards()
        root = str(tmp_path / "job")
        stall = {"on": True}

        def flaky(task):
            spec, cpu, config, index = task
            if index == 1 and stall["on"]:
                raise RuntimeError("injected transient stall")
            return BugHunt(
                spec=spec, cpu=cpu, detected=True, tests_run=1,
                detected_on_seed=config.seed, via="TSO violation",
            )

        monkeypatch.setattr("repro.service.queue._hunt_task", flaky)

        # Session 1: hunt 1 fails its attempt and its retry — recorded
        # as a hung tombstone, session exits 2, but the job completes.
        first = JobRunner(m, quiet_store(root), owner="s1").run()
        assert first.exit_code() == 2
        assert first.hunts[1].hung

        # Session 2 (the "resume"): the stall was transient.  The
        # tombstone is re-queued, the retry lands a real result, and
        # the job reaches exit 0.
        stall["on"] = False
        second = JobRunner(m, quiet_store(root), owner="s2").run()
        assert second.exit_code() == 0
        assert not any(h.hung for h in second.hunts)

        # Exactly one session's retry is allowed per run: the stubborn
        # case stays exit 2 instead of looping forever.
        stall["on"] = True
        third = JobRunner(m, quiet_store(root), owner="s3").run()
        assert third.exit_code() == 0  # the real result persisted

    def test_stubborn_hang_terminates_each_session(
        self, tmp_path, monkeypatch
    ):
        m = manifest(seeds=(1,))
        root = str(tmp_path / "job")

        def always_stalls(task):
            spec, cpu, config, index = task
            if index == 1:
                raise RuntimeError("permanent stall")
            return BugHunt(
                spec=spec, cpu=cpu, detected=True, tests_run=1,
                detected_on_seed=config.seed, via="TSO violation",
            )

        monkeypatch.setattr("repro.service.queue._hunt_task", always_stalls)
        for session in range(2):
            result = JobRunner(
                m, quiet_store(root), owner=f"s{session}"
            ).run()
            assert result.exit_code() == 2
            assert result.hunts[1].hung


class TestCompactionEndToEnd:
    def test_compacted_job_merges_identically(self, tmp_path, fast_hunts):
        m = manifest(seeds=(1, 2))
        root = str(tmp_path / "job")
        store = quiet_store(root)
        before = JobRunner(m, store, owner="solo").run()
        digests = store.hunt_digests()
        deltas = store.compact()
        assert len(deltas) == len(m.shards())
        for shard_id, (nbefore, nafter) in deltas.items():
            assert nafter < nbefore  # lease lines compacted away
        store.close()

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a torn rewrite would warn
            fresh = ResultStore(root)
        assert fresh.hunt_digests() == digests
        after = JobRunner(m, fresh, owner="merge-only").merged()
        assert after.hunts == before.hunts
        assert after.exit_code() == before.exit_code()


@pytest.mark.slow
class TestTwoDaemonKillTakeover:
    """The acceptance e2e: two daemons with distinct owners drain one
    job; one is SIGKILL'd mid-shard; the peer takes over its expired
    lease and completes; zero duplicate hunt records."""

    def test_sigkill_one_daemon_peer_takes_over(self, tmp_path):
        root = str(tmp_path / "svc")
        manifest_path = str(tmp_path / "m.json")
        m = CampaignManifest(
            name="fleet-e2e", seeds=(1, 2, 3, 4), cpus=("CPU1",),
            tests_per_bug=8,
        )
        m.save(manifest_path)
        assert main(["submit", manifest_path, "--root", root]) == 0
        job_root = os.path.join(root, "jobs", m.job_id)

        def serve(owner, *extra):
            return subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "serve",
                 "--root", root, "--owner", owner,
                 "--lease-seconds", "2", "--no-http", *extra],
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )

        victim = serve("daemon-a")
        survivor = None
        try:
            deadline = time.time() + 120
            while time.time() < deadline:
                if len(hunt_lines(job_root)) >= 2:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("daemon-a never persisted any hunts")
            survivor = serve("daemon-b", "--once")
            time.sleep(0.2)  # let daemon-b start claiming its share
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=30)
            assert survivor.wait(timeout=240) in (0, 1)
        finally:
            for proc in (victim, survivor):
                if proc is not None and proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=30)

        # The job completed despite the kill...
        assert os.path.exists(os.path.join(job_root, "result.json"))
        # ...with zero duplicated hunt records...
        lines = hunt_lines(job_root)
        assert len(lines) == len(set(lines)) == m.hunt_count()
        # ...and both owners' lease claims in the store (daemon-b did
        # real work, not just watching daemon-a's leftovers).
        owners = set()
        for path in glob.glob(os.path.join(job_root, "shards", "*.jsonl")):
            for line in open(path):
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if doc.get("kind") == "lease" and doc["op"] == "claim":
                    owners.add(doc["owner"])
        assert {"daemon-a", "daemon-b"} <= owners

        # Merged result bit-identical to a single-runner scratch run.
        resumed = quiet_store(job_root)
        scratch = ResultStore(str(tmp_path / "scratch"))
        scratch_result = JobRunner(m, scratch, owner="scratch").run()
        assert resumed.hunt_digests() == scratch.hunt_digests()
        with open(os.path.join(job_root, "result.json")) as fh:
            doc = json.load(fh)
        from repro.analysis.campaign import (
            CampaignResult,
            format_table1,
            format_table2,
        )
        merged = CampaignResult.from_dict(doc["result"])
        assert doc["exit_code"] == scratch_result.exit_code()
        assert format_table1(merged) == format_table1(scratch_result)
        assert format_table2(merged) == format_table2(scratch_result)
