"""Tests for shard leases: arbitration, claim/renew/release, takeover."""

import time
import warnings

import pytest

from repro.service.lease import Lease, LeaseManager, apply_lease_line, default_owner
from repro.service.store import ResultStore


def line(op, owner, t, expires):
    return {
        "kind": "lease", "op": op, "shard": "s",
        "owner": owner, "time": t, "expires": expires,
    }


class TestArbitration:
    """apply_lease_line is the whole protocol: replaying the same lines
    must give the same holder on every host."""

    def test_claim_on_unclaimed_is_granted(self):
        lease = apply_lease_line(None, line("claim", "a", 1.0, 11.0))
        assert lease == Lease(owner="a", expires=11.0)

    def test_losing_claim_changes_nothing(self):
        lease = apply_lease_line(None, line("claim", "a", 1.0, 11.0))
        lease = apply_lease_line(lease, line("claim", "b", 2.0, 12.0))
        assert lease.owner == "a"

    def test_claim_after_expiry_is_a_takeover(self):
        lease = apply_lease_line(None, line("claim", "a", 1.0, 11.0))
        lease = apply_lease_line(lease, line("claim", "b", 11.0, 21.0))
        assert lease == Lease(owner="b", expires=21.0)

    def test_same_owner_reclaim_extends(self):
        lease = apply_lease_line(None, line("claim", "a", 1.0, 11.0))
        lease = apply_lease_line(lease, line("claim", "a", 5.0, 15.0))
        assert lease == Lease(owner="a", expires=15.0)

    def test_renew_by_holder_extends(self):
        lease = apply_lease_line(None, line("claim", "a", 1.0, 11.0))
        lease = apply_lease_line(lease, line("renew", "a", 5.0, 15.0))
        assert lease.expires == 15.0

    def test_renew_by_non_holder_is_ignored(self):
        lease = apply_lease_line(None, line("claim", "a", 1.0, 11.0))
        lease = apply_lease_line(lease, line("renew", "b", 5.0, 15.0))
        assert lease == Lease(owner="a", expires=11.0)

    def test_release_by_holder_clears(self):
        lease = apply_lease_line(None, line("claim", "a", 1.0, 11.0))
        assert apply_lease_line(lease, line("release", "a", 5.0, 5.0)) is None

    def test_release_by_non_holder_is_ignored(self):
        lease = apply_lease_line(None, line("claim", "a", 1.0, 11.0))
        lease = apply_lease_line(lease, line("release", "b", 5.0, 5.0))
        assert lease.owner == "a"


def managers(tmp_path, *, lease_seconds=10.0):
    """Two managers on two *separate* store instances over one root —
    the same setup as two daemon processes sharing a filesystem."""
    clock = [100.0]
    store_a = ResultStore(str(tmp_path))
    store_b = ResultStore(str(tmp_path))
    a = LeaseManager(store_a, "owner-a", lease_seconds=lease_seconds,
                     clock=lambda: clock[0])
    b = LeaseManager(store_b, "owner-b", lease_seconds=lease_seconds,
                     clock=lambda: clock[0])
    return a, b, clock


class TestLeaseManager:
    def test_claim_excludes_a_live_peer(self, tmp_path):
        a, b, clock = managers(tmp_path)
        assert a.claim("s1")
        assert not b.claim("s1")
        assert a.owns("s1") and not b.owns("s1")
        assert b.holder("s1").owner == "owner-a"

    def test_release_hands_the_shard_over(self, tmp_path):
        a, b, clock = managers(tmp_path)
        assert a.claim("s1")
        a.release("s1")
        assert b.claim("s1")
        assert b.owns("s1") and not a.owns("s1")

    def test_expiry_takeover_after_dead_peer(self, tmp_path):
        a, b, clock = managers(tmp_path)
        assert a.claim("s1")
        clock[0] += 20.0  # owner-a "died": no renewals past the window
        assert b.claim("s1")
        assert b.owns("s1")
        assert not a.owns("s1")  # a's next ownership re-check sees it

    def test_renew_keeps_the_lease_alive(self, tmp_path):
        a, b, clock = managers(tmp_path)
        assert a.claim("s1")
        for _ in range(5):
            clock[0] += 8.0
            a.renew_all()
            assert not b.claim("s1")
        assert a.owns("s1")

    def test_stale_renew_after_takeover_is_harmless(self, tmp_path):
        a, b, clock = managers(tmp_path)
        assert a.claim("s1")
        clock[0] += 20.0
        assert b.claim("s1")
        a.renew_all()  # the stalled peer wakes up and blindly renews
        assert b.owns("s1")
        assert not a.owns("s1")

    def test_claims_are_disjoint_across_shards(self, tmp_path):
        a, b, clock = managers(tmp_path)
        assert a.claim("s1")
        assert b.claim("s2")
        assert a.owns("s1") and b.owns("s2")
        assert not a.claim("s2") and not b.claim("s1")

    def test_context_manager_releases_on_exit(self, tmp_path):
        a, b, clock = managers(tmp_path)
        with a:
            assert a.claim("s1")
        assert not a.held()
        assert b.claim("s1")

    def test_replay_is_deterministic_across_readers(self, tmp_path):
        a, b, clock = managers(tmp_path)
        a.claim("s1")
        clock[0] += 20.0
        b.claim("s1")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            fresh = ResultStore(str(tmp_path))
        assert fresh.lease_state("s1").owner == "owner-b"

    def test_heartbeat_thread_renews(self, tmp_path):
        store = ResultStore(str(tmp_path))
        peer_store = ResultStore(str(tmp_path))
        a = LeaseManager(store, "owner-a", lease_seconds=0.6)
        b = LeaseManager(peer_store, "owner-b", lease_seconds=0.6)
        assert a.claim("s1")
        a.start_heartbeat()
        try:
            deadline = time.monotonic() + 1.5
            while time.monotonic() < deadline:
                assert not b.claim("s1")
                time.sleep(0.1)
        finally:
            a.stop_heartbeat()
        # Heartbeat stopped: the lease expires and the peer takes over.
        time.sleep(0.8)
        assert b.claim("s1")

    def test_positive_lease_seconds_required(self, tmp_path):
        store = ResultStore(str(tmp_path))
        with pytest.raises(ValueError, match="positive"):
            LeaseManager(store, "x", lease_seconds=0.0)

    def test_default_owner_shape(self):
        assert "-" in default_owner()
