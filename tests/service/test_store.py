"""Tests for the crash-safe result store: recording, dedup, recovery."""

import json
import os
import warnings

import pytest

from repro.analysis.campaign import BugHunt
from repro.sched.spec import SchedSpec
from repro.sched.trace import ScheduleTrace
from repro.service.manifest import CampaignManifest
from repro.service.store import ResultStore, failure_digest, hunt_digest
from repro.sim.cpus import cpu_by_name


def manifest(**kwargs):
    defaults = dict(name="s", seeds=(1,), cpus=("CPU1",), tests_per_bug=2)
    defaults.update(kwargs)
    return CampaignManifest(**defaults)


def make_hunt(bug_index=0, detected=True, schedule=None, via="TSO violation"):
    spec = cpu_by_name("CPU1").bugs[bug_index]
    return BugHunt(
        spec=spec, cpu="CPU1", detected=detected,
        tests_run=1 if detected else 2,
        detected_on_seed=11 if detected else None,
        via=via if detected else "", schedule=schedule,
    )


def make_schedule(choices=(("c", 1),)):
    trace = ScheduleTrace(policy="random")
    trace.choices.extend(choices)
    trace.meta.update({
        "kind": "hunt",
        "fault": {"mechanism": "StaleForwardFault", "unit": "LSU"},
    })
    return trace.to_json()


class TestDigests:
    def test_hunt_digest_ignores_schedule(self):
        with_trace = make_hunt(schedule=make_schedule())
        without = make_hunt(schedule=None)
        assert hunt_digest(with_trace) == hunt_digest(without)

    def test_hunt_digest_sensitive_to_outcome(self):
        assert hunt_digest(make_hunt(detected=True)) != \
            hunt_digest(make_hunt(detected=False))

    def test_failure_digest_none_without_detection_or_trace(self):
        assert failure_digest(make_hunt(detected=False)) is None
        assert failure_digest(make_hunt(detected=True, schedule=None)) is None

    def test_failure_digest_keys_on_behavior(self):
        a = make_hunt(schedule=make_schedule())
        b = make_hunt(schedule=make_schedule())
        assert failure_digest(a) == failure_digest(b)
        different_choices = make_hunt(
            schedule=make_schedule(choices=(("c", 0),))
        )
        assert failure_digest(a) != failure_digest(different_choices)
        different_verdict = make_hunt(
            schedule=make_schedule(), via="spurious alarm"
        )
        assert failure_digest(a) != failure_digest(different_verdict)


class TestRecording:
    def test_record_and_reload(self, tmp_path):
        store = ResultStore(str(tmp_path))
        hunt = make_hunt()
        digest, dedup = store.record_hunt("shard-a", 0, hunt)
        assert dedup is None
        store.mark_shard_done("shard-a")
        store.close()

        fresh = ResultStore(str(tmp_path))
        assert fresh.completed_hunts("shard-a") == {0: hunt}
        assert fresh.shard_done("shard-a")
        assert fresh.hunt_digests() == {digest}

    def test_identical_duplicate_record_is_idempotent(self, tmp_path):
        """A duplicate delivery of the *same* hunt (a late pool reply, a
        fleet overlap) is a no-op: no second line, same return value."""
        store = ResultStore(str(tmp_path))
        digest, dedup = store.record_hunt("shard-a", 0, make_hunt())
        again = store.record_hunt("shard-a", 0, make_hunt())
        assert again == (digest, dedup)
        path = os.path.join(str(tmp_path), "shards", "shard-a.jsonl")
        lines = [json.loads(x) for x in open(path) if x.strip()]
        assert sum(1 for d in lines if d["kind"] == "hunt") == 1

    def test_conflicting_record_raises(self, tmp_path):
        """Two *different* real outcomes for one (shard, bug) is a
        scheduler bug, never silently absorbed."""
        store = ResultStore(str(tmp_path))
        store.record_hunt("shard-a", 0, make_hunt(detected=True))
        with pytest.raises(ValueError, match="already"):
            store.record_hunt("shard-a", 0, make_hunt(detected=False))

    def test_real_result_supersedes_hung_tombstone(self, tmp_path):
        store = ResultStore(str(tmp_path))
        hung = BugHunt(
            spec=cpu_by_name("CPU1").bugs[0], cpu="CPU1", detected=False,
            tests_run=0, via="worker crashed or timed out", hung=True,
        )
        store.record_hunt("shard-a", 0, hung)
        real = make_hunt()
        store.record_hunt("shard-a", 0, real)
        assert store.completed_hunts("shard-a") == {0: real}
        store.close()
        # The replacement wins on replay too (later line supersedes).
        fresh = ResultStore(str(tmp_path))
        assert fresh.completed_hunts("shard-a") == {0: real}
        assert not fresh.completed_hunts("shard-a")[0].hung

    def test_late_hung_tombstone_never_clobbers_a_real_result(self, tmp_path):
        store = ResultStore(str(tmp_path))
        real = make_hunt()
        digest, _ = store.record_hunt("shard-a", 0, real)
        hung = BugHunt(
            spec=cpu_by_name("CPU1").bugs[0], cpu="CPU1", detected=False,
            tests_run=0, via="worker crashed or timed out", hung=True,
        )
        assert store.record_hunt("shard-a", 0, hung)[0] == digest
        assert store.completed_hunts("shard-a") == {0: real}

    def test_dedup_buckets_identical_detections(self, tmp_path):
        store = ResultStore(str(tmp_path))
        first = make_hunt(schedule=make_schedule())
        digest_a, dedup_a = store.record_hunt("shard-a", 0, first)
        digest_b, dedup_b = store.record_hunt("shard-b", 0, first)
        assert dedup_a is None              # first occurrence keeps trace
        assert dedup_b is not None          # duplicate was bucketed
        assert store.completed_hunts("shard-a")[0].schedule is not None
        assert store.completed_hunts("shard-b")[0].schedule is None
        # The stored duplicate digests identically to the original —
        # the digest excludes the schedule by design.
        assert digest_a == digest_b
        assert store.buckets() == {dedup_b: 2}
        assert store.schedule_for(dedup_b) == first.schedule

    def test_bucket_counts_survive_reload(self, tmp_path):
        store = ResultStore(str(tmp_path))
        hunt = make_hunt(schedule=make_schedule())
        store.record_hunt("a", 0, hunt)
        store.record_hunt("b", 0, hunt)
        store.record_hunt("c", 0, hunt)
        store.close()
        fresh = ResultStore(str(tmp_path))
        assert list(fresh.buckets().values()) == [3]
        assert fresh.schedule_for(failure_digest(hunt)) == hunt.schedule


class TestCrashRecovery:
    """Satellite: the store survives a SIGKILL's torn trailing line."""

    def _torn_store(self, tmp_path, keep_bytes=None):
        """A store with hunts 0 and 1 recorded, then the file torn
        mid-way through hunt 1's line (no shard-done marker)."""
        m = manifest()
        shard = m.shards()[0]
        store = ResultStore(str(tmp_path))
        store.record_hunt(shard.shard_id, 0, make_hunt(0))
        store.record_hunt(shard.shard_id, 1, make_hunt(1))
        store.close()
        path = os.path.join(str(tmp_path), "shards",
                            f"{shard.shard_id}.jsonl")
        lines = open(path).read().splitlines(True)
        torn = lines[1][: len(lines[1]) // 2] if keep_bytes is None else \
            lines[1][:keep_bytes]
        with open(path, "w") as fh:
            fh.write(lines[0])
            fh.write(torn)
        return m, shard, path

    def test_torn_trailing_line_skipped_with_warning(self, tmp_path):
        m, shard, path = self._torn_store(tmp_path)
        with pytest.warns(RuntimeWarning, match="torn append"):
            store = ResultStore(str(tmp_path))
        # The intact hunt is kept; only the torn one is lost.
        assert set(store.completed_hunts(shard.shard_id)) == {0}

    def test_resume_requeues_only_the_torn_hunt(self, tmp_path):
        m, shard, _ = self._torn_store(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            store = ResultStore(str(tmp_path))
        pending = store.pending(m)
        assert [(s.shard_id, missing) for s, missing in pending] == [
            (shard.shard_id, [1, 2])  # torn hunt 1 + never-run hunt 2
        ]

    def test_completed_shard_is_never_requeued(self, tmp_path):
        m = manifest()
        shard = m.shards()[0]
        store = ResultStore(str(tmp_path))
        for i in range(shard.hunt_count()):
            store.record_hunt(shard.shard_id, i, make_hunt(i))
        store.mark_shard_done(shard.shard_id)
        store.close()
        fresh = ResultStore(str(tmp_path))
        assert fresh.pending(m) == []

    def test_empty_trailing_junk_is_harmless(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.record_hunt("a", 0, make_hunt())
        store.close()
        path = os.path.join(str(tmp_path), "shards", "a.jsonl")
        with open(path, "a") as fh:
            fh.write("\n\n{not json")
        with pytest.warns(RuntimeWarning):
            fresh = ResultStore(str(tmp_path))
        assert set(fresh.completed_hunts("a")) == {0}


class TestMarkerValidation:
    """Satellite: a done marker outliving a torn mid-file hunt line must
    not wedge the job (pending() skipping it while merged() raises)."""

    def _done_store(self, tmp_path):
        m = manifest()
        shard = m.shards()[0]
        store = ResultStore(str(tmp_path))
        for i in range(shard.hunt_count()):
            store.record_hunt(shard.shard_id, i, make_hunt(i))
        store.mark_shard_done(shard.shard_id)
        store.close()
        path = os.path.join(str(tmp_path), "shards",
                            f"{shard.shard_id}.jsonl")
        return m, shard, path

    def test_marker_with_missing_hunts_demotes_shard(self, tmp_path):
        m, shard, path = self._done_store(tmp_path)
        lines = open(path).read().splitlines(True)
        # Corrupt a *mid-file* hunt line; the done marker survives.
        with open(path, "w") as fh:
            fh.write(lines[0])
            fh.write(lines[1][: len(lines[1]) // 2] + "\n")
            for line in lines[2:]:
                fh.write(line)
        with pytest.warns(RuntimeWarning, match="demoting"):
            store = ResultStore(str(tmp_path))
        assert not store.shard_done(shard.shard_id)
        # The missing hunt is re-queued; intact ones are reused.
        pending = store.pending(m)
        assert [(s.shard_id, missing) for s, missing in pending] == [
            (shard.shard_id, [1])
        ]

    def test_demoted_shard_completes_on_resume(self, tmp_path):
        m, shard, path = self._done_store(tmp_path)
        lines = open(path).read().splitlines(True)
        with open(path, "w") as fh:
            fh.write(lines[0])
            fh.write(lines[1][: len(lines[1]) // 2] + "\n")
            for line in lines[2:]:
                fh.write(line)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            store = ResultStore(str(tmp_path))
        # Resume records the missing hunt and re-marks the shard: the
        # wedge (pending empty + merged raising forever) is gone.
        store.record_hunt(shard.shard_id, 1, make_hunt(1))
        store.mark_shard_done(shard.shard_id)
        assert store.pending(m) == []
        store.close()
        fresh = ResultStore(str(tmp_path))
        assert fresh.shard_done(shard.shard_id)
        assert fresh.pending(m) == []

    def test_pending_checks_marker_against_manifest_hunt_count(
        self, tmp_path
    ):
        """A marker consistent with its *loaded* records but short of the
        manifest's hunt count still re-queues the difference."""
        m = manifest()
        shard = m.shards()[0]
        store = ResultStore(str(tmp_path))
        store.record_hunt(shard.shard_id, 0, make_hunt(0))
        store.mark_shard_done(shard.shard_id)  # marker says 1 hunt
        assert shard.hunt_count() > 1
        pending = store.pending(m)
        assert [(s.shard_id, missing) for s, missing in pending] == [
            (shard.shard_id, list(range(1, shard.hunt_count())))
        ]


class TestHungRequeue:
    """Satellite: a hung record is a tombstone, not a completion —
    resume retries it by default instead of pinning exit code 2."""

    def _hung(self, bug_index=0):
        return BugHunt(
            spec=cpu_by_name("CPU1").bugs[bug_index], cpu="CPU1",
            detected=False, tests_run=0,
            via="worker crashed or timed out", hung=True,
        )

    def test_pending_requeues_hung_hunts(self, tmp_path):
        m = manifest()
        shard = m.shards()[0]
        store = ResultStore(str(tmp_path))
        for i in range(shard.hunt_count()):
            store.record_hunt(
                shard.shard_id, i, self._hung(i) if i == 1 else make_hunt(i)
            )
        store.mark_shard_done(shard.shard_id)
        store.close()
        fresh = ResultStore(str(tmp_path))
        pending = fresh.pending(m)
        assert [(s.shard_id, missing) for s, missing in pending] == [
            (shard.shard_id, [1])
        ]

    def test_requeue_hung_false_keeps_tombstones_final(self, tmp_path):
        m = manifest()
        shard = m.shards()[0]
        store = ResultStore(str(tmp_path))
        for i in range(shard.hunt_count()):
            store.record_hunt(
                shard.shard_id, i, self._hung(i) if i == 1 else make_hunt(i)
            )
        store.mark_shard_done(shard.shard_id)
        store.close()
        fresh = ResultStore(str(tmp_path), requeue_hung=False)
        assert fresh.pending(m) == []


class TestCompaction:
    """Satellite: compaction preserves the hunt-digest set, the stored
    dedup references and schedule_for resolution."""

    def test_compact_preserves_digests_and_dedup(self, tmp_path):
        store = ResultStore(str(tmp_path))
        first = make_hunt(schedule=make_schedule())
        store.record_hunt("shard-a", 0, first)
        store.record_hunt("shard-b", 0, first)   # bucketed duplicate
        store.record_hunt("shard-a", 1, make_hunt(1, detected=False))
        # Lease churn + a superseded tombstone: all compacted away.
        store.append_lease("shard-a", "claim", "h1-1", time=1.0, expires=9.0)
        hung = BugHunt(
            spec=cpu_by_name("CPU1").bugs[2], cpu="CPU1", detected=False,
            tests_run=0, via="worker crashed or timed out", hung=True,
        )
        store.record_hunt("shard-a", 2, hung)
        store.record_hunt("shard-a", 2, make_hunt(2))
        store.append_lease("shard-a", "release", "h1-1", time=2.0, expires=2.0)
        store.mark_shard_done("shard-a")
        store.mark_shard_done("shard-b")
        digests = store.hunt_digests()
        bucket = failure_digest(first)

        deltas = store.compact()
        assert set(deltas) == {"shard-a", "shard-b"}
        before, after = deltas["shard-a"]
        assert after == 4  # three winning hunts + one marker
        assert before > after
        store.close()

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a torn rewrite would warn
            fresh = ResultStore(str(tmp_path))
        assert fresh.hunt_digests() == digests
        assert fresh.shard_done("shard-a") and fresh.shard_done("shard-b")
        assert not fresh.completed_hunts("shard-a")[2].hung
        # The bucketed duplicate still resolves to the canonical trace.
        assert fresh.completed_hunts("shard-b")[0].schedule is None
        assert fresh.schedule_for(bucket) == first.schedule

    def test_compact_refuses_live_shards(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.record_hunt("shard-a", 0, make_hunt())
        with pytest.raises(ValueError, match="not done"):
            store.compact_shard("shard-a")
        assert store.compact() == {}

    def test_append_after_compact_lands_in_the_new_file(self, tmp_path):
        """The cached O_APPEND fd must not keep writing to the unlinked
        pre-compaction inode."""
        store = ResultStore(str(tmp_path))
        store.record_hunt("shard-a", 0, make_hunt(0))
        store.mark_shard_done("shard-a")
        store.compact_shard("shard-a")
        store.record_hunt("shard-a", 1, make_hunt(1))
        store.close()
        fresh = ResultStore(str(tmp_path))
        assert set(fresh.completed_hunts("shard-a")) == {0, 1}


class TestSummary:
    def test_summary_counts(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.record_hunt("a", 0, make_hunt(0))
        store.record_hunt("a", 1, make_hunt(1, detected=False))
        store.mark_shard_done("a")
        hung = BugHunt(
            spec=cpu_by_name("CPU1").bugs[0], cpu="CPU1", detected=False,
            tests_run=0, via="worker crashed or timed out", hung=True,
        )
        store.record_hunt("b", 0, hung)
        summary = store.summary()
        assert summary["hunts_recorded"] == 3
        assert summary["hunts_detected"] == 1
        assert summary["hunts_hung"] == 1
        assert summary["shards_done"] == 1
        assert summary["shards"]["a"]["done"] is True
        assert summary["shards"]["b"]["done"] is False
        assert json.loads(json.dumps(summary)) == summary  # JSON-safe
