"""Tests for the crash-safe result store: recording, dedup, recovery."""

import json
import os
import warnings

import pytest

from repro.analysis.campaign import BugHunt
from repro.sched.spec import SchedSpec
from repro.sched.trace import ScheduleTrace
from repro.service.manifest import CampaignManifest
from repro.service.store import ResultStore, failure_digest, hunt_digest
from repro.sim.cpus import cpu_by_name


def manifest(**kwargs):
    defaults = dict(name="s", seeds=(1,), cpus=("CPU1",), tests_per_bug=2)
    defaults.update(kwargs)
    return CampaignManifest(**defaults)


def make_hunt(bug_index=0, detected=True, schedule=None, via="TSO violation"):
    spec = cpu_by_name("CPU1").bugs[bug_index]
    return BugHunt(
        spec=spec, cpu="CPU1", detected=detected,
        tests_run=1 if detected else 2,
        detected_on_seed=11 if detected else None,
        via=via if detected else "", schedule=schedule,
    )


def make_schedule(choices=(("c", 1),)):
    trace = ScheduleTrace(policy="random")
    trace.choices.extend(choices)
    trace.meta.update({
        "kind": "hunt",
        "fault": {"mechanism": "StaleForwardFault", "unit": "LSU"},
    })
    return trace.to_json()


class TestDigests:
    def test_hunt_digest_ignores_schedule(self):
        with_trace = make_hunt(schedule=make_schedule())
        without = make_hunt(schedule=None)
        assert hunt_digest(with_trace) == hunt_digest(without)

    def test_hunt_digest_sensitive_to_outcome(self):
        assert hunt_digest(make_hunt(detected=True)) != \
            hunt_digest(make_hunt(detected=False))

    def test_failure_digest_none_without_detection_or_trace(self):
        assert failure_digest(make_hunt(detected=False)) is None
        assert failure_digest(make_hunt(detected=True, schedule=None)) is None

    def test_failure_digest_keys_on_behavior(self):
        a = make_hunt(schedule=make_schedule())
        b = make_hunt(schedule=make_schedule())
        assert failure_digest(a) == failure_digest(b)
        different_choices = make_hunt(
            schedule=make_schedule(choices=(("c", 0),))
        )
        assert failure_digest(a) != failure_digest(different_choices)
        different_verdict = make_hunt(
            schedule=make_schedule(), via="spurious alarm"
        )
        assert failure_digest(a) != failure_digest(different_verdict)


class TestRecording:
    def test_record_and_reload(self, tmp_path):
        store = ResultStore(str(tmp_path))
        hunt = make_hunt()
        digest, dedup = store.record_hunt("shard-a", 0, hunt)
        assert dedup is None
        store.mark_shard_done("shard-a")
        store.close()

        fresh = ResultStore(str(tmp_path))
        assert fresh.completed_hunts("shard-a") == {0: hunt}
        assert fresh.shard_done("shard-a")
        assert fresh.hunt_digests() == {digest}

    def test_duplicate_record_raises(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.record_hunt("shard-a", 0, make_hunt())
        with pytest.raises(ValueError, match="already"):
            store.record_hunt("shard-a", 0, make_hunt())

    def test_dedup_buckets_identical_detections(self, tmp_path):
        store = ResultStore(str(tmp_path))
        first = make_hunt(schedule=make_schedule())
        digest_a, dedup_a = store.record_hunt("shard-a", 0, first)
        digest_b, dedup_b = store.record_hunt("shard-b", 0, first)
        assert dedup_a is None              # first occurrence keeps trace
        assert dedup_b is not None          # duplicate was bucketed
        assert store.completed_hunts("shard-a")[0].schedule is not None
        assert store.completed_hunts("shard-b")[0].schedule is None
        # The stored duplicate digests identically to the original —
        # the digest excludes the schedule by design.
        assert digest_a == digest_b
        assert store.buckets() == {dedup_b: 2}
        assert store.schedule_for(dedup_b) == first.schedule

    def test_bucket_counts_survive_reload(self, tmp_path):
        store = ResultStore(str(tmp_path))
        hunt = make_hunt(schedule=make_schedule())
        store.record_hunt("a", 0, hunt)
        store.record_hunt("b", 0, hunt)
        store.record_hunt("c", 0, hunt)
        store.close()
        fresh = ResultStore(str(tmp_path))
        assert list(fresh.buckets().values()) == [3]
        assert fresh.schedule_for(failure_digest(hunt)) == hunt.schedule


class TestCrashRecovery:
    """Satellite: the store survives a SIGKILL's torn trailing line."""

    def _torn_store(self, tmp_path, keep_bytes=None):
        """A store with hunts 0 and 1 recorded, then the file torn
        mid-way through hunt 1's line (no shard-done marker)."""
        m = manifest()
        shard = m.shards()[0]
        store = ResultStore(str(tmp_path))
        store.record_hunt(shard.shard_id, 0, make_hunt(0))
        store.record_hunt(shard.shard_id, 1, make_hunt(1))
        store.close()
        path = os.path.join(str(tmp_path), "shards",
                            f"{shard.shard_id}.jsonl")
        lines = open(path).read().splitlines(True)
        torn = lines[1][: len(lines[1]) // 2] if keep_bytes is None else \
            lines[1][:keep_bytes]
        with open(path, "w") as fh:
            fh.write(lines[0])
            fh.write(torn)
        return m, shard, path

    def test_torn_trailing_line_skipped_with_warning(self, tmp_path):
        m, shard, path = self._torn_store(tmp_path)
        with pytest.warns(RuntimeWarning, match="torn append"):
            store = ResultStore(str(tmp_path))
        # The intact hunt is kept; only the torn one is lost.
        assert set(store.completed_hunts(shard.shard_id)) == {0}

    def test_resume_requeues_only_the_torn_hunt(self, tmp_path):
        m, shard, _ = self._torn_store(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            store = ResultStore(str(tmp_path))
        pending = store.pending(m)
        assert [(s.shard_id, missing) for s, missing in pending] == [
            (shard.shard_id, [1, 2])  # torn hunt 1 + never-run hunt 2
        ]

    def test_completed_shard_is_never_requeued(self, tmp_path):
        m = manifest()
        shard = m.shards()[0]
        store = ResultStore(str(tmp_path))
        for i in range(shard.hunt_count()):
            store.record_hunt(shard.shard_id, i, make_hunt(i))
        store.mark_shard_done(shard.shard_id)
        store.close()
        fresh = ResultStore(str(tmp_path))
        assert fresh.pending(m) == []

    def test_empty_trailing_junk_is_harmless(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.record_hunt("a", 0, make_hunt())
        store.close()
        path = os.path.join(str(tmp_path), "shards", "a.jsonl")
        with open(path, "a") as fh:
            fh.write("\n\n{not json")
        with pytest.warns(RuntimeWarning):
            fresh = ResultStore(str(tmp_path))
        assert set(fresh.completed_hunts("a")) == {0}


class TestSummary:
    def test_summary_counts(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.record_hunt("a", 0, make_hunt(0))
        store.record_hunt("a", 1, make_hunt(1, detected=False))
        store.mark_shard_done("a")
        hung = BugHunt(
            spec=cpu_by_name("CPU1").bugs[0], cpu="CPU1", detected=False,
            tests_run=0, via="worker crashed or timed out", hung=True,
        )
        store.record_hunt("b", 0, hung)
        summary = store.summary()
        assert summary["hunts_recorded"] == 3
        assert summary["hunts_detected"] == 1
        assert summary["hunts_hung"] == 1
        assert summary["shards_done"] == 1
        assert summary["shards"]["a"]["done"] is True
        assert summary["shards"]["b"]["done"] is False
        assert json.loads(json.dumps(summary)) == summary  # JSON-safe
