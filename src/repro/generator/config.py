"""Generator configuration: the user knobs of Sec. 3.1.

"Users can control parameters such as the relative frequency of
instruction types, memory layout and loop characteristics."  Those three
axes map to :class:`InstructionMix`, the ``shared_words`` / ``stride_words``
/ ``base`` layout fields, and the ``loop_*`` fields respectively.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Tuple

from repro.generator.patterns import PATTERNS
from repro.model.ops import WORD_SIZE


@dataclass(frozen=True)
class InstructionMix:
    """Relative weights of each generated instruction type.

    Weights are non-negative and need not sum to anything in particular;
    a weight of zero disables the type.  The defaults create the paper's
    "relatively short test with intense sharing": mostly loads and stores
    with a seasoning of atomics, barriers, block operations and the
    oddball instruction types that perturb the memory system.
    """

    load: float = 35.0
    store: float = 35.0
    swap: float = 4.0
    cas: float = 4.0
    membar: float = 4.0
    block_load: float = 1.5
    block_store: float = 1.5
    nonfaulting_load: float = 2.0
    prefetch: float = 2.0
    flush: float = 1.0
    branch: float = 2.0
    interrupt: float = 0.5
    nc_load: float = 1.0
    nc_store: float = 1.0

    def weights(self) -> List[Tuple[str, float]]:
        """(name, weight) pairs for all enabled instruction types."""
        out = []
        for f in fields(self):
            weight = getattr(self, f.name)
            if weight < 0:
                raise ValueError(f"negative weight for {f.name}")
            if weight > 0:
                out.append((f.name, weight))
        if not out:
            raise ValueError("instruction mix is empty")
        return out


@dataclass(frozen=True)
class GeneratorConfig:
    """Everything the user controls about a generated test.

    Attributes:
        nprocs: number of logical processors (the paper runs up to 16).
        ops_per_proc: instructions generated per processor ("a few
            thousand memory operations per processor" on silicon).
        shared_words: number of shared 4-byte locations ("a relatively
            small number of shared memory locations" keeps races intense).
        stride_words: spacing between consecutive shared words, in words.
            1 packs them densely into the same cache lines (maximal false
            sharing); 16 puts each word on its own 64-byte line.
        base: byte address of the first shared word (must be 64-byte
            aligned so block operations can cover the region).
        mix: relative instruction-type frequencies.
        size_weights: weights for scalar access sizes in bytes (4/8/16).
            Multi-word accesses are only emitted where they fit the
            shared region without crossing its end.
        loop_prob: probability that the generator emits a loop at any
            given point instead of a single instruction.
        loop_body_max: maximum instructions in a loop body.
        loop_count_max: maximum trip count.  Loops are emitted statically
            unrolled — the paper unrolls them during analysis anyway
            (Sec. 3.3), and store values are counter-sourced at run time,
            so unrolled iterations keep the unique-value guarantee.
        branch_skip_max: maximum instructions an unpredictable branch may
            skip.
        pattern_prob: probability of splicing a *directed sequence* (one
            of :data:`repro.generator.patterns.PATTERNS`) instead of a
            single random unit — the Sec. 3.1 "desirable sequences of
            memory operations ... likely to exercise known corner-cases".
        patterns: which directed sequences to draw from.
        nc_words: number of shared *non-cacheable* words, laid out in
            their own region after the cacheable one (software never
            aliases a location both ways).  Targeted by the ``nc_load`` /
            ``nc_store`` mix weights — the Sec. 3.1 "memory access
            instructions to various Address Space Identifiers".
    """

    nprocs: int = 4
    ops_per_proc: int = 100
    shared_words: int = 16
    stride_words: int = 1
    base: int = 0
    mix: InstructionMix = field(default_factory=InstructionMix)
    size_weights: Dict[int, float] = field(
        default_factory=lambda: {4: 6.0, 8: 2.0, 16: 1.0}
    )
    loop_prob: float = 0.05
    loop_body_max: int = 6
    loop_count_max: int = 4
    branch_skip_max: int = 3
    pattern_prob: float = 0.0
    patterns: Tuple[str, ...] = tuple(sorted(PATTERNS))
    nc_words: int = 2

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if self.ops_per_proc < 1:
            raise ValueError("ops_per_proc must be >= 1")
        if self.shared_words < 1:
            raise ValueError("shared_words must be >= 1")
        if self.stride_words < 1:
            raise ValueError("stride_words must be >= 1")
        if self.base % 64 != 0:
            raise ValueError("base must be 64-byte aligned")
        if not (0.0 <= self.loop_prob <= 1.0):
            raise ValueError("loop_prob must be in [0, 1]")
        for size in self.size_weights:
            if size not in (4, 8, 16):
                raise ValueError(f"unsupported scalar size {size}")
        if not (0.0 <= self.pattern_prob <= 1.0):
            raise ValueError("pattern_prob must be in [0, 1]")
        for name in self.patterns:
            if name not in PATTERNS:
                raise ValueError(f"unknown pattern {name!r}")
        if self.pattern_prob > 0 and not self.patterns:
            raise ValueError("pattern_prob > 0 but no patterns selected")
        if self.nc_words < 0:
            raise ValueError("nc_words must be >= 0")

    def word_addresses(self) -> List[int]:
        """Byte addresses of all shared words, in layout order."""
        return [
            self.base + i * self.stride_words * WORD_SIZE
            for i in range(self.shared_words)
        ]

    def nc_addresses(self) -> List[int]:
        """Byte addresses of the non-cacheable words (own 64-byte region)."""
        span = self.shared_words * self.stride_words * WORD_SIZE
        start = self.base + ((span + 63) // 64 + 1) * 64
        return [start + i * WORD_SIZE for i in range(self.nc_words)]

    @property
    def faulting_address(self) -> int:
        """A word address outside the shared region, guaranteed unmapped.

        Used as the target of faulting non-faulting loads; the simulator
        treats it as an invalid page.
        """
        span = self.shared_words * self.stride_words * WORD_SIZE
        span += (self.nc_words + 32) * WORD_SIZE
        return self.base + ((span + 0xFFF) // 0x1000 + 1) * 0x1000
