"""The pseudo-random racy program generator (Sec. 3.1).

Generates a multithreaded :class:`~repro.model.program.Program` with data
races on a small set of shared words, controlled by a
:class:`~repro.generator.config.GeneratorConfig`:

* intense sharing: every data access targets the (small) shared region;
* unique store values by construction: stores are counter-sourced, so the
  executing machine assigns each stored word a fresh value from a per-CPU
  counter (the paper's integer/floating-point register counters);
* CAS instructions are emitted with their Sec. 3.1 companion load ("the
  value returned by the load is used as the compare value"), giving each
  CAS a good chance of resolving into a swap while occasionally failing
  when a racing store intervenes;
* loops repeat a fixed body several times; they are emitted statically
  unrolled, which is behaviourally identical because the analysis phase
  unrolls loops anyway (Sec. 3.3) and counter-sourced stores keep values
  unique across iterations;
* unpredictable conditional branches, non-faulting loads (to both valid
  and faulting addresses), prefetch variants, block operations and
  cache/pipeline flushes are mixed in per the configured weights.

Generation is deterministic per (config, seed).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro import telemetry
from repro.generator.config import GeneratorConfig
from repro.generator.patterns import build_pattern
from repro.model.ops import (
    BLOCK_SIZE,
    WORD_SIZE,
    IBlockLoad,
    IBlockStore,
    IBranch,
    ICas,
    IFlushCache,
    IFlushPipe,
    IInterrupt,
    ILoad,
    IMembar,
    INonFaultingLoad,
    IPrefetch,
    IStore,
    ISwap,
    Instr,
    PrefetchVariant,
)
from repro.model.program import Program, Thread

#: A unit recipe: materializes one or more instructions into a thread.
_Recipe = Callable[[List[Instr]], None]


def generate_program(config: GeneratorConfig, seed: int = 0) -> Program:
    """Generate a racy test program.

    Args:
        config: the generation knobs.
        seed: PRNG seed; the same (config, seed) always yields the same
            program.

    Returns:
        A validated :class:`~repro.model.program.Program` with exactly
        ``config.ops_per_proc`` instructions per processor and all shared
        words initialised to 0.
    """
    with telemetry.span("generate", procs=config.nprocs, ops=config.ops_per_proc):
        rng = random.Random(seed)
        gen = _ThreadGenerator(config, rng)
        threads = [gen.generate_thread(pid) for pid in range(config.nprocs)]
        initial = {addr: 0 for addr in config.word_addresses()}
        initial.update({addr: 0 for addr in config.nc_addresses()})
        program = Program(threads=threads, initial=initial)
        program.validate()
        return program


class _ThreadGenerator:
    """Generates one thread at a time from shared configuration."""

    def __init__(self, config: GeneratorConfig, rng: random.Random) -> None:
        self.config = config
        self.rng = rng
        self.words = config.word_addresses()
        self.nc_words = config.nc_addresses()
        mix = config.mix.weights()
        self._kinds = [name for name, _ in mix]
        self._weights = [weight for _, weight in mix]
        sizes = sorted(config.size_weights.items())
        self._sizes = [s for s, _ in sizes]
        self._size_weights = [w for _, w in sizes]
        span = config.shared_words * config.stride_words * WORD_SIZE
        self._block_lines = max(1, span // BLOCK_SIZE)

    def generate_thread(self, pid: int = 0) -> Thread:
        self._pid = pid
        budget = self.config.ops_per_proc
        instrs: List[Instr] = []
        while len(instrs) < budget:
            remaining = budget - len(instrs)
            if (
                self.config.pattern_prob > 0
                and remaining >= 4
                and self.rng.random() < self.config.pattern_prob
            ):
                self._emit_pattern(instrs, remaining)
            elif (
                remaining >= 4
                and self.rng.random() < self.config.loop_prob
            ):
                self._emit_loop(instrs, remaining)
            else:
                recipe, cost = self._pick_unit(len(instrs), budget)
                if cost <= remaining:
                    recipe(instrs)
                else:
                    # Unit does not fit the tail of the thread: pad with a
                    # plain load so generation always terminates.
                    addr, size = self._scalar_access()
                    instrs.append(ILoad(addr=addr, size=size))
        return Thread(instrs=instrs)

    # ------------------------------------------------------------------
    # Unit selection
    # ------------------------------------------------------------------

    def _pick_unit(self, position: int, budget: int) -> Tuple[_Recipe, int]:
        """Choose one instruction unit; returns (recipe, instruction cost)."""
        kind = self.rng.choices(self._kinds, weights=self._weights, k=1)[0]
        if kind == "load":
            addr, size = self._scalar_access()
            return (lambda out: out.append(ILoad(addr=addr, size=size))), 1
        if kind == "store":
            addr, size = self._scalar_access()
            return (lambda out: out.append(IStore(addr=addr, size=size))), 1
        if kind == "swap":
            addr, size = self._atomic_access()
            return (lambda out: out.append(ISwap(addr=addr, size=size))), 1
        if kind == "cas":
            addr, size = self._atomic_access()

            def emit_cas(out: List[Instr]) -> None:
                load_idx = len(out)
                out.append(ILoad(addr=addr, size=size))
                out.append(ICas(addr=addr, size=size, compare_from=load_idx))

            return emit_cas, 2
        if kind == "membar":
            return (lambda out: out.append(IMembar())), 1
        if kind == "block_load":
            addr = self._block_access()
            return (lambda out: out.append(IBlockLoad(addr=addr))), 1
        if kind == "block_store":
            addr = self._block_access()
            return (lambda out: out.append(IBlockStore(addr=addr))), 1
        if kind == "nonfaulting_load":
            faulting = self.rng.random() < 0.5
            if faulting:
                addr, size = self.config.faulting_address, WORD_SIZE
            else:
                addr, size = self._scalar_access()
            return (
                lambda out: out.append(
                    INonFaultingLoad(addr=addr, size=size, faulting=faulting)
                )
            ), 1
        if kind == "prefetch":
            addr = self._word()
            variant = self.rng.choice(list(PrefetchVariant))
            strong = self.rng.random() < 0.5
            return (
                lambda out: out.append(
                    IPrefetch(addr=addr, variant=variant, strong=strong)
                )
            ), 1
        if kind == "flush":
            if self.rng.random() < 0.5:
                addr = self._word()
                return (lambda out: out.append(IFlushCache(addr=addr))), 1
            return (lambda out: out.append(IFlushPipe())), 1
        if kind in ("nc_load", "nc_store"):
            if not self.nc_words:
                addr, size = self._scalar_access()
                return (lambda out: out.append(ILoad(addr=addr, size=size))), 1
            addr = self.rng.choice(self.nc_words)
            if kind == "nc_load":
                return (
                    lambda out: out.append(
                        ILoad(addr=addr, size=WORD_SIZE, cacheable=False)
                    )
                ), 1
            return (
                lambda out: out.append(
                    IStore(addr=addr, size=WORD_SIZE, cacheable=False)
                )
            ), 1
        if kind == "interrupt":
            others = [p for p in range(self.config.nprocs) if p != self._pid]
            if not others:
                addr, size = self._scalar_access()
                return (lambda out: out.append(ILoad(addr=addr, size=size))), 1
            target = self.rng.choice(others)
            return (lambda out: out.append(IInterrupt(target=target))), 1
        if kind == "branch":
            # Only emit where the skip provably stays inside the thread.
            max_skip = min(self.config.branch_skip_max, budget - position - 2)
            if max_skip < 1:
                addr, size = self._scalar_access()
                return (lambda out: out.append(ILoad(addr=addr, size=size))), 1
            skip = self.rng.randint(1, max_skip)
            return (lambda out: out.append(IBranch(skip=skip))), 1
        raise AssertionError(f"unhandled instruction kind {kind!r}")

    def _emit_pattern(self, instrs: List[Instr], remaining: int) -> None:
        """Splice one directed corner-case sequence, if it fits."""
        name = self.rng.choice(list(self.config.patterns))
        sequence = build_pattern(name, self.rng, self.words, len(instrs))
        if len(sequence) <= remaining:
            instrs.extend(sequence)

    def _emit_loop(self, instrs: List[Instr], remaining: int) -> None:
        """Emit a statically-unrolled loop of a fixed random body."""
        body_len = self.rng.randint(1, min(self.config.loop_body_max, remaining // 2))
        count = self.rng.randint(2, max(2, self.config.loop_count_max))
        # Pick body recipes once (same addresses each iteration, like a
        # real loop), excluding branches for simplicity of skip targets.
        recipes: List[_Recipe] = []
        cost = 0
        for _ in range(body_len):
            while True:
                recipe, unit_cost = self._pick_unit(len(instrs) + cost, 10 ** 9)
                probe: List[Instr] = []
                recipe(probe)
                if not any(isinstance(i, IBranch) for i in probe):
                    break
            recipes.append(recipe)
            cost += unit_cost
        iterations = min(count, max(1, remaining // max(cost, 1)))
        for _ in range(iterations):
            for recipe in recipes:
                recipe(instrs)

    # ------------------------------------------------------------------
    # Address/size selection
    # ------------------------------------------------------------------

    def _word(self) -> int:
        return self.rng.choice(self.words)

    def _scalar_access(self) -> Tuple[int, int]:
        size = self.rng.choices(self._sizes, weights=self._size_weights, k=1)[0]
        addr = self._word()
        return addr - (addr % size), size

    def _atomic_access(self) -> Tuple[int, int]:
        # Atomics come in 4- and 8-byte flavours; respect the configured
        # size weights so targets without 8-byte atomics (the C11
        # backend) can restrict them.
        sizes = [s for s in self._sizes if s in (4, 8)] or [4]
        weights = [self.config.size_weights.get(s, 1.0) for s in sizes]
        size = self.rng.choices(sizes, weights=weights, k=1)[0]
        addr = self._word()
        return addr - (addr % size), size

    def _block_access(self) -> int:
        line = self.rng.randrange(self._block_lines)
        return self.config.base + line * BLOCK_SIZE
