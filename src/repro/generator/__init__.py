"""Pseudo-random racy test-program generation (Sec. 3.1, Step 1 of Fig. 1).

* :class:`~repro.generator.config.GeneratorConfig` — the user-controllable
  knobs the paper describes: processor count, shared-location count and
  layout, instruction-type mix, loop characteristics.
* :func:`~repro.generator.generator.generate_program` — the generator.
* :data:`~repro.generator.litmus.LITMUS_LIBRARY` — the paper's Fig. 3/5/6/7
  examples plus classic TSO litmus outcomes, as parsed litmus texts.
* :class:`~repro.generator.lfsr.Lfsr` — the per-processor software LFSR
  used for run-time randomization (branch directions).
"""

from repro.generator.config import GeneratorConfig, InstructionMix
from repro.generator.generator import generate_program
from repro.generator.lfsr import Lfsr
from repro.generator.litmus import LITMUS_LIBRARY, LitmusCase

__all__ = [
    "GeneratorConfig",
    "InstructionMix",
    "generate_program",
    "Lfsr",
    "LITMUS_LIBRARY",
    "LitmusCase",
]
