"""Litmus cases: the paper's examples and the classic memory-model shapes.

Each :class:`LitmusCase` pairs a program *outcome* in the paper's notation
with the expected verdict under each memory model.  The ``expect`` map
gives, per model name, whether the outcome is **accepted** (``True`` =
check passes).  ``complete_valid`` records ground truth from the full
decision procedure where it differs from the polynomial verdict — the
Fig. 5 incompleteness cases.

Paper cases:

* ``fig3``  — the worked 4-processor example whose analysis builds edges
  E1–E10 and finds a cycle (Figs. 3 and 4).
* ``fig5_base`` — the fixed-point example where ``S[A]#1`` and ``S[A]#2``
  are left unordered even though the Order axiom implies an ordering; the
  outcome is legal, so both checkers accept.
* ``fig5_mirrored`` — the paper's "adding a similar, mirrored set of nodes
  to a different location C creates an instance of a TSO violation which
  is missed by our algorithm": the polynomial checker accepts, the
  complete procedure rejects.
* ``fig6``  — the silicon write-cache bug (block store vs swap losing the
  dirty bit).
* ``fig7``  — the CAS atomicity-window bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class LitmusCase:
    """One named litmus outcome with expected verdicts.

    Attributes:
        name: short identifier.
        text: the outcome in the paper's litmus notation.
        expect: model name -> True if the polynomial check should PASS.
        complete_valid: ground-truth validity under TSO from the complete
            procedure, when it differs from ``expect["TSO"]`` (the
            incompleteness cases); ``None`` means "same as polynomial".
        description: what the case demonstrates.
        paper_ref: figure/section of the paper, when applicable.
    """

    name: str
    text: str
    expect: Dict[str, bool]
    complete_valid: Optional[bool] = None
    description: str = ""
    paper_ref: str = ""


LITMUS_LIBRARY: List[LitmusCase] = [
    LitmusCase(
        name="fig3",
        text="""
            P0: S[B]#91 ; S[A]#1 ; L[A]=2
            P1: S[A]#2
            P2: S[B]#92 ; L[A]=2 ; L[B]=92
            P3: L[B]=92 ; L[B]=91
        """,
        expect={"TSO": False, "SC": False},
        description=(
            "The paper's worked example: inferred edges E1-E10 produce a "
            "cycle between S[B]#91 and S[B]#92."
        ),
        paper_ref="Fig. 3/4",
    ),
    LitmusCase(
        name="fig5_base",
        text="""
            P0: S[B]#4 ; L[D]=7 ; S[A]#2
            P1: S[B]#3 ; S[D]#7
            P2: S[A]#1 ; M ; L[B]=3
            P3: L[A]=1 ; L[B]=4
        """,
        expect={"TSO": True},
        complete_valid=True,
        description=(
            "The Fig. 5 shape: two mutually-unordered stores to B (on "
            "different processors, each ordered before S[A]#2 — one by "
            "program order, one through the helper location D) and two "
            "loads of B ordered after S[A]#1 reading the two different "
            "values.  The fixed point leaves S[A]#1 and S[A]#2 unordered "
            "although the Order axiom implies S[A]#1 <= S[A]#2: were "
            "S[A]#2 <= S[A]#1, both B-stores would precede both loads, "
            "which would then have to return the same (globally last) "
            "value.  The outcome itself is legal, so no verdict is wrong "
            "yet."
        ),
        paper_ref="Fig. 5",
    ),
    LitmusCase(
        name="fig5_mirrored",
        text="""
            P0: S[B]#4 ; L[D]=7 ; S[A]#2 ; M ; L[C]=5
            P1: S[B]#3 ; S[D]#7 ; L[A]=2 ; L[C]=6
            P2: S[C]#6 ; L[E]=8 ; S[A]#1 ; M ; L[B]=3
            P3: S[C]#5 ; S[E]#8 ; L[A]=1 ; L[B]=4
        """,
        expect={"TSO": True},
        complete_valid=False,
        description=(
            "The paper's mirrored extension of Fig. 5: a symmetric set of "
            "nodes on location C (two unordered stores ordered before "
            "S[A]#1, two loads ordered after S[A]#2 reading the two "
            "different values) forces S[A]#2 <= S[A]#1, while location B "
            "forces S[A]#1 <= S[A]#2 — a genuine TSO violation.  The "
            "polynomial algorithm accepts it (it never enforces the Order "
            "axiom); the complete procedure rejects it."
        ),
        paper_ref="Fig. 5 (mirrored extension)",
    ),
    LitmusCase(
        name="fig6",
        text="""
            P0: BST[A]#1
            P1: SWAP[A]=1,#2 ; L[A]=1
        """,
        expect={"TSO": False},
        description=(
            "The write-cache dirty-bit silicon bug: the swap's store was "
            "lost, so the later load sees the block store's data again. "
            "R4 orders BST before the swap and the load; R5 orders the "
            "swap's store before BST; cycle."
        ),
        paper_ref="Fig. 6",
    ),
    LitmusCase(
        name="fig7",
        text="""
            init A=0 B=0
            P0: CAS[A]=0,#1 ; L[B]=0
            P1: CAS[B]=0,#1 ; L[A]=0
        """,
        expect={"TSO": False},
        description=(
            "The CAS atomicity-window bug: both CAS succeed from the "
            "initial values yet each processor's trailing load still sees "
            "the other location's initial value.  R7 plus atomic-group "
            "redirection yields the cycle of Sec. 5.1."
        ),
        paper_ref="Fig. 7",
    ),
    # ------------------------------------------------------------------
    # Classic shapes (names follow the litmus-test literature)
    # ------------------------------------------------------------------
    LitmusCase(
        name="SB",
        text="""
            P0: S[A]#1 ; L[B]=0
            P1: S[B]#1 ; L[A]=0
        """,
        expect={"TSO": True, "SC": False, "PSO": True},
        complete_valid=True,
        description=(
            "Store buffering: both loads overtake the stores.  The "
            "hallmark TSO relaxation — legal under TSO, illegal under SC."
        ),
    ),
    LitmusCase(
        name="SB+membars",
        text="""
            P0: S[A]#1 ; M ; L[B]=0
            P1: S[B]#1 ; M ; L[A]=0
        """,
        expect={"TSO": False, "SC": False, "PSO": False},
        description="Store buffering fenced off: illegal everywhere.",
    ),
    LitmusCase(
        name="MP",
        text="""
            P0: S[A]#1 ; S[B]#1
            P1: L[B]=1 ; L[A]=0
        """,
        expect={"TSO": False, "SC": False, "PSO": True},
        description=(
            "Message passing: seeing the flag but not the data requires "
            "store-store reordering — illegal under TSO/SC, legal under "
            "PSO."
        ),
    ),
    LitmusCase(
        name="MP+membar",
        text="""
            P0: S[A]#1 ; M ; S[B]#1
            P1: L[B]=1 ; L[A]=0
        """,
        expect={"TSO": False, "SC": False, "PSO": False},
        description="Message passing with a fenced writer: illegal even under PSO.",
    ),
    LitmusCase(
        name="LB",
        text="""
            P0: L[A]=1 ; S[B]#1
            P1: L[B]=1 ; S[A]#1
        """,
        expect={"TSO": False, "SC": False, "PSO": False},
        description=(
            "Load buffering: values out of thin air; the LoadOp axiom "
            "forbids it under every model here."
        ),
    ),
    LitmusCase(
        name="IRIW",
        text="""
            P0: S[A]#1
            P1: S[B]#1
            P2: L[A]=1 ; L[B]=0
            P3: L[B]=1 ; L[A]=0
        """,
        expect={"TSO": False, "SC": False},
        description=(
            "Independent reads of independent writes: the two observers "
            "disagree on the store order — TSO's total store order (plus "
            "ordered loads) forbids it, and R7 exposes the cycle."
        ),
    ),
    LitmusCase(
        name="CoRR",
        text="""
            P0: S[A]#1 ; S[A]#2
            P1: L[A]=2 ; L[A]=1
        """,
        expect={"TSO": False, "SC": False, "PSO": False},
        description="Coherence: a processor reads a location going backwards.",
    ),
    LitmusCase(
        name="CoRR-ok",
        text="""
            P0: S[A]#1 ; S[A]#2
            P1: L[A]=1 ; L[A]=2
        """,
        expect={"TSO": True, "SC": True, "PSO": True},
        complete_valid=True,
        description="Coherence, legal direction.",
    ),
    LitmusCase(
        name="store-forwarding",
        text="""
            P0: S[A]#1 ; L[A]=1 ; L[B]=0
            P1: S[B]#1 ; L[B]=1 ; L[A]=0
        """,
        expect={"TSO": True, "SC": False},
        complete_valid=True,
        description=(
            "Each processor forwards its own buffered store to its load "
            "before the store is globally visible — the Value axiom's "
            "own-store term in action (legal TSO, illegal SC)."
        ),
    ),
    LitmusCase(
        name="atomic-mutex",
        text="""
            init A=0
            P0: SWAP[A]=0,#1
            P1: SWAP[A]=0,#2
        """,
        expect={"TSO": False, "SC": False, "PSO": False},
        description=(
            "Two swaps both observe the initial value: atomicity requires "
            "one swap's store to separate the other's load from the "
            "initial store — illegal everywhere."
        ),
    ),
    LitmusCase(
        name="cas-fail-race",
        text="""
            init A=0
            P0: S[A]#5
            P1: CASF[A]=5
        """,
        expect={"TSO": True, "SC": True, "PSO": True},
        complete_valid=True,
        description=(
            "A failed CAS degenerates to a load (Sec. 3.3): P1's compare "
            "load observed 5, an intervening store broke the compare."
        ),
    ),
    LitmusCase(
        name="WRC",
        text="""
            P0: S[A]#1
            P1: L[A]=1 ; S[B]#1
            P2: L[B]=1 ; L[A]=0
        """,
        expect={"TSO": False, "SC": False, "PSO": False},
        description=(
            "Write-to-read causality: P2 sees P1's flag, which P1 wrote "
            "after seeing P0's store, yet P2 misses that store.  The "
            "LoadOp edges keep causality intact under all three models."
        ),
    ),
    LitmusCase(
        name="RWC",
        text="""
            P0: S[A]#1
            P1: L[A]=1 ; L[B]=0
            P2: S[B]#1 ; M ; L[A]=0
        """,
        expect={"TSO": False, "SC": False, "PSO": False},
        description=(
            "Read-to-write causality with a fenced second writer: R7 "
            "places both init-reading loads before the stores they "
            "missed, closing the cycle."
        ),
    ),
    LitmusCase(
        name="S",
        text="""
            P0: S[A]#1 ; S[B]#1
            P1: L[B]=1 ; S[A]#2
            P2: L[A]=2 ; L[A]=1
        """,
        expect={"TSO": False, "SC": False, "PSO": True},
        complete_valid=False,
        description=(
            "The S shape: P1 observes P0's flag and overwrites A, yet A's "
            "final order puts P0's store last.  Needs the StoreStore edge "
            "on P0 — illegal under TSO/SC, legal under PSO."
        ),
    ),
    LitmusCase(
        name="R",
        text="""
            P0: S[A]#1 ; S[B]#1
            P1: S[B]#2 ; M ; L[A]=0
            P2: L[B]=1 ; L[B]=2
        """,
        expect={"TSO": False, "SC": False},
        description=(
            "The R shape: the B-store order (fixed by P2's reads) chains "
            "P0's A-store before P1's fenced load, which nevertheless "
            "reads the initial value."
        ),
    ),
    LitmusCase(
        name="SB+one-membar",
        text="""
            P0: S[A]#1 ; M ; L[B]=0
            P1: S[B]#1 ; L[A]=0
        """,
        expect={"TSO": True, "SC": False},
        complete_valid=True,
        description=(
            "Store buffering with only one side fenced: the unfenced "
            "load may still overtake its store, so the outcome survives "
            "under TSO (both-sides fencing is required to forbid it)."
        ),
    ),
    LitmusCase(
        name="CoWR",
        text="""
            P0: S[A]#1 ; L[A]=2 ; L[A]=1
            P1: S[A]#2
        """,
        expect={"TSO": False, "SC": False, "PSO": False},
        description=(
            "Coherence write-read: P0 observes the foreign store "
            "overwriting its own, then reads its own store again — R5 "
            "and R6 derive contradictory orders for the two stores."
        ),
    ),
    LitmusCase(
        name="atomic-chain",
        text="""
            init A=0
            P0: SWAP[A]=0,#1
            P1: SWAP[A]=1,#2
        """,
        expect={"TSO": True, "SC": True, "PSO": True},
        complete_valid=True,
        description=(
            "A token passes through two swaps: each reads the previous "
            "writer's value — the legal atomic hand-off."
        ),
    ),
    LitmusCase(
        name="atomic-chain-backwards",
        text="""
            init A=0
            P0: SWAP[A]=0,#1
            P1: SWAP[A]=1,#2
            P2: L[A]=2 ; L[A]=1
        """,
        expect={"TSO": False, "SC": False, "PSO": False},
        description=(
            "The same hand-off observed backwards: the observer's reads "
            "order swap 2 before swap 1, contradicting the value chain "
            "through the swaps."
        ),
    ),
    LitmusCase(
        name="CO-2observers",
        text="""
            P0: S[A]#1
            P1: S[A]#2
            P2: L[A]=1 ; L[A]=2
            P3: L[A]=2 ; L[A]=1
        """,
        expect={"TSO": False, "SC": False, "PSO": False},
        description=(
            "Two observers disagree on the order of two stores to the "
            "same location: rule R6 derives both orderings, closing a "
            "cycle — coherence is part of every model here."
        ),
    ),
]


def litmus_by_name(name: str) -> LitmusCase:
    """Look up a case from :data:`LITMUS_LIBRARY` by name."""
    for case in LITMUS_LIBRARY:
        if case.name == name:
            return case
    raise KeyError(f"no litmus case named {name!r}")
