"""Directed operation sequences for known corner cases (Sec. 3.1).

"TSOtool allows users ... the ability to specify desirable sequences of
memory operations which are considered likely to exercise known
corner-cases in the design, such as a queue in the system becoming full
or a hazard condition being created."

Each pattern builds a short instruction sequence aimed at one
microarchitectural corner.  The generator mixes them into random tests
with probability :attr:`~repro.generator.config.GeneratorConfig.pattern_prob`;
``benchmarks/test_ablation_patterns.py`` measures what they buy in
detection latency over pure random generation.

Pattern builders return instruction lists in which any
:class:`~repro.model.ops.ICas` ``compare_from`` index is *relative to the
returned list*; the generator rebases it when splicing the pattern into
a thread.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Sequence

from repro.model.ops import (
    WORD_SIZE,
    IBlockStore,
    ICas,
    ILoad,
    IMembar,
    IStore,
    ISwap,
    Instr,
)

#: A pattern builder: (rng, shared word addresses) -> instruction list.
PatternBuilder = Callable[[random.Random, Sequence[int]], List[Instr]]


@dataclass(frozen=True)
class Pattern:
    """A named directed sequence with its targeting rationale."""

    name: str
    description: str
    build: PatternBuilder


def _word(rng: random.Random, words: Sequence[int]) -> int:
    return rng.choice(list(words))


def _two_words(rng: random.Random, words: Sequence[int]) -> List[int]:
    pool = list(words)
    if len(pool) == 1:
        return [pool[0], pool[0]]
    return rng.sample(pool, 2)


def store_burst(rng: random.Random, words: Sequence[int]) -> List[Instr]:
    """Back-to-back stores — drives the store buffer (a queue) to full.

    The paper's canonical corner case: "a queue in the system becoming
    full".  A burst longer than the buffer capacity forces stall-drains
    and exercises the drain path under pressure.
    """
    length = rng.randint(10, 14)
    return [IStore(addr=_word(rng, words)) for _ in range(length)]


def false_sharing_pingpong(rng: random.Random, words: Sequence[int]) -> List[Instr]:
    """Alternating store/load on two words that share a cache line."""
    a, b = _two_words(rng, words)
    out: List[Instr] = []
    for _ in range(rng.randint(2, 4)):
        out.extend([IStore(addr=a), ILoad(addr=b), IStore(addr=b), ILoad(addr=a)])
    return out


def atomic_contention(rng: random.Random, words: Sequence[int]) -> List[Instr]:
    """Load + CAS + swap hammering one location (lock-like contention)."""
    addr = _word(rng, words)
    out: List[Instr] = [
        ILoad(addr=addr),
        ICas(addr=addr, size=WORD_SIZE, compare_from=0),
        ISwap(addr=addr),
        ILoad(addr=addr),
        ICas(addr=addr, size=WORD_SIZE, compare_from=3),
    ]
    return out


def message_passing(rng: random.Random, words: Sequence[int]) -> List[Instr]:
    """Publish data then a flag across a membar; read them back.

    The classic producer/consumer hazard: any store reordering or stale
    flag/data line turns into a checker-visible MP violation.
    """
    data, flag = _two_words(rng, words)
    return [
        IStore(addr=data),
        IMembar(),
        IStore(addr=flag),
        ILoad(addr=flag),
        ILoad(addr=data),
    ]


def forwarding_hammer(rng: random.Random, words: Sequence[int]) -> List[Instr]:
    """Store/load/store/load on one word — store-to-load bypass stress."""
    addr = _word(rng, words)
    out: List[Instr] = []
    for _ in range(rng.randint(2, 4)):
        out.extend([IStore(addr=addr), ILoad(addr=addr)])
    return out


def fence_ladder(rng: random.Random, words: Sequence[int]) -> List[Instr]:
    """Store-membar rungs: every store's visibility is checkpointed."""
    out: List[Instr] = []
    for _ in range(rng.randint(2, 4)):
        out.extend([IStore(addr=_word(rng, words)), IMembar()])
    out.append(ILoad(addr=_word(rng, words)))
    return out


def block_scalar_overlap(rng: random.Random, words: Sequence[int]) -> List[Instr]:
    """A block store with scalar reads poking inside its footprint.

    Exercises write-cache/line-buffer interactions like the Fig. 6 bug;
    only emitted when a 64-byte line is addressable.
    """
    line = min(words) - (min(words) % 64)
    probes = [w for w in words if line <= w < line + 64]
    out: List[Instr] = [IBlockStore(addr=line)]
    for _ in range(min(3, len(probes))):
        out.append(ILoad(addr=rng.choice(probes)))
    return out


def dekker_flags(rng: random.Random, words: Sequence[int]) -> List[Instr]:
    """Store own flag, fence, read the peer flag — Dekker entry protocol."""
    mine, theirs = _two_words(rng, words)
    return [IStore(addr=mine), IMembar(), ILoad(addr=theirs), ILoad(addr=mine)]


#: The registry, keyed by name.
PATTERNS: Dict[str, Pattern] = {
    p.name: p
    for p in (
        Pattern("store_burst", "fill the store buffer (queue-full hazard)",
                store_burst),
        Pattern("false_sharing_pingpong", "two words, one cache line",
                false_sharing_pingpong),
        Pattern("atomic_contention", "CAS/swap hammering one lock word",
                atomic_contention),
        Pattern("message_passing", "data+flag publication hazard",
                message_passing),
        Pattern("forwarding_hammer", "store-to-load bypass stress",
                forwarding_hammer),
        Pattern("fence_ladder", "membar after every store",
                fence_ladder),
        Pattern("block_scalar_overlap", "block store vs scalar probes",
                block_scalar_overlap),
        Pattern("dekker_flags", "Dekker mutual-exclusion entry",
                dekker_flags),
    )
}


def build_pattern(
    name: str, rng: random.Random, words: Sequence[int], base_index: int
) -> List[Instr]:
    """Materialize a pattern, rebasing CAS compare indices to the thread.

    Args:
        name: registry key.
        rng: the generator's PRNG (patterns are deterministic per seed).
        words: shared word addresses available to the pattern.
        base_index: index in the thread at which the sequence will land.
    """
    instrs = PATTERNS[name].build(rng, words)
    rebased: List[Instr] = []
    for instr in instrs:
        if isinstance(instr, ICas):
            instr = replace(instr, compare_from=instr.compare_from + base_index)
        rebased.append(instr)
    return rebased
