"""The per-processor software LFSR (Sec. 3.1).

"Occasionally, we need to randomize events during the test (such as the
direction of hard-to-predict conditional branches), so a dynamic software
LFSR is maintained on each processor and used as a source of random
numbers."

This is a 32-bit Galois LFSR using the maximal-length feedback polynomial
``x^32 + x^22 + x^2 + x + 1`` (Galois mask ``0x80200003``), period
``2**32 - 1``.  Each simulated CPU owns one instance, seeded from the
machine seed and its CPU id, so branch randomization is deterministic per
(program, seed) and independent across CPUs — exactly what reproducible
failure analysis needs.
"""

from __future__ import annotations


class Lfsr:
    """32-bit Galois linear-feedback shift register."""

    #: Galois feedback mask for x^32 + x^22 + x^2 + x + 1 (maximal length).
    TAPS = 0x80200003

    def __init__(self, seed: int) -> None:
        """Seed the register; a zero seed is mapped to a fixed nonzero one."""
        self.state = (seed & 0xFFFFFFFF) or 0xDEADBEEF

    def next_bit(self) -> int:
        """Advance one step and return the output bit (0 or 1)."""
        out = self.state & 1
        self.state >>= 1
        if out:
            self.state ^= self.TAPS
        return out

    def next_bits(self, nbits: int) -> int:
        """Return the next ``nbits`` output bits as an integer."""
        value = 0
        for _ in range(nbits):
            value = (value << 1) | self.next_bit()
        return value

    def next_below(self, bound: int) -> int:
        """A value in ``[0, bound)``; uses rejection to avoid modulo bias."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        nbits = max(1, (bound - 1).bit_length())
        while True:
            value = self.next_bits(nbits)
            if value < bound:
                return value

    def chance(self, numerator: int, denominator: int) -> bool:
        """True with probability ``numerator / denominator``."""
        return self.next_below(denominator) < numerator
