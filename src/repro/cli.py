"""Command-line interface — the Fig. 1 three-phase flow as commands.

::

    tsotool generate --procs 4 --ops 100 --words 16 --seed 1 -o test.trace
    tsotool run      --procs 4 --ops 100 --seed 1 -o run.trace
    tsotool check    run.trace                  # standalone analysis
    tsotool litmus   fig3                       # paper examples by name
    tsotool campaign --table 1                  # regenerate Table 1
    tsotool runtime  --figure 8                 # regenerate Fig. 8 series
    tsotool emit     --procs 4 --ops 100 -o test.S   # SPARC V9 assembly
    tsotool coverage --procs 4 --ops 200        # Sec. 3.1 coverage report

``generate`` emits the program listing; ``run`` generates, executes on
the simulated TSO machine, and writes the observed trace in the
standalone-analysis text format; ``check`` re-analyzes such a trace
(after optional hand edits — the Sec. 3.4 what-if flow).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import urllib.request
import warnings
from typing import List, Optional

from repro import telemetry
from repro.analysis.campaign import (
    CampaignConfig,
    format_table1,
    format_table2,
    run_campaign,
)
from repro.analysis.coverage import measure_coverage
from repro.analysis.minimize import (
    minimize_failure,
    minimize_recorded,
    render_minimized,
)
from repro.analysis.replay import (
    generator_from_meta,
    machine_config_from_meta,
    replay_hunt,
)
from repro.analysis.report import ReportConfig, build_report
from repro.analysis.runtime import format_series, sweep_runtime
from repro.emit.c11 import c11_generator_config, emit_c11
from repro.emit.sparc import emit_sparc
from repro.core.api import DEFAULT_ENGINE, ENGINES, check, check_execution, check_litmus
from repro.core.htmlreport import render_html
from repro.core.policy import PSO, SC, TSO
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.generator.litmus import LITMUS_LIBRARY, litmus_by_name
from repro.model.program import format_program, parse_litmus
from repro.model.trace import Execution
from repro.sched import (
    RecordingPolicy,
    ReplayPolicy,
    ScheduleTrace,
    SchedSpec,
    make_policy,
    sweep_program,
)
from repro.service import (
    CampaignManifest,
    CampaignService,
    ResultStore,
    ServiceConfig,
)
from repro.sim.cpus import cpu_by_name, CPU_CONFIGS
from repro.sim.machine import MachineConfig, TsoMachine

_MODELS = {"TSO": TSO, "SC": SC, "PSO": PSO}


def _add_generation_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--procs", type=int, default=4, help="processor count")
    parser.add_argument("--ops", type=int, default=100, help="instructions per processor")
    parser.add_argument("--words", type=int, default=16, help="shared 4-byte words")
    parser.add_argument("--seed", type=int, default=0, help="PRNG seed")


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out", metavar="FILE.jsonl",
        help="stream telemetry (spans, pool events, per-process snapshots) "
             "as JSON lines to this file; pool workers append to the same "
             "file (see docs/telemetry.md)",
    )
    parser.add_argument(
        "--telemetry-summary", action="store_true",
        help="print an end-of-run telemetry summary to stderr",
    )


def _generator_config(args: argparse.Namespace) -> GeneratorConfig:
    return GeneratorConfig(
        nprocs=args.procs, ops_per_proc=args.ops, shared_words=args.words
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    program = generate_program(_generator_config(args), seed=args.seed)
    text = format_program(program)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    return 0


def _sched_spec(args: argparse.Namespace) -> SchedSpec:
    return SchedSpec(
        kind=args.sched,
        pct_depth=args.pct_depth,
        sweep_budget=args.sweep_budget,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    if args.replay_schedule:
        return _run_replay(args)
    if args.sched == "sweep":
        return _run_sweep(args)
    gen_config = _generator_config(args)
    program = generate_program(gen_config, seed=args.seed)
    policy = make_policy(_sched_spec(args), seed=args.seed)
    if args.record_schedule:
        policy = RecordingPolicy(policy)
        machine_dict = dataclasses.asdict(MachineConfig())
        machine_dict.pop("sched", None)
        policy.trace.meta.update({
            "kind": "run",
            "seed": args.seed,
            "model": args.model,
            "generator": dataclasses.asdict(gen_config),
            "machine": machine_dict,
        })
    machine = TsoMachine(
        program, seed=args.seed, config=MachineConfig(), policy=policy
    )
    execution = machine.run()
    trace = execution.dump()
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(trace)
        print(f"wrote {execution.total_records()} records to {args.output}")
    else:
        sys.stdout.write(trace)
    if args.record_schedule:
        policy.trace.save(args.record_schedule)
        print(
            f"recorded {len(policy.trace)} schedule choices to "
            f"{args.record_schedule}"
        )
    result = check(program, execution, model=_MODELS[args.model])
    print(result.explain())
    return 0 if result.ok else 1


def _run_sweep(args: argparse.Namespace) -> int:
    """Systematic mode: enumerate schedules and check every outcome."""
    program = generate_program(_generator_config(args), seed=args.seed)
    sweep = sweep_program(program, seed=args.seed, budget=args.sweep_budget)
    print(sweep.stats.render())
    exit_code = 0
    for outcome in sweep.outcomes.values():
        result = check(program, outcome.execution, model=_MODELS[args.model])
        if result.ok:
            status = "ok"
        else:
            status = f"VIOLATION ({result.violation.kind.value})"
            exit_code = 1
        print(f"  outcome {outcome.key} x{outcome.count}: {status}")
    return exit_code


def _run_replay(args: argparse.Namespace) -> int:
    """Replay a recorded schedule exactly; generation args are ignored."""
    trace = ScheduleTrace.load(args.replay_schedule)
    if "fault" in trace.meta:
        replayed = replay_hunt(trace)
        verdict = "reproduced" if replayed.detected else "NOT reproduced"
        print(
            f"replayed hunt {trace.meta.get('bug', '?')} "
            f"({len(trace)} choices): detection {verdict}"
        )
        if replayed.via:
            print(f"  via: {replayed.via}")
        return 0 if replayed.detected else 1
    gen_config = generator_from_meta(trace.meta["generator"])
    machine_config = machine_config_from_meta(trace.meta["machine"])
    seed = int(trace.meta["seed"])
    model = _MODELS[str(trace.meta.get("model", args.model))]
    program = generate_program(gen_config, seed=seed)
    machine = TsoMachine(
        program, seed=seed, config=machine_config, policy=ReplayPolicy(trace)
    )
    execution = machine.run()
    print(f"replayed {len(trace)} schedule choices from {args.replay_schedule}")
    result = check(program, execution, model=model)
    print(result.explain())
    return 0 if result.ok else 1


def _cmd_check(args: argparse.Namespace) -> int:
    with open(args.trace) as fh:
        execution = Execution.load(fh.read())
    result = check_execution(
        execution, model=_MODELS[args.model], engine=args.engine
    )
    print(result.explain())
    if args.dot and result.violation is not None:
        with open(args.dot, "w") as fh:
            fh.write(result.to_dot())
        print(f"wrote violation graph to {args.dot}")
    if args.graph:
        with open(args.graph, "w") as fh:
            fh.write(result.dump_graph())
        print(f"wrote analysis graph to {args.graph}")
    if args.html:
        with open(args.html, "w") as fh:
            fh.write(render_html(result, title=f"tsotool check {args.trace}"))
        print(f"wrote interactive debug report to {args.html}")
    return 0 if result.ok else 1


def _cmd_minimize(args: argparse.Namespace) -> int:
    try:
        if args.replay_schedule:
            minimized = minimize_recorded(
                ScheduleTrace.load(args.replay_schedule),
                max_checks=args.max_checks,
            )
        else:
            if not args.trace:
                print("cannot minimize: give a trace file or --replay-schedule")
                return 2
            with open(args.trace) as fh:
                execution = Execution.load(fh.read())
            minimized = minimize_failure(
                execution, model=_MODELS[args.model], max_checks=args.max_checks
            )
    except ValueError as exc:
        print(f"cannot minimize: {exc}")
        return 2
    print(render_minimized(minimized))
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(minimized.execution.dump())
        print(f"wrote minimized trace to {args.output}")
    return 0


def _cmd_emit(args: argparse.Namespace) -> int:
    if args.lang == "c11":
        config = c11_generator_config(
            nprocs=args.procs, ops_per_proc=args.ops, shared_words=args.words
        )
        program = generate_program(config, seed=args.seed)
        text = emit_c11(program)
    else:
        program = generate_program(_generator_config(args), seed=args.seed)
        text = emit_sparc(program)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {len(text.splitlines())} lines of {args.lang} to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    program = generate_program(_generator_config(args), seed=args.seed)
    machine = TsoMachine(program, seed=args.seed, config=MachineConfig())
    execution = machine.run()
    report = measure_coverage(program, execution, machine)
    print(report.render())
    return 0


def _cmd_litmus(args: argparse.Namespace) -> int:
    if args.name == "list":
        for case in LITMUS_LIBRARY:
            marks = ", ".join(
                f"{m}:{'pass' if ok else 'FAIL'}" for m, ok in case.expect.items()
            )
            print(f"{case.name:20s} [{marks}] {case.paper_ref}")
        return 0
    case = litmus_by_name(args.name)
    print(f"# {case.name} ({case.paper_ref or 'classic'})")
    print(case.description)
    exit_code = 0
    for model_name in case.expect:
        result = check_litmus(case.text, model=_MODELS[model_name])
        verdict = "PASS" if result.ok else "FAIL"
        expected = "PASS" if case.expect[model_name] else "FAIL"
        status = "ok" if result.ok == case.expect[model_name] else "UNEXPECTED"
        print(f"[{model_name}] {verdict} (expected {expected}) — {status}")
        if not result.ok and args.explain:
            print(result.explain())
        if result.ok != case.expect[model_name]:
            exit_code = 2
    return exit_code


def _pool_progress(event) -> None:
    """Per-task progress line on stderr (parallel runs only)."""
    print(event.render(), file=sys.stderr)


def _require_workers_for_timeout(args: argparse.Namespace) -> bool:
    """``--task-timeout`` is enforced by killing worker processes, which
    the inline ``--workers 1`` path does not have; reject the combination
    instead of silently running without a timeout."""
    if args.task_timeout is not None and args.workers <= 1:
        print(
            "error: --task-timeout requires --workers >= 2 (the inline "
            "path cannot kill an overdue task, so the timeout would be "
            "ignored)",
            file=sys.stderr,
        )
        return False
    return True


def _cmd_campaign(args: argparse.Namespace) -> int:
    if not _require_workers_for_timeout(args):
        return 2
    if args.batch < 1:
        print("--batch must be >= 1", file=sys.stderr)
        return 2
    config = CampaignConfig(
        tests_per_bug=args.tests_per_bug,
        seed=args.seed,
        sched=SchedSpec(kind=args.sched, pct_depth=args.pct_depth),
        engine=args.engine,
        batch=args.batch,
        pipeline=args.pipeline,
    )
    kwargs = {}
    if args.cpu:
        kwargs["cpus"] = [cpu_by_name(name) for name in args.cpu]
    try:
        result = run_campaign(
            config=config,
            workers=args.workers,
            task_timeout=args.task_timeout,
            progress=_pool_progress if args.workers > 1 else None,
            record_dir=args.record_schedule,
            **kwargs,
        )
    except Exception as exc:  # noqa: BLE001 - campaign crashed mid-hunt
        print(f"campaign crashed mid-hunt: {exc}", file=sys.stderr)
        return 2
    if args.table in (0, 1):
        print("Table 1: bugs found, by class")
        print(format_table1(result))
        print()
    if args.table in (0, 2):
        print("Table 2: bugs found, by functional unit")
        print(format_table2(result))
        print()
    missed = result.missed()
    hung = result.hung_hunts()
    print(
        f"{len(result.hunts) - len(missed)}/{len(result.hunts)} seeded bugs "
        f"detected in {result.wall_seconds:.1f}s wall clock "
        f"({result.cpu_seconds:.1f}s analysis CPU)"
    )
    if result.stats is not None:
        print(result.stats.throughput_line())
    print(result.detection_line())
    if args.record_schedule:
        recorded = sum(1 for h in result.hunts if h.schedule is not None)
        print(f"wrote {recorded} schedule trace(s) to {args.record_schedule}/")
    for hunt in missed:
        tag = "hung" if hunt.hung else "missed"
        print(f"  {tag}: {hunt.spec.name} ({hunt.spec.mechanism.__name__})")
    return result.exit_code()


def _cmd_submit(args: argparse.Namespace) -> int:
    try:
        manifest = CampaignManifest.load(args.manifest)
    except (OSError, ValueError) as exc:
        print(f"cannot submit: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"cannot submit: {args.manifest} is not JSON: {exc}",
              file=sys.stderr)
        return 2
    service = CampaignService(ServiceConfig(root=args.root, http_port=None))
    job_id = service.submit(manifest)
    state = (
        "already finished" if service.job_done(job_id) else "queued"
    )
    print(
        f"submitted {job_id}: {len(manifest.shards())} shard(s), "
        f"{manifest.hunt_count()} hunt(s), {state}"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if not _require_workers_for_timeout(args):
        return 2
    if args.lease_seconds <= 0:
        print("--lease-seconds must be positive", file=sys.stderr)
        return 2
    if args.batch is not None and args.batch < 1:
        print("--batch must be >= 1", file=sys.stderr)
        return 2
    config = ServiceConfig(
        root=args.root,
        workers=args.workers,
        task_timeout=args.task_timeout,
        poll_seconds=args.poll_seconds,
        http_host=args.http_host,
        http_port=None if args.no_http else args.http_port,
        once=args.once,
        owner=args.owner,
        lease_seconds=args.lease_seconds,
        batch=args.batch,
    )
    service = CampaignService(
        config, progress=_pool_progress if args.workers > 1 else None
    )
    return service.serve()


def _status_payload(root: str) -> dict:
    """Live payload from the daemon's endpoint when one is up; otherwise
    an offline scan of the same stores (identical shape)."""
    address_path = os.path.join(root, "status.address")
    try:
        with open(address_path) as fh:
            host, port = fh.read().split()
        url = f"http://{host}:{port}/status"
        with urllib.request.urlopen(url, timeout=5) as resp:
            payload = json.load(resp)
        payload["service"]["live"] = True
        return payload
    except (OSError, ValueError):
        pass
    service = CampaignService(ServiceConfig(root=root, http_port=None))
    payload = service.status()
    payload["service"]["live"] = False
    return payload


def _cmd_status(args: argparse.Namespace) -> int:
    if not os.path.isdir(args.root):
        print(f"no service root at {args.root}", file=sys.stderr)
        return 2
    payload = _status_payload(args.root)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    info = payload["service"]
    source = (
        f"live daemon, pid {info['pid']}" if info.get("live")
        else "offline scan"
    )
    print(f"service root {info['root']} ({source})")
    jobs = payload.get("jobs", [])
    if not jobs:
        print("no jobs submitted")
        return 0
    for job in jobs:
        shards, hunts = job["shards"], job["hunts"]
        line = (
            f"  {job['id']}: {job['state']}, "
            f"shards {shards['done']}/{shards['total']}, "
            f"hunts {hunts['recorded']}/{hunts['total']} "
            f"({hunts['detected']} detected, {hunts['hung']} hung)"
        )
        if job.get("dedup_buckets"):
            line += f", {job['dedup_buckets']} failure bucket(s)"
        if job.get("exit_code") is not None:
            line += f", exit {job['exit_code']}"
        print(line)
        owners = job.get("owners") or {}
        for owner in sorted(owners):
            stats = owners[owner]
            if not isinstance(stats, dict):
                # Payload from a pre-throughput daemon: plain counts.
                print(f"    leased by {owner}: {stats} shard(s)")
                continue
            line = (
                f"    {owner}: {stats.get('active_shards', 0)} active "
                f"shard(s), {stats.get('hunts', 0)} hunt(s)"
            )
            if stats.get("hunts_per_s"):
                line += (
                    f", {stats['hunts_per_s']} hunts/s, "
                    f"{stats.get('ops_per_s', 0.0)} ops/s"
                )
            print(line)
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    if not os.path.isdir(args.root):
        print(f"no service root at {args.root}", file=sys.stderr)
        return 2
    service = CampaignService(ServiceConfig(root=args.root, http_port=None))
    report = service.gc(
        min_age_seconds=args.older_than, compact=not args.no_compact
    )
    removed = report["removed_spool"]
    print(
        f"gc: removed {len(removed)} finished spool entr"
        f"{'y' if len(removed) == 1 else 'ies'}, "
        f"{len(report['removed_tmp'])} tmp file(s), "
        f"compacted {report['compacted_shards']} shard(s)"
    )
    for job_id in removed:
        print(f"  retired {job_id}")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    if not os.path.isdir(args.root):
        print(f"no service root at {args.root}", file=sys.stderr)
        return 2
    service = CampaignService(ServiceConfig(root=args.root, http_port=None))
    total_before = total_after = shards = 0
    for job_id, _manifest in service.spooled():
        job_dir = service.job_dir(job_id)
        if not os.path.isdir(job_dir):
            continue
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            store = ResultStore(job_dir)
            try:
                for _shard_id, (before, after) in store.compact().items():
                    shards += 1
                    total_before += before
                    total_after += after
            finally:
                store.close()
    print(
        f"compacted {shards} done shard(s): "
        f"{total_before} -> {total_after} line(s)"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    text = build_report(ReportConfig(tests_per_bug=args.tests_per_bug))
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote reproduction report to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_runtime(args: argparse.Namespace) -> int:
    if not _require_workers_for_timeout(args):
        return 2
    pool_kwargs = dict(
        workers=args.workers,
        task_timeout=args.task_timeout,
        progress=_pool_progress if args.workers > 1 else None,
    )
    if args.figure == 8:
        points = sweep_runtime(
            proc_counts=[2, 4, 8, 16], word_counts=[16],
            ops_points=args.ops_points, seed=args.seed, engine=args.engine,
            **pool_kwargs,
        )
        print(format_series(points, "Fig. 8: analysis time vs ops, by processor count"))
    else:
        points = sweep_runtime(
            proc_counts=[4], word_counts=[4, 16, 64],
            ops_points=args.ops_points, seed=args.seed, engine=args.engine,
            **pool_kwargs,
        )
        print(format_series(points, "Fig. 9: analysis time vs ops, by shared addresses"))
    if points.stats is not None and args.workers > 1:
        print(points.stats.throughput_line())
    if points.stats is not None and points.stats.hung:
        print(
            f"{points.stats.hung} sweep point(s) hung and were dropped",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="tsotool", description="TSOtool reproduction (ISCA 2004)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a racy test program")
    _add_generation_args(p)
    p.add_argument("-o", "--output", help="write listing to a file")
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("run", help="generate, simulate, and check a test")
    _add_generation_args(p)
    p.add_argument("-o", "--output", help="write the trace to a file")
    p.add_argument("--model", choices=sorted(_MODELS), default="TSO")
    p.add_argument("--sched", choices=["random", "pct", "sweep"],
                   default="random",
                   help="schedule-exploration policy (see docs/schedulers.md)")
    p.add_argument("--pct-depth", type=int, default=3,
                   help="PCT bug-depth parameter (--sched pct)")
    p.add_argument("--sweep-budget", type=int, default=256,
                   help="max schedules to enumerate (--sched sweep)")
    p.add_argument("--record-schedule", metavar="FILE",
                   help="save the run's ScheduleTrace JSON here")
    p.add_argument("--replay-schedule", metavar="FILE",
                   help="re-execute a recorded ScheduleTrace exactly "
                        "(generation args are ignored)")
    p.add_argument("--profile-out", metavar="FILE",
                   help="profile the command under cProfile and dump "
                        "pstats data here (see docs/performance.md)")
    _add_telemetry_args(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("check", help="analyze a trace file (what-if friendly)")
    p.add_argument("trace", help="trace file from 'run' (optionally edited)")
    p.add_argument("--model", choices=sorted(_MODELS), default="TSO")
    p.add_argument("--engine", choices=sorted(ENGINES),
                   default=DEFAULT_ENGINE)
    p.add_argument("--dot", help="write the violation region as Graphviz DOT")
    p.add_argument("--graph", help="write the full analysis graph as text")
    p.add_argument("--html", help="write a clickable HTML debug report")
    p.add_argument("--profile-out", metavar="FILE",
                   help="profile the command under cProfile and dump "
                        "pstats data here (see docs/performance.md)")
    _add_telemetry_args(p)
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser("minimize", help="shrink a failing trace to its core")
    p.add_argument("trace", nargs="?",
                   help="failing trace file from 'run' (omit with "
                        "--replay-schedule)")
    p.add_argument("--model", choices=sorted(_MODELS), default="TSO")
    p.add_argument("--max-checks", type=int, default=5000)
    p.add_argument("--replay-schedule", metavar="FILE",
                   help="replay this recorded hunt schedule and shrink "
                        "the exact failing execution it reproduces")
    p.add_argument("-o", "--output", help="write the minimized trace")
    p.set_defaults(func=_cmd_minimize)

    p = sub.add_parser(
        "emit", help="emit a test as SPARC V9 assembly or a C11 program"
    )
    _add_generation_args(p)
    p.add_argument("--lang", choices=["sparc", "c11"], default="sparc")
    p.add_argument("-o", "--output", help="write the emitted source to a file")
    p.set_defaults(func=_cmd_emit)

    p = sub.add_parser("coverage", help="run a test and report its coverage")
    _add_generation_args(p)
    p.set_defaults(func=_cmd_coverage)

    p = sub.add_parser("litmus", help="run a named litmus case ('list' to list)")
    p.add_argument("name")
    p.add_argument("--explain", action="store_true", help="print violation chains")
    p.set_defaults(func=_cmd_litmus)

    p = sub.add_parser(
        "campaign",
        help="regenerate Tables 1 and 2",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes:\n"
            "  0  campaign completed and every seeded bug was detected\n"
            "  1  campaign completed but some seeded bugs went undetected\n"
            "  2  a hunt hung (worker timeout/crash after retry) or the\n"
            "     campaign crashed mid-hunt\n"
            "\n"
            "Results are hunt-for-hunt identical for any --workers value\n"
            "given the same --seed (see docs/parallel-campaigns.md)."
        ),
    )
    p.add_argument("--table", type=int, choices=[0, 1, 2], default=0,
                   help="which table (0 = both)")
    p.add_argument("--tests-per-bug", type=int, default=10)
    p.add_argument("--seed", type=int, default=2004)
    p.add_argument("--cpu", action="append",
                   choices=[c.name for c in CPU_CONFIGS],
                   help="restrict to this CPU (repeatable; default: all six)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for the hunts (default: 1, sequential)")
    p.add_argument("--task-timeout", type=float, default=None,
                   help="hard per-hunt timeout in seconds (workers > 1 only)")
    p.add_argument("--sched", choices=["random", "pct"], default="random",
                   help="schedule policy for every hunt (sweep does not "
                        "fit per-attempt hunts; see docs/schedulers.md)")
    p.add_argument("--pct-depth", type=int, default=3,
                   help="PCT bug-depth parameter (--sched pct)")
    p.add_argument("--record-schedule", metavar="DIR",
                   help="persist every detected hunt's ScheduleTrace as "
                        "DIR/<bug>.schedule.json")
    p.add_argument("--engine", choices=sorted(ENGINES),
                   default=DEFAULT_ENGINE,
                   help="checker engine for hunt triage")
    p.add_argument("--batch", type=int, default=1,
                   help="hunts dispatched per pool task (default: 1); "
                        "batching amortizes task round-trips and reuses "
                        "warm machine/checker state — results are "
                        "identical for any value (docs/performance.md). "
                        "Note --task-timeout then covers a whole batch")
    p.add_argument("--pipeline", action="store_true",
                   help="overlap checking with simulation per attempt "
                        "(streaming checker; violating seeds abort at "
                        "the closing record) — verdicts identical to "
                        "the conventional path")
    _add_telemetry_args(p)
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "submit",
        help="spool a campaign manifest for the service daemon",
    )
    p.add_argument("manifest", help="campaign manifest JSON file "
                   "(see docs/campaign-service.md)")
    p.add_argument("--root", default="service",
                   help="service root directory (default: ./service)")
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser(
        "serve",
        help="run the campaign service daemon",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes (--once):\n"
            "  0  every job's seeded bugs were all detected\n"
            "  1  some job left seeded bugs undetected\n"
            "  2  some job had a hung hunt or crashed mid-hunt\n"
            "i.e. the worst 'tsotool campaign' exit code across jobs.\n"
            "Without --once the daemon serves until SIGINT/SIGTERM\n"
            "and exits 0 on clean shutdown."
        ),
    )
    p.add_argument("--root", default="service",
                   help="service root directory (default: ./service)")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes per job (default: 1, sequential)")
    p.add_argument("--task-timeout", type=float, default=None,
                   help="hard per-hunt timeout in seconds (workers > 1 only)")
    p.add_argument("--once", action="store_true",
                   help="drain the spool once and exit instead of serving")
    p.add_argument("--poll-seconds", type=float, default=0.5,
                   help="spool re-scan interval while idle")
    p.add_argument("--http-host", default="127.0.0.1",
                   help="status endpoint bind host")
    p.add_argument("--http-port", type=int, default=0,
                   help="status endpoint port (default: 0 = OS-assigned; "
                        "the bound address is written to ROOT/status.address)")
    p.add_argument("--no-http", action="store_true",
                   help="run without the status endpoint")
    p.add_argument("--owner", default=None,
                   help="lease owner id for this daemon (default: "
                        "<hostname>-<pid>); give each daemon of a fleet "
                        "a distinct name")
    p.add_argument("--lease-seconds", type=float, default=30.0,
                   help="shard lease lifetime in seconds (default: 30); "
                        "a killed daemon's shards are taken over by a "
                        "peer after one expiry window")
    p.add_argument("--batch", type=int, default=None,
                   help="hunts per pool task, overriding each "
                        "manifest's batch setting (default: the "
                        "manifest decides); drains are digest-identical "
                        "for any value")
    _add_telemetry_args(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "status",
        help="show service job progress (live endpoint or offline scan)",
    )
    p.add_argument("--root", default="service",
                   help="service root directory (default: ./service)")
    p.add_argument("--json", action="store_true",
                   help="print the raw status payload as JSON")
    p.set_defaults(func=_cmd_status)

    p = sub.add_parser(
        "gc",
        help="reclaim a service root: retire finished jobs' spool "
             "entries, sweep tmp litter, compact done shards",
    )
    p.add_argument("--root", default="service",
                   help="service root directory (default: ./service)")
    p.add_argument("--older-than", type=float, default=0.0,
                   metavar="SECONDS",
                   help="only retire jobs whose result.json is at least "
                        "this old (default: 0, any finished job)")
    p.add_argument("--no-compact", action="store_true",
                   help="skip shard compaction while collecting")
    p.set_defaults(func=_cmd_gc)

    p = sub.add_parser(
        "compact",
        help="rewrite every done shard's store file to its canonical "
             "record set (drops superseded records and lease history)",
    )
    p.add_argument("--root", default="service",
                   help="service root directory (default: ./service)")
    p.set_defaults(func=_cmd_compact)

    p = sub.add_parser(
        "report", help="run the whole evaluation and write one report"
    )
    p.add_argument("-o", "--output", help="write the markdown report here")
    p.add_argument("--tests-per-bug", type=int, default=10)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("runtime", help="regenerate the Fig. 8/9 series")
    p.add_argument("--figure", type=int, choices=[8, 9], default=8)
    p.add_argument("--ops-points", type=int, nargs="+",
                   default=[400, 800, 1600, 3200])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--engine", choices=sorted(ENGINES),
                   default=DEFAULT_ENGINE)
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for the sweep points (default: 1); "
                        "parallel points contend for cores, so keep 1 when "
                        "publishing timing numbers")
    p.add_argument("--task-timeout", type=float, default=None,
                   help="hard per-point timeout in seconds (workers > 1 only)")
    _add_telemetry_args(p)
    p.set_defaults(func=_cmd_runtime)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    metrics_out = getattr(args, "metrics_out", None)
    want_summary = bool(getattr(args, "telemetry_summary", False))
    if metrics_out or want_summary:
        telemetry.configure(metrics_out=metrics_out)
    try:
        profile_out = getattr(args, "profile_out", None)
        if profile_out:
            import cProfile

            profiler = cProfile.Profile()
            try:
                return profiler.runcall(args.func, args)
            finally:
                profiler.dump_stats(profile_out)
                print(f"profile written to {profile_out} "
                      "(inspect with python -m pstats)", file=sys.stderr)
        return args.func(args)
    finally:
        tel = telemetry.get_telemetry()
        if tel.enabled:
            tel.flush()
            tel.close()
            if want_summary:
                if metrics_out:
                    print(telemetry.summarize_file(metrics_out),
                          file=sys.stderr)
                else:
                    print(tel.summary(), file=sys.stderr)
            telemetry.reset()


if __name__ == "__main__":
    sys.exit(main())
