"""The versioned JSONL metrics schema, and a validator for CI.

Format (``v`` 1), one JSON object per line, three kinds::

    {"v":1,"kind":"span","name":"check","ts":<float>,"pid":<int>,
     "seconds":<float>,"fields":{...}}
    {"v":1,"kind":"event","name":"pool.retry","ts":<float>,"pid":<int>,
     "fields":{...}}
    {"v":1,"kind":"snapshot","name":"snapshot","ts":<float>,"pid":<int>,
     "counters":{...},"timers":{...},"histograms":{...}}

The version field is bumped on incompatible changes, mirroring how
``repro.sched.trace.ScheduleTrace`` versions its JSON documents.
Validate a file from the command line (used by the CI telemetry job)::

    python -m repro.telemetry.schema run.jsonl \
        --require-spans generate simulate expand check

Exit code 0 when every line validates (and every required span name
appears at least once), 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Current event-stream format version.
SCHEMA_VERSION = 1

#: Allowed values for the ``kind`` field.
KINDS = ("span", "event", "snapshot")

_NUMBER = (int, float)


class SchemaError(ValueError):
    """A metrics line does not conform to the documented schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SchemaError(message)


def _check_common(obj: Dict[str, Any]) -> None:
    _require(isinstance(obj, dict), "line is not a JSON object")
    _require(obj.get("v") == SCHEMA_VERSION,
             f"bad or missing version: {obj.get('v')!r}")
    _require(obj.get("kind") in KINDS, f"bad kind: {obj.get('kind')!r}")
    _require(isinstance(obj.get("name"), str) and obj["name"] != "",
             "name must be a non-empty string")
    _require(isinstance(obj.get("ts"), _NUMBER), "ts must be a number")
    _require(isinstance(obj.get("pid"), int), "pid must be an integer")


def _check_histogram(name: str, hist: Any) -> None:
    _require(isinstance(hist, dict), f"histogram {name!r} must be an object")
    for key in ("count", "total", "buckets"):
        _require(key in hist, f"histogram {name!r} missing {key!r}")
    _require(isinstance(hist["count"], int), f"histogram {name!r} count")
    _require(isinstance(hist["total"], _NUMBER), f"histogram {name!r} total")
    _require(isinstance(hist["buckets"], dict), f"histogram {name!r} buckets")
    for bucket, count in hist["buckets"].items():
        _require(isinstance(bucket, str) and isinstance(count, int),
                 f"histogram {name!r} bucket {bucket!r}")


def validate_event(obj: Dict[str, Any]) -> None:
    """Validate one parsed metrics line; raise :class:`SchemaError`."""
    _check_common(obj)
    kind = obj["kind"]
    if kind == "span":
        _require(isinstance(obj.get("seconds"), _NUMBER),
                 "span.seconds must be a number")
        _require(obj["seconds"] >= 0, "span.seconds must be >= 0")
        _require(isinstance(obj.get("fields"), dict),
                 "span.fields must be an object")
    elif kind == "event":
        _require(isinstance(obj.get("fields"), dict),
                 "event.fields must be an object")
    else:  # snapshot
        _require(isinstance(obj.get("counters"), dict),
                 "snapshot.counters must be an object")
        _require(isinstance(obj.get("timers"), dict),
                 "snapshot.timers must be an object")
        _require(isinstance(obj.get("histograms"), dict),
                 "snapshot.histograms must be an object")
        for name, value in obj["counters"].items():
            _require(isinstance(name, str) and isinstance(value, _NUMBER),
                     f"snapshot counter {name!r}")
        for name, timer in obj["timers"].items():
            _require(
                isinstance(timer, dict)
                and isinstance(timer.get("count"), int)
                and isinstance(timer.get("seconds"), _NUMBER),
                f"snapshot timer {name!r}",
            )
        for name, hist in obj["histograms"].items():
            _check_histogram(name, hist)


def validate_lines(lines: Iterable[str]) -> List[Dict[str, Any]]:
    """Validate raw JSONL lines; return the parsed objects.

    Raises :class:`SchemaError` naming the first offending line number.
    """
    parsed: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"line {lineno}: not JSON ({exc})") from exc
        try:
            validate_event(obj)
        except SchemaError as exc:
            raise SchemaError(f"line {lineno}: {exc}") from exc
        parsed.append(obj)
    return parsed


def validate_file(
    path: str, require_spans: Sequence[str] = ()
) -> Tuple[int, Dict[str, int]]:
    """Validate a metrics file; return ``(lines, span-name counts)``.

    Raises :class:`SchemaError` on the first invalid line, or when a
    name in ``require_spans`` never appears as a span.
    """
    with open(path) as fh:
        events = validate_lines(fh)
    span_counts: Dict[str, int] = {}
    for obj in events:
        if obj["kind"] == "span":
            span_counts[obj["name"]] = span_counts.get(obj["name"], 0) + 1
    missing = [name for name in require_spans if name not in span_counts]
    if missing:
        raise SchemaError(
            f"required span name(s) never recorded: {', '.join(missing)}"
        )
    return len(events), span_counts


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.telemetry.schema FILE [--require-spans N...]``."""
    parser = argparse.ArgumentParser(
        prog="repro.telemetry.schema",
        description="validate a tsotool --metrics-out JSONL file",
    )
    parser.add_argument("file", help="metrics JSONL file to validate")
    parser.add_argument(
        "--require-spans", nargs="+", default=[], metavar="NAME",
        help="span names that must each appear at least once",
    )
    args = parser.parse_args(argv)
    try:
        nlines, span_counts = validate_file(
            args.file, require_spans=args.require_spans
        )
    except (OSError, SchemaError) as exc:
        print(f"{args.file}: INVALID: {exc}", file=sys.stderr)
        return 1
    spans = sum(span_counts.values())
    print(
        f"{args.file}: {nlines} event(s) ok "
        f"({spans} span(s), {len(span_counts)} distinct span name(s))"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
