"""repro.telemetry — zero-dependency instrumentation for campaign-scale runs.

Counters, timers, histograms and a span API feeding pluggable sinks:
an in-memory registry, a multi-process-safe JSONL event stream
(``tsotool … --metrics-out run.jsonl``) and an end-of-run text summary
(``--telemetry-summary``).  Disabled by default with near-zero overhead;
see ``docs/telemetry.md`` for the event schema and the sink API.

Typical library use::

    from repro import telemetry
    from repro.telemetry import MemorySink

    tel = telemetry.configure(sinks=[MemorySink()])
    with telemetry.span("check", engine="closure"):
        ...
    print(tel.summary())
    telemetry.reset()

Not to be confused with :mod:`repro.core.observability`, which models
the paper's Sec. 3.2 *machine* observability (environment-captured
store order); this package instruments the tool itself — where the
paper's Sec. 5 runtime accounting comes from.
"""

from repro.telemetry.registry import (
    ENV_METRICS_OUT,
    Histogram,
    Telemetry,
    configure,
    count,
    event,
    get_telemetry,
    init_worker,
    observe,
    record,
    record_check,
    render_summary,
    reset,
    set_telemetry,
    span,
    summarize_file,
)
from repro.telemetry.schema import (
    SCHEMA_VERSION,
    SchemaError,
    validate_event,
    validate_file,
)
from repro.telemetry.sinks import JsonlSink, MemorySink, NullSink, Sink

__all__ = [
    "ENV_METRICS_OUT",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "SCHEMA_VERSION",
    "SchemaError",
    "Sink",
    "Telemetry",
    "configure",
    "count",
    "event",
    "get_telemetry",
    "init_worker",
    "observe",
    "record",
    "record_check",
    "render_summary",
    "reset",
    "set_telemetry",
    "span",
    "summarize_file",
    "validate_event",
    "validate_file",
]
