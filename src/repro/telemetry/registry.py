"""The telemetry registry: counters, timers, histograms and spans.

One :class:`Telemetry` object aggregates everything a process records
and forwards the streamable part (spans, discrete events, end-of-run
snapshots) to its :class:`~repro.telemetry.sinks.Sink` list.  The
module-level accessors (:func:`get_telemetry`, :func:`configure`,
:func:`span`, …) manage the process-global instance that the
instrumented layers — simulator, checker engines, pool, CLI — talk to.

Design constraints, in priority order:

* **Disabled is free.**  The default instance is disabled; every
  instrumentation site either checks ``telemetry.enabled`` once or calls
  :func:`span`, which returns a shared no-op context manager without
  allocating.  The cost of a dark instrumentation point is one attribute
  load and one branch — under the noise floor of
  ``benchmarks/test_engine_scaling.py`` (pinned by
  ``benchmarks/test_telemetry_overhead.py``).
* **Zero dependencies.**  Pure stdlib; importable from anywhere in the
  package without cycles (this package imports nothing from ``repro``).
* **Campaign-scale.**  Pool worker *processes* inherit the JSONL sink
  path through the environment (:data:`ENV_METRICS_OUT`) and append to
  the same file with atomic single-``write`` lines, so one
  ``--metrics-out run.jsonl`` covers the parent and every worker.

Naming note: this package is ``repro.telemetry`` — *instrumentation* of
the tool itself — not to be confused with ``repro.core.observability``,
which implements the paper's Sec. 3.2 notion of extra *machine*
observability (environment-captured store order) fed to the checker.
"""

from __future__ import annotations

import math
import os
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.telemetry.sinks import JsonlSink, Sink

#: Environment variable naming the shared JSONL file; worker processes
#: (both fork and spawn start methods inherit the environment) configure
#: an appending sink from it via :func:`init_worker`.
ENV_METRICS_OUT = "TSOTOOL_METRICS_OUT"

#: Histogram bucket key for zero/negative observations.
_ZERO_BUCKET = "zero"


class Histogram:
    """A decade (power-of-ten) histogram plus count/sum/min/max.

    Buckets are keyed by ``floor(log10(value))`` as a string (so the
    whole structure serializes to JSON unchanged); a value ``v`` lands in
    bucket ``e`` when ``10**e <= v < 10**(e+1)``.  Decades are plenty for
    the quantities recorded here (task seconds, tick counts) and keep the
    snapshot payload tiny.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[str, int] = {}

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        key = _ZERO_BUCKET if value <= 0.0 else str(math.floor(math.log10(value)))
        self.buckets[key] = self.buckets.get(key, 0) + 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": dict(self.buckets),
        }


class _SpanHandle:
    """Live span context manager: times the block, then records it."""

    __slots__ = ("_telemetry", "name", "fields", "_start", "seconds")

    def __init__(self, telemetry: "Telemetry", name: str, fields: Dict[str, Any]):
        self._telemetry = telemetry
        self.name = name
        self.fields = fields
        self._start = 0.0
        #: Duration of the finished span (populated on exit).
        self.seconds = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = time.perf_counter() - self._start
        if exc_type is not None:
            self.fields = dict(self.fields, error=exc_type.__name__)
        self._telemetry.record_span(self.name, self.seconds, self.fields)


class _NullSpan:
    """Shared no-op span for disabled telemetry (allocation-free path)."""

    __slots__ = ()
    seconds = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Telemetry:
    """Aggregating registry plus sink fan-out for one process.

    All mutation goes through a lock: the hot layers are single-threaded,
    but progress callbacks and future async callers must not be able to
    corrupt the dicts.  The lock is only ever taken when ``enabled``.
    """

    def __init__(self, enabled: bool = False, sinks: Sequence[Sink] = ()) -> None:
        self.enabled = enabled
        self.sinks: List[Sink] = list(sinks)
        self._lock = threading.Lock()
        self.counters: Dict[str, float] = {}
        #: name -> [count, total_seconds]
        self.timers: Dict[str, List[float]] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.events_seen: Dict[str, int] = {}

    # -- recording -----------------------------------------------------

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the counter ``name``."""
        if not self.enabled:
            return
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration under the timer ``name``."""
        if not self.enabled:
            return
        with self._lock:
            timer = self.timers.setdefault(name, [0, 0.0])
            timer[0] += 1
            timer[1] += seconds

    def record(self, name: str, value: float) -> None:
        """Record one observation into the histogram ``name``."""
        if not self.enabled:
            return
        with self._lock:
            self.histograms.setdefault(name, Histogram()).record(value)

    def span(self, name: str, **fields: Any):
        """Context manager timing a block; emits a ``span`` sink event."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanHandle(self, name, fields)

    def record_span(self, name: str, seconds: float, fields: Dict[str, Any]) -> None:
        """Finish a span: aggregate its duration and stream it to sinks."""
        if not self.enabled:
            return
        self.observe(name, seconds)
        self._emit({
            "kind": "span",
            "name": name,
            "seconds": seconds,
            "fields": fields,
        })

    def event(self, name: str, **fields: Any) -> None:
        """Emit a discrete event (retry, hang, …) to the sinks."""
        if not self.enabled:
            return
        with self._lock:
            self.events_seen[name] = self.events_seen.get(name, 0) + 1
        self._emit({"kind": "event", "name": name, "fields": fields})

    # -- output --------------------------------------------------------

    def _emit(self, payload: Dict[str, Any]) -> None:
        payload.setdefault("v", 1)
        payload.setdefault("ts", time.time())
        payload.setdefault("pid", os.getpid())
        for sink in self.sinks:
            sink.emit(payload)

    def snapshot(self) -> Dict[str, Any]:
        """The current aggregate state as one JSON-safe dict."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "timers": {
                    name: {"count": int(t[0]), "seconds": t[1]}
                    for name, t in self.timers.items()
                },
                "histograms": {
                    name: h.to_dict() for name, h in self.histograms.items()
                },
            }

    def flush(self) -> None:
        """Stream a cumulative ``snapshot`` event to the sinks.

        Called after every pool task in workers (a killed worker cannot
        run ``atexit`` hooks) and once at CLI exit; snapshots are
        cumulative per process, so consumers keep the *last* one per pid.
        """
        if not self.enabled:
            return
        payload: Dict[str, Any] = {"kind": "snapshot", "name": "snapshot"}
        payload.update(self.snapshot())
        self._emit(payload)

    def close(self) -> None:
        """Flush and close every sink."""
        for sink in self.sinks:
            sink.close()

    def summary(self) -> str:
        """End-of-run text summary of everything this process recorded."""
        return render_summary(self.snapshot(), events=dict(self.events_seen))


# ---------------------------------------------------------------------------
# Process-global instance and conveniences
# ---------------------------------------------------------------------------

_ACTIVE = Telemetry(enabled=False)


def get_telemetry() -> Telemetry:
    """The process-global telemetry instance (disabled by default)."""
    return _ACTIVE


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Replace the process-global instance; returns it."""
    global _ACTIVE
    _ACTIVE = telemetry
    return _ACTIVE


def configure(
    metrics_out: Optional[str] = None,
    sinks: Sequence[Sink] = (),
    propagate_env: bool = True,
) -> Telemetry:
    """Enable telemetry for this process (and, via env, its workers).

    Args:
        metrics_out: path of a JSONL event file; truncated here, appended
            to by pool workers.
        sinks: extra sinks (e.g. a :class:`~repro.telemetry.sinks.MemorySink`).
        propagate_env: export ``metrics_out`` as :data:`ENV_METRICS_OUT`
            so pool worker processes attach to the same file.
    """
    sink_list: List[Sink] = list(sinks)
    if metrics_out:
        path = os.path.abspath(metrics_out)
        sink_list.append(JsonlSink(path, truncate=True))
        if propagate_env:
            os.environ[ENV_METRICS_OUT] = path
    return set_telemetry(Telemetry(enabled=True, sinks=sink_list))


def reset() -> Telemetry:
    """Back to the disabled default; clears the worker env propagation."""
    os.environ.pop(ENV_METRICS_OUT, None)
    return set_telemetry(Telemetry(enabled=False))


def init_worker() -> Telemetry:
    """Attach a pool worker process to the campaign's JSONL file.

    Idempotent: with the ``fork`` start method the worker inherits the
    parent's already-enabled instance (and its O_APPEND fd, which is
    safe to share) and nothing happens; with ``spawn`` the instance is
    the disabled default and the sink is rebuilt from the environment.
    """
    if _ACTIVE.enabled:
        return _ACTIVE
    path = os.environ.get(ENV_METRICS_OUT)
    if not path:
        return _ACTIVE
    return set_telemetry(
        Telemetry(enabled=True, sinks=[JsonlSink(path, truncate=False)])
    )


def span(name: str, **fields: Any):
    """``with span("check"): ...`` against the process-global instance."""
    active = _ACTIVE
    if not active.enabled:
        return _NULL_SPAN
    return _SpanHandle(active, name, fields)


def count(name: str, value: float = 1) -> None:
    """Module-level :meth:`Telemetry.count` on the global instance."""
    _ACTIVE.count(name, value)


def observe(name: str, seconds: float) -> None:
    """Module-level :meth:`Telemetry.observe` on the global instance."""
    _ACTIVE.observe(name, seconds)


def record(name: str, value: float) -> None:
    """Module-level :meth:`Telemetry.record` on the global instance."""
    _ACTIVE.record(name, value)


def event(name: str, **fields: Any) -> None:
    """Module-level :meth:`Telemetry.event` on the global instance."""
    _ACTIVE.event(name, **fields)


def record_check(stats: Any, engine: str) -> None:
    """Fold one checker run's ``CheckStats`` into the global registry.

    Called by every engine at the end of ``run()``; duck-typed so this
    package stays import-free of :mod:`repro.core`.  One branch when
    telemetry is disabled.
    """
    active = _ACTIVE
    if not active.enabled:
        return
    active.count("check.runs")
    active.count(f"check.engine.{engine}")
    active.count("check.edges.static", stats.static_edges)
    active.count("check.edges.observed", stats.observed_edges)
    active.count("check.edges.inferred", stats.inferred_edges)
    active.count("check.iterations", stats.iterations)
    active.count("check.closure_rebuilds", stats.closure_rebuilds)
    active.count("check.traversals", stats.traversals)
    active.count("check.vc_queries", stats.vc_queries)
    active.count("check.reorder_visits", stats.reorder_visits)
    active.count("check.kernel_batches", getattr(stats, "kernel_batches", 0))
    active.count("check.retired_nodes", stats.retired_nodes)
    if stats.live_peak:
        active.record("check.live_peak", stats.live_peak)
    active.record("check.seconds", stats.seconds)


# ---------------------------------------------------------------------------
# Summaries
# ---------------------------------------------------------------------------

def render_summary(
    snapshot: Dict[str, Any], events: Optional[Dict[str, int]] = None
) -> str:
    """Render one snapshot dict as the end-of-run text summary."""
    lines = ["telemetry summary"]
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            value = counters[name]
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"  {name:<{width}}  {shown}")
    timers = snapshot.get("timers", {})
    if timers:
        lines.append("timers:")
        width = max(len(n) for n in timers)
        for name in sorted(timers):
            t = timers[name]
            n, total = int(t["count"]), float(t["seconds"])
            mean = total / n if n else 0.0
            lines.append(
                f"  {name:<{width}}  count={n} total={total:.3f}s mean={mean * 1e3:.2f}ms"
            )
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        width = max(len(n) for n in histograms)
        for name in sorted(histograms):
            h = histograms[name]
            lines.append(
                f"  {name:<{width}}  count={h['count']} min={h['min']} "
                f"max={h['max']} total={h['total']:.3f}"
            )
    if events:
        lines.append("events:")
        width = max(len(n) for n in events)
        for name in sorted(events):
            lines.append(f"  {name:<{width}}  {events[name]}")
    if len(lines) == 1:
        lines.append("  (nothing recorded)")
    return "\n".join(lines)


def _merge_snapshot(
    into: Dict[str, Any], snapshot: Dict[str, Any]
) -> None:
    for name, value in snapshot.get("counters", {}).items():
        into["counters"][name] = into["counters"].get(name, 0) + value
    for name, timer in snapshot.get("timers", {}).items():
        acc = into["timers"].setdefault(name, {"count": 0, "seconds": 0.0})
        acc["count"] += timer["count"]
        acc["seconds"] += timer["seconds"]
    for name, hist in snapshot.get("histograms", {}).items():
        acc = into["histograms"].setdefault(
            name,
            {"count": 0, "total": 0.0, "min": None, "max": None, "buckets": {}},
        )
        acc["count"] += hist["count"]
        acc["total"] += hist["total"]
        for bound in ("min", "max"):
            value = hist.get(bound)
            if value is None:
                continue
            best = min if bound == "min" else max
            acc[bound] = value if acc[bound] is None else best(acc[bound], value)
        for key, n in hist.get("buckets", {}).items():
            acc["buckets"][key] = acc["buckets"].get(key, 0) + n


def summarize_file(path: str) -> str:
    """Merge a JSONL metrics file into one cross-process text summary.

    Snapshots are cumulative per pid, so only the *last* snapshot of each
    pid is summed; span and event lines are tallied directly (spans are
    already aggregated into each process's snapshot timers, so span lines
    only contribute the per-name event counts shown under ``events:``).
    """
    import json

    last_by_pid: Dict[int, Dict[str, Any]] = {}
    events: Dict[str, int] = {}
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if obj.get("kind") == "snapshot":
                last_by_pid[obj.get("pid", 0)] = obj
            elif obj.get("kind") == "event":
                name = obj.get("name", "?")
                events[name] = events.get(name, 0) + 1
    merged: Dict[str, Any] = {"counters": {}, "timers": {}, "histograms": {}}
    for snap in last_by_pid.values():
        _merge_snapshot(merged, snap)
    header = f"telemetry summary ({len(last_by_pid)} process(es), {path})"
    body_lines = render_summary(merged, events=events or None).split("\n")
    return "\n".join([header] + body_lines[1:])
