"""Pluggable telemetry sinks: where span/event/snapshot payloads go.

A sink receives already-stamped JSON-safe dicts (see
``docs/telemetry.md`` for the schema) and must be cheap: the registry
calls :meth:`Sink.emit` synchronously from instrumented code.  Three
implementations cover the subsystem's needs:

* :class:`NullSink` — drops everything; exists so the *enabled* overhead
  (payload construction included) can be benchmarked without I/O.
* :class:`MemorySink` — in-process list of payloads, for tests and for
  programmatic consumers.
* :class:`JsonlSink` — one JSON object per line, appended with a single
  ``os.write`` per event through an ``O_APPEND`` descriptor, so many
  processes (a campaign parent plus its pool workers) can interleave
  safely in one file.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List


class Sink:
    """Sink interface; subclasses override :meth:`emit` (and maybe close)."""

    def emit(self, payload: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; further emits are undefined."""


class NullSink(Sink):
    """Accepts and discards every payload."""

    def emit(self, payload: Dict[str, Any]) -> None:
        pass


class MemorySink(Sink):
    """Collects payloads in a list (``sink.payloads``)."""

    def __init__(self) -> None:
        self.payloads: List[Dict[str, Any]] = []

    def emit(self, payload: Dict[str, Any]) -> None:
        self.payloads.append(payload)

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        """Payloads filtered by ``kind`` (``span``/``event``/``snapshot``)."""
        return [p for p in self.payloads if p.get("kind") == kind]


class JsonlSink(Sink):
    """Append-only JSON-lines file sink, safe across processes.

    Every payload becomes exactly one ``write(2)`` of one newline-
    terminated line on an ``O_APPEND`` descriptor: POSIX appends are
    atomic per call, so lines from a campaign parent and its worker
    processes never interleave mid-line.  ``truncate=True`` (the
    configuring parent) starts the file fresh; workers attach with
    ``truncate=False``.
    """

    def __init__(self, path: str, truncate: bool = False) -> None:
        self.path = path
        flags = os.O_WRONLY | os.O_CREAT | os.O_APPEND
        if truncate:
            flags |= os.O_TRUNC
        self._fd: int = os.open(path, flags, 0o644)

    def emit(self, payload: Dict[str, Any]) -> None:
        if self._fd < 0:
            return
        line = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        os.write(self._fd, line.encode("utf-8") + b"\n")

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1
