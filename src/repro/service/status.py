"""The live status endpoint: a stdlib HTTP JSON API over service state.

A :class:`StatusServer` wraps ``http.server.ThreadingHTTPServer`` in a
daemon thread and serves read-only JSON built from a ``state_fn`` the
daemon supplies — every request re-evaluates it, so responses always
reflect the store on disk rather than a cached view.  Routes:

* ``GET /healthz``  — liveness probe, ``{"ok": true}``.
* ``GET /status``   — the full service payload (service block, jobs
  list, telemetry snapshot; see ``CampaignService.status``).
* ``GET /jobs``     — just the jobs list.
* ``GET /jobs/<id>``— one job entry, 404 if unknown.
* ``GET /metrics``  — the process telemetry snapshot stamped in the
  v1 telemetry schema's ``snapshot`` shape, so the same tooling that
  reads ``TSOTOOL_METRICS_OUT`` files can parse it.

Binding port 0 (the default) lets the OS pick a free port; the chosen
address is available as :attr:`StatusServer.address` after ``start()``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple

from repro import telemetry

StateFn = Callable[[], Dict[str, object]]


def _metrics_snapshot() -> Dict[str, object]:
    """The process's telemetry totals in the v1 ``snapshot`` line shape."""
    snap = telemetry.get_telemetry().snapshot()
    doc: Dict[str, object] = {
        "v": 1,
        "kind": "snapshot",
        "name": "snapshot",
        "ts": time.time(),
        "pid": os.getpid(),
    }
    doc.update(snap)
    return doc


class _Handler(BaseHTTPRequestHandler):
    # Set per-server via the factory in StatusServer.__init__.
    state_fn: StateFn

    server_version = "tsotool-service/1"

    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request stderr noise; telemetry counts instead."""

    def _send(self, code: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if telemetry.get_telemetry().enabled:
            telemetry.count("service.http_requests")
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/healthz":
                self._send(200, {"ok": True})
            elif path == "/status":
                self._send(200, self.state_fn())
            elif path == "/metrics":
                self._send(200, _metrics_snapshot())
            elif path == "/jobs":
                state = self.state_fn()
                self._send(200, {"jobs": state.get("jobs", [])})
            elif path.startswith("/jobs/"):
                job_id = path[len("/jobs/"):]
                state = self.state_fn()
                for entry in state.get("jobs", []):  # type: ignore[union-attr]
                    if entry.get("id") == job_id:
                        self._send(200, entry)
                        return
                self._send(404, {"error": f"unknown job {job_id!r}"})
            else:
                self._send(404, {"error": f"unknown path {path!r}"})
        except BrokenPipeError:
            pass  # client went away mid-response; nothing to salvage


class StatusServer:
    """Serve live service state over HTTP from a background thread."""

    def __init__(
        self,
        state_fn: StateFn,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        handler = type("BoundHandler", (_Handler,), {"state_fn": staticmethod(state_fn)})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — resolved even when port 0 was asked."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> "StatusServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="tsotool-status",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
