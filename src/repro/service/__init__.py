"""repro.service — campaign-as-a-service: sharded, queued, resumable.

TSOtool's value at Sun came from running huge pseudo-random campaigns
*continuously* against silicon, not one-shot CLI invocations.  This
package is that framing for the reproduction: a daemon that accepts
campaign *manifests* (seeds × CPU configs × generator/scheduler/engine
settings, split into deterministic shards), dispatches their hunts to
the existing :mod:`repro.analysis.pool` workers, records every
completed :class:`~repro.analysis.campaign.BugHunt` in an append-only
crash-safe store, deduplicates behaviorally identical detections, and
reports live progress over a stdlib HTTP JSON API.

The layers, bottom-up:

* :mod:`repro.service.manifest` — the versioned manifest document and
  its deterministic shard expansion.
* :mod:`repro.service.store` — the persistent result store
  (JSONL-per-shard, append-only); a restarted daemon resumes exactly at
  the first unfinished shard and never re-runs a completed hunt.
* :mod:`repro.service.lease` — shard claim/renew/release records in
  the same per-shard JSONL, arbitrated by append order: what lets N
  daemons on N hosts drain one job concurrently, with heartbeat
  renewal and expiry takeover after a killed peer.
* :mod:`repro.service.queue` — the shard scheduler: lease-gated
  pending-work computation plus pool dispatch with incremental
  persistence.
* :mod:`repro.service.status` — the live status endpoint.
* :mod:`repro.service.daemon` — the service itself: a spool of
  submitted manifests, the serve loop, and signal handling.

CLI verbs: ``tsotool submit <manifest>``, ``tsotool serve``,
``tsotool status`` (see ``docs/campaign-service.md``).  The one-shot
``tsotool campaign`` contract (exit codes 0/1/2) is untouched; a
service job's merged result reports the same tables, detection rate
and exit code as a from-scratch ``run_campaign`` of the same manifest.
"""

from repro.service.daemon import CampaignService, ServiceConfig
from repro.service.lease import Lease, LeaseManager, default_owner
from repro.service.manifest import CampaignManifest, Shard
from repro.service.queue import JobRunner
from repro.service.status import StatusServer
from repro.service.store import ResultStore, failure_digest, hunt_digest

__all__ = [
    "CampaignManifest",
    "CampaignService",
    "JobRunner",
    "Lease",
    "LeaseManager",
    "ResultStore",
    "ServiceConfig",
    "Shard",
    "StatusServer",
    "default_owner",
    "failure_digest",
    "hunt_digest",
]
