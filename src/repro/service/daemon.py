"""The campaign service daemon: spool, serve loop, signals, status.

Layout under the service root::

    <root>/spool/<job_id>.manifest.json   # submissions, FIFO by mtime
    <root>/jobs/<job_id>/                 # one ResultStore per job
    <root>/jobs/<job_id>/result.json      # merged CampaignResult + exit code
    <root>/status.address                 # "host port" of the live endpoint

``submit`` writes the manifest into the spool atomically; because the
job id is a content digest, re-submitting the same manifest attaches to
the existing job instead of spending its budget twice.  ``serve`` drains
the spool oldest-first, runs each unfinished job through a
:class:`~repro.service.queue.JobRunner` (which persists every hunt as it
completes), and writes ``result.json`` when the job's merged result is
ready.  A job whose ``result.json`` already exists is never re-run — the
restart-after-SIGKILL path re-runs only hunts the store has no record
of, then merges.

Exit-code contract (``--once`` mode): the maximum campaign exit code
across all spooled jobs — 0 all bugs detected, 1 some undetected, 2 a
hunt hung or crashed — i.e. exactly what ``tsotool campaign`` would
have returned for the worst job.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.analysis.pool import ProgressFn
from repro.service.lease import DEFAULT_LEASE_SECONDS, default_owner
from repro.service.manifest import CampaignManifest
from repro.service.queue import JobRunner
from repro.service.status import StatusServer
from repro.service.store import ResultStore

#: Store-file signature: (relative path, size, mtime ns) per file — the
#: cache key for a job's summary.  Any append changes the signature.
_StoreSignature = Tuple[Tuple[str, int, int], ...]


@dataclass(frozen=True)
class ServiceConfig:
    """How a :class:`CampaignService` runs (root dir + knobs)."""

    #: Service root; spool, job stores and the address file live here.
    root: str
    #: Pool workers per job (``run_tasks`` semantics; 1 = inline).
    workers: int = 1
    #: Per-hunt timeout in seconds (requires ``workers >= 1`` pool mode).
    task_timeout: Optional[float] = None
    #: Spool re-scan interval while idle, seconds.
    poll_seconds: float = 0.5
    #: Status endpoint bind host.
    http_host: str = "127.0.0.1"
    #: Status endpoint port; 0 = OS-assigned, ``None`` = no endpoint.
    http_port: Optional[int] = 0
    #: Drain the spool once and exit instead of serving forever.
    once: bool = False
    #: This daemon's lease owner id (``None`` = ``<hostname>-<pid>``).
    #: Give each daemon of a fleet a distinct, stable-ish name.
    owner: Optional[str] = None
    #: Shard lease lifetime, seconds; a SIGKILL'd daemon's shards are
    #: taken over by a peer one expiry window after its last heartbeat.
    lease_seconds: float = DEFAULT_LEASE_SECONDS
    #: Hunts per pool task (``None`` = each job's manifest decides).
    #: A daemon-level override for heterogeneous fleets — see
    #: :attr:`repro.service.queue.JobRunner.batch`.
    batch: Optional[int] = None


class CampaignService:
    """The daemon: accepts manifests, runs jobs, reports progress."""

    def __init__(
        self,
        config: ServiceConfig,
        *,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        self.config = config
        self.progress = progress
        self.spool_dir = os.path.join(config.root, "spool")
        self.jobs_dir = os.path.join(config.root, "jobs")
        os.makedirs(self.spool_dir, exist_ok=True)
        os.makedirs(self.jobs_dir, exist_ok=True)
        self._started = time.time()
        self._active_job: Optional[str] = None
        self.owner = config.owner or default_owner()
        #: Per-job summary cache: store-file signature -> summary dict.
        #: A status probe on an idle spool is O(stat calls), not
        #: O(total store lines) — the signature changes on any append.
        self._summary_cache: Dict[str, Tuple[_StoreSignature, Dict[str, object]]] = {}
        #: Probes answered from the cache (a deterministic benchmark
        #: hook; not a public counter).
        self._summary_cache_hits = 0

    # -- paths ---------------------------------------------------------

    def _spool_path(self, job_id: str) -> str:
        return os.path.join(self.spool_dir, f"{job_id}.manifest.json")

    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, job_id)

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "result.json")

    @property
    def address_path(self) -> str:
        return os.path.join(self.config.root, "status.address")

    # -- submission ----------------------------------------------------

    def submit(self, manifest: CampaignManifest) -> str:
        """Spool a manifest; returns its job id.  Idempotent — the job
        id digests the manifest content, so a duplicate submission maps
        to the already-spooled job."""
        job_id = manifest.job_id
        path = self._spool_path(job_id)
        if not os.path.exists(path):
            tmp = path + ".tmp"
            with open(tmp, "w") as fh:
                fh.write(manifest.to_json() + "\n")
            os.replace(tmp, path)
            telemetry.count("service.submissions")
        return job_id

    def spooled(self) -> List[Tuple[str, CampaignManifest]]:
        """Spooled jobs, oldest submission first (FIFO by mtime)."""
        entries: List[Tuple[float, str, str]] = []
        for name in os.listdir(self.spool_dir):
            if not name.endswith(".manifest.json"):
                continue
            path = os.path.join(self.spool_dir, name)
            job_id = name[: -len(".manifest.json")]
            try:
                entries.append((os.path.getmtime(path), job_id, path))
            except FileNotFoundError:
                continue
        out: List[Tuple[str, CampaignManifest]] = []
        for _, job_id, path in sorted(entries):
            out.append((job_id, CampaignManifest.load(path)))
        return out

    # -- running -------------------------------------------------------

    def job_done(self, job_id: str) -> bool:
        return os.path.exists(self.result_path(job_id))

    def run_job(self, job_id: str, manifest: CampaignManifest) -> int:
        """Run (or resume) one job to completion; returns its exit code.

        Crash-safe by construction: hunts persist as they complete, and
        ``result.json`` is the last artifact written — its presence
        marks the job done, its absence means "resume from the store".
        """
        store = ResultStore(self.job_dir(job_id))
        try:
            runner = JobRunner(
                manifest,
                store,
                workers=self.config.workers,
                task_timeout=self.config.task_timeout,
                progress=self.progress,
                owner=self.owner,
                lease_seconds=self.config.lease_seconds,
                batch=self.config.batch,
            )
            self._active_job = job_id
            result = runner.run()
            code = result.exit_code()
            doc = {
                "v": 1,
                "job": job_id,
                "exit_code": code,
                "result": result.to_dict(),
            }
            tmp = self.result_path(job_id) + ".tmp"
            with open(tmp, "w") as fh:
                json.dump(doc, fh, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, self.result_path(job_id))
            return code
        finally:
            self._active_job = None
            store.close()

    def stored_exit_code(self, job_id: str) -> Optional[int]:
        """Exit code of a finished job, from its ``result.json``."""
        try:
            with open(self.result_path(job_id)) as fh:
                return int(json.load(fh)["exit_code"])
        except (OSError, ValueError, KeyError):
            return None

    def _drain(self) -> Optional[int]:
        """One spool pass; returns the worst exit code seen, or ``None``
        when the spool was empty."""
        worst: Optional[int] = None
        for job_id, manifest in self.spooled():
            if self.job_done(job_id):
                code = self.stored_exit_code(job_id)
            else:
                code = self.run_job(job_id, manifest)
            if code is not None:
                worst = code if worst is None else max(worst, code)
        return worst

    def serve(self) -> int:
        """The serve loop.  ``--once``: drain the spool and return the
        worst job exit code (0 for an empty spool).  Otherwise: serve
        until SIGINT/SIGTERM, then return 0 on clean shutdown."""
        self._install_signal_handlers()
        server: Optional[StatusServer] = None
        if self.config.http_port is not None:
            server = StatusServer(
                self.status,
                host=self.config.http_host,
                port=self.config.http_port,
            ).start()
            host, port = server.address
            tmp = self.address_path + ".tmp"
            with open(tmp, "w") as fh:
                fh.write(f"{host} {port}\n")
            os.replace(tmp, self.address_path)
            print(
                f"status endpoint: http://{host}:{port}/status "
                f"(also in {self.address_path})",
                file=sys.stderr,
            )
        try:
            if self.config.once:
                worst = self._drain()
                return 0 if worst is None else worst
            while True:
                try:
                    self._drain()
                    time.sleep(self.config.poll_seconds)
                except KeyboardInterrupt:
                    return 0
        finally:
            if server is not None:
                server.close()
            try:
                os.unlink(self.address_path)
            except OSError:
                pass

    def _install_signal_handlers(self) -> None:
        """SIGTERM behaves like SIGINT (clean shutdown) when we own the
        main thread; under a test harness's worker thread, skip."""
        if threading.current_thread() is not threading.main_thread():
            return
        def _terminate(signum: int, frame: object) -> None:
            raise KeyboardInterrupt
        signal.signal(signal.SIGTERM, _terminate)

    # -- status --------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """The live status payload (served at ``GET /status``).

        Re-reads every job's store from disk so a poller sees hunts the
        moment their lines land, not when the job finishes.  Store-load
        warnings (a torn tail mid-campaign) are suppressed here — the
        *runner* owns reporting them; a status probe must stay silent.
        """
        jobs: List[Dict[str, object]] = []
        for job_id, manifest in self.spooled():
            jobs.append(self._job_entry(job_id, manifest))
        return {
            "v": 1,
            "service": {
                "root": self.config.root,
                "workers": self.config.workers,
                "pid": os.getpid(),
                "owner": self.owner,
                "lease_seconds": self.config.lease_seconds,
                "uptime_seconds": round(time.time() - self._started, 3),
                "active_job": self._active_job,
            },
            "jobs": jobs,
            "telemetry": telemetry.get_telemetry().snapshot(),
        }

    def _store_signature(self, job_id: str) -> _StoreSignature:
        """Fingerprint of every store file a summary depends on."""
        job_dir = self.job_dir(job_id)
        sig: List[Tuple[str, int, int]] = []
        shards_dir = os.path.join(job_dir, "shards")
        try:
            names = sorted(os.listdir(shards_dir))
        except FileNotFoundError:
            names = []
        for name in names:
            if not name.endswith(".jsonl"):
                continue
            try:
                st = os.stat(os.path.join(shards_dir, name))
            except FileNotFoundError:
                continue
            sig.append((f"shards/{name}", st.st_size, st.st_mtime_ns))
        try:
            st = os.stat(os.path.join(job_dir, "buckets.jsonl"))
            sig.append(("buckets.jsonl", st.st_size, st.st_mtime_ns))
        except FileNotFoundError:
            pass
        return tuple(sig)

    def _job_summary(self, job_id: str) -> Dict[str, object]:
        """The job's ``store.summary()``, cached by file signature.

        Re-parsing every job's full JSONL on each HTTP probe is
        O(total store lines) per poll — on a long-lived spool a status
        poller was costing more than the campaigns.  A summary only
        changes when a store file does, so the (path, size, mtime)
        signature decides staleness in a handful of ``stat`` calls.
        """
        if not os.path.isdir(self.job_dir(job_id)):
            return {}
        sig = self._store_signature(job_id)
        cached = self._summary_cache.get(job_id)
        if cached is not None and cached[0] == sig:
            self._summary_cache_hits += 1
            return cached[1]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            store = ResultStore(self.job_dir(job_id))
            try:
                summary = store.summary()
            finally:
                store.close()
        self._summary_cache[job_id] = (sig, summary)
        return summary

    def _job_entry(
        self, job_id: str, manifest: CampaignManifest
    ) -> Dict[str, object]:
        if job_id == self._active_job:
            state = "running"
        elif self.job_done(job_id):
            state = "done"
        else:
            state = "queued"
        summary = self._job_summary(job_id)
        return {
            "id": job_id,
            "name": manifest.name,
            "state": state,
            "shards": {
                "total": len(manifest.shards()),
                "done": summary.get("shards_done", 0),
            },
            "hunts": {
                "total": manifest.hunt_count(),
                "recorded": summary.get("hunts_recorded", 0),
                "detected": summary.get("hunts_detected", 0),
                "hung": summary.get("hunts_hung", 0),
            },
            "owners": summary.get("owners", {}),
            "dedup_buckets": summary.get("dedup_buckets", 0),
            "exit_code": self.stored_exit_code(job_id),
        }

    # -- maintenance ---------------------------------------------------

    def gc(
        self, *, min_age_seconds: float = 0.0, compact: bool = True
    ) -> Dict[str, object]:
        """Reclaim a long-lived root: drop finished jobs' spool entries,
        sweep ``.tmp`` litter, compact done shards.

        ``result.json``-aware by design: a spool manifest is removed
        only when its job's ``result.json`` exists (and is at least
        ``min_age_seconds`` old) — the job is finished and its result
        durable, so nothing is left for a serve loop to pick up.  An
        unfinished job's spool entry and store are never touched.
        """
        now = time.time()
        removed_spool: List[str] = []
        removed_tmp: List[str] = []
        compacted: Dict[str, Tuple[int, int]] = {}
        for job_id, _manifest in self.spooled():
            result = self.result_path(job_id)
            try:
                age = now - os.path.getmtime(result)
            except OSError:
                continue  # unfinished: keep the spool entry
            if age < min_age_seconds:
                continue
            if compact:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    store = ResultStore(self.job_dir(job_id))
                    try:
                        for shard_id, delta in store.compact().items():
                            compacted[shard_id] = delta
                    finally:
                        store.close()
            os.unlink(self._spool_path(job_id))
            removed_spool.append(job_id)
            self._summary_cache.pop(job_id, None)
        for base in (self.spool_dir, self.jobs_dir):
            for dirpath, _dirnames, filenames in os.walk(base):
                for name in filenames:
                    if name.endswith(".tmp"):
                        path = os.path.join(dirpath, name)
                        try:
                            os.unlink(path)
                        except OSError:
                            continue
                        removed_tmp.append(path)
        telemetry.count("service.gc_runs")
        return {
            "removed_spool": removed_spool,
            "removed_tmp": removed_tmp,
            "compacted_shards": len(compacted),
            "compacted_lines": {
                "before": sum(b for b, _ in compacted.values()),
                "after": sum(a for _, a in compacted.values()),
            },
        }
