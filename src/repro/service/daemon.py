"""The campaign service daemon: spool, serve loop, signals, status.

Layout under the service root::

    <root>/spool/<job_id>.manifest.json   # submissions, FIFO by mtime
    <root>/jobs/<job_id>/                 # one ResultStore per job
    <root>/jobs/<job_id>/result.json      # merged CampaignResult + exit code
    <root>/status.address                 # "host port" of the live endpoint

``submit`` writes the manifest into the spool atomically; because the
job id is a content digest, re-submitting the same manifest attaches to
the existing job instead of spending its budget twice.  ``serve`` drains
the spool oldest-first, runs each unfinished job through a
:class:`~repro.service.queue.JobRunner` (which persists every hunt as it
completes), and writes ``result.json`` when the job's merged result is
ready.  A job whose ``result.json`` already exists is never re-run — the
restart-after-SIGKILL path re-runs only hunts the store has no record
of, then merges.

Exit-code contract (``--once`` mode): the maximum campaign exit code
across all spooled jobs — 0 all bugs detected, 1 some undetected, 2 a
hunt hung or crashed — i.e. exactly what ``tsotool campaign`` would
have returned for the worst job.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.analysis.pool import ProgressFn
from repro.service.manifest import CampaignManifest
from repro.service.queue import JobRunner
from repro.service.status import StatusServer
from repro.service.store import ResultStore


@dataclass(frozen=True)
class ServiceConfig:
    """How a :class:`CampaignService` runs (root dir + knobs)."""

    #: Service root; spool, job stores and the address file live here.
    root: str
    #: Pool workers per job (``run_tasks`` semantics; 1 = inline).
    workers: int = 1
    #: Per-hunt timeout in seconds (requires ``workers >= 1`` pool mode).
    task_timeout: Optional[float] = None
    #: Spool re-scan interval while idle, seconds.
    poll_seconds: float = 0.5
    #: Status endpoint bind host.
    http_host: str = "127.0.0.1"
    #: Status endpoint port; 0 = OS-assigned, ``None`` = no endpoint.
    http_port: Optional[int] = 0
    #: Drain the spool once and exit instead of serving forever.
    once: bool = False


class CampaignService:
    """The daemon: accepts manifests, runs jobs, reports progress."""

    def __init__(
        self,
        config: ServiceConfig,
        *,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        self.config = config
        self.progress = progress
        self.spool_dir = os.path.join(config.root, "spool")
        self.jobs_dir = os.path.join(config.root, "jobs")
        os.makedirs(self.spool_dir, exist_ok=True)
        os.makedirs(self.jobs_dir, exist_ok=True)
        self._started = time.time()
        self._active_job: Optional[str] = None

    # -- paths ---------------------------------------------------------

    def _spool_path(self, job_id: str) -> str:
        return os.path.join(self.spool_dir, f"{job_id}.manifest.json")

    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, job_id)

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "result.json")

    @property
    def address_path(self) -> str:
        return os.path.join(self.config.root, "status.address")

    # -- submission ----------------------------------------------------

    def submit(self, manifest: CampaignManifest) -> str:
        """Spool a manifest; returns its job id.  Idempotent — the job
        id digests the manifest content, so a duplicate submission maps
        to the already-spooled job."""
        job_id = manifest.job_id
        path = self._spool_path(job_id)
        if not os.path.exists(path):
            tmp = path + ".tmp"
            with open(tmp, "w") as fh:
                fh.write(manifest.to_json() + "\n")
            os.replace(tmp, path)
            telemetry.count("service.submissions")
        return job_id

    def spooled(self) -> List[Tuple[str, CampaignManifest]]:
        """Spooled jobs, oldest submission first (FIFO by mtime)."""
        entries: List[Tuple[float, str, str]] = []
        for name in os.listdir(self.spool_dir):
            if not name.endswith(".manifest.json"):
                continue
            path = os.path.join(self.spool_dir, name)
            job_id = name[: -len(".manifest.json")]
            try:
                entries.append((os.path.getmtime(path), job_id, path))
            except FileNotFoundError:
                continue
        out: List[Tuple[str, CampaignManifest]] = []
        for _, job_id, path in sorted(entries):
            out.append((job_id, CampaignManifest.load(path)))
        return out

    # -- running -------------------------------------------------------

    def job_done(self, job_id: str) -> bool:
        return os.path.exists(self.result_path(job_id))

    def run_job(self, job_id: str, manifest: CampaignManifest) -> int:
        """Run (or resume) one job to completion; returns its exit code.

        Crash-safe by construction: hunts persist as they complete, and
        ``result.json`` is the last artifact written — its presence
        marks the job done, its absence means "resume from the store".
        """
        store = ResultStore(self.job_dir(job_id))
        try:
            runner = JobRunner(
                manifest,
                store,
                workers=self.config.workers,
                task_timeout=self.config.task_timeout,
                progress=self.progress,
            )
            self._active_job = job_id
            result = runner.run()
            code = result.exit_code()
            doc = {
                "v": 1,
                "job": job_id,
                "exit_code": code,
                "result": result.to_dict(),
            }
            tmp = self.result_path(job_id) + ".tmp"
            with open(tmp, "w") as fh:
                json.dump(doc, fh, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, self.result_path(job_id))
            return code
        finally:
            self._active_job = None
            store.close()

    def stored_exit_code(self, job_id: str) -> Optional[int]:
        """Exit code of a finished job, from its ``result.json``."""
        try:
            with open(self.result_path(job_id)) as fh:
                return int(json.load(fh)["exit_code"])
        except (OSError, ValueError, KeyError):
            return None

    def _drain(self) -> Optional[int]:
        """One spool pass; returns the worst exit code seen, or ``None``
        when the spool was empty."""
        worst: Optional[int] = None
        for job_id, manifest in self.spooled():
            if self.job_done(job_id):
                code = self.stored_exit_code(job_id)
            else:
                code = self.run_job(job_id, manifest)
            if code is not None:
                worst = code if worst is None else max(worst, code)
        return worst

    def serve(self) -> int:
        """The serve loop.  ``--once``: drain the spool and return the
        worst job exit code (0 for an empty spool).  Otherwise: serve
        until SIGINT/SIGTERM, then return 0 on clean shutdown."""
        self._install_signal_handlers()
        server: Optional[StatusServer] = None
        if self.config.http_port is not None:
            server = StatusServer(
                self.status,
                host=self.config.http_host,
                port=self.config.http_port,
            ).start()
            host, port = server.address
            tmp = self.address_path + ".tmp"
            with open(tmp, "w") as fh:
                fh.write(f"{host} {port}\n")
            os.replace(tmp, self.address_path)
            print(
                f"status endpoint: http://{host}:{port}/status "
                f"(also in {self.address_path})",
                file=sys.stderr,
            )
        try:
            if self.config.once:
                worst = self._drain()
                return 0 if worst is None else worst
            while True:
                try:
                    self._drain()
                    time.sleep(self.config.poll_seconds)
                except KeyboardInterrupt:
                    return 0
        finally:
            if server is not None:
                server.close()
            try:
                os.unlink(self.address_path)
            except OSError:
                pass

    def _install_signal_handlers(self) -> None:
        """SIGTERM behaves like SIGINT (clean shutdown) when we own the
        main thread; under a test harness's worker thread, skip."""
        if threading.current_thread() is not threading.main_thread():
            return
        def _terminate(signum: int, frame: object) -> None:
            raise KeyboardInterrupt
        signal.signal(signal.SIGTERM, _terminate)

    # -- status --------------------------------------------------------

    def status(self) -> Dict[str, object]:
        """The live status payload (served at ``GET /status``).

        Re-reads every job's store from disk so a poller sees hunts the
        moment their lines land, not when the job finishes.  Store-load
        warnings (a torn tail mid-campaign) are suppressed here — the
        *runner* owns reporting them; a status probe must stay silent.
        """
        jobs: List[Dict[str, object]] = []
        for job_id, manifest in self.spooled():
            jobs.append(self._job_entry(job_id, manifest))
        return {
            "v": 1,
            "service": {
                "root": self.config.root,
                "workers": self.config.workers,
                "pid": os.getpid(),
                "uptime_seconds": round(time.time() - self._started, 3),
                "active_job": self._active_job,
            },
            "jobs": jobs,
            "telemetry": telemetry.get_telemetry().snapshot(),
        }

    def _job_entry(
        self, job_id: str, manifest: CampaignManifest
    ) -> Dict[str, object]:
        if job_id == self._active_job:
            state = "running"
        elif self.job_done(job_id):
            state = "done"
        else:
            state = "queued"
        summary: Dict[str, object] = {}
        if os.path.isdir(self.job_dir(job_id)):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                store = ResultStore(self.job_dir(job_id))
                try:
                    summary = store.summary()
                finally:
                    store.close()
        return {
            "id": job_id,
            "name": manifest.name,
            "state": state,
            "shards": {
                "total": len(manifest.shards()),
                "done": summary.get("shards_done", 0),
            },
            "hunts": {
                "total": manifest.hunt_count(),
                "recorded": summary.get("hunts_recorded", 0),
                "detected": summary.get("hunts_detected", 0),
                "hung": summary.get("hunts_hung", 0),
            },
            "dedup_buckets": summary.get("dedup_buckets", 0),
            "exit_code": self.stored_exit_code(job_id),
        }
