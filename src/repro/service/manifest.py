"""The campaign manifest: what a service job runs, split into shards.

A manifest is the unit of submission — a JSON document describing a
whole campaign as the cross product *seeds × CPU configs* under one
generator / scheduler / engine / model setting.  It expands into
deterministic **shards**, one per (seed, CPU) pair: the shard id is a
digest of the manifest digest plus the pair, so the same manifest
always yields the same shard ids on any host — which is what makes the
result store resumable and (later) multi-host shardable.  Within a
shard, each seeded bug of the CPU's roster is one *hunt*, executed by
the exact :func:`repro.analysis.campaign.hunt_bug` a one-shot campaign
uses; seed derivation is unchanged, so a service job's hunts are
hunt-for-hunt identical to ``run_campaign`` with the same settings.

Format (``version`` 1)::

    {
      "version": 1,
      "name": "nightly-tso",
      "seeds": [2004, 2005],
      "cpus": ["CPU1", "CPU2"],          # omit/empty = all six
      "tests_per_bug": 10,
      "sched": {"kind": "random", "pct_depth": 3, "sweep_budget": 256},
      "engine": "vc",
      "model": "TSO",
      "generator": null                  # null = campaign default
    }
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.campaign import CampaignConfig
from repro.analysis.replay import generator_from_meta
from repro.core.api import DEFAULT_ENGINE, ENGINES
from repro.core.policy import PSO, SC, TSO, MemoryModel
from repro.generator.config import GeneratorConfig
from repro.sched.spec import SchedSpec
from repro.sim.cpus import CPU_CONFIGS, CpuConfig, cpu_by_name

MANIFEST_VERSION = 1

_MODELS: Dict[str, MemoryModel] = {"TSO": TSO, "SC": SC, "PSO": PSO}

#: Scheduler kinds a campaign hunt can instantiate per attempt (a sweep
#: must be reused across runs to make progress, so it does not fit the
#: per-attempt hunt loop — same restriction as ``tsotool campaign``).
_HUNT_SCHEDS = ("random", "pct")


def _canonical(data: object) -> str:
    """Canonical JSON for digesting: sorted keys, no whitespace."""
    return json.dumps(data, separators=(",", ":"), sort_keys=True)


@dataclass(frozen=True)
class Shard:
    """One deterministic unit of campaign work: a (seed, CPU) pair.

    ``shard_id`` is stable across hosts and restarts — it digests the
    manifest digest plus the pair, so a resumed or re-submitted job maps
    its persisted results back to exactly the same shards.
    """

    shard_id: str
    seed: int
    cpu: str
    #: Position in the manifest's shard expansion (seed-major order).
    index: int

    def hunt_count(self) -> int:
        """Number of seeded-bug hunts this shard contains."""
        return len(cpu_by_name(self.cpu).bugs)


@dataclass(frozen=True)
class CampaignManifest:
    """A validated campaign-service job description (see module doc)."""

    name: str
    seeds: Tuple[int, ...] = (2004,)
    cpus: Tuple[str, ...] = ()
    tests_per_bug: int = 10
    sched: SchedSpec = field(default_factory=SchedSpec)
    engine: str = DEFAULT_ENGINE
    model: str = "TSO"
    generator: Optional[GeneratorConfig] = None
    #: Hunts dispatched per pool task (see ``CampaignConfig.batch``).
    #: An execution-strategy knob: serialized with the manifest but
    #: excluded from its digest, so batched and unbatched submissions
    #: of the same campaign share one job id and one result store.
    batch: int = 1
    #: Overlap checking with simulation per attempt (see
    #: ``CampaignConfig.pipeline``).  Digest-excluded like ``batch``.
    pipeline: bool = False

    def __post_init__(self) -> None:
        if not self.name or not all(
            c.isalnum() or c in "-_." for c in self.name
        ):
            raise ValueError(
                f"manifest name {self.name!r} must be non-empty and use "
                "only letters, digits, '-', '_' and '.'"
            )
        if not self.seeds:
            raise ValueError("manifest needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError("manifest seeds must be unique (duplicate "
                             "seeds would collide on shard ids)")
        for cpu in self.cpus:
            try:
                cpu_by_name(cpu)
            except KeyError as exc:
                raise ValueError(str(exc)) from exc
        if self.tests_per_bug < 1:
            raise ValueError("tests_per_bug must be >= 1")
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.model not in _MODELS:
            raise ValueError(f"unknown memory model {self.model!r}")
        if self.sched.kind not in _HUNT_SCHEDS:
            raise ValueError(
                f"scheduler kind {self.sched.kind!r} does not fit "
                f"per-attempt hunts (allowed: {', '.join(_HUNT_SCHEDS)})"
            )
        if self.batch < 1:
            raise ValueError("batch must be >= 1")

    # -- identity ------------------------------------------------------

    def digest(self) -> str:
        """Content digest of the canonical JSON form (hex, full).

        Execution-strategy knobs (``batch``, ``pipeline``) are stripped
        before digesting: they change how hunts are dispatched, never
        which hunts run or what they record, so submissions differing
        only in those knobs attach to the same job.
        """
        doc = self.to_dict()
        doc.pop("batch", None)
        doc.pop("pipeline", None)
        return hashlib.sha256(_canonical(doc).encode("utf-8")).hexdigest()

    @property
    def job_id(self) -> str:
        """Stable job identity: ``<name>-<digest prefix>``.

        Submitting the same manifest twice yields the same job id, so a
        duplicate submission attaches to the existing job instead of
        re-spending its budget.
        """
        return f"{self.name}-{self.digest()[:12]}"

    # -- expansion -----------------------------------------------------

    def cpu_configs(self) -> List[CpuConfig]:
        """The resolved CPU rosters (empty ``cpus`` = all six)."""
        if not self.cpus:
            return list(CPU_CONFIGS)
        return [cpu_by_name(name) for name in self.cpus]

    def shards(self) -> List[Shard]:
        """Deterministic shard expansion, seed-major then CPU order."""
        digest = self.digest()
        out: List[Shard] = []
        for seed in self.seeds:
            for cpu in self.cpu_configs():
                payload = _canonical(
                    {"manifest": digest, "seed": seed, "cpu": cpu.name}
                )
                shard_id = hashlib.sha256(
                    payload.encode("utf-8")
                ).hexdigest()[:16]
                out.append(Shard(
                    shard_id=shard_id, seed=seed, cpu=cpu.name,
                    index=len(out),
                ))
        return out

    def shard_map(self) -> Dict[str, Shard]:
        """The shard expansion keyed by shard id — the lookup the lease
        and status layers use to resolve a store's per-shard records
        back to their (seed, CPU) identity."""
        return {shard.shard_id: shard for shard in self.shards()}

    def hunt_count(self) -> int:
        """Total hunts across all shards."""
        per_seed = sum(len(c.bugs) for c in self.cpu_configs())
        return per_seed * len(self.seeds)

    def campaign_config(self, seed: int) -> CampaignConfig:
        """The :class:`CampaignConfig` one shard's hunts run under.

        Field-for-field what ``run_campaign`` would use for the same
        settings, which is what keeps service hunts bitwise identical to
        one-shot campaign hunts.
        """
        kwargs: Dict[str, object] = dict(
            tests_per_bug=self.tests_per_bug,
            model=_MODELS[self.model],
            seed=seed,
            sched=self.sched,
            engine=self.engine,
            batch=self.batch,
            pipeline=self.pipeline,
        )
        if self.generator is not None:
            kwargs["generator"] = self.generator
        return CampaignConfig(**kwargs)  # type: ignore[arg-type]

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe v1 document (inverse: :meth:`from_dict`)."""
        return {
            "version": MANIFEST_VERSION,
            "name": self.name,
            "seeds": list(self.seeds),
            "cpus": list(self.cpus),
            "tests_per_bug": self.tests_per_bug,
            "sched": self.sched.to_dict(),
            "engine": self.engine,
            "model": self.model,
            "generator": (
                None if self.generator is None
                else dataclasses.asdict(self.generator)
            ),
            "batch": self.batch,
            "pipeline": self.pipeline,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignManifest":
        """Parse a v1 document; raises ``ValueError`` on bad content."""
        version = data.get("version", MANIFEST_VERSION)
        if version != MANIFEST_VERSION:
            raise ValueError(f"unsupported manifest version {version!r}")
        generator = data.get("generator")
        sched = data.get("sched") or {}
        return cls(
            name=str(data.get("name", "")),
            seeds=tuple(int(s) for s in data.get("seeds", ())),  # type: ignore[union-attr]
            cpus=tuple(str(c) for c in data.get("cpus", ())),  # type: ignore[union-attr]
            tests_per_bug=int(data.get("tests_per_bug", 10)),  # type: ignore[arg-type]
            sched=SchedSpec.from_dict(dict(sched)),  # type: ignore[arg-type]
            engine=str(data.get("engine", DEFAULT_ENGINE)),
            model=str(data.get("model", "TSO")),
            generator=(
                None if generator is None
                else generator_from_meta(dict(generator))  # type: ignore[arg-type]
            ),
            batch=int(data.get("batch", 1)),  # type: ignore[arg-type]
            pipeline=bool(data.get("pipeline", False)),
        )

    def to_json(self) -> str:
        """Canonical JSON (digest-stable)."""
        return _canonical(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "CampaignManifest":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "CampaignManifest":
        with open(path) as fh:
            return cls.from_json(fh.read())
