"""The persistent result store: append-only, crash-safe, resumable.

One store holds one job's results, as **JSONL-per-shard** under the job
directory::

    <job>/manifest.json             # the job's manifest document
    <job>/shards/<shard_id>.jsonl   # hunt + marker + lease lines
    <job>/buckets.jsonl             # failure-dedup bucket records

Every line is appended with a single ``write(2)`` on an ``O_APPEND``
descriptor (the :class:`repro.telemetry.sinks.JsonlSink` discipline), so
a ``SIGKILL`` can at worst tear the *trailing* line of a file; the
loader skips an undecodable line with a warning and the affected hunt is
simply re-run on resume.  Nothing is ever rewritten in place while a
job runs — a restarted daemon re-reads the store and resumes exactly at
the first unfinished shard, never re-spending budget on a recorded
hunt.  (The one rewrite is :meth:`ResultStore.compact_shard`, an atomic
whole-file replace of a *done* shard.)

Line kinds::

    {"v":1,"kind":"hunt","shard":id,"bug":name,"bug_index":i,
     "digest":<hunt digest>,"dedup":<failure digest or null>,
     "owner":<runner name or absent>,"ts":<append time or absent>,
     "hunt":{...BugHunt.to_dict()...}}
    {"v":1,"kind":"shard-done","shard":id,"hunts":n}
    {"v":1,"kind":"bucket","digest":d,"shard":id,"bug":name,
     "bug_index":i,"first":bool}
    {"v":1,"kind":"lease","op":"claim|renew|release","shard":id,
     "owner":o,"time":t,"expires":t2}

Replay rules (what makes N appenders safe):

* a later ``hunt`` line for the same bug index supersedes an earlier
  one — how a re-run hunt replaces a ``hung`` tombstone;
* a ``shard-done`` marker only counts when at least as many hunt
  records as its ``hunts`` field survive the reload — a marker that
  outlived a torn mid-file hunt line demotes the shard back to
  not-done instead of wedging every future resume (see
  :meth:`_finalize_shard`);
* ``lease`` lines replay through
  :func:`repro.service.lease.apply_lease_line` — append order
  arbitrates racing claims (see :mod:`repro.service.lease`).

**Failure dedup** (Bui et al.'s reads-from equivalence, applied at the
detection level): a detected hunt is keyed by :func:`failure_digest` —
a digest of its schedule trace (policy + every recorded choice), the
triage verdict string (which names the violation kind and witness
shape) and the fault mechanism/unit.  The first detection with a given
digest keeps its full schedule trace; behaviorally identical later
detections are *bucketed*: their hunt line stores ``schedule: null``
plus the digest, and :meth:`ResultStore.schedule_for` resolves the
canonical trace, so a fleet never re-triages the same failure twice.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro import telemetry
from repro.analysis.campaign import BugHunt
from repro.service.lease import Lease, apply_lease_line
from repro.service.manifest import CampaignManifest, Shard

STORE_VERSION = 1


def _canonical(data: object) -> str:
    return json.dumps(data, separators=(",", ":"), sort_keys=True)


def hunt_digest(hunt: BugHunt) -> str:
    """Stable identity+outcome digest of one hunt (schedule excluded).

    Excluding the schedule keeps the digest equal between a stored hunt
    whose duplicate schedule was bucketed away and the identical hunt of
    a from-scratch campaign — the property the resume tests assert by
    digest-set equality.  ``ops`` is excluded for the same reason: a
    pipelined hunt aborts violating runs early, so it simulates fewer
    ops than the conventional path on its way to the identical verdict.
    """
    doc = hunt.to_dict()
    doc.pop("schedule", None)
    doc.pop("ops", None)
    return hashlib.sha256(_canonical(doc).encode("utf-8")).hexdigest()[:16]


def failure_digest(hunt: BugHunt) -> Optional[str]:
    """Behavioral digest of a detection; ``None`` for undetected hunts.

    Keyed on (schedule trace, violation kind / witness shape via the
    triage verdict string, fault mechanism and unit): two detections
    that replayed the same choices into the same verdict are the same
    failure, whatever seed found them.
    """
    if not hunt.detected or hunt.schedule is None:
        return None
    doc = json.loads(hunt.schedule)
    meta = doc.get("meta") or {}
    fault = meta.get("fault") or {}
    payload = {
        "policy": doc.get("policy"),
        "choices": doc.get("choices", []),
        "via": hunt.via,
        "mechanism": fault.get("mechanism"),
        "unit": fault.get("unit"),
    }
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()[:16]


@dataclass
class _ShardState:
    """In-memory view of one shard's JSONL file."""

    hunts: Dict[int, BugHunt] = field(default_factory=dict)
    digests: Dict[int, str] = field(default_factory=dict)
    #: Per-index dedup bucket reference as stored on the hunt line
    #: (kept so compaction can rewrite lines byte-faithfully).
    dedup: Dict[int, Optional[str]] = field(default_factory=dict)
    done: bool = False
    #: ``hunts`` count of the last surviving shard-done marker.
    marker_hunts: Optional[int] = None
    #: Per-index recording metadata as stored on the hunt line: the
    #: runner that recorded it (``owner``) and the append timestamp
    #: (``ts``) — the per-owner throughput inputs, kept so compaction
    #: can rewrite lines byte-faithfully.
    meta: Dict[int, Dict[str, object]] = field(default_factory=dict)
    #: Replayed lease state (see repro.service.lease).
    lease: Optional[Lease] = None
    #: True once any lease line was seen — distinguishes a takeover of
    #: an expired lease from a first claim of a virgin shard.
    lease_seen: bool = False


@dataclass
class _Bucket:
    """One failure-dedup bucket: where the canonical trace lives."""

    shard_id: str
    bug_index: int
    count: int = 1


class ResultStore:
    """One job's persistent results (see module doc for the layout).

    ``requeue_hung`` (default True) makes resume treat a ``hung=True``
    record as a *tombstone*, not a completion: the shard is offered back
    to :meth:`pending` so a transient host stall cannot pin the job at
    exit code 2 across every future resume.  Pass False to keep
    tombstones final (the pre-fleet behavior).
    """

    def __init__(self, root: str, *, requeue_hung: bool = True) -> None:
        self.root = root
        self.requeue_hung = requeue_hung
        self.shards_dir = os.path.join(root, "shards")
        os.makedirs(self.shards_dir, exist_ok=True)
        self._shards: Dict[str, _ShardState] = {}
        self._buckets: Dict[str, _Bucket] = {}
        self._fds: Dict[str, int] = {}
        self._load()

    # -- paths and I/O -------------------------------------------------

    def _shard_path(self, shard_id: str) -> str:
        return os.path.join(self.shards_dir, f"{shard_id}.jsonl")

    @property
    def _buckets_path(self) -> str:
        return os.path.join(self.root, "buckets.jsonl")

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, "manifest.json")

    def _append(self, path: str, doc: Dict[str, object]) -> None:
        """One line, one ``write(2)``, ``O_APPEND`` — the crash-safety
        contract: a kill can tear only the trailing line."""
        fd = self._fds.get(path)
        if fd is None:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            self._fds[path] = fd
        doc.setdefault("v", STORE_VERSION)
        os.write(fd, (_canonical(doc) + "\n").encode("utf-8"))

    def _drop_fd(self, path: str) -> None:
        """Close a cached append descriptor (before an atomic replace —
        the old fd would keep appending to the unlinked inode)."""
        fd = self._fds.pop(path, None)
        if fd is not None:
            os.close(fd)

    def close(self) -> None:
        for fd in self._fds.values():
            os.close(fd)
        self._fds.clear()

    @staticmethod
    def _read_jsonl(path: str) -> Iterable[Dict[str, object]]:
        """Yield decodable lines; a truncated/corrupt line (a torn tail
        from a killed writer) is skipped with a warning, never fatal."""
        try:
            with open(path) as fh:
                for lineno, line in enumerate(fh, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        doc = json.loads(line)
                    except json.JSONDecodeError:
                        warnings.warn(
                            f"{path}:{lineno}: skipping corrupt store line "
                            "(torn append from a killed writer?); the "
                            "affected hunt will be re-run on resume",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        continue
                    if isinstance(doc, dict):
                        yield doc
        except FileNotFoundError:
            return

    # -- loading -------------------------------------------------------

    def _load(self) -> None:
        try:
            names = sorted(os.listdir(self.shards_dir))
        except FileNotFoundError:
            names = []
        for name in names:
            if not name.endswith(".jsonl"):
                continue
            self._load_shard(name[: -len(".jsonl")])
        self._load_buckets()

    def _load_shard(self, shard_id: str) -> _ShardState:
        """(Re-)read one shard file into a fresh in-memory state."""
        state = _ShardState()
        self._shards[shard_id] = state
        for doc in self._read_jsonl(self._shard_path(shard_id)):
            kind = doc.get("kind")
            if kind == "hunt":
                try:
                    hunt = BugHunt.from_dict(doc["hunt"])  # type: ignore[arg-type]
                    index = int(doc["bug_index"])  # type: ignore[arg-type]
                except (KeyError, TypeError, ValueError) as exc:
                    warnings.warn(
                        f"{self._shard_path(shard_id)}: undecodable "
                        f"hunt record ({exc}); it will be re-run",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                state.hunts[index] = hunt
                state.digests[index] = str(doc.get("digest", ""))
                dedup = doc.get("dedup")
                state.dedup[index] = None if dedup is None else str(dedup)
                meta: Dict[str, object] = {}
                if doc.get("owner") is not None:
                    meta["owner"] = str(doc["owner"])
                if doc.get("ts") is not None:
                    try:
                        meta["ts"] = float(doc["ts"])  # type: ignore[arg-type]
                    except (TypeError, ValueError):
                        pass
                state.meta[index] = meta
            elif kind == "shard-done":
                state.done = True
                try:
                    state.marker_hunts = int(doc.get("hunts"))  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    state.marker_hunts = None
            elif kind == "lease":
                state.lease = apply_lease_line(state.lease, doc)
                state.lease_seen = True
        self._finalize_shard(shard_id, state)
        return state

    def _finalize_shard(self, shard_id: str, state: _ShardState) -> None:
        """Validate the shard's done marker against what actually loaded.

        A ``shard-done`` marker records how many hunts existed when it
        was appended.  If fewer survive the reload — a mid-file line was
        torn or corrupted while the marker itself lived on — honoring
        the marker would wedge the job forever: ``pending()`` skips the
        shard while ``merged()`` raises on the missing hunt, on every
        resume.  Demote the shard to not-done so the missing hunts
        simply re-run.
        """
        if state.done and state.marker_hunts is not None:
            if len(state.hunts) < state.marker_hunts:
                warnings.warn(
                    f"{self._shard_path(shard_id)}: shard-done marker "
                    f"records {state.marker_hunts} hunt(s) but only "
                    f"{len(state.hunts)} loaded; demoting the shard to "
                    "not-done so the missing hunts re-run",
                    RuntimeWarning,
                    stacklevel=3,
                )
                state.done = False

    def _load_buckets(self) -> None:
        self._buckets.clear()
        for doc in self._read_jsonl(self._buckets_path):
            if doc.get("kind") != "bucket":
                continue
            digest = str(doc.get("digest", ""))
            bucket = self._buckets.get(digest)
            if bucket is None:
                self._buckets[digest] = _Bucket(
                    shard_id=str(doc.get("shard", "")),
                    bug_index=int(doc.get("bug_index", -1)),  # type: ignore[arg-type]
                )
            else:
                bucket.count += 1

    def refresh_shard(self, shard_id: str) -> None:
        """Re-read one shard's file, picking up peers' appended lines.

        With N daemons appending to the same store, the in-memory view
        goes stale the moment a peer writes; lease arbitration and
        takeover both re-read before deciding anything.
        """
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            self._load_shard(shard_id)

    def refresh(self) -> None:
        """Re-read every shard file and the bucket log from disk."""
        self._shards.clear()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            self._load()

    # -- manifest ------------------------------------------------------

    def save_manifest(self, manifest: CampaignManifest) -> None:
        """Persist the job's manifest (idempotent; atomic replace)."""
        tmp = self.manifest_path + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(manifest.to_json() + "\n")
        os.replace(tmp, self.manifest_path)

    def load_manifest(self) -> CampaignManifest:
        return CampaignManifest.load(self.manifest_path)

    # -- leases --------------------------------------------------------

    def append_lease(
        self, shard_id: str, op: str, owner: str, *,
        time: float, expires: float,
    ) -> None:
        """Append one lease line and fold it into the in-memory state."""
        doc = {
            "kind": "lease", "op": op, "shard": shard_id,
            "owner": owner, "time": time, "expires": expires,
        }
        self._append(self._shard_path(shard_id), dict(doc))
        state = self._shards.setdefault(shard_id, _ShardState())
        state.lease = apply_lease_line(state.lease, doc)
        state.lease_seen = True

    def lease_state(self, shard_id: str) -> Optional[Lease]:
        """The shard's replayed lease (may be expired; caller checks)."""
        state = self._shards.get(shard_id)
        return state.lease if state else None

    def lease_history(self, shard_id: str) -> bool:
        """True once any lease line was ever seen for the shard."""
        state = self._shards.get(shard_id)
        return bool(state and state.lease_seen)

    # -- recording -----------------------------------------------------

    def record_hunt(
        self, shard_id: str, bug_index: int, hunt: BugHunt,
        owner: Optional[str] = None,
    ) -> Tuple[str, Optional[str]]:
        """Append one completed hunt; returns ``(hunt digest, dedup)``.

        ``owner`` names the runner recording the hunt; it is stored on
        the hunt *line* (with an append timestamp) rather than in the
        hunt document, so it feeds per-owner throughput on the status
        endpoint without perturbing hunt digests.

        A detected hunt whose :func:`failure_digest` is already
        bucketed is stored *without* its schedule trace (``dedup``
        names the bucket instead) — the canonical trace stays with the
        bucket's first occurrence.

        Recording over an existing record is governed by what each side
        is:

        * identical digest (or a late ``hung`` tombstone for a hunt a
          peer already completed): **idempotent no-op** — the fleet's
          duplicate-delivery guard; returns the stored record's digest;
        * a real result over a ``hung`` tombstone: **supersedes** it
          (the tombstone marks a transient stall, not a completion);
        * anything else — two *different* real results for one (shard,
          bug) — is a scheduler bug and raises: the store never
          silently double-spends campaign budget.
        """
        state = self._shards.setdefault(shard_id, _ShardState())
        existing = state.hunts.get(bug_index)
        if existing is not None:
            if not (existing.hung and not hunt.hung):
                if hunt.hung or hunt_digest(hunt) == state.digests[bug_index]:
                    telemetry.count("service.duplicate_hunts")
                    return state.digests[bug_index], state.dedup.get(bug_index)
                raise ValueError(
                    f"hunt {bug_index} of shard {shard_id} is already "
                    "recorded with a different outcome; refusing to "
                    "re-record a completed hunt"
                )
            # A real result supersedes the hung tombstone: the later
            # line wins on replay, so a plain append is the rewrite.
            telemetry.count("service.hung_retried")
        digest = hunt_digest(hunt)
        dedup = failure_digest(hunt)
        stored = hunt
        if dedup is not None:
            bucket = self._buckets.get(dedup)
            if bucket is None:
                self._buckets[dedup] = _Bucket(
                    shard_id=shard_id, bug_index=bug_index
                )
            else:
                bucket.count += 1
                stored = BugHunt(
                    spec=hunt.spec, cpu=hunt.cpu, detected=hunt.detected,
                    tests_run=hunt.tests_run,
                    detected_on_seed=hunt.detected_on_seed,
                    via=hunt.via, hung=hunt.hung, schedule=None,
                    ops=hunt.ops,
                )
                telemetry.count("service.dedup_hits")
            self._append(self._buckets_path, {
                "kind": "bucket", "digest": dedup, "shard": shard_id,
                "bug": hunt.spec.name, "bug_index": bug_index,
                "first": stored is hunt,
            })
        meta: Dict[str, object] = {}
        line: Dict[str, object] = {
            "kind": "hunt", "shard": shard_id, "bug": hunt.spec.name,
            "bug_index": bug_index, "digest": digest,
            "dedup": None if stored is hunt else dedup,
            "hunt": stored.to_dict(),
        }
        if owner is not None:
            meta = {"owner": owner, "ts": time.time()}
            line.update(meta)
        self._append(self._shard_path(shard_id), line)
        state.hunts[bug_index] = stored
        state.digests[bug_index] = digest
        state.dedup[bug_index] = None if stored is hunt else dedup
        state.meta[bug_index] = meta
        telemetry.count("service.hunts")
        if hunt.detected:
            telemetry.count("service.detections")
        return digest, None if stored is hunt else dedup

    def mark_shard_done(self, shard_id: str) -> None:
        """Append the completion marker — the resume boundary."""
        state = self._shards.setdefault(shard_id, _ShardState())
        self._append(self._shard_path(shard_id), {
            "kind": "shard-done", "shard": shard_id,
            "hunts": len(state.hunts),
        })
        state.done = True
        state.marker_hunts = len(state.hunts)
        telemetry.count("service.shards_completed")

    # -- compaction ----------------------------------------------------

    def compact_shard(self, shard_id: str) -> Tuple[int, int]:
        """Rewrite a *done* shard's JSONL to its canonical record set.

        One hunt line per bug index (the replay winners, byte-faithful
        to what :meth:`record_hunt` stored — digests, dedup references
        and canonical schedule traces all survive), then one
        ``shard-done`` marker.  Superseded tombstones, duplicate
        markers and the whole lease history are dropped.  The rewrite
        is an atomic ``os.replace``; a crash leaves either the old file
        or the new one, never a mix.

        Returns ``(lines before, lines after)``.
        """
        state = self._shards.get(shard_id)
        if state is None or not state.done:
            raise ValueError(
                f"shard {shard_id} is not done; only completed shards "
                "compact (a live shard's file is the coordination medium)"
            )
        path = self._shard_path(shard_id)
        before = 0
        with open(path) as fh:
            for line in fh:
                if line.strip():
                    before += 1
        lines: List[str] = []
        for index in sorted(state.hunts):
            hunt = state.hunts[index]
            doc: Dict[str, object] = {
                "kind": "hunt", "shard": shard_id, "bug": hunt.spec.name,
                "bug_index": index, "digest": state.digests[index],
                "dedup": state.dedup.get(index),
                "hunt": hunt.to_dict(), "v": STORE_VERSION,
            }
            doc.update(state.meta.get(index, {}))
            lines.append(_canonical(doc))
        lines.append(_canonical({
            "kind": "shard-done", "shard": shard_id,
            "hunts": len(state.hunts), "v": STORE_VERSION,
        }))
        self._drop_fd(path)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            fh.write("\n".join(lines) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        state.lease = None
        state.lease_seen = False
        telemetry.count("service.shards_compacted")
        return before, len(lines)

    def compact(self) -> Dict[str, Tuple[int, int]]:
        """Compact every done shard; returns per-shard (before, after)."""
        out: Dict[str, Tuple[int, int]] = {}
        for shard_id in sorted(self._shards):
            if self._shards[shard_id].done:
                out[shard_id] = self.compact_shard(shard_id)
        return out

    # -- queries -------------------------------------------------------

    def completed_hunts(self, shard_id: str) -> Dict[int, BugHunt]:
        """Recorded hunts of one shard, keyed by bug index."""
        state = self._shards.get(shard_id)
        return dict(state.hunts) if state else {}

    def shard_done(self, shard_id: str) -> bool:
        """True once the shard's completion marker is on disk (and its
        record count backs it up — see :meth:`_finalize_shard`)."""
        state = self._shards.get(shard_id)
        return bool(state and state.done)

    def hunt_digests(self) -> Set[str]:
        """Every recorded hunt's digest — the resume-equality witness."""
        out: Set[str] = set()
        for state in self._shards.values():
            out.update(state.digests.values())
        return out

    def buckets(self) -> Dict[str, int]:
        """Failure-dedup bucket sizes, keyed by failure digest."""
        return {d: b.count for d, b in self._buckets.items()}

    def schedule_for(self, digest: str) -> Optional[str]:
        """The canonical schedule trace of a dedup bucket, if stored."""
        bucket = self._buckets.get(digest)
        if bucket is None:
            return None
        hunt = self._shards.get(bucket.shard_id, _ShardState()).hunts.get(
            bucket.bug_index
        )
        return None if hunt is None else hunt.schedule

    def pending(
        self, manifest: CampaignManifest
    ) -> List[Tuple[Shard, List[int]]]:
        """Work left to run: shards not conclusively done, with exactly
        the bug indices needing a run.

        A shard is conclusively done only when its marker is honored
        *and* its records cover the manifest's hunt count — a marker
        whose shard lost records (however it happened) never hides
        missing work.  With ``requeue_hung``, a ``hung`` tombstone
        counts as needing a run: it records a transient stall, not a
        completion.  Completed hunts of a torn shard are reused, never
        re-run.
        """
        out: List[Tuple[Shard, List[int]]] = []
        for shard in manifest.shards():
            recorded = self.completed_hunts(shard.shard_id)
            missing = [
                i for i in range(shard.hunt_count())
                if i not in recorded
                or (self.requeue_hung and recorded[i].hung)
            ]
            if self.shard_done(shard.shard_id) and not missing:
                continue
            out.append((shard, missing))
        return out

    def summary(self) -> Dict[str, object]:
        """JSON-safe progress summary (feeds the status endpoint).

        The ``owners`` map carries per-owner throughput alongside the
        live lease count: every hunt line a runner recorded contributes
        its hunt (and the hunt's ``ops``) to that owner, and the rates
        divide by the owner's recording span (first to last append
        timestamp; ``0.0`` until a second hunt lands).  Hunts recorded
        without an owner (pre-fleet stores, direct ``record_hunt``
        callers) simply don't appear here.
        """
        recorded = detected = hung = shards_done = 0
        per_shard: Dict[str, object] = {}
        owners: Dict[str, Dict[str, object]] = {}

        def owner_entry(name: str) -> Dict[str, object]:
            return owners.setdefault(name, {
                "active_shards": 0, "hunts": 0, "ops": 0,
                "hunts_per_s": 0.0, "ops_per_s": 0.0,
            })

        spans: Dict[str, Tuple[float, float]] = {}
        for shard_id in sorted(self._shards):
            state = self._shards[shard_id]
            n_det = sum(1 for h in state.hunts.values() if h.detected)
            n_hung = sum(1 for h in state.hunts.values() if h.hung)
            recorded += len(state.hunts)
            detected += n_det
            hung += n_hung
            shards_done += int(state.done)
            entry: Dict[str, object] = {
                "recorded": len(state.hunts),
                "detected": n_det,
                "hung": n_hung,
                "done": state.done,
            }
            if state.lease is not None and not state.done:
                entry["owner"] = state.lease.owner
                entry["lease_expires"] = state.lease.expires
                holder = owner_entry(state.lease.owner)
                holder["active_shards"] = int(holder["active_shards"]) + 1
            for index, hunt in state.hunts.items():
                meta = state.meta.get(index) or {}
                name = meta.get("owner")
                if name is None:
                    continue
                stats = owner_entry(str(name))
                stats["hunts"] = int(stats["hunts"]) + 1
                stats["ops"] = int(stats["ops"]) + hunt.ops
                ts = meta.get("ts")
                if isinstance(ts, float):
                    lo, hi = spans.get(str(name), (ts, ts))
                    spans[str(name)] = (min(lo, ts), max(hi, ts))
            per_shard[shard_id] = entry
        for name, (lo, hi) in spans.items():
            span = hi - lo
            if span > 0:
                stats = owners[name]
                stats["hunts_per_s"] = round(int(stats["hunts"]) / span, 3)
                stats["ops_per_s"] = round(int(stats["ops"]) / span, 3)
        return {
            "shards": per_shard,
            "shards_done": shards_done,
            "hunts_recorded": recorded,
            "hunts_detected": detected,
            "hunts_hung": hung,
            "owners": owners,
            "dedup_buckets": len(self._buckets),
            "dedup_hits": sum(
                b.count - 1 for b in self._buckets.values()
            ),
        }
