"""The shard scheduler: pending-work computation and pool dispatch.

A :class:`JobRunner` turns one manifest + store pair into pool work:
it asks the store which hunts are still unrecorded (whole shards, or
the tail of a shard torn by a crash), dispatches exactly those to
:func:`repro.analysis.pool.run_tasks` — the same worker pool, task
function and per-hunt seed derivation a one-shot ``run_campaign``
uses — and persists every hunt the moment it completes via the pool's
``on_result`` streaming callback.  A shard's completion marker is
appended as soon as its last hunt lands, so the crash-loss window is
only the hunts literally in flight; everything recorded before a
``SIGKILL`` is reused on resume.

The merged :class:`~repro.analysis.campaign.CampaignResult` is
assembled from the store in manifest shard order (seed-major, then CPU,
then bug index), which for a single-seed manifest is exactly
``run_campaign``'s hunt order — tables, detection rate and exit code
match a from-scratch campaign of the same settings.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.analysis.campaign import (
    BugHunt,
    CampaignConfig,
    CampaignResult,
    _hunt_task,
)
from repro.analysis.pool import PoolStats, ProgressFn, run_tasks
from repro.service.manifest import CampaignManifest, Shard
from repro.service.store import ResultStore
from repro.sim.cpus import BugSpec, cpu_by_name


class JobRunner:
    """Run (or resume) one job: manifest in, persisted hunts out."""

    def __init__(
        self,
        manifest: CampaignManifest,
        store: ResultStore,
        *,
        workers: int = 1,
        task_timeout: Optional[float] = None,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        self.manifest = manifest
        self.store = store
        self.workers = workers
        self.task_timeout = task_timeout
        self.progress = progress
        store.save_manifest(manifest)

    # -- scheduling ----------------------------------------------------

    def pending(self) -> List[Tuple[Shard, List[int]]]:
        """Shards still lacking a done marker, with their missing hunts."""
        return self.store.pending(self.manifest)

    def complete(self) -> bool:
        """True when every shard's completion marker is on disk."""
        return not self.pending()

    def run(self) -> CampaignResult:
        """Execute all pending hunts; return the merged job result.

        Safe to call on a fresh store (runs everything), a torn store
        (runs only what is missing) and a complete store (runs nothing
        and just merges).  A hunt whose worker hung is recorded as a
        ``hung=True`` hunt — exactly :func:`run_campaign`'s accounting —
        so the job still completes and reports exit code 2.
        """
        refs: List[Tuple[Shard, int]] = []
        tasks: List[Tuple[BugSpec, str, CampaignConfig, int]] = []
        labels: List[str] = []
        remaining: Dict[str, int] = {}
        for shard, missing in self.pending():
            remaining[shard.shard_id] = len(missing)
            if not missing:
                # Every hunt landed but the marker was torn away by a
                # crash: the shard just needs its marker re-appended.
                self.store.mark_shard_done(shard.shard_id)
                remaining.pop(shard.shard_id)
                continue
            config = self.manifest.campaign_config(shard.seed)
            bugs = cpu_by_name(shard.cpu).bugs
            for index in missing:
                refs.append((shard, index))
                tasks.append((bugs[index], shard.cpu, config, index))
                labels.append(f"{shard.shard_id[:8]}:{bugs[index].name}")

        def persist(task_index: int, hunt: BugHunt) -> None:
            shard, bug_index = refs[task_index]
            self.store.record_hunt(shard.shard_id, bug_index, hunt)
            remaining[shard.shard_id] -= 1
            if remaining[shard.shard_id] == 0:
                self.store.mark_shard_done(shard.shard_id)

        stats: Optional[PoolStats] = None
        if tasks:
            with telemetry.span(
                "service.job", job=self.manifest.job_id, hunts=len(tasks)
            ):
                results, stats = run_tasks(
                    _hunt_task,
                    tasks,
                    workers=self.workers,
                    task_timeout=self.task_timeout,
                    labels=labels,
                    progress=self.progress,
                    on_result=persist,
                )
            # Hung hunts never reach on_result; record them with the
            # campaign's hung accounting so the shard (and job) resolve.
            for task_index, value in enumerate(results):
                if value is not None:
                    continue
                shard, bug_index = refs[task_index]
                spec = tasks[task_index][0]
                persist(task_index, BugHunt(
                    spec=spec, cpu=shard.cpu, detected=False, tests_run=0,
                    via="worker crashed or timed out", hung=True,
                ))
        return self.merged(stats=stats)

    # -- merging -------------------------------------------------------

    def merged(self, stats: Optional[PoolStats] = None) -> CampaignResult:
        """Assemble the job's result from the store, in manifest order.

        Raises ``ValueError`` while hunts are still missing — a partial
        merge would silently understate the tables.  Timing fields
        reflect only the session that ran last (a resumed job's earlier
        sessions are gone with their processes); the tables, detection
        rate and exit code depend only on the persisted hunts.
        """
        hunts: List[BugHunt] = []
        for shard in self.manifest.shards():
            recorded = self.store.completed_hunts(shard.shard_id)
            for index in range(shard.hunt_count()):
                hunt = recorded.get(index)
                if hunt is None:
                    raise ValueError(
                        f"shard {shard.shard_id} hunt {index} is not "
                        "recorded yet; run() the job before merging"
                    )
                hunts.append(hunt)
        return CampaignResult(
            hunts=hunts,
            wall_seconds=stats.wall_seconds if stats else 0.0,
            cpu_seconds=stats.cpu_seconds if stats else 0.0,
            stats=stats,
            sched=self.manifest.sched.describe(),
        )
