"""The shard scheduler: lease-gated pending-work computation + dispatch.

A :class:`JobRunner` turns one manifest + store pair into pool work:
it asks the store which hunts are still unrecorded (whole shards, the
tail of a shard torn by a crash, or ``hung`` tombstones due a retry),
**claims** each shard through a :class:`~repro.service.lease.LeaseManager`
before touching it, dispatches exactly those hunts to
:func:`repro.analysis.pool.run_tasks` — the same worker pool, task
function and per-hunt seed derivation a one-shot ``run_campaign``
uses — and persists every hunt the moment it completes via the pool's
``on_result`` streaming callback.  A shard's completion marker is
appended as soon as its last hunt lands (after a from-disk ownership
re-check), so the crash-loss window is only the hunts literally in
flight; everything recorded before a ``SIGKILL`` is reused on resume.

The lease layer is what makes N runners on N hosts safe on one store:
each round a runner claims up to ``max(1, workers)`` unclaimed-or-
expired shards — so concurrent daemons naturally split a job — runs
them as one pool batch, and loops.  Shards a live peer holds are left
alone (the runner polls until they resolve or their lease expires);
because hunts are deterministic functions of (manifest, seed, bug) and
:meth:`~repro.service.store.ResultStore.record_hunt` is idempotent on
identical digests, even a stalled peer overlapping a takeover cannot
corrupt the store.

The merged :class:`~repro.analysis.campaign.CampaignResult` is
assembled from the store in manifest shard order (seed-major, then CPU,
then bug index), which for a single-seed manifest is exactly
``run_campaign``'s hunt order — tables, detection rate and exit code
match a from-scratch campaign of the same settings, whether one runner
drained the job or five.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from repro import telemetry
from repro.analysis.campaign import (
    BugHunt,
    CampaignConfig,
    CampaignResult,
    _hunt_batch_task,
    _hunt_task,
)
from repro.analysis.pool import PoolStats, ProgressFn, run_tasks
from repro.service.lease import DEFAULT_LEASE_SECONDS, LeaseManager
from repro.service.manifest import CampaignManifest, Shard
from repro.service.store import ResultStore
from repro.sim.cpus import BugSpec, cpu_by_name


def _merge_stats(
    total: Optional[PoolStats], batch: Optional[PoolStats]
) -> Optional[PoolStats]:
    """Fold one batch's PoolStats into the job's running total."""
    if batch is None:
        return total
    if total is None:
        return batch
    per_worker = dict(total.per_worker)
    for wid, count in batch.per_worker.items():
        per_worker[wid] = per_worker.get(wid, 0) + count
    return PoolStats(
        tasks=total.tasks + batch.tasks,
        completed=total.completed + batch.completed,
        hung=total.hung + batch.hung,
        retries=total.retries + batch.retries,
        respawns=total.respawns + batch.respawns,
        stale_results=total.stale_results + batch.stale_results,
        workers=max(total.workers, batch.workers),
        wall_seconds=total.wall_seconds + batch.wall_seconds,
        cpu_seconds=total.cpu_seconds + batch.cpu_seconds,
        per_worker=per_worker,
    )


class JobRunner:
    """Run (or resume) one job: manifest in, persisted hunts out.

    ``owner`` names this runner in the store's lease records (defaults
    to ``<hostname>-<pid>``); ``lease_seconds`` is how long a claim
    survives without a heartbeat renewal; ``poll_seconds`` is how often
    the runner re-checks shards a live peer currently holds.  ``batch``
    overrides the manifest's hunts-per-pool-task granularity (see
    :attr:`CampaignManifest.batch`); chunks never span shards, so
    claiming, completion markers and persisted records are unchanged —
    a batched drain is digest-identical to an unbatched one.
    """

    def __init__(
        self,
        manifest: CampaignManifest,
        store: ResultStore,
        *,
        workers: int = 1,
        task_timeout: Optional[float] = None,
        progress: Optional[ProgressFn] = None,
        owner: Optional[str] = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        poll_seconds: float = 0.2,
        batch: Optional[int] = None,
    ) -> None:
        self.manifest = manifest
        self.store = store
        self.workers = workers
        self.task_timeout = task_timeout
        self.batch = manifest.batch if batch is None else batch
        if self.batch < 1:
            raise ValueError("batch must be >= 1")
        self.progress = progress
        self.poll_seconds = poll_seconds
        self.lease = LeaseManager(
            store, owner, lease_seconds=lease_seconds
        )
        #: (shard_id, bug_index) pairs dispatched this session — the
        #: retry fuse: a hunt that hangs again after its in-session
        #: retry keeps its tombstone instead of looping forever.
        self._attempted: Set[Tuple[str, int]] = set()
        store.save_manifest(manifest)

    @property
    def owner(self) -> str:
        return self.lease.owner

    # -- scheduling ----------------------------------------------------

    def pending(self) -> List[Tuple[Shard, List[int]]]:
        """Shards not conclusively done, with their missing hunts."""
        return self.store.pending(self.manifest)

    def complete(self) -> bool:
        """True when every shard's completion marker is on disk."""
        return not self.pending()

    def _unresolved(self) -> List[Tuple[Shard, List[int]]]:
        """Pending work this session can still make progress on.

        A done shard whose only missing hunts are tombstones this
        session already retried is *resolved for this session*: the
        tombstone stands (exit code 2), and a future resume gets its
        own fresh retry.  Filtering these here is what terminates the
        claim loop on a permanently-hanging hunt.
        """
        out: List[Tuple[Shard, List[int]]] = []
        for shard, missing in self.pending():
            if (
                missing
                and self.store.shard_done(shard.shard_id)
                and all(
                    (shard.shard_id, i) in self._attempted for i in missing
                )
            ):
                continue
            out.append((shard, missing))
        return out

    def _finish_shard(self, shard_id: str) -> None:
        """Append the completion marker — after an ownership re-check.

        If our lease was taken over (we stalled past expiry and a peer
        claimed the shard), the peer owns completion now; appending our
        marker anyway could mark the shard done under the peer's feet
        with the peer's in-flight hunts unrecorded.
        """
        if self.lease.owns(shard_id):
            self.store.mark_shard_done(shard_id)
        else:
            telemetry.count("service.lease_lost")
        self.lease.release(shard_id)

    def run(self) -> CampaignResult:
        """Execute all pending hunts; return the merged job result.

        Safe to call on a fresh store (runs everything), a torn store
        (runs only what is missing), a complete store (runs nothing and
        just merges), and concurrently with other runners on other
        hosts (each claims disjoint shards; this call returns once
        every shard is done, whoever ran it).  A hunt whose worker hung
        is recorded as a ``hung=True`` tombstone — the session reports
        exit code 2, and the next resume retries it.
        """
        stats: Optional[PoolStats] = None
        with self.lease:
            while True:
                self.store.refresh()
                unresolved = self._unresolved()
                if not unresolved:
                    break
                claimed, contended = self._claim_round(unresolved)
                if not claimed:
                    if not contended:
                        # Nothing claimable and nobody holds a lease:
                        # re-read and re-decide (a peer just released,
                        # or a marker landed between refresh and claim).
                        continue
                    time.sleep(self.poll_seconds)
                    continue
                stats = _merge_stats(stats, self._run_batch(claimed))
            self.store.refresh()
        return self.merged(stats=stats)

    def _claim_round(
        self, unresolved: List[Tuple[Shard, List[int]]]
    ) -> Tuple[List[Tuple[Shard, List[int]]], bool]:
        """Claim up to ``max(1, workers)`` shards; returns (claimed,
        any-contended).  Marker-only shards (every hunt recorded, the
        marker itself torn away) are finished on the spot."""
        claimed: List[Tuple[Shard, List[int]]] = []
        contended = False
        for shard, missing in unresolved:
            if len(claimed) >= max(1, self.workers):
                break
            if not self.lease.claim(shard.shard_id):
                contended = True
                continue
            if not missing:
                self._finish_shard(shard.shard_id)
                continue
            todo = [
                i for i in missing
                if (shard.shard_id, i) not in self._attempted
            ]
            claimed.append((shard, todo or missing))
        return claimed, contended

    def _run_batch(
        self, claimed: List[Tuple[Shard, List[int]]]
    ) -> Optional[PoolStats]:
        """One pool batch over the claimed shards, persisting as hunts
        land and marking each shard done at its last hunt."""
        if self.batch > 1:
            return self._run_batch_chunked(claimed)
        refs: List[Tuple[Shard, int]] = []
        tasks: List[Tuple[BugSpec, str, CampaignConfig, int]] = []
        labels: List[str] = []
        remaining: Dict[str, int] = {}
        for shard, todo in claimed:
            remaining[shard.shard_id] = len(todo)
            config = self.manifest.campaign_config(shard.seed)
            bugs = cpu_by_name(shard.cpu).bugs
            for index in todo:
                self._attempted.add((shard.shard_id, index))
                refs.append((shard, index))
                tasks.append((bugs[index], shard.cpu, config, index))
                labels.append(f"{shard.shard_id[:8]}:{bugs[index].name}")
        if not tasks:
            return None

        def persist(task_index: int, hunt: BugHunt) -> None:
            shard, bug_index = refs[task_index]
            self.store.record_hunt(
                shard.shard_id, bug_index, hunt, owner=self.owner
            )
            remaining[shard.shard_id] -= 1
            if remaining[shard.shard_id] == 0:
                self._finish_shard(shard.shard_id)

        with telemetry.span(
            "service.job", job=self.manifest.job_id, hunts=len(tasks)
        ):
            results, stats = run_tasks(
                _hunt_task,
                tasks,
                workers=self.workers,
                task_timeout=self.task_timeout,
                labels=labels,
                progress=self.progress,
                on_result=persist,
            )
        # Hung hunts never reach on_result; record them as tombstones
        # (campaign-compatible hung accounting) so the shard resolves —
        # this session exits 2, the next resume retries them.
        for task_index, value in enumerate(results):
            if value is not None:
                continue
            shard, bug_index = refs[task_index]
            spec = tasks[task_index][0]
            persist(task_index, BugHunt(
                spec=spec, cpu=shard.cpu, detected=False, tests_run=0,
                via="worker crashed or timed out", hung=True,
            ))
        return stats

    def _run_batch_chunked(
        self, claimed: List[Tuple[Shard, List[int]]]
    ) -> Optional[PoolStats]:
        """The ``batch > 1`` dispatch path: each pool task carries up to
        ``batch`` hunts of one shard (chunks never span shards — every
        hunt in a chunk shares the shard's :class:`CampaignConfig`, and
        shard completion stays a per-shard countdown).  Hunts, records
        and markers match the unbatched path exactly; only the task
        round-trip count changes."""
        chunk_refs: List[List[Tuple[Shard, int]]] = []
        tasks: List[
            Tuple[List[Tuple[BugSpec, str, int]], CampaignConfig]
        ] = []
        labels: List[str] = []
        remaining: Dict[str, int] = {}
        for shard, todo in claimed:
            remaining[shard.shard_id] = len(todo)
            config = self.manifest.campaign_config(shard.seed)
            bugs = cpu_by_name(shard.cpu).bugs
            for start in range(0, len(todo), self.batch):
                chunk = todo[start : start + self.batch]
                for index in chunk:
                    self._attempted.add((shard.shard_id, index))
                chunk_refs.append([(shard, i) for i in chunk])
                tasks.append(
                    ([(bugs[i], shard.cpu, i) for i in chunk], config)
                )
                suffix = f" (+{len(chunk) - 1})" if len(chunk) > 1 else ""
                labels.append(
                    f"{shard.shard_id[:8]}:{bugs[chunk[0]].name}{suffix}"
                )
        if not tasks:
            return None

        def persist(task_index: int, hunts: List[BugHunt]) -> None:
            for (shard, bug_index), hunt in zip(
                chunk_refs[task_index], hunts
            ):
                self.store.record_hunt(
                    shard.shard_id, bug_index, hunt, owner=self.owner
                )
                remaining[shard.shard_id] -= 1
                if remaining[shard.shard_id] == 0:
                    self._finish_shard(shard.shard_id)

        total = sum(len(refs) for refs in chunk_refs)
        with telemetry.span(
            "service.job", job=self.manifest.job_id, hunts=total
        ):
            results, stats = run_tasks(
                _hunt_batch_task,
                tasks,
                workers=self.workers,
                task_timeout=self.task_timeout,
                labels=labels,
                progress=self.progress,
                on_result=persist,
            )
        # A hung chunk tombstones every member hunt — same accounting
        # as the unbatched path, applied chunk-wide.
        for task_index, value in enumerate(results):
            if value is not None:
                continue
            specs = tasks[task_index][0]
            persist(task_index, [
                BugHunt(
                    spec=spec, cpu=cpu_name, detected=False, tests_run=0,
                    via="worker crashed or timed out", hung=True,
                )
                for spec, cpu_name, _ in specs
            ])
        return stats

    # -- merging -------------------------------------------------------

    def merged(self, stats: Optional[PoolStats] = None) -> CampaignResult:
        """Assemble the job's result from the store, in manifest order.

        Raises ``ValueError`` while hunts are still missing — a partial
        merge would silently understate the tables.  Timing fields
        reflect only the session that ran last (a resumed job's earlier
        sessions are gone with their processes); the tables, detection
        rate and exit code depend only on the persisted hunts.
        """
        hunts: List[BugHunt] = []
        for shard in self.manifest.shards():
            recorded = self.store.completed_hunts(shard.shard_id)
            for index in range(shard.hunt_count()):
                hunt = recorded.get(index)
                if hunt is None:
                    raise ValueError(
                        f"shard {shard.shard_id} hunt {index} is not "
                        "recorded yet; run() the job before merging"
                    )
                hunts.append(hunt)
        return CampaignResult(
            hunts=hunts,
            wall_seconds=stats.wall_seconds if stats else 0.0,
            cpu_seconds=stats.cpu_seconds if stats else 0.0,
            stats=stats,
            sched=self.manifest.sched.describe(),
        )
