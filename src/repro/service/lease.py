"""Shard leases: N daemons on N hosts draining one job's store.

Shard ids are host-stable (they digest the manifest plus the (seed,
CPU) pair), so the only thing missing for a fleet is *mutual
exclusion*: which daemon runs which shard, and what happens when a
daemon dies mid-shard.  This module adds that as **lease records**
appended into the same per-shard JSONL the hunts live in — no
coordinator process, no extra files, the same single-``write(2)``
``O_APPEND`` crash-safety discipline as every other store line::

    {"v":1,"kind":"lease","op":"claim","shard":id,
     "owner":"host-pid","time":t,"expires":t+lease_seconds}
    {"v":1,"kind":"lease","op":"renew", ...}
    {"v":1,"kind":"lease","op":"release", ...}

**Arbitration is append order.**  ``O_APPEND`` serializes writers, so
when two daemons race to claim a shard both claim lines land, in some
order, and replaying the file decides the winner deterministically on
every host: a ``claim`` is granted only if the shard had no active
lease at the moment the line was written (no lease, same owner, or the
previous lease's ``expires`` is at or before the claim's ``time``);
a ``renew``/``release`` counts only when issued by the current holder.
A daemon claims by appending its line and then *re-reading the file*;
it owns the shard exactly when the replay says it does.

**Takeover** falls out of expiry: a SIGKILL'd daemon stops renewing,
its lease times out, and the next ``claim`` by a live peer is granted.
Completed work is never lost — the new holder re-reads the shard file
first, so it re-runs only the hunts the dead peer had not yet recorded
(and :meth:`ResultStore.record_hunt` is idempotent on identical hunt
digests, so even an overlap with a *stalled-but-alive* peer cannot
duplicate a store line).

Leases rely on the hosts' clocks agreeing to within a fraction of
``lease_seconds``; with the default 30 s that is ordinary NTP
territory.  Pick a ``lease_seconds`` comfortably larger than both the
worst-case hunt time for a shard's in-flight window and the cross-host
clock skew.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro import telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store -> lease)
    from repro.service.store import ResultStore

#: Default lease lifetime, seconds.  Renewed at a third of this.
DEFAULT_LEASE_SECONDS = 30.0


def default_owner() -> str:
    """A fleet-unique owner id: ``<hostname>-<pid>``."""
    return f"{socket.gethostname()}-{os.getpid()}"


@dataclass
class Lease:
    """The replayed lease state of one shard: who holds it, until when."""

    owner: str
    expires: float

    def expired(self, now: float) -> bool:
        return self.expires <= now


def apply_lease_line(
    lease: Optional[Lease], doc: Dict[str, object]
) -> Optional[Lease]:
    """Fold one ``kind: lease`` line into the replayed state.

    This is the arbitration rule (see module doc): every host replays
    the same file and therefore agrees on the holder.  Invalid lines —
    a losing claim, a renew/release by a non-holder — change nothing.
    """
    op = doc.get("op")
    owner = str(doc.get("owner", ""))
    expires = float(doc.get("expires", 0.0))  # type: ignore[arg-type]
    stamped = float(doc.get("time", 0.0))  # type: ignore[arg-type]
    if op == "claim":
        if lease is None or lease.owner == owner or lease.expired(stamped):
            return Lease(owner=owner, expires=expires)
        return lease
    if lease is None or lease.owner != owner:
        return lease
    if op == "renew":
        return Lease(owner=owner, expires=expires)
    if op == "release":
        return None
    return lease


class LeaseManager:
    """One daemon's view of a job's shard leases.

    Hands the :class:`~repro.service.queue.JobRunner` only shards that
    are unclaimed or expired, renews held leases from a heartbeat
    thread, and re-checks ownership (from disk) before a shard's
    completion marker is appended.
    """

    def __init__(
        self,
        store: "ResultStore",
        owner: Optional[str] = None,
        *,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        self.store = store
        self.owner = owner or default_owner()
        self.lease_seconds = lease_seconds
        self.clock = clock
        self._held: Set[str] = set()
        self._lock = threading.Lock()
        self._heartbeat: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- queries -------------------------------------------------------

    def held(self) -> List[str]:
        """Shards this manager believes it currently holds."""
        with self._lock:
            return sorted(self._held)

    def holder(self, shard_id: str, *, refresh: bool = True) -> Optional[Lease]:
        """The shard's active lease (refreshed from disk), if any."""
        if refresh:
            self.store.refresh_shard(shard_id)
        lease = self.store.lease_state(shard_id)
        if lease is None or lease.expired(self.clock()):
            return None
        return lease

    def owns(self, shard_id: str, *, refresh: bool = True) -> bool:
        """True when the on-disk replay says we hold an unexpired lease."""
        lease = self.holder(shard_id, refresh=refresh)
        return lease is not None and lease.owner == self.owner

    # -- lifecycle -----------------------------------------------------

    def claim(self, shard_id: str) -> bool:
        """Try to take the shard; True exactly when the replay grants it.

        Append-then-re-read: the claim line always lands, but ownership
        is whatever the file says afterwards — losing a race is a clean
        ``False``, never a partial state.
        """
        holder = self.holder(shard_id)
        if holder is not None and holder.owner != self.owner:
            return False
        now = self.clock()
        self.store.append_lease(
            shard_id, "claim", self.owner,
            time=now, expires=now + self.lease_seconds,
        )
        if not self.owns(shard_id):
            telemetry.count("service.lease_conflicts")
            return False
        with self._lock:
            self._held.add(shard_id)
        if holder is None and self.store.lease_history(shard_id):
            # Someone held this shard before us and it was not released:
            # an expiry takeover (the peer died or stalled past expiry).
            telemetry.count("service.lease_takeovers")
        telemetry.count("service.lease_claims")
        return True

    def renew_all(self) -> None:
        """Heartbeat body: extend every held lease.

        Blind appends — a renew by a non-holder is ignored on replay,
        so renewing a lease that was meanwhile taken over is harmless.
        """
        now = self.clock()
        for shard_id in self.held():
            self.store.append_lease(
                shard_id, "renew", self.owner,
                time=now, expires=now + self.lease_seconds,
            )
            telemetry.count("service.lease_renewals")

    def release(self, shard_id: str) -> None:
        """Give the shard up (done, or renouncing after a lost race)."""
        with self._lock:
            held = shard_id in self._held
            self._held.discard(shard_id)
        if held:
            now = self.clock()
            self.store.append_lease(
                shard_id, "release", self.owner,
                time=now, expires=now,
            )

    def release_all(self) -> None:
        for shard_id in self.held():
            self.release(shard_id)

    # -- heartbeat -----------------------------------------------------

    def start_heartbeat(self) -> None:
        """Renew held leases every ``lease_seconds / 3`` until stopped."""
        if self._heartbeat is not None:
            return
        self._stop.clear()
        interval = self.lease_seconds / 3.0

        def _beat() -> None:
            while not self._stop.wait(interval):
                self.renew_all()

        self._heartbeat = threading.Thread(
            target=_beat, name=f"tsotool-lease-{self.owner}", daemon=True
        )
        self._heartbeat.start()

    def stop_heartbeat(self) -> None:
        if self._heartbeat is None:
            return
        self._stop.set()
        self._heartbeat.join(timeout=5.0)
        self._heartbeat = None

    def __enter__(self) -> "LeaseManager":
        self.start_heartbeat()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop_heartbeat()
        self.release_all()
