"""Extra-observability checking (Sec. 3.2).

"In a simulation environment, TSOtool can optionally utilize the
additional observability provided by the environment."  The strongest
such signal is the *store commit order* — RTL simulation (and this
repository's simulator) can watch stores become globally visible.  Feeding
that order to the checker as extra edges removes precisely the
incompleteness the paper trades away: with all stores totally ordered,
the Order axiom needs no search, and the polynomial rules decide the
run outright.

Usage::

    machine = TsoMachine(program, seed=1)
    execution = machine.run()
    result = check_with_store_order(
        execution, machine.commit_order, initial=program.initial
    )

The Fig. 5 mirrored outcome — the paper's canonical polynomial-checker
miss — becomes detectable the moment the true store order is supplied
(``tests/core/test_observability.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.closure import ClosureChecker
from repro.core.policy import MemoryModel, TSO
from repro.core.result import CheckResult, EdgeReason
from repro.model.expansion import AnalysisProgram, expand
from repro.model.trace import Execution

#: One observed commit: the (word address, value) pair written.
CommitEvent = Tuple[int, int]


def store_order_edges(
    aprog: AnalysisProgram, commit_order: Sequence[CommitEvent]
) -> List[Tuple[int, int, EdgeReason]]:
    """Edges chaining stores in their observed global-visibility order.

    Events that do not correspond to a store node (e.g. fault-dropped
    writes replayed to memory) are ignored; consecutive observed stores
    are chained, which totally orders every store the trace knows about
    once roots (already ordered before everything at their address) are
    accounted for.
    """
    edges: List[Tuple[int, int, EdgeReason]] = []
    previous: Optional[int] = None
    for index, (addr, value) in enumerate(commit_order):
        node = aprog.map_value(addr, value)
        if node is None or aprog.ops[node].is_root:
            continue
        if previous is not None and previous != node:
            edges.append(
                (
                    previous,
                    node,
                    EdgeReason(
                        "obs",
                        f"commit #{index}: the environment observed "
                        f"{aprog.describe(previous)} become globally "
                        f"visible before {aprog.describe(node)}",
                    ),
                )
            )
        previous = node
    return edges


class ObservabilityChecker(ClosureChecker):
    """ClosureChecker seeded with environment-observed store order."""

    name = "closure+observability"

    def __init__(
        self,
        commit_order: Sequence[CommitEvent],
        model: MemoryModel = TSO,
    ) -> None:
        super().__init__(model)
        self.commit_order = list(commit_order)

    def _initial_edges(self, aprog):
        yield from super()._initial_edges(aprog)
        for u, v, reason in store_order_edges(aprog, self.commit_order):
            yield u, v, reason, "observed"


def check_with_store_order(
    execution: Execution,
    commit_order: Sequence[CommitEvent],
    initial: Optional[Dict[int, int]] = None,
    word_names: Optional[Dict[int, str]] = None,
    model: MemoryModel = TSO,
) -> CheckResult:
    """Check an execution with the observed store order as extra edges.

    Sound for any correct observation (the edges state facts about the
    run), and complete with respect to the Order axiom when the
    observation covers all stores: the paper's unordered-store searches
    never arise because no stores are left unordered.
    """
    aprog = expand(execution, initial=initial, word_names=word_names)
    checker = ObservabilityChecker(commit_order, model=model)
    return checker.run(aprog)
