"""The VSC-read → VTSO-read reduction (Sec. 4), executable.

The paper's NP-completeness argument: "every instance of a VSC-read
problem can be trivially mapped to an instance of the VTSO-read problem
by inserting memory barriers after every store which is succeeded by a
load in program order".  The only TSO relaxation is the store→load
reordering, and a membar after such a store removes it; what remains of
TSO is exactly SC.

:func:`vsc_to_vtso` performs that mapping on an execution trace, and
``tests/core/test_reduction.py`` verifies the reduction theorem
empirically: for any outcome, checking the original under SC and the
transformed trace under TSO produce the same verdict (hypothesis-tested
over random corrupted runs, and cross-checked against the complete
decision procedure on small cases).
"""

from __future__ import annotations

from typing import List

from repro.model.ops import IMembar
from repro.model.trace import DynRecord, Execution


def _has_store_half(rec: DynRecord) -> bool:
    return rec.stored is not None


def _has_load_half(rec: DynRecord) -> bool:
    return rec.loaded is not None


def vsc_to_vtso(execution: Execution) -> Execution:
    """Map an SC-checking instance to an equivalent TSO-checking instance.

    Inserts a full membar after every record with a store component that
    is succeeded, anywhere later on the same processor, by a record with
    a load component — the paper's construction verbatim.  The returned
    execution contains the same memory operations (checking it against
    TSO is equivalent to checking the original against SC), at the cost
    of at most one extra membar record per store.
    """
    transformed: List[List[DynRecord]] = []
    for proc in execution.records:
        # Which suffixes contain a load?  Scan once from the right.
        needs_fence = [False] * len(proc)
        load_later = False
        for idx in range(len(proc) - 1, -1, -1):
            needs_fence[idx] = load_later and _has_store_half(proc[idx])
            if _has_load_half(proc[idx]):
                load_later = True
        out: List[DynRecord] = []
        for idx, rec in enumerate(proc):
            out.append(rec)
            if needs_fence[idx]:
                out.append(DynRecord(instr=IMembar()))
        transformed.append(out)
    return Execution(records=transformed)


def fence_count(original: Execution, transformed: Execution) -> int:
    """How many membars the reduction inserted (size-overhead metric)."""
    return transformed.total_records() - original.total_records()
