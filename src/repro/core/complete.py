"""The exponential *complete* decision procedure (Order axiom included).

The polynomial algorithm of Fig. 2 is sound but incomplete: it never
enforces the **Order** axiom (the total order over all stores), because
doing so requires searching over orderings of writes left unordered at
the fixed point — "this search would make the runtime exponential in the
worst case" (Sec. 4).  This module implements exactly that search, for
use on *small* programs:

* as ground truth in tests (the polynomial checker must never flag an
  execution this procedure accepts — soundness — and any execution the
  polynomial checker flags must be rejected here too);
* to demonstrate the paper's Fig. 5 incompleteness example: the plain
  Fig. 5 outcome is legal, but its mirrored extension is a genuine TSO
  violation that the polynomial checker misses and this procedure
  catches (see ``tests/core/test_incompleteness.py``).

The procedure searches for a *witness linearization*: a topological
extension of the sound constraint set (static R1–R3 edges plus everything
the polynomial checker inferred — all sound, so pruning with them is
safe) in which every load reads exactly the value the Value axiom
dictates.  Store buffering is modelled by the Value axiom's own-store
term: when a load is placed while some program-order-earlier same-address
store of its processor is still unplaced, the load must return the
po-latest such store's value (the store is "in the buffer").  Atomic
groups are placed contiguously, which also enforces the Atomicity axiom.

The search memoizes on (placed-set, per-address last-writer) and gives up
beyond ``max_states`` expansions, reporting ``decided=False``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.closure import ClosureChecker, iter_bits
from repro.core.policy import MemoryModel, TSO
from repro.model.expansion import AnalysisProgram, NO_GROUP, OpKind


@dataclass
class CompleteResult:
    """Outcome of the complete decision procedure.

    Attributes:
        valid: True if a witness total order exists, False if provably
            none exists, ``None`` if the search budget was exhausted.
        decided: whether the search ran to completion.
        witness: a valid linearization of analysis-op ids (roots first)
            when ``valid`` is True.
        explored: number of search states expanded.
    """

    valid: Optional[bool]
    decided: bool
    witness: Optional[List[int]] = None
    explored: int = 0


def complete_check(
    aprog: AnalysisProgram,
    model: MemoryModel = TSO,
    max_states: int = 2_000_000,
) -> CompleteResult:
    """Decide (for small programs) whether an execution satisfies all axioms.

    Args:
        aprog: the expanded execution (see :func:`repro.model.expansion.expand`).
        model: memory-model policy for the program-order constraints.
        max_states: search budget; beyond it the result is undecided.

    Returns:
        A :class:`CompleteResult`; ``valid=False`` is a complete proof of
        violation, ``valid=True`` carries a witness order.
    """
    if aprog.precheck_failures:
        return CompleteResult(valid=False, decided=True)

    # Sound pruning constraints: everything the polynomial checker infers.
    violation, reach_to = _closure_constraints(aprog, model)
    if violation:
        # The polynomial checker is sound, so a flagged execution is
        # certainly invalid — no search needed.
        return CompleteResult(valid=False, decided=True)

    return _Search(aprog, reach_to, max_states).run()


def _closure_constraints(
    aprog: AnalysisProgram, model: MemoryModel
) -> Tuple[bool, List[int]]:
    """Run the polynomial checker; return (flagged, ancestor bitsets)."""
    result = ClosureChecker(model).run(aprog)
    if not result.ok:
        return True, []
    return False, _recompute_reach_to(aprog, model)


def _recompute_reach_to(aprog: AnalysisProgram, model: MemoryModel) -> List[int]:
    """Ancestor bitsets of the full (fixed-point) constraint graph.

    Runs the baseline rules to fixed point and returns, for each node,
    the bitset of nodes ordered before it (excluding itself).
    """
    from repro.core.checker import BaselineChecker, observed_edges
    from repro.core.graph import ConstraintGraph
    from repro.core.policy import static_edges
    from repro.core.result import CheckStats, EdgeReason

    checker = BaselineChecker(model)
    graph = ConstraintGraph(aprog)
    stats = CheckStats(nodes=aprog.n)
    for u, v, rule in static_edges(aprog, model):
        graph.add_edge(u, v, EdgeReason(rule))
    for u, v, reason, _rule in observed_edges(aprog):
        graph.add_edge(u, v, reason)
    checker._fixed_point(aprog, graph, stats)

    # Closure by DP over a topological order (graph is acyclic here).
    from repro.core.closure import topological_order

    order = topological_order(graph)
    assert order is not None, "acyclic by hypothesis (check passed)"
    reach_to = [0] * aprog.n
    for node in order:
        mask = 0
        for parent in graph.pred[node]:
            mask |= reach_to[parent] | (1 << parent)
        reach_to[node] = mask
    return reach_to


class _Search:
    """Backtracking search for a witness linearization."""

    def __init__(
        self, aprog: AnalysisProgram, reach_to: List[int], max_states: int
    ) -> None:
        self.aprog = aprog
        self.max_states = max_states
        self.explored = 0

        # Build super-nodes: atomic groups collapse to one unit.
        self.units: List[List[int]] = []
        unit_of: Dict[int, int] = {}
        roots: List[int] = []
        for op in aprog.ops:
            if op.is_root:
                roots.append(op.id)
                continue
            if op.group == NO_GROUP:
                unit_of[op.id] = len(self.units)
                self.units.append([op.id])
            else:
                members = aprog.groups[op.group]
                if members[0] == op.id:
                    for m in members:
                        unit_of[m] = len(self.units)
                    self.units.append(list(members))
        self.roots = roots

        # Per-unit ancestor masks in *unit* space.
        nunits = len(self.units)
        self.anc = [0] * nunits
        for uid, members in enumerate(self.units):
            mask = 0
            for m in members:
                mask |= reach_to[m]
            unit_mask = 0
            for node in iter_bits(mask):
                if aprog.ops[node].is_root:
                    continue
                other = unit_of[node]
                if other != uid:
                    unit_mask |= 1 << other
            self.anc[uid] = unit_mask

        # Program-order earlier same-address stores per load (for the
        # store-buffer term of the Value axiom), as op-id lists.
        self.po_stores: Dict[int, List[int]] = {}
        for stream in aprog.per_proc:
            per_addr: Dict[int, List[int]] = {}
            for op_id in stream:
                op = aprog.ops[op_id]
                if op.kind == OpKind.LOAD:
                    self.po_stores[op_id] = list(per_addr.get(op.addr, ()))
                elif op.kind == OpKind.STORE:
                    per_addr.setdefault(op.addr, []).append(op_id)

    def run(self) -> CompleteResult:
        aprog = self.aprog
        memory: Dict[int, int] = {
            aprog.ops[r].addr: aprog.ops[r].value for r in self.roots
        }
        placed_ops: Set[int] = set(self.roots)
        witness: List[int] = list(self.roots)
        failed: Set[Tuple[int, Tuple[Tuple[int, int], ...]]] = set()

        nunits = len(self.units)
        full = (1 << nunits) - 1

        def mem_key(mem: Dict[int, int]) -> Tuple[Tuple[int, int], ...]:
            return tuple(sorted(mem.items()))

        def dfs(placed_mask: int, mem: Dict[int, int]) -> Optional[bool]:
            if placed_mask == full:
                return True
            self.explored += 1
            if self.explored > self.max_states:
                return None
            key = (placed_mask, mem_key(mem))
            if key in failed:
                return False
            for uid in range(nunits):
                bit = 1 << uid
                if placed_mask & bit:
                    continue
                if self.anc[uid] & ~placed_mask:
                    continue  # an ancestor unit is still unplaced
                new_mem = self._try_place(uid, placed_ops, mem)
                if new_mem is None:
                    continue  # value mismatch; prune this candidate
                for m in self.units[uid]:
                    placed_ops.add(m)
                    witness.append(m)
                sub = dfs(placed_mask | bit, new_mem)
                if sub:
                    return True  # keep the witness list intact
                for m in self.units[uid]:
                    placed_ops.discard(m)
                    witness.pop()
                if sub is None:
                    return None
            failed.add(key)
            return False

        verdict = dfs(0, memory)
        if verdict is None:
            return CompleteResult(valid=None, decided=False, explored=self.explored)
        if verdict:
            return CompleteResult(
                valid=True, decided=True, witness=list(witness),
                explored=self.explored,
            )
        return CompleteResult(valid=False, decided=True, explored=self.explored)

    def _try_place(
        self, uid: int, placed_ops: Set[int], mem: Dict[int, int]
    ) -> Optional[Dict[int, int]]:
        """Simulate placing a unit; None if some load's value mismatches."""
        aprog = self.aprog
        new_mem = dict(mem)
        for op_id in self.units[uid]:
            op = aprog.ops[op_id]
            if op.kind == OpKind.MEMBAR:
                continue
            if op.kind == OpKind.STORE:
                new_mem[op.addr] = op.value
                continue
            # Load: Value axiom.  If a po-earlier same-address own store is
            # still unplaced, the load must see the po-latest such store
            # (it is "in the store buffer" and <=-after this load).
            pending = [
                s for s in self.po_stores.get(op_id, ())
                if s not in placed_ops and s not in self.units[uid]
            ]
            if pending:
                required = aprog.ops[pending[-1]].value
            else:
                required = new_mem.get(op.addr)
            if required != op.value:
                return None
        return new_mem
