"""Memory-model ordering policies and static (program-order) edges.

A :class:`MemoryModel` captures which program-order pairs must also hold
in the global memory order ``<=`` — the information behind the paper's
static rules R1–R3 (Sec. 4):

* R1 (LoadOp axiom):      ``L ; Op  =>  L <= Op``
* R2 (StoreStore axiom):  ``S ; S'  =>  S <= S'``
* R3 (Membar axiom):      ``Op1 ; M ; Op2  =>  Op1 <= Op2``

TSO relaxes only store→load; SC relaxes nothing; PSO additionally relaxes
store→store (the paper notes in Sec. 4 that "the only difference lies in
the initial set of edges determined from program order and the
application of the remaining rules remains the same" — this module is
that difference).

:func:`static_edges` walks each processor's op stream once, emitting edges
from the *latest* op of each kind, which suffices because transitivity
chains earlier same-kind ops through the latest one whenever same-kind
pairs are themselves ordered.  The one case where they are not — stores
under PSO — is handled by remembering every store since the last barrier
and draining the whole set into the barrier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.model.expansion import NO_GROUP, AnalysisProgram, OpKind


@dataclass(frozen=True)
class MemoryModel:
    """Which same-processor program-order pairs imply global order.

    Attributes:
        name: display name.
        load_load: ``L ; L'`` implies ``L <= L'``.
        load_store: ``L ; S`` implies ``L <= S``.
        store_store: ``S ; S'`` implies ``S <= S'``.
        store_load: ``S ; L`` implies ``S <= L`` (SC only).
        same_addr_store_store: same-address stores keep program order
            even when ``store_store`` is relaxed — true for SPARC PSO,
            whose relaxation never breaks per-location coherence.
    """

    name: str
    load_load: bool
    load_store: bool
    store_store: bool
    store_load: bool
    same_addr_store_store: bool = True

    def __str__(self) -> str:
        return self.name


#: Total Store Order: loads may overtake stores, nothing else reorders.
TSO = MemoryModel("TSO", load_load=True, load_store=True, store_store=True,
                  store_load=False)

#: Sequential Consistency: full program order is preserved.
SC = MemoryModel("SC", load_load=True, load_store=True, store_store=True,
                 store_load=True)

#: Partial Store Order: like TSO but stores may also reorder among themselves.
PSO = MemoryModel("PSO", load_load=True, load_store=True, store_store=False,
                  store_load=False)

#: Edge reasons for static edges, keyed by (pred kind, succ kind).
_RULE_NAMES = {
    (OpKind.LOAD, OpKind.LOAD): "R1",
    (OpKind.LOAD, OpKind.STORE): "R1",
    (OpKind.LOAD, OpKind.MEMBAR): "R1",
    (OpKind.STORE, OpKind.STORE): "R2",
    (OpKind.STORE, OpKind.LOAD): "R2",   # SC-only store->load program order
    (OpKind.STORE, OpKind.MEMBAR): "R3",
    (OpKind.MEMBAR, OpKind.LOAD): "R3",
    (OpKind.MEMBAR, OpKind.STORE): "R3",
    (OpKind.MEMBAR, OpKind.MEMBAR): "R3",
}

StaticEdge = Tuple[int, int, str]


def static_edges(aprog: AnalysisProgram, model: MemoryModel) -> Iterator[StaticEdge]:
    """Yield all static edges ``(src, dst, rule)`` required by ``model``.

    Includes, in addition to the R1–R3 program-order edges:

    * atomic-group internal chains (the load half of a swap precedes its
      store half — the Atomicity axiom's ``L <= S``),
    * initial-value edges: the synthetic root store of every address
      precedes every real store to that address.
    """
    yield from _program_order_edges(aprog, model)
    yield from _group_chain_edges(aprog)
    yield from _root_edges(aprog)


def _program_order_edges(
    aprog: AnalysisProgram, model: MemoryModel
) -> Iterator[StaticEdge]:
    for stream in aprog.per_proc:
        last_load = last_store = last_membar = None
        unordered_stores = []  # only populated when store_store is relaxed
        last_store_to_addr = {}  # ditto: per-location coherence edges
        for op_id in stream:
            op = aprog.ops[op_id]
            kind = op.kind
            if kind == OpKind.LOAD:
                if model.load_load and last_load is not None:
                    yield last_load, op_id, _RULE_NAMES[(OpKind.LOAD, kind)]
                if model.store_load and last_store is not None:
                    yield last_store, op_id, _RULE_NAMES[(OpKind.STORE, kind)]
                if last_membar is not None:
                    yield last_membar, op_id, _RULE_NAMES[(OpKind.MEMBAR, kind)]
                last_load = op_id
            elif kind == OpKind.STORE:
                if model.load_store and last_load is not None:
                    yield last_load, op_id, _RULE_NAMES[(OpKind.LOAD, kind)]
                if model.store_store and last_store is not None:
                    yield last_store, op_id, _RULE_NAMES[(OpKind.STORE, kind)]
                if last_membar is not None:
                    yield last_membar, op_id, _RULE_NAMES[(OpKind.MEMBAR, kind)]
                if not model.store_store:
                    unordered_stores.append(op_id)
                    if model.same_addr_store_store:
                        prev_same = last_store_to_addr.get(op.addr)
                        if prev_same is not None:
                            yield prev_same, op_id, "R2"
                        last_store_to_addr[op.addr] = op_id
                last_store = op_id
            else:  # MEMBAR orders everything before it against everything after
                if last_load is not None:
                    yield last_load, op_id, "R3"
                if model.store_store:
                    if last_store is not None:
                        yield last_store, op_id, "R3"
                else:
                    for store in unordered_stores:
                        yield store, op_id, "R3"
                    unordered_stores.clear()
                if last_membar is not None:
                    yield last_membar, op_id, "R3"
                last_membar = op_id


def _group_chain_edges(aprog: AnalysisProgram) -> Iterator[StaticEdge]:
    for members in aprog.groups.values():
        for prev, nxt in zip(members, members[1:]):
            yield prev, nxt, "atomic"


def _root_edges(aprog: AnalysisProgram) -> Iterator[StaticEdge]:
    for addr, stores in aprog.stores_by_addr.items():
        root = aprog.roots[addr]
        for store in stores:
            if store != root:
                yield root, store, "init"
