"""The production checker engine: bitset transitive closure.

Same rules as :class:`repro.core.checker.BaselineChecker` (R1–R7 of
Fig. 2), but reachability is kept as bitsets — ``reach_from[v]`` is the
set of nodes reachable from ``v`` and ``reach_to[v]`` the set that
reaches ``v``, both held as arbitrary-precision integers used as bit
vectors.  This buys three things:

* **R6/R7 become set intersections.**  "All same-address store
  predecessors of L" is ``reach_to[L] & stores_at[addr]`` — no graph
  traversal at all.  This is this reproduction's version of the paper's
  "optimizations to bound the predecessor and successor subgraph
  traversal when it is known that no new constraints can be added".
* **Cheap cycle detection.**  The closure is rebuilt by dynamic
  programming over a topological order once per fixed-point pass; a
  failed topological sort *is* the violation.
* **Implied-edge suppression.**  An edge already implied by the current
  closure is skipped in O(1), so each pass only pays for edges that add
  information.

Rebuilding the closure per pass — O(E·n/w) — is far cheaper at small
scale than maintaining full bitsets incrementally per edge (O(n²/w)
each), and the number of passes is small in practice (the paper's
fixed-point iterations).  At the paper's operating point the rebuilds
dominate, which is what :class:`repro.core.vc.VectorClockChecker`
removes with incremental per-chain frontiers; see ``docs/engines.md``.
``benchmarks/test_ablation_checkers.py`` measures this engine against
the literal Fig. 2 baseline.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.core.checker import observed_edges, precheck_violation
from repro.core.graph import ConstraintGraph, CycleDetected
from repro.core.policy import MemoryModel, TSO, static_edges
from repro.core.prep import iter_bits, prepare
from repro.core.result import (
    CheckResult,
    CheckStats,
    EdgeReason,
    Violation,
    ViolationKind,
)
from repro.model.expansion import AnalysisProgram


def topological_order(graph: ConstraintGraph) -> Optional[List[int]]:
    """Kahn's algorithm; ``None`` if the graph has a cycle."""
    indeg = [0] * graph.n
    for node in range(graph.n):
        for child in graph.succ[node]:
            indeg[child] += 1
    frontier = [node for node in range(graph.n) if indeg[node] == 0]
    order: List[int] = []
    while frontier:
        node = frontier.pop()
        order.append(node)
        for child in graph.succ[node]:
            indeg[child] -= 1
            if indeg[child] == 0:
                frontier.append(child)
    return order if len(order) == graph.n else None


def compute_closure(
    graph: ConstraintGraph, order: List[int]
) -> Tuple[List[int], List[int]]:
    """(reach_from, reach_to) bitsets (both including the node itself)."""
    n = graph.n
    reach_from = [0] * n
    reach_to = [0] * n
    for node in reversed(order):
        mask = 1 << node
        for child in graph.succ[node]:
            mask |= reach_from[child]
        reach_from[node] = mask
    for node in order:
        mask = 1 << node
        for parent in graph.pred[node]:
            mask |= reach_to[parent]
        reach_to[node] = mask
    return reach_from, reach_to


class ClosureChecker:
    """Fig. 2 with per-pass bitset transitive closure."""

    name = "closure"

    def __init__(self, model: MemoryModel = TSO, inferred_rules: bool = True) -> None:
        """Args:
            model: memory-model ordering policy.
            inferred_rules: apply the R6/R7 fixed point.  Disabling them
                (the DESIGN.md rule ablation) leaves only static + observed
                edges — faster, but blind to most cross-processor
                violations; measured in ``benchmarks/test_ablation_rules.py``.
        """
        self.model = model
        self.inferred_rules = inferred_rules

    def run(self, aprog: AnalysisProgram) -> CheckResult:
        """Check one analysis program; return the verdict with a witness."""
        start = time.perf_counter()
        stats = CheckStats(nodes=aprog.n)

        self._graph = None
        violation = precheck_violation(aprog)
        if violation is None:
            violation = self._analyze(aprog, stats)

        stats.seconds = time.perf_counter() - start
        telemetry.record_check(stats, self.name)
        return CheckResult(
            ok=violation is None,
            model_name=self.model.name,
            engine=self.name,
            violation=violation,
            stats=stats,
            aprog=aprog,
            graph=self._graph,
        )

    def _initial_edges(self, aprog: AnalysisProgram):
        """The phase-1 edge stream: (src, dst, reason, kind) tuples.

        ``kind`` is "static" or "observed" (statistics bucketing).
        Subclasses extend this to inject extra environment-supplied
        ordering facts.
        """
        for u, v, rule in static_edges(aprog, self.model):
            yield u, v, EdgeReason(rule, "program order"), "static"
        for u, v, reason, _rule in observed_edges(aprog):
            yield u, v, reason, "observed"

    # ------------------------------------------------------------------

    def _analyze(
        self, aprog: AnalysisProgram, stats: CheckStats
    ) -> Optional[Violation]:
        graph = ConstraintGraph(aprog)
        self._graph = graph

        # Phase 1: static + observed edges (subclasses may extend the
        # stream — e.g. environment-observed store order, Sec. 3.2).
        try:
            for u, v, reason, kind in self._initial_edges(aprog):
                if graph.add_edge(u, v, reason):
                    if kind == "static":
                        stats.static_edges += 1
                    else:
                        stats.observed_edges += 1
        except CycleDetected as exc:
            return self._violation(aprog, graph, exc)

        order = topological_order(graph)
        if order is None:
            return self._found_cycle(aprog, graph)
        if not self.inferred_rules:
            return None
        reach_from, reach_to = compute_closure(graph, order)
        stats.closure_rebuilds += 1

        stores_at: Dict[int, int] = {
            addr: sum(1 << s for s in stores)
            for addr, stores in aprog.stores_by_addr.items()
        }
        # Shared work lists (repro.core.prep): the atomic-group endpoints
        # they carry matter — pruning below must match the *redirected*
        # edge (incoming edges land on a group's first node, outgoing
        # leave from its last), or it would skip edges that still add
        # information.
        prep = prepare(aprog)
        loads, stores, group_first = prep.loads, prep.stores, prep.group_first

        # Phase 2: R6/R7 fixed point; rebuild the closure once per pass.
        while True:
            stats.iterations += 1
            added = 0
            try:
                for load, addr, target, target_first in loads:
                    candidates = (reach_to[load] & stores_at[addr]) & ~(
                        (1 << target) | reach_to[target_first]
                    )
                    for s_prime in iter_bits(candidates):
                        reason = EdgeReason(
                            "R6",
                            f"store n{s_prime} precedes load n{load}, which "
                            f"observed store n{target} (Value axiom)",
                        )
                        if graph.add_edge(s_prime, target, reason):
                            added += 1
                for store, addr, observers in stores:
                    candidates = reach_from[store] & stores_at[addr] & ~(1 << store)
                    for s_prime in iter_bits(candidates):
                        s_prime_first = group_first[s_prime]
                        for load, load_last in observers:
                            if (reach_from[load_last] >> s_prime_first) & 1:
                                continue  # redirected edge already implied
                            reason = EdgeReason(
                                "R7",
                                f"load n{load} observed store n{store}, which "
                                f"precedes store n{s_prime} (Value axiom)",
                            )
                            if graph.add_edge(load, s_prime, reason):
                                added += 1
            except CycleDetected as exc:
                return self._violation(aprog, graph, exc)
            if not added:
                return None
            stats.inferred_edges += added
            order = topological_order(graph)
            if order is None:
                return self._found_cycle(aprog, graph)
            reach_from, reach_to = compute_closure(graph, order)
            stats.closure_rebuilds += 1

    # ------------------------------------------------------------------

    def _found_cycle(
        self, aprog: AnalysisProgram, graph: ConstraintGraph
    ) -> Violation:
        cycle = graph.find_cycle()
        assert cycle is not None
        return self._cycle_violation(aprog, graph, cycle)

    def _violation(
        self, aprog: AnalysisProgram, graph: ConstraintGraph, exc: CycleDetected
    ) -> Violation:
        """Build a cycle witness from the edge that closed the cycle."""
        if exc.u == exc.v:
            cycle = [exc.u]
        else:
            cycle = graph.cycle_through_edge(exc.u, exc.v)
        return self._cycle_violation(aprog, graph, cycle)

    def _cycle_violation(
        self, aprog: AnalysisProgram, graph: ConstraintGraph, cycle: List[int]
    ) -> Violation:
        return Violation(
            kind=ViolationKind.CYCLE,
            message=(
                f"the inferred global memory order contains a cycle of "
                f"{len(cycle)} operation(s): "
                + " <= ".join(aprog.describe(n) for n in cycle)
                + f" <= {aprog.describe(cycle[0])}"
            ),
            cycle=cycle,
            reasons=graph.cycle_reasons(cycle),
        )
