"""The streaming online checker: check operations as the machine emits them.

TSOtool's pipeline (PAPER.md Sec. 2) is run-to-completion-then-check:
the simulator finishes, the whole :class:`~repro.model.trace.Execution`
is expanded, and only then does analysis start.  That caps soak-run
length twice over — the trace must fit in memory, and a violation in the
first minute is reported only after the last.  The vc engine
(:mod:`repro.core.vc`) removed the algorithmic obstacle: per-chain
frontier vectors plus Pearce–Kelly online topological reordering are
*already* incremental.  This module restructures them into a checker
that consumes one dynamic record at a time:

* a :class:`StreamSession` accepts ``feed(pid, record)`` calls (wired to
  the simulator through :class:`~repro.sim.machine.TsoMachine`'s
  ``observer`` hook — see :func:`stream_check_machine`), expands each
  record incrementally (:class:`~repro.model.expansion.StreamExpander`),
  and appends the resulting nodes and static/observed edges to the live
  :class:`~repro.core.graph.ConstraintGraph`;
* R6/R7 inference runs as a *dirty-set* fixed point: a work item re-runs
  only when something that can grow its candidate set changed (its
  frontier vector improved, an observer arrived, a same-address store
  was admitted).  Because the rules are monotone, draining the dirty set
  to quiescence reaches the same least fixed point as the batch engines'
  iterate-everything passes;
* a cycle is reported **at the op that closes it** — ``feed`` returns
  the violation the moment the closing edge is inserted, with the same
  cycle witness the batch engines produce — instead of at end of run.

**Frontier retirement** is what bounds live state (the windowed
verification idea of Bui et al., PAPERS.md).  Once a node is ``window``
admitted-ops old and no future R6/R7 candidate interval can be required
to reach back to it, its two O(k) frontier vectors are dropped:

* roots never retire (their initial value stays observable forever);
* the newest store to each address is pinned while it remains newest
  (its value is still observable); a superseded store retires only once
  its superseder is a full window old (a straggling load may still
  legally observe the old value until then);
* an unresolved load (no matching store fed yet) is pinned until it
  resolves, then gets a fresh window;
* everything else retires at window age.

Only the vectors are dropped.  The graph adjacency, edge reasons, chain
positions and topological order are kept, so cycle *detection* and the
witness stay exact across retired epochs — a violation whose closing
edge reaches back arbitrarily far is still caught and explained.  Where
inference would need a retired vector, the checker substitutes a
conservative bound (an unknown R6 interval floor widens to "everything";
an unknown R7 suppression check admits the edge).  Both substitutions
can only add edges the batch engines would also derive transitively, so
the engine stays sound: it never flags an execution the batch engines
pass.  What retirement *can* lose is multi-hop inference chains flowing
through dropped frontiers, so ``ok=True`` from a streamed run is
windowed verification — the same sound-but-incomplete contract as the
paper's algorithm, with the window as an extra knob.  With the default
window (larger than whole test runs) nothing retires and the verdict
matches the vc engine exactly; ``tests/test_properties.py`` enforces
that agreement.

Batch use (``--engine stream``) goes through :meth:`StreamingChecker.run`,
which replays a completed analysis program through the same incremental
core, record by record, after the usual up-front precheck — so verdict
*and* violation kind agree with the other engines.  A live session
differs in one documented way: it reports a cycle the moment it closes,
even if a later record would also have failed the unmapped-value
precheck.
"""

from __future__ import annotations

import heapq
import time
from bisect import bisect_left, bisect_right
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro import telemetry
from repro.core.checker import precheck_violation
from repro.core.graph import ConstraintGraph, CycleDetected
from repro.core.policy import MemoryModel, TSO
from repro.core.result import (
    CheckResult,
    CheckStats,
    EdgeReason,
    Violation,
    ViolationKind,
)
from repro.model.expansion import (
    NO_GROUP,
    AnalysisProgram,
    OpKind,
    StreamExpander,
)
from repro.model.trace import DynRecord

#: Default frontier-retirement window, in admitted analysis ops.  Far
#: larger than any agreement-suite run (so batch verdicts are exact),
#: far smaller than a soak run (so live state stays bounded).
DEFAULT_WINDOW = 4096

#: Frontier sentinel for "no position reachable" (the vc engine uses
#: ``n + 1``, but a stream does not know its final ``n``).
_INF = 1 << 60


class _ProcState:
    """Per-processor static-edge tracker, mirroring
    :func:`repro.core.policy._program_order_edges` incrementally."""

    __slots__ = (
        "last_load", "last_store", "last_membar",
        "unordered_stores", "last_store_to_addr", "prev_store_to_addr",
    )

    def __init__(self) -> None:
        self.last_load: Optional[int] = None
        self.last_store: Optional[int] = None
        self.last_membar: Optional[int] = None
        #: Stores since the last membar (store_store-relaxed models only).
        self.unordered_stores: List[int] = []
        #: Per-address last store (store_store-relaxed models only).
        self.last_store_to_addr: Dict[int, int] = {}
        #: Per-address last store under *any* model — the R5 ``S'``.
        self.prev_store_to_addr: Dict[int, int] = {}


class _StreamState:
    """The incremental checker core over a (possibly growing) program.

    Nodes must be admitted in id order; the expander guarantees that.
    ``settle()`` must be called at dynamic-record boundaries — atomic
    groups never span records, so by settle time every admitted group is
    complete and redirection endpoints are final.
    """

    def __init__(
        self,
        aprog: AnalysisProgram,
        model: MemoryModel,
        stats: CheckStats,
        window: int = DEFAULT_WINDOW,
        inferred_rules: bool = True,
    ) -> None:
        self.aprog = aprog
        self.model = model
        self.stats = stats
        self.window = max(1, int(window))
        self.inferred_rules = inferred_rules
        self._full_po = (
            model.load_load and model.load_store
            and model.store_store and model.store_load
        )
        if not self._full_po and not model.load_load:
            raise ValueError(
                "the stream engine needs a chain decomposition of bounded "
                "width known up front; models without load_load order are "
                "not supported (all shipped models have it)"
            )
        if not model.store_store and not model.same_addr_store_store:
            raise ValueError(
                "the stream engine does not support models relaxing "
                "same-address store order (all shipped models keep it)"
            )
        self.graph = ConstraintGraph(aprog)

        # --- chain decomposition, pre-allocated so k is fixed ---------
        addresses = sorted(aprog.roots)
        nprocs = aprog.nprocs
        self._chain_members: List[List[int]] = []
        self._root_chain: Dict[int, int] = {}
        for addr in addresses:
            self._root_chain[addr] = self._new_chain()
        self._po_chain = [self._new_chain() for _ in range(nprocs)] \
            if self._full_po else []
        self._nonstore_chain = [] if self._full_po else [
            self._new_chain() for _ in range(nprocs)
        ]
        self._store_chain: List[int] = []
        self._addr_store_chain: Dict[Tuple[int, int], int] = {}
        if not self._full_po:
            if model.store_store:
                self._store_chain = [self._new_chain() for _ in range(nprocs)]
            else:
                for pid in range(nprocs):
                    for addr in addresses:
                        self._addr_store_chain[(pid, addr)] = self._new_chain()
        self._k = len(self._chain_members)

        # --- per-node state (lists indexed by node id, grown on admit) -
        self._chain_of: List[int] = []
        self._pos_of: List[int] = []
        self._vec_to: List[Optional[List[int]]] = []
        self._vec_from: List[Optional[List[int]]] = []
        self._ord: List[int] = []
        self._admit_stamp: List[int] = []
        self._admitted = 0

        # --- rule bookkeeping -----------------------------------------
        self._procs: List[_ProcState] = [_ProcState() for _ in range(nprocs)]
        self._group_prev: Dict[int, int] = {}
        #: addr -> chain -> sorted store positions (the R6/R7 index).
        self._addr_stores: Dict[int, Dict[int, List[int]]] = {}
        #: (addr, value) -> loads awaiting their store.
        self._pending: Dict[Tuple[int, int], List[int]] = {}
        self._unresolved: Set[int] = set()
        #: R5 ``S'`` captured at admit time, per load.
        self._r5_prev: Dict[int, int] = {}
        #: R6 items: load -> [addr, target, target_first, per-chain
        #: [lo_floor, hi_seen] of the already-examined interval].  Edges
        #: are permanent and suppression only strengthens, so every
        #: (item, candidate) pair is examined at most once; a dirty item
        #: scans only the delta its trigger exposed.
        self._r6_items: Dict[int, List] = {}
        #: R7 items: store -> [addr, [(load, load_last), ...], count of
        #: fully-processed observers, per-chain [lo_seen, tail_idx] of
        #: the already-examined candidate region].
        self._r7_items: Dict[int, List] = {}
        self._r7_by_addr: Dict[int, Set[int]] = {}
        self._dirty_r6: Set[int] = set()
        self._dirty_r7: Set[int] = set()
        self._unsettled: List[int] = []

        # --- retirement -----------------------------------------------
        self._live = 0
        self._retire_q: Deque[int] = deque()
        self._delayed: List[Tuple[int, int]] = []  # (wake stamp, node) heap
        self._parked_pending: Set[int] = set()
        self._parked_last: Dict[int, int] = {}
        self._last_store: Dict[int, int] = {}
        self._superseded_at: Dict[int, int] = {}

        for addr in addresses:
            self._admit_root(aprog.roots[addr], addr)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def _new_chain(self) -> int:
        self._chain_members.append([])
        return len(self._chain_members) - 1

    def _grow_node(self, node: int, chain: int) -> None:
        """Append per-node state for ``node`` on ``chain``."""
        assert node == len(self._chain_of), "nodes must be admitted in id order"
        members = self._chain_members[chain]
        pos = len(members)
        members.append(node)
        self._chain_of.append(chain)
        self._pos_of.append(pos)
        vec_to = [-1] * self._k
        vec_to[chain] = pos
        vec_from = [_INF] * self._k
        vec_from[chain] = pos
        self._vec_to.append(vec_to)
        self._vec_from.append(vec_from)
        self._ord.append(len(self._ord))
        self._admitted += 1
        self._admit_stamp.append(self._admitted)
        self._live += 1
        if self._live > self.stats.live_peak:
            self.stats.live_peak = self._live

    def _admit_root(self, node: int, addr: int) -> None:
        self._grow_node(node, self._root_chain[addr])
        self._register_store_position(node, addr)
        self._last_store[addr] = node

    def _chain_for(self, op) -> int:
        if self._full_po:
            return self._po_chain[op.proc]
        if op.is_store:
            if self.model.store_store:
                return self._store_chain[op.proc]
            return self._addr_store_chain[(op.proc, op.addr)]
        return self._nonstore_chain[op.proc]

    def _register_store_position(self, node: int, addr: int) -> None:
        chain = self._chain_of[node]
        per_chain = self._addr_stores.setdefault(addr, {})
        per_chain.setdefault(chain, []).append(self._pos_of[node])

    def admit(self, op_id: int) -> None:
        """Admit one analysis op: node, static edges, retirement entry.

        Raises:
            CycleDetected: a static edge closed a cycle.
        """
        op = self.aprog.ops[op_id]
        if self.graph.n <= op_id:
            self.graph.grow()
        self._grow_node(op_id, self._chain_for(op))
        self._retire_q.append(op_id)
        static: List[Tuple[int, str]] = list(self._static_in_edges(op))
        if op.group != NO_GROUP:
            prev = self._group_prev.get(op.group)
            if prev is not None:
                static.append((prev, "atomic"))
            self._group_prev[op.group] = op_id
        if op.is_store:
            static.append((self.aprog.roots[op.addr], "init"))
            self._register_store_position(op_id, op.addr)
            self._note_new_store(op_id, op.addr)
        for u, rule in static:
            if self._add_edge(u, op_id, EdgeReason(rule, "program order")):
                self.stats.static_edges += 1
        self._unsettled.append(op_id)

    def _static_in_edges(self, op) -> List[Tuple[int, str]]:
        """R1–R3 in-edges for ``op``; mirrors
        :func:`repro.core.policy._program_order_edges` one op at a time."""
        model = self.model
        state = self._procs[op.proc]
        out: List[Tuple[int, str]] = []
        kind = op.kind
        if kind == OpKind.LOAD:
            if model.load_load and state.last_load is not None:
                out.append((state.last_load, "R1"))
            if model.store_load and state.last_store is not None:
                out.append((state.last_store, "R2"))
            if state.last_membar is not None:
                out.append((state.last_membar, "R3"))
            state.last_load = op.id
        elif kind == OpKind.STORE:
            if model.load_store and state.last_load is not None:
                out.append((state.last_load, "R1"))
            if model.store_store and state.last_store is not None:
                out.append((state.last_store, "R2"))
            if state.last_membar is not None:
                out.append((state.last_membar, "R3"))
            if not model.store_store:
                state.unordered_stores.append(op.id)
                if model.same_addr_store_store:
                    prev_same = state.last_store_to_addr.get(op.addr)
                    if prev_same is not None:
                        out.append((prev_same, "R2"))
                    state.last_store_to_addr[op.addr] = op.id
            state.last_store = op.id
        else:  # MEMBAR
            if state.last_load is not None:
                out.append((state.last_load, "R3"))
            if model.store_store:
                if state.last_store is not None:
                    out.append((state.last_store, "R3"))
            else:
                out.extend((store, "R3") for store in state.unordered_stores)
                state.unordered_stores.clear()
            if state.last_membar is not None:
                out.append((state.last_membar, "R3"))
            state.last_membar = op.id
        if kind == OpKind.LOAD:
            prev = state.prev_store_to_addr.get(op.addr)
            if prev is not None:
                self._r5_prev[op.id] = prev
        elif kind == OpKind.STORE:
            state.prev_store_to_addr[op.addr] = op.id
        return out

    def _note_new_store(self, store: int, addr: int) -> None:
        """Retirement + R7 bookkeeping for a newly admitted store."""
        prev = self._last_store.get(addr)
        self._last_store[addr] = store
        if prev is not None and not self.aprog.ops[prev].is_root:
            self._superseded_at[prev] = self._admitted
            if self._parked_last.get(addr) == prev:
                del self._parked_last[addr]
                heapq.heappush(
                    self._delayed, (self._admitted + self.window, prev)
                )
        # A new same-address store can extend any live R7 item's candidate
        # set without improving a frontier.  (R6 needs no such trigger:
        # the new chain position is larger than every existing vec_to
        # entry, so no current interval covers it.)  The append touches
        # exactly one chain, and the appended store is that chain's new
        # tail — so an item whose scan state for the chain is current
        # needs only a single targeted scan of the one new candidate
        # against its settled observers, not a re-examination of every
        # chain.  Items that never looked at this chain, or with older
        # appends still pending, fall back to the dirty set and the
        # general scan.
        live = self._r7_by_addr.get(addr)
        if not live:
            return
        c_new = self._chain_of[store]
        positions = self._addr_stores[addr][c_new]
        tail = len(positions)
        queries = 0
        for item_store in live:
            item = self._r7_items.get(item_store)
            if item is None or self._vec_from[item_store] is None:
                continue  # retired; the next settle's sweep drops it
            state = item[3].get(c_new)
            if state is None:
                self._dirty_r7.add(item_store)
            elif state[1] == tail - 1:
                state[1] = tail
                obs_done = item[2]
                if obs_done:
                    queries += self._scan_r7(
                        item_store, item[1][:obs_done], positions,
                        tail - 1, tail, c_new,
                    )
            else:
                self._dirty_r7.add(item_store)
        self.stats.vc_queries += queries

    # ------------------------------------------------------------------
    # Settling: value resolution + the dirty-set fixed point
    # ------------------------------------------------------------------

    def settle(self) -> None:
        """Resolve the ops admitted since the last record boundary, drain
        the R6/R7 dirty set to quiescence, then sweep retirement.

        Raises:
            CycleDetected: an observed or inferred edge closed a cycle.
        """
        unsettled, self._unsettled = self._unsettled, []
        admitted_limit = len(self._ord)
        for op_id in unsettled:
            op = self.aprog.ops[op_id]
            if op.is_load:
                key = (op.addr, op.value)
                target = self.aprog.value_map.get(key)
                if target is not None and target < admitted_limit:
                    self._resolve(op_id, target)
                else:
                    self._pending.setdefault(key, []).append(op_id)
                    self._unresolved.add(op_id)
            elif op.is_store:
                for load in self._pending.pop((op.addr, op.value), ()):
                    self._unresolved.discard(load)
                    if load in self._parked_pending:
                        # Give the late-resolving load a fresh window.
                        self._parked_pending.discard(load)
                        self._admit_stamp[load] = self._admitted
                        self._retire_q.append(load)
                    self._resolve(load, op_id)
        self._drain()
        self._retire_sweep()

    def _resolve(self, load: int, target: int) -> None:
        """A load's observed store is known: R4/R5 edges, R6/R7 items."""
        aprog = self.aprog
        op = aprog.ops[load]
        s_op = aprog.ops[target]
        same_proc_earlier = (
            s_op.proc == op.proc and not s_op.is_root and s_op.po < op.po
        )
        if not same_proc_earlier:
            reason = EdgeReason(
                "R4",
                f"{aprog.describe(load)} observed the value of "
                f"{aprog.describe(target)}, which is not an earlier store of "
                "the same processor, so the store must be globally visible "
                "before the load binds (Value axiom)",
            )
            if self._add_edge(target, load, reason):
                self.stats.observed_edges += 1
        s_prime = self._r5_prev.pop(load, None)
        if s_prime is not None and s_prime != target:
            reason = EdgeReason(
                "R5",
                f"{aprog.describe(load)} observed {aprog.describe(target)} "
                f"despite the program-order-earlier {aprog.describe(s_prime)}; "
                "by the Value axiom that earlier store must be globally "
                "ordered before the observed one",
            )
            if self._add_edge(s_prime, target, reason):
                self.stats.observed_edges += 1
        if not self.inferred_rules:
            return
        self._r6_items[load] = [op.addr, target, aprog.group_first(target), {}]
        self._dirty_r6.add(load)
        if self._vec_from[target] is not None:
            item = self._r7_items.setdefault(target, [op.addr, [], 0, {}])
            item[1].append((load, aprog.group_last(load)))
            self._r7_by_addr.setdefault(item[0], set()).add(target)
            self._dirty_r7.add(target)

    def _drain(self) -> None:
        """Run R6/R7 work items until the dirty set is empty.

        The rules are monotone, and every way a candidate set can grow
        re-dirties its item (frontier improvement, new observer, new
        same-address store), so quiescence here is the batch fixed point.
        """
        worked = False
        while self._dirty_r6 or self._dirty_r7:
            worked = True
            while self._dirty_r6:
                self._process_r6(self._dirty_r6.pop())
            while self._dirty_r7:
                self._process_r7(self._dirty_r7.pop())
        if worked:
            self.stats.iterations += 1

    def _process_r6(self, load: int) -> None:
        """R6: same-address store predecessors of the load precede its
        observed store.

        Only the candidate interval delta since the last run is scanned:
        ``hi`` (the load's frontier) grows monotonically and already
        examined candidates got their permanent edge, so the scan resumes
        at ``hi_seen``.  ``lo_floor`` is the highest value the target's
        frontier was ever seen at — candidates at or below it reach the
        target in the graph, so their edge is transitively implied
        forever; freezing the floor when the target's vector retires is
        therefore exact, not a fallback.
        """
        item = self._r6_items.get(load)
        if item is None:
            return
        addr, target, target_first, chain_state = item
        vt_load = self._vec_to[load]
        if vt_load is None:  # retired without its item being dropped
            del self._r6_items[load]
            return
        vt_target = self._vec_to[target_first]
        queries = 0
        for chain, positions in self._addr_stores.get(addr, {}).items():
            state = chain_state.get(chain)
            if state is None:
                state = chain_state[chain] = [-1, -1]
            if vt_target is not None and vt_target[chain] > state[0]:
                state[0] = vt_target[chain]
            hi = vt_load[chain]
            start = state[0] if state[0] > state[1] else state[1]
            if hi <= start:
                continue
            state[1] = hi
            members = self._chain_members[chain]
            span = positions[bisect_right(positions, start):
                             bisect_right(positions, hi)]
            queries += 1 + len(span)
            for pos in span:
                node = members[pos]
                if node == target:
                    continue
                reason = EdgeReason(
                    "R6",
                    f"store n{node} precedes load n{load}, which "
                    f"observed store n{target} (Value axiom)",
                )
                if self._add_edge(node, target, reason):
                    self.stats.inferred_edges += 1
        self.stats.vc_queries += queries

    def _process_r7(self, store: int) -> None:
        """R7: observers of a store precede its same-address store
        successors.

        Scans only what the dirtying trigger exposed: a frontier
        improvement opens candidates below the old ``lo_seen``, a newly
        admitted same-address store appends past ``tail_idx``, and a new
        observer must sweep the full current region once.  A pair that
        was suppressed stays suppressed (``vec_from`` only improves), so
        like R6 every (observer, candidate) pair is examined at most
        once.
        """
        item = self._r7_items.get(store)
        if item is None:
            return
        addr, observers, obs_done, chain_state = item
        vf = self._vec_from[store]
        if vf is None:
            self._drop_r7_item(store, addr)
            return
        new_obs = obs_done < len(observers)
        queries = 0
        for chain, positions in self._addr_stores.get(addr, {}).items():
            lo = vf[chain]
            if lo >= _INF:
                continue
            state = chain_state.get(chain)
            # Fast path: the frontier did not improve on this chain, no
            # store was appended to it, and there is no new observer —
            # nothing to scan, and no bisect needed to know that.
            if (state is not None and not new_obs
                    and lo >= state[0] and len(positions) == state[1]):
                continue
            start = bisect_left(positions, lo)
            if state is None:
                # First look at this chain: everything is new; the
                # new-observer sweep below covers it for all observers.
                chain_state[chain] = [lo, len(positions)]
                if obs_done:
                    queries += self._scan_r7(
                        store, observers[:obs_done], positions,
                        start, len(positions), chain,
                    )
            else:
                prev_start = bisect_left(positions, state[0])
                prev_tail = state[1]
                state[0] = min(state[0], lo)
                state[1] = len(positions)
                old = observers[:obs_done]
                if old:
                    if start < prev_start:  # frontier improved
                        queries += self._scan_r7(
                            store, old, positions, start, prev_start, chain,
                        )
                    if prev_tail < len(positions):  # stores appended
                        queries += self._scan_r7(
                            store, old, positions,
                            max(prev_tail, start), len(positions), chain,
                        )
            if obs_done < len(observers):  # new observers: full region
                queries += self._scan_r7(
                    store, observers[obs_done:], positions,
                    start, len(positions), chain,
                )
        item[2] = len(observers)
        self.stats.vc_queries += queries

    def _scan_r7(
        self,
        store: int,
        observers: List[Tuple[int, int]],
        positions: List[int],
        begin: int,
        end: int,
        chain: int,
    ) -> int:
        """Examine R7 pairs: ``observers`` x ``positions[begin:end]``."""
        aprog = self.aprog
        vec_from = self._vec_from
        members = self._chain_members[chain]
        queries = 0
        for pos in positions[begin:end]:
            s_prime = members[pos]
            if s_prime == store:
                continue
            s_prime_first = aprog.group_first(s_prime)
            sp_chain = self._chain_of[s_prime_first]
            sp_pos = self._pos_of[s_prime_first]
            queries += len(observers)
            for load, load_last in observers:
                vf_load = vec_from[load_last]
                # A retired observer frontier means the implied-edge
                # suppression test cannot run; adding the (true, possibly
                # redundant) edge is the sound fallback.
                if vf_load is not None and vf_load[sp_chain] <= sp_pos:
                    continue
                reason = EdgeReason(
                    "R7",
                    f"load n{load} observed store n{store}, which "
                    f"precedes store n{s_prime} (Value axiom)",
                )
                if self._add_edge(load, s_prime, reason):
                    self.stats.inferred_edges += 1
        return queries

    # ------------------------------------------------------------------
    # Incremental edge insertion (adapted from repro.core.vc)
    # ------------------------------------------------------------------

    def _add_edge(self, u: int, v: int, reason: EdgeReason) -> bool:
        """Insert ``u -> v``; keep order + frontiers current.

        Raises:
            CycleDetected: the redirected edge closes a cycle.
        """
        graph = self.graph
        u, v = graph.redirect(u, v)
        if u == v:
            raise CycleDetected(u, v)
        if graph.has_edge(u, v):
            return False
        self._reorder(u, v, reason)
        graph.add_edge(u, v, reason)
        self._push_forward(u, v)
        self._push_backward(u, v)
        return True

    def _reorder(self, u: int, v: int, reason: EdgeReason) -> None:
        """Pearce–Kelly local reordering for the insertion of ``u -> v``.

        Identical to the vc engine's: the forward search from ``v``
        reaching ``u`` *is* the cycle.  The order covers every node ever
        admitted — retirement drops vectors, never order indices — so
        detection stays exact across retired epochs.
        """
        ord_ = self._ord
        upper = ord_[u]
        if upper < ord_[v]:
            return
        graph = self.graph
        succ, pred = graph.succ, graph.pred
        lower = ord_[v]
        forward = {v}
        stack = [v]
        while stack:
            node = stack.pop()
            for child in succ[node]:
                if child == u:
                    # Path v ~> u exists: u -> v closes a cycle.  Record
                    # the edge so cycle_reasons can name its rule.
                    graph.add_edge(u, v, reason)
                    raise CycleDetected(u, v)
                if child not in forward and ord_[child] <= upper:
                    forward.add(child)
                    stack.append(child)
        backward = {u}
        stack = [u]
        while stack:
            node = stack.pop()
            for parent in pred[node]:
                if parent not in backward and ord_[parent] >= lower:
                    backward.add(parent)
                    stack.append(parent)
        self.stats.reorder_visits += len(forward) + len(backward)
        affected = sorted(backward, key=ord_.__getitem__)
        affected += sorted(forward, key=ord_.__getitem__)
        slots = sorted(ord_[node] for node in affected)
        for node, slot in zip(affected, slots):
            ord_[node] = slot

    def _push_forward(self, u: int, v: int) -> None:
        """Propagate ``u``'s backward frontier into ``v``'s descendants.

        Nodes whose vectors were retired are opaque to propagation: the
        delta stops there (their descendants keep whatever they had).
        An R6 item whose frontier improves goes back on the dirty set.
        """
        vec_to = self._vec_to
        succ = self.graph.succ
        source = vec_to[u]
        if source is None:
            return
        r6_items = self._r6_items
        dirty = self._dirty_r6
        entries = [(chain, pos) for chain, pos in enumerate(source) if pos >= 0]
        stack = [(v, entries)]
        while stack:
            node, candidate = stack.pop()
            vec = vec_to[node]
            if vec is None:
                continue
            improved = [
                (chain, pos) for chain, pos in candidate if pos > vec[chain]
            ]
            if not improved:
                continue
            for chain, pos in improved:
                vec[chain] = pos
            if node in r6_items:
                dirty.add(node)
            for child in succ[node]:
                stack.append((child, improved))

    def _push_backward(self, u: int, v: int) -> None:
        """Propagate ``v``'s forward frontier into ``u``'s ancestors."""
        vec_from = self._vec_from
        pred = self.graph.pred
        source = vec_from[v]
        if source is None:
            return
        r7_items = self._r7_items
        dirty = self._dirty_r7
        entries = [(chain, pos) for chain, pos in enumerate(source) if pos < _INF]
        stack = [(u, entries)]
        while stack:
            node, candidate = stack.pop()
            vec = vec_from[node]
            if vec is None:
                continue
            improved = [
                (chain, pos) for chain, pos in candidate if pos < vec[chain]
            ]
            if not improved:
                continue
            for chain, pos in improved:
                vec[chain] = pos
            if node in r7_items:
                dirty.add(node)
            for parent in pred[node]:
                stack.append((parent, improved))

    # ------------------------------------------------------------------
    # Retirement
    # ------------------------------------------------------------------

    def _retire_sweep(self) -> None:
        """Drop frontier vectors of every node past the window whose
        pin conditions have cleared."""
        admitted = self._admitted
        window = self.window
        q = self._retire_q
        stamp = self._admit_stamp
        while q and admitted - stamp[q[0]] >= window:
            self._classify(q.popleft(), admitted)
        while self._delayed and self._delayed[0][0] <= admitted:
            _, node = heapq.heappop(self._delayed)
            self._retire(node)

    def _classify(self, node: int, admitted: int) -> None:
        """Window-old node: retire it now, or park it on its pin."""
        op = self.aprog.ops[node]
        if op.is_load:
            if node in self._unresolved:
                self._parked_pending.add(node)  # re-queued on resolution
                return
            self._retire(node)
            return
        if op.is_store:
            addr = op.addr
            if self._last_store.get(addr) == node:
                # Newest store to its address: value still observable.
                self._parked_last[addr] = node
                return
            wake = self._superseded_at[node] + self.window
            if admitted >= wake:
                self._retire(node)
            else:
                heapq.heappush(self._delayed, (wake, node))
            return
        self._retire(node)  # membar

    def _retire(self, node: int) -> None:
        """Drop the node's vectors (graph, order and positions are kept)."""
        if self._vec_to[node] is None:
            return
        self._vec_to[node] = None
        self._vec_from[node] = None
        self._live -= 1
        self.stats.retired_nodes += 1
        self._superseded_at.pop(node, None)
        self._r6_items.pop(node, None)
        self._dirty_r6.discard(node)
        item = self._r7_items.get(node)
        if item is not None:
            self._drop_r7_item(node, item[0])

    def _drop_r7_item(self, store: int, addr: int) -> None:
        self._r7_items.pop(store, None)
        self._dirty_r7.discard(store)
        by_addr = self._r7_by_addr.get(addr)
        if by_addr is not None:
            by_addr.discard(store)

    # ------------------------------------------------------------------

    def flush_unresolved(self) -> None:
        """Record still-unresolved loads as unmapped-value precheck
        failures on the program (end-of-session bookkeeping)."""
        aprog = self.aprog
        for load in sorted(self._unresolved):
            op = aprog.ops[load]
            aprog.precheck_failures.append((
                "unmapped",
                f"{aprog.describe(load)}: value {op.value} was never "
                f"written to {aprog.name_of(op.addr)} (unmapped load value)",
            ))


def _cycle_violation(
    aprog: AnalysisProgram, graph: ConstraintGraph, exc: CycleDetected
) -> Violation:
    """The same cycle witness the batch engines build."""
    if exc.u == exc.v:
        cycle = [exc.u]
    else:
        cycle = graph.cycle_through_edge(exc.u, exc.v)
    return Violation(
        kind=ViolationKind.CYCLE,
        message=(
            f"the inferred global memory order contains a cycle of "
            f"{len(cycle)} operation(s): "
            + " <= ".join(aprog.describe(n) for n in cycle)
            + f" <= {aprog.describe(cycle[0])}"
        ),
        cycle=cycle,
        reasons=graph.cycle_reasons(cycle),
    )


class StreamSession:
    """One live checking session: feed dynamic records, get the verdict.

    Create via :meth:`StreamingChecker.open_session`.  ``feed`` returns
    the :class:`Violation` as soon as one exists — at the op that closes
    the cycle — and every later ``feed`` is a no-op returning the same
    violation.  ``finish`` runs the end-of-stream checks (unresolved
    loads, expansion failures) and returns the full
    :class:`CheckResult`.
    """

    def __init__(
        self,
        model: MemoryModel,
        addresses: Sequence[int],
        initial: Optional[Dict[int, int]] = None,
        word_names: Optional[Dict[int, str]] = None,
        nprocs: int = 0,
        window: int = DEFAULT_WINDOW,
        inferred_rules: bool = True,
    ) -> None:
        self.model = model
        self._start = time.perf_counter()
        self._expander = StreamExpander(
            addresses, initial=initial, word_names=word_names, nprocs=nprocs
        )
        self.aprog = self._expander.aprog
        self.stats = CheckStats()
        self._state = _StreamState(
            self.aprog, model, self.stats,
            window=window, inferred_rules=inferred_rules,
        )
        self._rec_counts: Dict[int, int] = {}
        self.violation: Optional[Violation] = None
        self._finished: Optional[CheckResult] = None

    def feed(
        self, pid: int, rec: DynRecord, rec_idx: Optional[int] = None
    ) -> Optional[Violation]:
        """Check one dynamic record; return the violation if one is known."""
        if self.violation is not None:
            return self.violation
        if rec_idx is None:
            rec_idx = self._rec_counts.get(pid, 0)
        self._rec_counts[pid] = rec_idx + 1
        new_ops = self._expander.feed(pid, rec_idx, rec)
        try:
            for op_id in new_ops:
                self._state.admit(op_id)
            self._state.settle()
        except CycleDetected as exc:
            self.violation = _cycle_violation(self.aprog, self._state.graph, exc)
        return self.violation

    def finish(self) -> CheckResult:
        """End the stream: final prechecks, stats, telemetry, result."""
        if self._finished is not None:
            return self._finished
        if self.violation is None:
            self._state.flush_unresolved()
            self.violation = precheck_violation(self.aprog)
        self.stats.nodes = self.aprog.n
        self.stats.seconds = time.perf_counter() - self._start
        telemetry.record_check(self.stats, StreamingChecker.name)
        self._finished = CheckResult(
            ok=self.violation is None,
            model_name=self.model.name,
            engine=StreamingChecker.name,
            violation=self.violation,
            stats=self.stats,
            aprog=self.aprog,
            graph=self._state.graph,
        )
        return self._finished


class StreamingChecker:
    """Fig. 2 as an online algorithm: bounded live state, early verdicts."""

    name = "stream"

    def __init__(
        self,
        model: MemoryModel = TSO,
        inferred_rules: bool = True,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        """Args:
            model: memory-model ordering policy.
            inferred_rules: apply the R6/R7 fixed point (the DESIGN.md
                rule ablation, as on the closure and vc engines).
            window: frontier-retirement window in admitted analysis ops;
                live checker state is O(window), verdicts are windowed
                (see the module docstring).
        """
        self.model = model
        self.inferred_rules = inferred_rules
        self.window = window

    def open_session(
        self,
        addresses: Sequence[int],
        initial: Optional[Dict[int, int]] = None,
        word_names: Optional[Dict[int, str]] = None,
        nprocs: int = 0,
        window: Optional[int] = None,
    ) -> StreamSession:
        """Open a live session fed record-by-record (the true streaming
        path; :meth:`run` is the batch shim over the same core)."""
        return StreamSession(
            self.model, addresses,
            initial=initial, word_names=word_names, nprocs=nprocs,
            window=self.window if window is None else window,
            inferred_rules=self.inferred_rules,
        )

    def run(self, aprog: AnalysisProgram) -> CheckResult:
        """Check a completed analysis program by replaying it through the
        incremental core, one dynamic record at a time.

        The up-front precheck runs first, exactly like the batch engines,
        so verdict *and* violation kind agree with them even on traces
        that contain both an unmapped value and a cycle.
        """
        start = time.perf_counter()
        stats = CheckStats(nodes=aprog.n)
        graph = None
        violation = precheck_violation(aprog)
        if violation is None:
            state = _StreamState(
                aprog, self.model, stats,
                window=self.window, inferred_rules=self.inferred_rules,
            )
            graph = state.graph
            try:
                current_rec: Optional[Tuple[int, object]] = None
                for op in aprog.ops:
                    if op.is_root:
                        continue
                    key = (op.proc, op.origin)
                    if current_rec is not None and key != current_rec:
                        state.settle()
                    current_rec = key
                    state.admit(op.id)
                state.settle()
            except CycleDetected as exc:
                violation = _cycle_violation(aprog, graph, exc)
        stats.seconds = time.perf_counter() - start
        telemetry.record_check(stats, self.name)
        return CheckResult(
            ok=violation is None,
            model_name=self.model.name,
            engine=self.name,
            violation=violation,
            stats=stats,
            aprog=aprog,
            graph=graph,
        )


class StreamViolationStop(Exception):
    """Raised out of the machine's observer to abort a doomed run early."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(violation.message)
        self.violation = violation


def stream_check_machine(
    machine,
    model: MemoryModel = TSO,
    window: int = DEFAULT_WINDOW,
    stop_on_violation: bool = False,
    on_record: Optional[Callable[[int, int], None]] = None,
):
    """Run a :class:`~repro.sim.machine.TsoMachine`, checking its observed
    records *as they are emitted* — simulation and analysis pipelined.

    Args:
        machine: a constructed, not-yet-run machine.  Its ``observer``
            hook must be free (this function installs one).
        model: memory model to check against.
        window: frontier-retirement window (see :data:`DEFAULT_WINDOW`).
        stop_on_violation: abort the simulation the moment a cycle
            closes, instead of running the program to completion; the
            returned execution is then ``None`` (partial run).
        on_record: optional ``(pid, rec_idx)`` progress callback, invoked
            after each record is checked.

    Returns:
        ``(result, execution)`` — the :class:`CheckResult` and the full
        observed :class:`~repro.model.trace.Execution` (``None`` when the
        run was aborted early).
    """
    program = machine.program
    session = StreamingChecker(model, window=window).open_session(
        addresses=machine.shared_words,
        initial=program.initial,
        word_names=program.word_names,
        nprocs=len(machine.cpus),
    )

    def observer(pid: int, rec_idx: int, rec: DynRecord) -> None:
        violation = session.feed(pid, rec, rec_idx)
        if on_record is not None:
            on_record(pid, rec_idx)
        if violation is not None and stop_on_violation:
            raise StreamViolationStop(violation)

    machine.observer = observer
    try:
        execution = machine.run()
    except StreamViolationStop:
        execution = None
    finally:
        machine.observer = None
    return session.finish(), execution
