"""Reusable checker scratch state for batched multi-seed runs.

Campaign throughput at small program sizes is dominated by per-check
fixed costs, and the largest single one in the kernel engines is
allocating the two ``(n, k)`` int64 frontier matrices for every seed.
A :class:`CheckContext` owns those buffers across checker instances:
``frontier_pair`` hands out correctly-shaped views of one growable flat
buffer per matrix, and :func:`repro.core.kernels.build_frontiers` wipes
them with a constant fill instead of allocating.  Between the seeds of
a batch the buffers are *reused, never trusted* — every value is
rewritten by the closure DP before the fixed point reads it, which is
what the cross-engine fresh-vs-reused parity suite asserts.

A context is deliberately engine-agnostic: :func:`repro.core.api.make_checker`
attaches one to any engine (``checker.context``), and engines that have
no reusable state simply ignore it — so the same reuse-parity test runs
every engine twice on one context without special cases.

Contexts are single-threaded scratch, like the checkers themselves: one
per pool worker (or per batch), never shared across processes.
"""

from __future__ import annotations

from typing import Optional, Tuple

try:  # pragma: no cover - exercised via the no-numpy fallback test
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False


class CheckContext:
    """Growable scratch buffers shared by consecutive checker runs.

    Attributes:
        checks: checker instantiations that carried this context.
        reuses: ``frontier_pair`` calls served from an existing buffer
            (0 allocations) — the state-reuse win, visible to tests.
        allocations: buffer (re-)allocations performed (growth included).
    """

    def __init__(self) -> None:
        self._flat_to = None
        self._flat_from = None
        self.checks = 0
        self.reuses = 0
        self.allocations = 0

    def frontier_pair(self, n: int, k: int) -> Optional[Tuple["np.ndarray", "np.ndarray"]]:
        """Borrow ``(m_to, m_from)`` as contiguous ``(n, k)`` int64 views.

        Returns ``None`` without numpy (callers fall back to their
        scalar path).  Contents are arbitrary — the caller must fill
        them (``build_frontiers`` does).  Capacity grows geometrically
        so a batch of slightly varying program sizes settles into zero
        allocations after the first few seeds.
        """
        if not HAVE_NUMPY:
            return None
        need = n * k
        if self._flat_to is None or self._flat_to.size < need:
            capacity = max(need, need + need // 4)
            self._flat_to = np.empty(capacity, dtype=np.int64)
            self._flat_from = np.empty(capacity, dtype=np.int64)
            self.allocations += 1
        else:
            self.reuses += 1
        return (
            self._flat_to[:need].reshape(n, k),
            self._flat_from[:need].reshape(n, k),
        )
