"""The kernel-accelerated checker engine (``--engine vck``).

Sixth implementation of the Fig. 2 rules: the vc engine's algorithm —
chain frontiers, Pearce–Kelly online cycle detection — re-expressed
over the batched compute layer in :mod:`repro.core.kernels`.  The
candidate semantics and witness format are identical to
:class:`VectorClockChecker` (this class inherits its edge insertion,
reordering, and violation paths); what changes is how the hot loops
execute:

* **Frontier state is two ``(n, k)`` numpy matrices** (``m_to``:
  highest chain positions reaching each node, ``m_from``: lowest
  reachable), row-major so every per-node frontier is one contiguous
  row.
* **Per-edge floods are replaced by one delta refresh per round.**  The
  scalar engine re-floods both frontier directions after *every*
  inserted edge — at paper scale that is hundreds of thousands of
  single-entry updates.  Here an insertion does only an O(k) shallow
  row merge (``m_from[u] = min(m_from[u], m_from[v])`` and the forward
  mirror), and full closure freshness is restored once per fixed-point
  round by :func:`~repro.core.kernels.refresh_forward`/
  :func:`~repro.core.kernels.refresh_backward` — a single wavefront
  sweep over the rows downstream of this round's edges, in the
  maintained topological order.  This is sound because discovery is
  watermark-delta'd (a candidate missed while a bound is stale is
  found after the next refresh; monotone frontiers + permanent edges),
  and cycle detection never depends on frontier freshness at all: the
  inherited Pearce–Kelly reorder detects the cycle exactly at the
  closing edge, producing the same witness as vc.  Between-refresh
  staleness can only cost redundant (implied, hence true) edges.
* **R6/R7 discovery is batched per address per round.**  Instead of two
  ``bisect`` calls per (item, chain) per iteration, every interval
  bound of every item of an address is encoded into one query vector
  and resolved by a single ``np.searchsorted`` against the address's
  flattened chain-position index (:class:`~repro.core.kernels.AddrSpanIndex`).
  Watermark vectors turn the scan into a delta: each (item, candidate)
  pair is enumerated at most once across the whole fixed point, where
  the scalar engines re-enumerate every candidate every iteration.
* **R7 suppression is a fancy-indexed compare.**  The (candidate,
  observer) cross product of a batch is expanded with
  :func:`~repro.core.kernels.concat_ranges` and tested against the
  backward-frontier matrix in one vector op; only survivors reach the
  Python insertion loop, which re-checks the test scalar-side against
  the current row (the shallow merge keeps each observer's own row
  fresh, preserving vc's minimal-candidate suppression within a batch).

Without numpy the engine transparently degrades to the inherited
scalar paths — ``vck`` then *is* ``vc`` plus a name — so the module
imports and verdicts survive a missing ``repro[fast]`` extra
(``tests/core/test_no_numpy.py`` proves it with a stubbed import).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core import kernels
from repro.core.graph import ConstraintGraph, CycleDetected
from repro.core.prep import EnginePrep
from repro.core.result import CheckStats, EdgeReason, Violation
from repro.core.vc import VectorClockChecker
from repro.model.expansion import AnalysisProgram


class KernelVectorChecker(VectorClockChecker):
    """Fig. 2 with batched kernel math over the vc chain formulation."""

    name = "vck"

    # ------------------------------------------------------------------
    # State: row-major frontier matrices (kernel path only)
    # ------------------------------------------------------------------

    def _init_state(self, graph: ConstraintGraph, order: List[int]) -> None:
        self._use_kernels = kernels.HAVE_NUMPY
        if not self._use_kernels:
            super()._init_state(graph, order)
            return
        n = graph.n
        chains = self._chains
        self._inf = n + 1
        self._n = n
        self._ord = [0] * n
        for index, node in enumerate(order):
            self._ord[node] = index
        out = (
            self.context.frontier_pair(n, chains.k)
            if self.context is not None else None
        )
        self._m_to, self._m_from = kernels.build_frontiers(
            n, chains.k, order, graph.pred, graph.succ,
            chains.chain_of, chains.pos_of, out=out,
        )
        self._stats.kernel_batches += 1
        # Redirected endpoints of edges inserted since the last refresh
        # — the dirty sources a small round's delta refresh sweeps from.
        self._fwd_dirty: List[int] = []
        self._bwd_dirty: List[int] = []

    # ------------------------------------------------------------------
    # Insertion-time propagation: O(k) shallow row merges.  Full closure
    # freshness is restored by the per-round delta refresh.
    # ------------------------------------------------------------------

    def _push_forward(self, u: int, v: int) -> None:
        if not self._use_kernels:
            super()._push_forward(u, v)
            return
        m_to = self._m_to
        kernels.np.maximum(m_to[v], m_to[u], out=m_to[v])
        self._fwd_dirty.append(v)

    def _push_backward(self, u: int, v: int) -> None:
        if not self._use_kernels:
            super()._push_backward(u, v)
            return
        m_from = self._m_from
        kernels.np.minimum(m_from[u], m_from[v], out=m_from[u])
        self._bwd_dirty.append(u)

    def _add_edge(self, u: int, v: int, reason: EdgeReason) -> bool:
        """vc's insert with redirection and the row merges inlined.

        Identical semantics to the inherited path; the ~20k R6/R7
        inserts per round make the redirect/add/push call fan-out a
        measurable cost, so this flattens them into one frame.
        """
        if not self._use_kernels:
            return super()._add_edge(u, v, reason)
        graph = self._graph
        gu = graph._group[u]
        if gu == -1 or gu != graph._group[v]:
            u = graph._red_src[u]
            v = graph._red_dst[v]
        if u == v:
            raise CycleDetected(u, v)
        succ_set = graph._succ_sets[u]
        if v in succ_set:
            return False
        if self._ord[u] >= self._ord[v]:
            self._reorder(u, v, reason)
        succ_set.add(v)
        graph.succ[u].append(v)
        graph.pred[v].append(u)
        graph.reasons[(u, v)] = reason
        graph.edge_count += 1
        m_to = self._m_to
        m_from = self._m_from
        kernels.np.maximum(m_to[v], m_to[u], out=m_to[v])
        kernels.np.minimum(m_from[u], m_from[v], out=m_from[u])
        self._fwd_dirty.append(v)
        self._bwd_dirty.append(u)
        return True

    def _refresh(self, graph: ConstraintGraph, stats: CheckStats) -> None:
        """Re-close both frontier matrices after a round of inserts.

        Big rounds (most of the graph downstream of a change) use the
        level-scheduled segmented-reduce sweep; small rounds use the
        dirty-wavefront delta refresh, whose cost tracks the actual
        propagation frontier instead of the whole graph.
        """
        np = kernels.np
        order = np.argsort(np.asarray(self._ord)).tolist()
        if len(self._fwd_dirty) > self._n // 16:
            kernels.run_sweep(
                self._m_to, kernels.sweep_schedule(order, graph.pred)
            )
            order.reverse()
            kernels.run_sweep(
                self._m_from,
                kernels.sweep_schedule(order, graph.succ),
                minimize=True,
            )
        else:
            kernels.refresh_forward(
                self._m_to, order, graph.pred, graph.succ, self._fwd_dirty
            )
            kernels.refresh_backward(
                self._m_from, order, graph.pred, graph.succ, self._bwd_dirty
            )
        stats.kernel_batches += 2
        self._fwd_dirty.clear()
        self._bwd_dirty.clear()

    # ------------------------------------------------------------------
    # The fixed point: batched per-address rounds
    # ------------------------------------------------------------------

    def _fixed_point(
        self,
        aprog: AnalysisProgram,
        graph: ConstraintGraph,
        stats: CheckStats,
        prep: EnginePrep,
    ) -> Optional[Violation]:
        if not self._use_kernels:
            return super()._fixed_point(aprog, graph, stats, prep)
        np = kernels.np
        chains = self._chains
        n = self._n

        # Per-address work batches, prep order preserved within each.
        r6_items: Dict[int, List[Tuple[int, int, int]]] = {}
        for load, addr, target, target_first in prep.loads:
            r6_items.setdefault(addr, []).append((load, target, target_first))
        r7_items: Dict[int, List[Tuple[int, List[Tuple[int, int]]]]] = {}
        for store, addr, observers in prep.stores:
            r7_items.setdefault(addr, []).append((store, observers))

        indexes: Dict[int, kernels.AddrSpanIndex] = {}
        for addr, entries in chains.addr_stores.items():
            indexes[addr] = kernels.AddrSpanIndex(entries, chains.nodes, n)

        # R6 batch arrays: ids per item, plus per-(item, chain) watermarks.
        r6_batches = []
        for addr, items in r6_items.items():
            index = indexes.get(addr)
            if index is None or not index.chains:
                continue
            loads = [load for load, _, _ in items]
            targets = [target for _, target, _ in items]
            firsts = [first for _, _, first in items]
            r6_batches.append((
                index,
                loads,
                targets,
                firsts,
                np.asarray(loads, dtype=np.int64),
                np.asarray(targets, dtype=np.int64),
                np.asarray(firsts, dtype=np.int64),
                np.zeros(len(items) * len(index.chains), dtype=np.int64),
                [None, None],  # previous round's (lo, hi) windows
            ))

        # R7 batch arrays: ids, flattened observers, suffix watermarks.
        r7_batches = []
        for addr, items in r7_items.items():
            index = indexes.get(addr)
            if index is None or not index.chains:
                continue
            store_list = [store for store, _ in items]
            obs_loads: List[int] = []
            obs_lasts: List[int] = []
            obs_start: List[int] = []
            obs_count: List[int] = []
            for _, observers in items:
                obs_start.append(len(obs_loads))
                obs_count.append(len(observers))
                for load, load_last in observers:
                    obs_loads.append(load)
                    obs_lasts.append(load_last)
            r7_batches.append((
                index,
                store_list,
                obs_loads,
                obs_lasts,
                np.asarray(store_list, dtype=np.int64),
                np.asarray(obs_lasts, dtype=np.int64),
                np.asarray(obs_start, dtype=np.int64),
                np.asarray(obs_count, dtype=np.int64),
                np.tile(index.seg_end_np, len(items)),
                [None],  # previous round's lo windows
            ))

        chain_np = np.asarray(chains.chain_of, dtype=np.int64)
        pos_np = np.asarray(chains.pos_of, dtype=np.int64)
        gf_np = np.asarray(prep.group_first, dtype=np.int64)
        gl_list = [aprog.group_last(i) for i in range(n)]
        gl_np = np.asarray(gl_list, dtype=np.int64)
        chain_of = chains.chain_of
        pos_of = chains.pos_of

        m_to = self._m_to
        m_from = self._m_from
        add_edge = self._add_edge
        ix_ = np.ix_

        while True:
            stats.iterations += 1
            added = 0
            scanned = 0

            for (index, loads, targets, firsts, loads_np, targets_np,
                 firsts_np, marks, prev) in r6_batches:
                cols = index.chains_np
                offsets = index.offsets_np
                lo = (m_to[ix_(firsts_np, cols)] + offsets).ravel()
                hi = (m_to[ix_(loads_np, cols)] + offsets).ravel()
                # Windows identical to last round mean the watermarks
                # already consumed every span — skip the binary searches.
                if (prev[1] is not None
                        and np.array_equal(hi, prev[1])
                        and np.array_equal(lo, prev[0])):
                    continue
                prev[0], prev[1] = lo, hi
                pair, cand = kernels.r6_spans(index, lo, hi, marks)
                stats.kernel_batches += 1
                if pair is None:
                    continue
                m = len(index.chains)
                item = pair // m
                keep = cand != targets_np[item]
                item, cand = item[keep], cand[keep]
                scanned += len(cand)
                if not len(cand):
                    continue
                # Skip candidates whose edge is already implied: the
                # redirected source reaching the target's group entry is
                # an O(1) backward-frontier test, batched for the whole
                # span.  The matrix may lag real reachability between
                # refreshes, so this only under-filters — residual
                # implied edges are true and merely redundant.
                tfirst = firsts_np[item]
                fresh = (
                    m_from[gl_np[cand], chain_np[tfirst]] > pos_np[tfirst]
                )
                stats.vc_queries += len(fresh)
                item, cand = item[fresh], cand[fresh]
                if not len(cand):
                    continue
                # Insert each (item, chain) run's candidates descending:
                # a store chain's highest candidate edge implies every
                # lower one (u_i ~> u_j ~> target for i < j), so after
                # the first insert the recheck below skips the rest of
                # the run instead of adding redundant edges.
                if len(cand) > 1:
                    pair = pair[keep][fresh]
                    run_start = np.flatnonzero(
                        np.r_[True, pair[1:] != pair[:-1]]
                    )
                    run_len = np.diff(np.r_[run_start, len(pair)])
                    ends = np.repeat(run_start + run_len - 1, run_len)
                    starts = np.repeat(run_start, run_len)
                    perm = starts + ends - np.arange(len(pair))
                    item, cand = item[perm], cand[perm]
                for it, s_prime in zip(item.tolist(), cand.tolist()):
                    tf = firsts[it]
                    if m_to[tf, chain_of[gl_list[s_prime]]] >= pos_of[
                        gl_list[s_prime]
                    ]:
                        continue  # implied by an edge added this batch
                    reason = EdgeReason(
                        "R6",
                        f"store n{s_prime} precedes load n{loads[it]}, "
                        f"which observed store n{targets[it]} "
                        f"(Value axiom)",
                    )
                    if add_edge(s_prime, targets[it], reason):
                        added += 1

            for (index, store_list, obs_loads, obs_lasts, stores_np,
                 obs_lasts_np, obs_start_np, obs_count_np,
                 marks, prev) in r7_batches:
                cols = index.chains_np
                offsets = index.offsets_np
                lo = (m_from[ix_(stores_np, cols)] + offsets).ravel()
                if prev[0] is not None and np.array_equal(lo, prev[0]):
                    continue
                prev[0] = lo
                pair, cand = kernels.r7_spans(index, lo, marks)
                stats.kernel_batches += 1
                if pair is None:
                    continue
                m = len(index.chains)
                item = pair // m
                keep = cand != stores_np[item]
                item, cand = item[keep], cand[keep]
                if not len(cand):
                    continue
                scanned += len(cand)
                # Expand (candidate × observer) and test suppression in
                # one vector op; survivors re-check scalar-side at
                # insertion so mid-batch edges keep vc semantics.
                sp_first = gf_np[cand]
                sp_chain = chain_np[sp_first]
                sp_pos = pos_np[sp_first]
                counts = obs_count_np[item]
                rep = np.repeat(np.arange(len(cand), dtype=np.int64), counts)
                obs_idx = kernels.concat_ranges(obs_start_np[item], counts)
                keep_mask = kernels.suppression_mask(
                    m_from,
                    obs_lasts_np[obs_idx],
                    sp_chain[rep],
                    sp_pos[rep],
                )
                stats.kernel_batches += 1
                stats.vc_queries += len(keep_mask)
                survivors = np.nonzero(keep_mask)[0]
                if not len(survivors):
                    continue
                for t in survivors.tolist():
                    pair_index = int(rep[t])
                    s_prime = int(cand[pair_index])
                    slot = int(obs_idx[t])
                    chain = int(sp_chain[pair_index])
                    if m_from[obs_lasts[slot], chain] <= sp_pos[pair_index]:
                        continue  # implied by an edge added this batch
                    load = obs_loads[slot]
                    store = store_list[int(item[pair_index])]
                    reason = EdgeReason(
                        "R7",
                        f"load n{load} observed store n{store}, which "
                        f"precedes store n{s_prime} (Value axiom)",
                    )
                    if add_edge(load, s_prime, reason):
                        added += 1

            stats.inferred_edges += added
            if not added and not scanned:
                return None
            if added:
                self._refresh(graph, stats)
