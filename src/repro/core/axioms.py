"""Direct axiom verification of a candidate global order (Sec. 2).

Given an :class:`~repro.model.expansion.AnalysisProgram` and a *total
order* over its operations (for instance the witness returned by
:func:`~repro.core.complete.complete_check`), check every memory-model
axiom literally, one quantifier at a time:

* **Order** — total by construction of the input; checked for
  well-formedness (a permutation of all ops).
* **LoadOp / StoreStore / Membar** — program-order pairs the model
  preserves appear in the same order globally.
* **Atomicity** — no foreign store falls between an atomic group's load
  and store parts.
* **Value** — every load returns
  ``Val[Max({S <= L} ∪ {S ; L})]``, computed exactly as written: the
  globally latest element of the union of its two store sets.

This is the slow, obviously-correct spelling of the model — O(n²)-ish
and proud of it.  It exists as the third leg of the correctness
triangle: the polynomial checker (fast, incomplete), the exponential
search (complete, returns witnesses), and this verifier (checks any
witness against the axioms with no shared machinery).  Property tests
close the triangle: every ``complete_check`` witness must satisfy every
axiom here, and shuffled non-witness orders must not.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.policy import MemoryModel, TSO
from repro.model.expansion import NO_GROUP, AnalysisProgram, OpKind


def verify_witness(
    aprog: AnalysisProgram,
    order: Sequence[int],
    model: MemoryModel = TSO,
) -> List[str]:
    """Check a candidate total order against every axiom.

    Args:
        aprog: the expanded execution.
        order: node ids in claimed global order (roots included).
        model: which program-order pairs the model preserves.

    Returns:
        A list of human-readable violation messages; empty = the order
        is a valid witness.
    """
    problems: List[str] = []
    if sorted(order) != list(range(aprog.n)):
        return [
            f"order is not a permutation of all {aprog.n} operations "
            "(Order axiom requires a total order)"
        ]
    position = {node: index for index, node in enumerate(order)}

    problems.extend(_check_program_order(aprog, position, model))
    problems.extend(_check_atomicity(aprog, order, position))
    problems.extend(_check_value(aprog, order, position))
    return problems


def _check_program_order(
    aprog: AnalysisProgram, position: Dict[int, int], model: MemoryModel
) -> List[str]:
    """LoadOp / StoreStore / Membar axioms, per preserved pair."""
    problems = []
    for stream in aprog.per_proc:
        for i, earlier in enumerate(stream):
            op1 = aprog.ops[earlier]
            for later in stream[i + 1:]:
                op2 = aprog.ops[later]
                if not _pair_preserved(op1.kind, op2.kind, op1, op2, model):
                    continue
                if position[earlier] > position[later]:
                    problems.append(
                        f"{aprog.describe(earlier)} ; {aprog.describe(later)} "
                        "in program order but reversed in the global order "
                        f"({_pair_name(op1.kind, op2.kind)} axiom)"
                    )
    return problems


def _pair_preserved(kind1, kind2, op1, op2, model: MemoryModel) -> bool:
    if kind1 == OpKind.MEMBAR or kind2 == OpKind.MEMBAR:
        return True  # Membar axiom orders everything across it; membars
        # themselves act as ordering pivots in both directions.
    if kind1 == OpKind.LOAD:
        return model.load_load if kind2 == OpKind.LOAD else model.load_store
    if kind2 == OpKind.STORE:
        if model.store_store:
            return True
        return model.same_addr_store_store and op1.addr == op2.addr
    return model.store_load


def _pair_name(kind1, kind2) -> str:
    if kind1 == OpKind.MEMBAR or kind2 == OpKind.MEMBAR:
        return "Membar"
    if kind1 == OpKind.LOAD:
        return "LoadOp"
    return "StoreStore" if kind2 == OpKind.STORE else "StoreLoad"


def _check_atomicity(
    aprog: AnalysisProgram, order: Sequence[int], position: Dict[int, int]
) -> List[str]:
    """No foreign store between an atomic group's first and last member."""
    problems = []
    for gid, members in aprog.groups.items():
        first = min(position[m] for m in members)
        last = max(position[m] for m in members)
        member_set = set(members)
        for slot in range(first + 1, last):
            node = order[slot]
            if node in member_set:
                continue
            if aprog.ops[node].is_store:
                problems.append(
                    f"{aprog.describe(node)} intervenes inside atomic group "
                    f"{gid} (between {aprog.describe(members[0])} and "
                    f"{aprog.describe(members[-1])}) — Atomicity axiom"
                )
    return problems


def _check_value(
    aprog: AnalysisProgram, order: Sequence[int], position: Dict[int, int]
) -> List[str]:
    """The Value axiom, computed exactly as written in Sec. 2."""
    problems = []
    # Program-order-earlier own stores per load, in program order.
    own_stores: Dict[int, List[int]] = {}
    for stream in aprog.per_proc:
        last_store_to: Dict[int, List[int]] = {}
        for op_id in stream:
            op = aprog.ops[op_id]
            if op.kind == OpKind.LOAD:
                own_stores[op_id] = list(last_store_to.get(op.addr, ()))
            elif op.kind == OpKind.STORE:
                last_store_to.setdefault(op.addr, []).append(op_id)

    for op in aprog.ops:
        if not op.is_load:
            continue
        load_pos = position[op.id]
        candidates = [
            store
            for store in aprog.stores_by_addr.get(op.addr, ())
            if position[store] <= load_pos
        ]
        candidates.extend(own_stores.get(op.id, ()))
        if not candidates:
            problems.append(
                f"{aprog.describe(op.id)}: no store in either Value-axiom "
                "set (not even the root — malformed expansion?)"
            )
            continue
        winner = max(candidates, key=lambda store: position[store])
        expected = aprog.ops[winner].value
        if op.value != expected:
            problems.append(
                f"{aprog.describe(op.id)} returned {op.value}, but the "
                f"Value-axiom max is {aprog.describe(winner)} "
                f"(expected {expected})"
            )
    return problems
