"""The paper's contribution: the polynomial-time memory-model checker.

Public surface:

* :data:`repro.core.policy.TSO` / ``SC`` / ``PSO`` — memory-model
  ordering policies (Sec. 2 and footnote 2 of Sec. 4),
* :func:`repro.core.api.check` / :func:`repro.core.api.check_execution` /
  :func:`repro.core.api.check_litmus` — one-call checking,
* :class:`repro.core.result.CheckResult` — verdict, violation witness
  with per-edge reasons, DOT export,
* :class:`repro.core.checker.BaselineChecker` — the literal Fig. 2
  algorithm,
* :class:`repro.core.closure.ClosureChecker` /
  :class:`repro.core.matrix.MatrixChecker` /
  :class:`repro.core.vc.VectorClockChecker` /
  :class:`repro.core.vck.KernelVectorChecker` — the optimized engines
  (bitset closure, numpy matrices, the default incremental
  vector-clock frontiers, and its vectorized-kernel variant; see
  ``docs/engines.md``).  ``MatrixChecker`` needs the ``repro[fast]``
  extra and is ``None`` when numpy is missing,
* :func:`repro.core.complete.complete_check` — the exponential complete
  decision procedure (enforces the Order axiom; small programs only).
"""

from repro.core.policy import TSO, SC, PSO, MemoryModel
from repro.core.api import check, check_execution, check_litmus
from repro.core.result import CheckResult, Violation, ViolationKind, EdgeReason
from repro.core.checker import BaselineChecker
from repro.core.closure import ClosureChecker
from repro.core.kernels import HAVE_NUMPY

if HAVE_NUMPY:
    from repro.core.matrix import MatrixChecker
else:  # numpy is an optional extra; the dense engine needs it
    MatrixChecker = None  # type: ignore[assignment,misc]
from repro.core.vc import VectorClockChecker
from repro.core.vck import KernelVectorChecker
from repro.core.complete import complete_check, CompleteResult
from repro.core.axioms import verify_witness
from repro.core.htmlreport import render_html
from repro.core.reduction import vsc_to_vtso
from repro.core.observability import ObservabilityChecker, check_with_store_order

__all__ = [
    "TSO",
    "SC",
    "PSO",
    "MemoryModel",
    "check",
    "check_execution",
    "check_litmus",
    "CheckResult",
    "Violation",
    "ViolationKind",
    "EdgeReason",
    "BaselineChecker",
    "ClosureChecker",
    "MatrixChecker",
    "VectorClockChecker",
    "KernelVectorChecker",
    "complete_check",
    "CompleteResult",
    "verify_witness",
    "render_html",
    "vsc_to_vtso",
    "ObservabilityChecker",
    "check_with_store_order",
]
