"""Check results, violation witnesses, and debug rendering (Sec. 3.4).

When TSOtool detects a violation it "emits a graphical representation of
the relevant area in the analysis graph" where "the user can click on each
edge ... to understand the reason for its existence".  This module is the
reproduction of that debug story: every edge carries an
:class:`EdgeReason` (which rule added it and why), a :class:`Violation`
carries the offending cycle with those reasons, and :meth:`CheckResult.explain`
renders the full chain of inference as text.  :meth:`CheckResult.to_dot`
emits Graphviz DOT for the graphical view.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.expansion import AnalysisProgram


@dataclass(frozen=True)
class EdgeReason:
    """Why an edge exists in the analysis graph.

    Attributes:
        rule: the rule id: ``R1``–``R7`` from Fig. 2, plus ``atomic``
            (intra-group chain), ``init`` (root-store edges).
        detail: human-readable justification, e.g. which load's value
            binding forced the edge.
    """

    rule: str
    detail: str = ""

    def render(self) -> str:
        """One-line rendering: ``R5: <detail>``."""
        return f"{self.rule}: {self.detail}" if self.detail else self.rule


class ViolationKind(enum.Enum):
    """How the check failed."""

    #: A cycle in the inferred global order — the paper's TSO violation.
    CYCLE = "cycle"
    #: A load observed a value never written to its address (Sec. 4: "a
    #: load reading a value never written ... signaled as a failure at the
    #: outset").
    UNMAPPED_VALUE = "unmapped-value"
    #: A non-faulting load to a faulting address returned nonzero (Sec. 3.3).
    PRECHECK = "precheck"


@dataclass
class Violation:
    """A memory-model violation witness.

    For ``CYCLE`` violations, ``cycle`` holds the node ids of the cycle in
    order (the edge ``cycle[i] -> cycle[i+1]`` exists, wrapping around)
    and ``reasons`` the per-edge justification.
    """

    kind: ViolationKind
    message: str
    cycle: List[int] = field(default_factory=list)
    reasons: List[EdgeReason] = field(default_factory=list)


@dataclass
class PoolStats:
    """Execution accounting for a batch of analysis tasks.

    Produced by :func:`repro.analysis.pool.run_tasks` for campaign hunts
    and runtime-sweep points; rendered by the CLI and by
    :mod:`repro.analysis.report`.  ``wall_seconds`` is elapsed time
    around the whole batch; ``cpu_seconds`` is the *sum* of per-task
    compute time across all workers — with one worker the two are nearly
    equal, with N workers ``cpu_seconds`` may approach
    ``N * wall_seconds``.  The two must never be conflated as "analysis
    time".

    The object is JSON-serializable via :meth:`to_dict` /
    :meth:`from_dict` so batch results can be archived next to the
    benchmark artifacts.
    """

    tasks: int = 0
    completed: int = 0
    hung: int = 0
    retries: int = 0
    #: Worker processes spawned as *replacements* for dead, overdue or
    #: unreachable workers (the initial pool is not counted).  Mirrored
    #: into the ``pool.respawns`` telemetry counter; before this field a
    #: respawn-after-death left no trace in stats or metrics.
    respawns: int = 0
    #: Worker messages dropped because they did not belong to the
    #: worker's current task — the late reply of a timed-out-then-
    #: retried task, or a duplicate send.  Mirrored into the
    #: ``pool.stale_results`` telemetry counter; before this field a
    #: stale reply was silently misattributed to the wrong task.
    stale_results: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    #: tasks completed per worker id — the per-worker progress summary.
    per_worker: Dict[int, int] = field(default_factory=dict)

    @property
    def tasks_per_second(self) -> float:
        """Completed-task throughput against wall-clock time."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.completed / self.wall_seconds

    def throughput_line(self) -> str:
        """One-line summary: the final line the campaign CLI prints."""
        return (
            f"{self.completed}/{self.tasks} tasks in "
            f"{self.wall_seconds:.1f}s wall ({self.cpu_seconds:.1f}s CPU, "
            f"{self.workers} worker{'s' if self.workers != 1 else ''}, "
            f"{self.tasks_per_second:.2f} tasks/s, "
            f"{self.hung} hung, {self.retries} retries"
            + (f", {self.respawns} respawns" if self.respawns else "")
            + ")"
        )

    def worker_lines(self) -> List[str]:
        """Per-worker completion counts, one line per worker."""
        return [
            f"worker {wid}: {count} task{'s' if count != 1 else ''}"
            for wid, count in sorted(self.per_worker.items())
        ]

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (per-worker keys become strings)."""
        return {
            "tasks": self.tasks,
            "completed": self.completed,
            "hung": self.hung,
            "retries": self.retries,
            "respawns": self.respawns,
            "stale_results": self.stale_results,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "per_worker": {str(k): v for k, v in self.per_worker.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PoolStats":
        """Inverse of :meth:`to_dict`."""
        per_worker = {
            int(k): int(v)
            for k, v in dict(data.get("per_worker", {})).items()  # type: ignore[arg-type]
        }
        return cls(
            tasks=int(data.get("tasks", 0)),  # type: ignore[arg-type]
            completed=int(data.get("completed", 0)),  # type: ignore[arg-type]
            hung=int(data.get("hung", 0)),  # type: ignore[arg-type]
            retries=int(data.get("retries", 0)),  # type: ignore[arg-type]
            respawns=int(data.get("respawns", 0)),  # type: ignore[arg-type]
            stale_results=int(data.get("stale_results", 0)),  # type: ignore[arg-type]
            workers=int(data.get("workers", 1)),  # type: ignore[arg-type]
            wall_seconds=float(data.get("wall_seconds", 0.0)),  # type: ignore[arg-type]
            cpu_seconds=float(data.get("cpu_seconds", 0.0)),  # type: ignore[arg-type]
            per_worker=per_worker,
        )


@dataclass
class SweepStats:
    """Accounting for one systematic schedule sweep.

    Produced by :func:`repro.sched.sweep.sweep_program`.  ``complete``
    distinguishes "the whole schedule tree was walked" from "the budget
    ran out" — a sweep that claims full enumeration must have it True.
    """

    budget: int = 0
    schedules_run: int = 0
    distinct_outcomes: int = 0
    complete: bool = False

    def render(self) -> str:
        """One-line summary for the CLI sweep report."""
        status = "complete" if self.complete else f"budget ({self.budget}) exhausted"
        return (
            f"{self.schedules_run} schedule(s) explored, "
            f"{self.distinct_outcomes} distinct outcome(s), {status}"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation for archived sweep artifacts."""
        return {
            "budget": self.budget,
            "schedules_run": self.schedules_run,
            "distinct_outcomes": self.distinct_outcomes,
            "complete": self.complete,
        }


@dataclass
class CheckStats:
    """Bookkeeping about one analysis run (feeds the Fig. 8/9 harness).

    Every engine fills the shared fields; ``traversals``/
    ``traversal_visits`` are traversal-engine specific,
    ``closure_rebuilds`` closure/matrix/vc-engine specific, and
    ``vc_queries``/``reorder_visits`` vc-engine specific.  The per-run
    stats also feed :func:`repro.telemetry.record_check`, which folds
    them into the process-wide ``check.*`` counters.
    """

    nodes: int = 0
    static_edges: int = 0
    observed_edges: int = 0
    inferred_edges: int = 0
    iterations: int = 0
    seconds: float = 0.0
    #: Traversal-engine only: number of R6/R7 subgraph traversals and the
    #: total nodes they visited — the quantity the paper's Fig. 9
    #: explanation is about ("a larger number of nodes to be visited
    #: during the traversal of predecessor/successor subgraphs").
    traversals: int = 0
    traversal_visits: int = 0
    #: Closure/matrix/vc engines only: how many times the transitive
    #: closure was recomputed from scratch.  The per-pass engines pay
    #: one rebuild per fixed-point iteration; the incremental vc engine
    #: builds it exactly once and propagates deltas afterwards.
    closure_rebuilds: int = 0
    #: Vc engine only: frontier-vector lookups — the O(k) interval
    #: probes behind R6/R7 candidate discovery plus the O(1)
    #: reachability queries behind implied-edge suppression.
    vc_queries: int = 0
    #: Vc engine only: nodes visited by Pearce–Kelly local reordering —
    #: the affected-region cost of keeping the topological order (and
    #: with it cycle detection) current across edge insertions.
    reorder_visits: int = 0
    #: Vck engine only: vectorized kernel dispatches — frontier builds,
    #: batched R6/R7 span discoveries, and batched suppression tests.
    #: Stays 0 on the pure-Python fallback path (no numpy), where the
    #: engine runs the shared scalar loops instead.
    kernel_batches: int = 0
    #: Stream engine only: nodes whose frontier vectors were dropped by
    #: window retirement, and the peak count of simultaneously-live
    #: (vector-carrying) nodes.  ``live_peak`` is the engine's memory
    #: bound: it must track the window, not the run length.
    retired_nodes: int = 0
    live_peak: int = 0

    @property
    def edges(self) -> int:
        """Total explicit edges added to the graph."""
        return self.static_edges + self.observed_edges + self.inferred_edges

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (archived metrics and reports)."""
        return {
            "nodes": self.nodes,
            "static_edges": self.static_edges,
            "observed_edges": self.observed_edges,
            "inferred_edges": self.inferred_edges,
            "iterations": self.iterations,
            "seconds": self.seconds,
            "traversals": self.traversals,
            "traversal_visits": self.traversal_visits,
            "closure_rebuilds": self.closure_rebuilds,
            "vc_queries": self.vc_queries,
            "reorder_visits": self.reorder_visits,
            "kernel_batches": self.kernel_batches,
            "retired_nodes": self.retired_nodes,
            "live_peak": self.live_peak,
        }


@dataclass
class CheckResult:
    """The outcome of checking one execution against a memory model.

    Attributes:
        ok: True iff no violation was detected.  The algorithm is sound
            but incomplete (Sec. 4): ``ok=False`` proves a violation;
            ``ok=True`` does not prove compliance.
        model_name: the memory model the execution was checked against.
        engine: the checker engine used (``baseline``, ``closure``,
            ``matrix``, ``vc`` or ``stream``).
        violation: the witness, when ``ok`` is False.
        stats: analysis-size and runtime bookkeeping.
        aprog: the analysis program, retained for rendering.
        graph: the final constraint graph (a
            :class:`repro.core.graph.ConstraintGraph`), retained for the
            Sec. 3.4 debug artifacts — the full-graph text dump and DOT.
    """

    ok: bool
    model_name: str
    engine: str
    violation: Optional[Violation] = None
    stats: CheckStats = field(default_factory=CheckStats)
    aprog: Optional[AnalysisProgram] = None
    graph: Optional[object] = None

    def explain(self) -> str:
        """Render the verdict — and for failures, the chain of reasoning.

        For a cycle, prints each node and the rule that created each edge,
        the textual equivalent of the paper's clickable edge view.
        """
        header = (
            f"{self.model_name} check: {'PASS' if self.ok else 'FAIL'} "
            f"({self.stats.nodes} nodes, {self.stats.edges} edges, "
            f"{self.stats.iterations} iterations, engine={self.engine})"
        )
        if self.ok or self.violation is None:
            return header
        lines = [header, f"violation: {self.violation.message}"]
        if self.violation.kind == ViolationKind.CYCLE and self.aprog is not None:
            cycle = self.violation.cycle
            reasons = self.violation.reasons
            lines.append("cycle in the inferred global memory order:")
            for i, node in enumerate(cycle):
                nxt = cycle[(i + 1) % len(cycle)]
                reason = reasons[i].render() if i < len(reasons) else "?"
                lines.append(
                    f"  {self.aprog.describe(node)}  <=  "
                    f"{self.aprog.describe(nxt)}    [{reason}]"
                )
        return "\n".join(lines)

    def dump_graph(self) -> str:
        """Emit the whole analysis graph as text (Sec. 3.4).

        "TSOtool also emits the analysis graph to a text file in a
        format comprehensible to users."  One line per node and per
        explicit edge, each edge annotated with the rule that created it
        and its justification; the violation cycle, if any, is listed at
        the end.
        """
        if self.aprog is None or self.graph is None:
            raise ValueError("result has no analysis graph attached")
        lines = [
            f"# tsotool analysis graph: model={self.model_name} "
            f"engine={self.engine} verdict={'PASS' if self.ok else 'FAIL'}",
            f"# {self.stats.nodes} nodes, {self.stats.edges} explicit edges",
        ]
        for op in self.aprog.ops:
            lines.append(f"node {op.id:<6d} {self.aprog.describe(op.id)}")
        for (u, v), reason in sorted(self.graph.reasons.items()):
            lines.append(f"edge {u} -> {v}  [{reason.render()}]")
        if self.violation is not None and self.violation.cycle:
            lines.append(
                "cycle " + " ".join(str(n) for n in self.violation.cycle)
            )
        return "\n".join(lines) + "\n"

    def to_dot(
        self,
        edges: Optional[Dict[Tuple[int, int], EdgeReason]] = None,
        focus_only: bool = True,
    ) -> str:
        """Emit Graphviz DOT of the analysis graph region around the failure.

        Args:
            edges: the explicit edge map from the checker engine; when
                omitted, only the violation cycle is drawn.
            focus_only: when a cycle exists, restrict to nodes within the
                cycle plus their direct neighbours (the paper's "relevant
                area in the analysis graph").
        """
        if self.aprog is None:
            raise ValueError("result has no analysis program attached")
        cycle_nodes = set(self.violation.cycle) if self.violation else set()
        cycle_edges = set()
        if self.violation and self.violation.kind == ViolationKind.CYCLE:
            seq = self.violation.cycle
            cycle_edges = {
                (seq[i], seq[(i + 1) % len(seq)]) for i in range(len(seq))
            }

        draw_edges: Dict[Tuple[int, int], EdgeReason] = {}
        if edges:
            draw_edges.update(edges)
        if self.violation:
            seq = self.violation.cycle
            for i in range(len(seq)):
                key = (seq[i], seq[(i + 1) % len(seq)])
                reason = (
                    self.violation.reasons[i]
                    if i < len(self.violation.reasons)
                    else EdgeReason("?")
                )
                draw_edges.setdefault(key, reason)

        nodes = set()
        if focus_only and cycle_nodes:
            for (u, v) in draw_edges:
                if u in cycle_nodes or v in cycle_nodes:
                    nodes.add(u)
                    nodes.add(v)
        else:
            for (u, v) in draw_edges:
                nodes.update((u, v))

        lines = ["digraph tsotool {", "  rankdir=TB;", '  node [shape=box, fontname="monospace"];']
        for node in sorted(nodes):
            label = self.aprog.describe(node).replace('"', "'")
            style = ', color=red, penwidth=2' if node in cycle_nodes else ""
            lines.append(f'  n{node} [label="{label}"{style}];')
        for (u, v), reason in sorted(draw_edges.items()):
            if u not in nodes or v not in nodes:
                continue
            style = ", color=red, penwidth=2" if (u, v) in cycle_edges else ""
            lines.append(f'  n{u} -> n{v} [label="{reason.rule}"{style}];')
        lines.append("}")
        return "\n".join(lines)
