"""The incremental checker engine: vector-clock frontiers + online
topological order.

Fourth implementation of the Fig. 2 rules (R1–R7), built on the
observation of Roy et al., *Fast and Generalized Polynomial Time Memory
Consistency Verification* (the Intel follow-up to TSOtool): program
order totally orders large slices of the analysis graph, so "the set of
nodes that reaches v" does not need an n-bit set — it is captured
exactly by a short *frontier vector* with one entry per totally ordered
**chain** of nodes.

Chains are carved out of the static program-order edges the memory
model guarantees (see :class:`repro.core.prep.Chains`): under TSO
each processor
contributes one load(+membar) chain and one store chain, each synthetic
root store is its own singleton chain, so ``k ≈ 2·procs + addrs`` —
two orders of magnitude below the node count at the paper's operating
point.  Because every chain is a path in the constraint graph, "chain
``c``'s members that reach ``v``" is always a *prefix* of ``c``; the
frontier entry stores just the prefix length.  This buys the three
things the per-pass engines pay for repeatedly:

* **R6/R7 candidate discovery is O(k).**  "Same-address store
  predecessors of L not already ordered before the observed store" is,
  per chain, one half-open interval of positions — two binary searches
  in the chain's per-address store index, no bitset scan over n nodes.
* **Cycle detection is incremental.**  A topological order of the graph
  is maintained *online* across edge insertions with Pearce–Kelly local
  reordering: only the affected region — nodes whose order indices sit
  between the new edge's endpoints — is visited, instead of a full
  Kahn pass per fixed-point iteration.  An inserted edge whose forward
  search finds its own source *is* the violation.
* **Closure updates are deltas.**  Inserting ``u -> v`` pushes
  ``u``'s frontier entries through ``v``'s descendants (and ``v``'s
  backward frontier through ``u``'s ancestors), stopping wherever
  nothing improves.  The full closure is built exactly once, from the
  initial static + observed edges — ``closure_rebuilds`` stays at 1
  regardless of how many fixed-point passes run, where the per-pass
  engines pay an O(E·n/w) rebuild each iteration.

Atomic-group redirection and the R5 ``S';L`` subtlety are inherited
bit-for-bit: edges are stored in the same :class:`ConstraintGraph`
(which performs the paper's redirection), and the R4/R5 edge stream is
the shared :func:`repro.core.checker.observed_edges`.  Verdict
agreement with the other three engines is enforced by
``tests/test_properties.py``.
"""

from __future__ import annotations

import time
from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.core.checker import observed_edges, precheck_violation
from repro.core.closure import topological_order
from repro.core.graph import ConstraintGraph, CycleDetected
from repro.core.policy import MemoryModel, TSO, static_edges
from repro.core.prep import Chains, EnginePrep, prepare
from repro.core.result import (
    CheckResult,
    CheckStats,
    EdgeReason,
    Violation,
    ViolationKind,
)
from repro.core.context import CheckContext
from repro.model.expansion import AnalysisProgram

#: Back-compat alias: the chain decomposition moved to
#: :class:`repro.core.prep.Chains` so the scalar and kernel engines
#: share one construction (tests and downstream code keep importing it
#: from here).
_Chains = Chains


class VectorClockChecker:
    """Fig. 2 with incremental frontier vectors and online topo order."""

    name = "vc"

    def __init__(
        self,
        model: MemoryModel = TSO,
        inferred_rules: bool = True,
        context: Optional["CheckContext"] = None,
    ) -> None:
        """Args:
            model: memory-model ordering policy.
            inferred_rules: apply the R6/R7 fixed point (disabling them
                is the DESIGN.md rule ablation, as on the closure
                engine).
            context: optional :class:`~repro.core.context.CheckContext`
                whose scratch buffers are reused across runs — the
                batched-campaign state-reuse path.  The scalar engine
                carries it for its subclasses (vck consumes the numpy
                frontier buffers); ``None`` allocates per run.
        """
        self.model = model
        self.inferred_rules = inferred_rules
        self.context = context
        if context is not None:
            context.checks += 1

    def run(self, aprog: AnalysisProgram) -> CheckResult:
        """Check one analysis program; return the verdict with a witness."""
        start = time.perf_counter()
        stats = CheckStats(nodes=aprog.n)

        self._graph: Optional[ConstraintGraph] = None
        violation = precheck_violation(aprog)
        if violation is None:
            violation = self._analyze(aprog, stats)

        stats.seconds = time.perf_counter() - start
        telemetry.record_check(stats, self.name)
        return CheckResult(
            ok=violation is None,
            model_name=self.model.name,
            engine=self.name,
            violation=violation,
            stats=stats,
            aprog=aprog,
            graph=self._graph,
        )

    # ------------------------------------------------------------------
    # Phase 1: bulk edges, chain decomposition, one closure build
    # ------------------------------------------------------------------

    def _analyze(
        self, aprog: AnalysisProgram, stats: CheckStats
    ) -> Optional[Violation]:
        graph = ConstraintGraph(aprog)
        self._graph = graph
        self._stats = stats

        try:
            for u, v, rule in static_edges(aprog, self.model):
                if graph.add_edge(u, v, EdgeReason(rule, "program order")):
                    stats.static_edges += 1
            for u, v, reason, _rule in observed_edges(aprog):
                if graph.add_edge(u, v, reason):
                    stats.observed_edges += 1
        except CycleDetected as exc:
            return self._violation(aprog, graph, exc)

        order = topological_order(graph)
        if order is None:
            return self._found_cycle(aprog, graph)
        if not self.inferred_rules:
            return None

        self._chains = _Chains(aprog, self.model)
        self._init_state(graph, order)
        stats.closure_rebuilds += 1
        prep = prepare(aprog)
        try:
            return self._fixed_point(aprog, graph, stats, prep)
        except CycleDetected as exc:
            return self._violation(aprog, graph, exc)

    def _init_state(self, graph: ConstraintGraph, order: List[int]) -> None:
        """Build frontiers and the topological order in one DP pass.

        ``vec_to[v][c]`` is the highest position in chain ``c`` whose
        member reaches ``v`` (-1: none), ``vec_from[v][c]`` the lowest
        position reachable from ``v`` (``inf_pos``: none); both include
        ``v`` itself, mirroring the closure engine's reach bitsets.
        """
        n = graph.n
        k = self._chains.k
        chain_of = self._chains.chain_of
        pos_of = self._chains.pos_of
        self._inf = inf = n + 1
        self._ord = [0] * n
        for index, node in enumerate(order):
            self._ord[node] = index
        vec_to: List[List[int]] = [None] * n  # type: ignore[list-item]
        for node in order:
            rows = [vec_to[parent] for parent in graph.pred[node]]
            if not rows:
                vec = [-1] * k
            elif len(rows) == 1:
                vec = list(rows[0])
            else:
                vec = list(map(max, *rows))
            chain, pos = chain_of[node], pos_of[node]
            if pos > vec[chain]:
                vec[chain] = pos
            vec_to[node] = vec
        vec_from: List[List[int]] = [None] * n  # type: ignore[list-item]
        for node in reversed(order):
            rows = [vec_from[child] for child in graph.succ[node]]
            if not rows:
                vec = [inf] * k
            elif len(rows) == 1:
                vec = list(rows[0])
            else:
                vec = list(map(min, *rows))
            chain, pos = chain_of[node], pos_of[node]
            if pos < vec[chain]:
                vec[chain] = pos
            vec_from[node] = vec
        self._vec_to = vec_to
        self._vec_from = vec_from

    # ------------------------------------------------------------------
    # Phase 2: the R6/R7 fixed point over live frontiers
    # ------------------------------------------------------------------

    def _fixed_point(
        self,
        aprog: AnalysisProgram,
        graph: ConstraintGraph,
        stats: CheckStats,
        prep: EnginePrep,
    ) -> Optional[Violation]:
        group_first = prep.group_first
        # The observer-suppression test (``_reaches``) runs for every
        # (R7 candidate, observer) pair — millions of times at paper
        # scale — so it is inlined here over hoisted locals, with the
        # query count accumulated in bulk.
        chain_of = self._chains.chain_of
        pos_of = self._chains.pos_of
        vec_from = self._vec_from
        add_edge = self._add_edge
        while True:
            stats.iterations += 1
            added = 0
            for load, addr, target, target_first in prep.loads:
                for s_prime in self._r6_candidates(addr, load, target,
                                                  target_first):
                    reason = EdgeReason(
                        "R6",
                        f"store n{s_prime} precedes load n{load}, which "
                        f"observed store n{target} (Value axiom)",
                    )
                    if add_edge(s_prime, target, reason):
                        added += 1
            queries = 0
            for store, addr, observers in prep.stores:
                for s_prime in self._r7_candidates(addr, store):
                    s_prime_first = group_first[s_prime]
                    sp_chain = chain_of[s_prime_first]
                    sp_pos = pos_of[s_prime_first]
                    queries += len(observers)
                    for load, load_last in observers:
                        if vec_from[load_last][sp_chain] <= sp_pos:
                            continue  # redirected edge already implied
                        reason = EdgeReason(
                            "R7",
                            f"load n{load} observed store n{store}, which "
                            f"precedes store n{s_prime} (Value axiom)",
                        )
                        if add_edge(load, s_prime, reason):
                            added += 1
            stats.vc_queries += queries
            if not added:
                return None
            stats.inferred_edges += added

    def _r6_candidates(
        self, addr: int, load: int, target: int, target_first: int
    ) -> List[int]:
        """Same-address store predecessors of ``load`` not already
        ordered before the observed store's group entry point."""
        out: List[int] = []
        chains = self._chains
        vt_load = self._vec_to[load]
        vt_target = self._vec_to[target_first]
        queries = 0
        for chain, positions in chains.addr_stores.get(addr, ()):
            queries += 1
            lo = vt_target[chain]
            hi = vt_load[chain]
            if hi <= lo:
                continue
            members = chains.nodes[chain]
            for pos in positions[bisect_right(positions, lo):
                                 bisect_right(positions, hi)]:
                node = members[pos]
                if node != target:
                    out.append(node)
        self._stats.vc_queries += queries
        return out

    def _r7_candidates(self, addr: int, store: int) -> List[int]:
        """Same-address store successors of ``store`` (excluding it)."""
        out: List[int] = []
        chains = self._chains
        vf = self._vec_from[store]
        inf = self._inf
        queries = 0
        for chain, positions in chains.addr_stores.get(addr, ()):
            queries += 1
            lo = vf[chain]
            if lo >= inf:
                continue
            members = chains.nodes[chain]
            for pos in positions[bisect_left(positions, lo):]:
                node = members[pos]
                if node != store:
                    out.append(node)
        self._stats.vc_queries += queries
        return out

    def _reaches(self, src: int, dst: int) -> bool:
        """O(1) frontier query: is ``dst`` reachable from ``src``?"""
        self._stats.vc_queries += 1
        chains = self._chains
        return self._vec_from[src][chains.chain_of[dst]] <= chains.pos_of[dst]

    # ------------------------------------------------------------------
    # Incremental edge insertion
    # ------------------------------------------------------------------

    def _add_edge(self, u: int, v: int, reason: EdgeReason) -> bool:
        """Insert ``u -> v``; keep order + frontiers current.

        Raises:
            CycleDetected: the redirected edge closes a cycle (found by
                the Pearce–Kelly forward search, or as a self-loop).
        """
        graph = self._graph
        u, v = graph.redirect(u, v)
        if u == v:
            raise CycleDetected(u, v)
        if graph.has_edge(u, v):
            return False
        # Order-compatible edges (the overwhelming majority) skip the
        # Pearce–Kelly call entirely; _reorder repeats this guard for
        # callers that reach it directly.
        if self._ord[u] >= self._ord[v]:
            self._reorder(u, v, reason)
        graph.add_redirected(u, v, reason)
        self._push_forward(u, v)
        self._push_backward(u, v)
        return True

    def _reorder(self, u: int, v: int, reason: EdgeReason) -> None:
        """Pearce–Kelly local reordering for the insertion of ``u -> v``.

        When ``u`` already precedes ``v`` in the maintained order the
        edge is order-compatible and nothing is visited.  Otherwise the
        affected region — forward from ``v`` up to ``u``'s index,
        backward from ``u`` down to ``v``'s index — is discovered and
        its order indices are redealt, ancestors first.  The forward
        search reaching ``u`` is a cycle: the edge is recorded (so the
        witness can explain it) and :class:`CycleDetected` is raised.
        """
        ord_ = self._ord
        upper = ord_[u]
        if upper < ord_[v]:
            return
        graph = self._graph
        succ, pred = graph.succ, graph.pred
        lower = ord_[v]
        forward = {v}
        stack = [v]
        while stack:
            node = stack.pop()
            for child in succ[node]:
                if child == u:
                    # Path v ~> u exists: u -> v closes a cycle.  Record
                    # the edge so cycle_reasons can name its rule.
                    graph.add_redirected(u, v, reason)
                    raise CycleDetected(u, v)
                if child not in forward and ord_[child] <= upper:
                    forward.add(child)
                    stack.append(child)
        backward = {u}
        stack = [u]
        while stack:
            node = stack.pop()
            for parent in pred[node]:
                if parent not in backward and ord_[parent] >= lower:
                    backward.add(parent)
                    stack.append(parent)
        self._stats.reorder_visits += len(forward) + len(backward)
        affected = sorted(backward, key=ord_.__getitem__)
        affected += sorted(forward, key=ord_.__getitem__)
        slots = sorted(ord_[node] for node in affected)
        for node, slot in zip(affected, slots):
            ord_[node] = slot

    def _push_forward(self, u: int, v: int) -> None:
        """Propagate ``u``'s backward frontier into ``v``'s descendants."""
        vec_to = self._vec_to
        succ = self._graph.succ
        entries = [
            (chain, pos) for chain, pos in enumerate(vec_to[u]) if pos >= 0
        ]
        stack = [(v, entries)]
        while stack:
            node, candidate = stack.pop()
            vec = vec_to[node]
            improved = [
                (chain, pos) for chain, pos in candidate if pos > vec[chain]
            ]
            if not improved:
                continue
            for chain, pos in improved:
                vec[chain] = pos
            for child in succ[node]:
                stack.append((child, improved))

    def _push_backward(self, u: int, v: int) -> None:
        """Propagate ``v``'s forward frontier into ``u``'s ancestors."""
        vec_from = self._vec_from
        pred = self._graph.pred
        inf = self._inf
        entries = [
            (chain, pos) for chain, pos in enumerate(vec_from[v]) if pos < inf
        ]
        stack = [(u, entries)]
        while stack:
            node, candidate = stack.pop()
            vec = vec_from[node]
            improved = [
                (chain, pos) for chain, pos in candidate if pos < vec[chain]
            ]
            if not improved:
                continue
            for chain, pos in improved:
                vec[chain] = pos
            for parent in pred[node]:
                stack.append((parent, improved))

    # ------------------------------------------------------------------

    def _found_cycle(
        self, aprog: AnalysisProgram, graph: ConstraintGraph
    ) -> Violation:
        cycle = graph.find_cycle()
        assert cycle is not None
        return self._cycle_violation(aprog, graph, cycle)

    def _violation(
        self, aprog: AnalysisProgram, graph: ConstraintGraph, exc: CycleDetected
    ) -> Violation:
        """Build a cycle witness from the edge that closed the cycle."""
        if exc.u == exc.v:
            cycle = [exc.u]
        else:
            cycle = graph.cycle_through_edge(exc.u, exc.v)
        return self._cycle_violation(aprog, graph, cycle)

    def _cycle_violation(
        self, aprog: AnalysisProgram, graph: ConstraintGraph, cycle: List[int]
    ) -> Violation:
        return Violation(
            kind=ViolationKind.CYCLE,
            message=(
                f"the inferred global memory order contains a cycle of "
                f"{len(cycle)} operation(s): "
                + " <= ".join(aprog.describe(n) for n in cycle)
                + f" <= {aprog.describe(cycle[0])}"
            ),
            cycle=cycle,
            reasons=graph.cycle_reasons(cycle),
        )
