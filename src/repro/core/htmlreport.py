"""Interactive HTML debug report (Sec. 3.4).

"When a TSO violation is detected, TSOtool emits a graphical
representation of the relevant area in the analysis graph.  The user can
click on each edge in the graph to understand the reason for its
existence, and hence follow the chain of reasoning used by TSOtool to
infer the edge."

:func:`render_html` produces a self-contained HTML page (no JavaScript,
no external assets) for a :class:`~repro.core.result.CheckResult`:

* the per-processor operation columns, with cycle members highlighted;
* the violation cycle as an ordered list of clickable edges — each
  ``<details>`` element expands to the rule that created the edge and
  its full justification;
* the surrounding edges of the relevant region, similarly expandable;
* the verdict header with the analysis statistics.

Pairs with :meth:`~repro.core.result.CheckResult.to_dot` (for Graphviz
users) and :meth:`~repro.core.result.CheckResult.dump_graph` (the plain
text form).
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Set, Tuple

from repro.core.result import CheckResult, EdgeReason, ViolationKind

_STYLE = """
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       margin: 2rem; color: #1a1a1a; background: #fcfcfa; }
h1 { font-size: 1.2rem; }
h2 { font-size: 1.0rem; margin-top: 1.6rem; }
.verdict-pass { color: #0a6b2d; } .verdict-fail { color: #a31515; }
.columns { display: flex; gap: 1.5rem; flex-wrap: wrap; }
.proc { border: 1px solid #ddd; border-radius: 6px; padding: .6rem .9rem; }
.proc h3 { margin: 0 0 .4rem 0; font-size: .9rem; }
.op { padding: .05rem .3rem; white-space: nowrap; }
.cycle-node { background: #ffe3e3; border-radius: 4px; font-weight: 600; }
details { margin: .25rem 0; border-left: 3px solid #bbb; padding-left: .6rem; }
details.cycle-edge { border-left-color: #a31515; }
summary { cursor: pointer; }
.rule { display: inline-block; min-width: 3.2rem; font-weight: 700; }
.reason { margin: .3rem 0 .4rem .5rem; color: #444; }
.stats { color: #666; font-size: .85rem; }
"""


def _edge_details(
    src: str, dst: str, reason: EdgeReason, cycle: bool
) -> str:
    cls = ' class="cycle-edge"' if cycle else ""
    detail = html.escape(reason.detail or "program-order/static edge")
    return (
        f"<details{cls}><summary><span class=\"rule\">{html.escape(reason.rule)}"
        f"</span> {html.escape(src)} &le; {html.escape(dst)}</summary>"
        f"<div class=\"reason\">{detail}</div></details>"
    )


def render_html(result: CheckResult, title: str = "TSOtool analysis") -> str:
    """Render a check result as a self-contained HTML debug page.

    Passing runs get the verdict header and the operation columns;
    failing runs additionally get the clickable violation cycle and the
    relevant-region edges.

    Raises:
        ValueError: if the result carries no analysis program.
    """
    aprog = result.aprog
    if aprog is None:
        raise ValueError("result has no analysis program attached")

    cycle = list(result.violation.cycle) if result.violation else []
    cycle_set = set(cycle)
    cycle_edges: Set[Tuple[int, int]] = {
        (cycle[i], cycle[(i + 1) % len(cycle)]) for i in range(len(cycle))
    }

    parts: List[str] = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
    ]
    verdict_cls = "verdict-pass" if result.ok else "verdict-fail"
    verdict = "PASS" if result.ok else "FAIL"
    parts.append(
        f"<p class='{verdict_cls}'><strong>{result.model_name} check: "
        f"{verdict}</strong></p>"
    )
    stats = result.stats
    parts.append(
        f"<p class='stats'>{stats.nodes} nodes, {stats.edges} explicit edges "
        f"({stats.static_edges} static / {stats.observed_edges} observed / "
        f"{stats.inferred_edges} inferred), {stats.iterations} fixed-point "
        f"iteration(s), engine {html.escape(result.engine)}</p>"
    )

    # Per-processor operation columns.
    parts.append("<h2>operations</h2><div class='columns'>")
    roots = [op for op in aprog.ops if op.is_root]
    if roots:
        parts.append("<div class='proc'><h3>initial values</h3>")
        for op in roots:
            parts.append(_op_div(aprog, op.id, cycle_set))
        parts.append("</div>")
    for pid, stream in enumerate(aprog.per_proc):
        parts.append(f"<div class='proc'><h3>P{pid}</h3>")
        for op_id in stream:
            parts.append(_op_div(aprog, op_id, cycle_set))
        parts.append("</div>")
    parts.append("</div>")

    if result.violation is not None:
        parts.append("<h2>violation</h2>")
        parts.append(
            f"<p>{html.escape(result.violation.message)}</p>"
        )
        if result.violation.kind == ViolationKind.CYCLE and cycle:
            parts.append(
                "<h2>the cycle — click an edge for its justification</h2>"
            )
            for i, node in enumerate(cycle):
                nxt = cycle[(i + 1) % len(cycle)]
                reason = (
                    result.violation.reasons[i]
                    if i < len(result.violation.reasons)
                    else EdgeReason("?")
                )
                parts.append(
                    _edge_details(
                        aprog.describe(node), aprog.describe(nxt), reason, True
                    )
                )

    # Relevant-region edges (the paper's "relevant area in the analysis
    # graph"): explicit edges touching a cycle node, or everything on a
    # pass (small graphs only, to keep the page readable).
    if result.graph is not None:
        reasons: Dict[Tuple[int, int], EdgeReason] = result.graph.reasons
        if cycle_set:
            region = {
                edge: reason for edge, reason in reasons.items()
                if (edge[0] in cycle_set or edge[1] in cycle_set)
                and edge not in cycle_edges
            }
            header = "other edges touching the cycle"
        elif aprog.n <= 64:
            region = dict(reasons)
            header = "all inferred edges"
        else:
            region, header = {}, ""
        if region:
            parts.append(f"<h2>{header}</h2>")
            for (u, v), reason in sorted(region.items()):
                parts.append(
                    _edge_details(
                        aprog.describe(u), aprog.describe(v), reason, False
                    )
                )

    parts.append("</body></html>")
    return "\n".join(parts)


def _op_div(aprog, op_id: int, cycle_set: Set[int]) -> str:
    cls = "op cycle-node" if op_id in cycle_set else "op"
    return f"<div class='{cls}'>{html.escape(aprog.describe(op_id))}</div>"
