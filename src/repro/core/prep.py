"""Shared per-engine setup for the R1–R7 checker engines.

Every engine needs the same derived views of an
:class:`~repro.model.expansion.AnalysisProgram` before its fixed point
starts: the loads with their observed-store targets resolved (and the
atomic-group endpoints the closure pruning must respect), the stores
with their observer loads, and the per-node ``group_first`` table.
Historically each engine rebuilt these independently — the baseline
even re-resolved ``map_value`` every fixed-point pass — and the set-bit
iteration helpers were duplicated between the int-bitset and numpy
engines.  This module is the single home for all of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.core.policy import MemoryModel
from repro.model.expansion import AnalysisProgram, OpKind

#: One R6 work item: (load id, word address, observed store,
#: group-first node of the observed store — where redirected incoming
#: edges actually land).
LoadItem = Tuple[int, int, int, int]

#: One R7 work item: (store id, word address, observer loads as
#: (load id, group-last node of the load — where redirected outgoing
#: edges actually leave from) pairs).
StoreItem = Tuple[int, int, List[Tuple[int, int]]]


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def iter_packed_bits(row) -> List[int]:
    """Set-bit indices of a packed uint64 word sequence (numpy row).

    Word ``i`` holds bits ``[64*i, 64*i+64)``; only nonzero words are
    expanded, so sparse rows stay cheap.
    """
    import numpy as np

    out: List[int] = []
    for word_index in np.flatnonzero(row):
        word = int(row[word_index])
        base = int(word_index) << 6
        while word:
            low = word & -word
            out.append(base + low.bit_length() - 1)
            word ^= low
    return out


class Chains:
    """A chain decomposition of the analysis nodes, derived from the
    memory model's static guarantees.

    Every node belongs to exactly one chain, and consecutive members of
    a chain are always ordered by the static edges (directly, or through
    their atomic group's internal ``atomic`` chain after redirection).
    That path property is what makes a frontier entry exact: if chain
    member ``c[i]`` reaches ``v``, so does every ``c[j]`` with
    ``j < i``.

    The decomposition, per processor:

    * loads and membars in program order (``load_load`` models — all
      shipped ones; otherwise membars chain alone and loads are
      singletons);
    * stores in program order when the model keeps ``store_store``
      (TSO/SC; under SC the load and store chains merge into one full
      program-order chain);
    * stores per address when only ``same_addr_store_store`` survives
      (PSO per-location coherence);
    * singleton chains otherwise.

    Each synthetic root store is its own singleton chain (roots are
    mutually unordered).

    Shared by the scalar vc engine and the kernel-accelerated vck
    engine — both consume the same decomposition, per-address store
    index, and candidate semantics (the vectorized path batches the
    same interval queries; see :mod:`repro.core.kernels`).
    """

    def __init__(self, aprog: AnalysisProgram, model: MemoryModel) -> None:
        n = aprog.n
        self.nodes: List[List[int]] = []
        self.chain_of = [0] * n
        self.pos_of = [0] * n
        for addr in sorted(aprog.roots):
            self._new_chain([aprog.roots[addr]])
        full_po = (
            model.load_load and model.load_store
            and model.store_store and model.store_load
        )
        for stream in aprog.per_proc:
            if full_po:
                self._new_chain(list(stream))
                continue
            ops = aprog.ops
            if model.load_load:
                self._new_chain([
                    op_id for op_id in stream
                    if ops[op_id].kind != OpKind.STORE
                ])
            else:
                self._new_chain([
                    op_id for op_id in stream
                    if ops[op_id].kind == OpKind.MEMBAR
                ])
                for op_id in stream:
                    if ops[op_id].kind == OpKind.LOAD:
                        self._new_chain([op_id])
            stores = [op_id for op_id in stream if ops[op_id].is_store]
            if model.store_store:
                self._new_chain(stores)
            elif model.same_addr_store_store:
                by_addr: Dict[int, List[int]] = {}
                for store in stores:
                    by_addr.setdefault(ops[store].addr, []).append(store)
                for addr in sorted(by_addr):
                    self._new_chain(by_addr[addr])
            else:
                for store in stores:
                    self._new_chain([store])
        self.k = len(self.nodes)
        # Per-address store index: addr -> [(chain, sorted positions)],
        # the slices every R6/R7 interval query searches.
        self.addr_stores: Dict[int, List[Tuple[int, List[int]]]] = {}
        per_chain: Dict[Tuple[int, int], List[int]] = {}
        for op in aprog.ops:
            if op.is_store:
                key = (op.addr, self.chain_of[op.id])
                per_chain.setdefault(key, []).append(self.pos_of[op.id])
        for (addr, chain), positions in per_chain.items():
            positions.sort()
            self.addr_stores.setdefault(addr, []).append((chain, positions))

    def _new_chain(self, members: List[int]) -> None:
        if not members:
            return
        chain = len(self.nodes)
        self.nodes.append(members)
        for pos, node in enumerate(members):
            self.chain_of[node] = chain
            self.pos_of[node] = pos


@dataclass
class EnginePrep:
    """The shared pre-computed views every checker engine consumes.

    Attributes:
        readers: store op id → loads that observed its value.
        loads: R6 work list (see :data:`LoadItem`); loads whose value
            maps to no store are excluded — the precheck has already
            recorded those as failures, so no engine needs to re-resolve
            ``map_value`` per pass.
        stores: R7 work list (see :data:`StoreItem`); stores nobody
            observed are excluded.
        group_first: per-node atomic-group first member (the node
            itself when ungrouped) — incoming redirected edges land
            there.
    """

    readers: Dict[int, List[int]]
    loads: List[LoadItem]
    stores: List[StoreItem]
    group_first: List[int]


def prepare(aprog: AnalysisProgram) -> EnginePrep:
    """Build the shared engine setup for one analysis program."""
    readers = aprog.readers()
    loads: List[LoadItem] = []
    for op in aprog.ops:
        if not op.is_load:
            continue
        target = aprog.map_value(op.addr, op.value)
        if target is None:
            continue  # precheck failure already recorded
        loads.append((op.id, op.addr, target, aprog.group_first(target)))
    stores: List[StoreItem] = [
        (
            op.id,
            op.addr,
            [(ld, aprog.group_last(ld)) for ld in readers[op.id]],
        )
        for op in aprog.ops
        if op.is_store and op.id in readers
    ]
    group_first = [aprog.group_first(i) for i in range(aprog.n)]
    return EnginePrep(
        readers=readers, loads=loads, stores=stores, group_first=group_first
    )
