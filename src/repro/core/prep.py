"""Shared per-engine setup for the R1–R7 checker engines.

Every engine needs the same derived views of an
:class:`~repro.model.expansion.AnalysisProgram` before its fixed point
starts: the loads with their observed-store targets resolved (and the
atomic-group endpoints the closure pruning must respect), the stores
with their observer loads, and the per-node ``group_first`` table.
Historically each engine rebuilt these independently — the baseline
even re-resolved ``map_value`` every fixed-point pass — and the set-bit
iteration helpers were duplicated between the int-bitset and numpy
engines.  This module is the single home for all of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.model.expansion import AnalysisProgram

#: One R6 work item: (load id, word address, observed store,
#: group-first node of the observed store — where redirected incoming
#: edges actually land).
LoadItem = Tuple[int, int, int, int]

#: One R7 work item: (store id, word address, observer loads as
#: (load id, group-last node of the load — where redirected outgoing
#: edges actually leave from) pairs).
StoreItem = Tuple[int, int, List[Tuple[int, int]]]


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def iter_packed_bits(row) -> List[int]:
    """Set-bit indices of a packed uint64 word sequence (numpy row).

    Word ``i`` holds bits ``[64*i, 64*i+64)``; only nonzero words are
    expanded, so sparse rows stay cheap.
    """
    import numpy as np

    out: List[int] = []
    for word_index in np.flatnonzero(row):
        word = int(row[word_index])
        base = int(word_index) << 6
        while word:
            low = word & -word
            out.append(base + low.bit_length() - 1)
            word ^= low
    return out


@dataclass
class EnginePrep:
    """The shared pre-computed views every checker engine consumes.

    Attributes:
        readers: store op id → loads that observed its value.
        loads: R6 work list (see :data:`LoadItem`); loads whose value
            maps to no store are excluded — the precheck has already
            recorded those as failures, so no engine needs to re-resolve
            ``map_value`` per pass.
        stores: R7 work list (see :data:`StoreItem`); stores nobody
            observed are excluded.
        group_first: per-node atomic-group first member (the node
            itself when ungrouped) — incoming redirected edges land
            there.
    """

    readers: Dict[int, List[int]]
    loads: List[LoadItem]
    stores: List[StoreItem]
    group_first: List[int]


def prepare(aprog: AnalysisProgram) -> EnginePrep:
    """Build the shared engine setup for one analysis program."""
    readers = aprog.readers()
    loads: List[LoadItem] = []
    for op in aprog.ops:
        if not op.is_load:
            continue
        target = aprog.map_value(op.addr, op.value)
        if target is None:
            continue  # precheck failure already recorded
        loads.append((op.id, op.addr, target, aprog.group_first(target)))
    stores: List[StoreItem] = [
        (
            op.id,
            op.addr,
            [(ld, aprog.group_last(ld)) for ld in readers[op.id]],
        )
        for op in aprog.ops
        if op.is_store and op.id in readers
    ]
    group_first = [aprog.group_first(i) for i in range(aprog.n)]
    return EnginePrep(
        readers=readers, loads=loads, stores=stores, group_first=group_first
    )
