"""A numpy bit-matrix checker engine.

Third implementation of the Fig. 2 rules, alongside the traversal
baseline and the Python-int bitset closure engine: reachability is held
as a dense ``(n, ceil(n/64))`` uint64 matrix — row ``v`` of ``reach_from``
is the descendant set of ``v`` packed 64 nodes per word — and closure
rebuilds are the word-wise OR sweeps of
:func:`repro.core.kernels.packed_closure`, shared with (and unit-tested
against scalar references in) the kernel compute layer.

Why keep several engines?  They answer different questions
(``docs/engines.md`` has the full comparison):

* the baseline is the literal paper algorithm (and measures traversal
  behaviour, Fig. 9);
* the int-bitset engine is the fastest at laptop scale (Python ints do
  word-wise OR in C with almost no per-call overhead);
* this engine demonstrates the dense-matrix formulation (the natural
  port to a vectorized runtime) and serves as a third independent
  implementation for the engine-agreement property tests —
  disagreement between any two engines localizes a bug immediately.

Verdicts are identical to the other engines by construction and by
``tests/test_properties.py``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.core import kernels
from repro.core.checker import observed_edges, precheck_violation
from repro.core.closure import topological_order
from repro.core.graph import ConstraintGraph, CycleDetected
from repro.core.policy import MemoryModel, TSO, static_edges
from repro.core.prep import iter_packed_bits, prepare
from repro.core.result import (
    CheckResult,
    CheckStats,
    EdgeReason,
    Violation,
    ViolationKind,
)
from repro.model.expansion import AnalysisProgram


class MatrixChecker:
    """Fig. 2 with numpy packed-bit reachability matrices."""

    name = "matrix"

    def __init__(self, model: MemoryModel = TSO) -> None:
        self.model = model

    def run(self, aprog: AnalysisProgram) -> CheckResult:
        """Check one analysis program; return the verdict with a witness."""
        start = time.perf_counter()
        stats = CheckStats(nodes=aprog.n)
        self._graph: Optional[ConstraintGraph] = None

        violation = precheck_violation(aprog)
        if violation is None:
            violation = self._analyze(aprog, stats)

        stats.seconds = time.perf_counter() - start
        telemetry.record_check(stats, self.name)
        return CheckResult(
            ok=violation is None,
            model_name=self.model.name,
            engine=self.name,
            violation=violation,
            stats=stats,
            aprog=aprog,
            graph=self._graph,
        )

    # ------------------------------------------------------------------

    def _analyze(
        self, aprog: AnalysisProgram, stats: CheckStats
    ) -> Optional[Violation]:
        n = aprog.n
        graph = ConstraintGraph(aprog)
        self._graph = graph

        try:
            for u, v, rule in static_edges(aprog, self.model):
                if graph.add_edge(u, v, EdgeReason(rule, "program order")):
                    stats.static_edges += 1
            for u, v, reason, _rule in observed_edges(aprog):
                if graph.add_edge(u, v, reason):
                    stats.observed_edges += 1
        except CycleDetected as exc:
            return self._violation(aprog, graph, exc)

        stores_rows: Dict[int, np.ndarray] = {
            addr: kernels.mask_row(n, addr_stores)
            for addr, addr_stores in aprog.stores_by_addr.items()
        }

        prep = prepare(aprog)
        loads, stores, group_first = prep.loads, prep.stores, prep.group_first

        while True:
            order = topological_order(graph)
            if order is None:
                return self._found_cycle(aprog, graph)
            reach_from, reach_to = kernels.packed_closure(
                n, order, graph.succ, graph.pred
            )
            stats.closure_rebuilds += 1
            stats.kernel_batches += 2

            stats.iterations += 1
            added = 0
            try:
                for load, addr, target, target_first in loads:
                    mask = reach_to[load] & stores_rows[addr] & ~reach_to[target_first]
                    candidates = self._members(mask)
                    for s_prime in candidates:
                        if s_prime == target:
                            continue
                        reason = EdgeReason(
                            "R6",
                            f"store n{s_prime} precedes load n{load}, which "
                            f"observed store n{target} (Value axiom)",
                        )
                        if graph.add_edge(s_prime, target, reason):
                            added += 1
                for store, addr, observers in stores:
                    mask = reach_from[store] & stores_rows[addr]
                    for s_prime in self._members(mask):
                        if s_prime == store:
                            continue
                        s_prime_first = group_first[s_prime]
                        for load, load_last in observers:
                            if kernels.packed_bit(
                                reach_from, load_last, s_prime_first
                            ):
                                continue  # redirected edge already implied
                            reason = EdgeReason(
                                "R7",
                                f"load n{load} observed store n{store}, which "
                                f"precedes store n{s_prime} (Value axiom)",
                            )
                            if graph.add_edge(load, s_prime, reason):
                                added += 1
            except CycleDetected as exc:
                return self._violation(aprog, graph, exc)
            if not added:
                return None
            stats.inferred_edges += added

    @staticmethod
    def _members(mask: np.ndarray) -> List[int]:
        return iter_packed_bits(mask)

    # ------------------------------------------------------------------

    def _found_cycle(self, aprog, graph) -> Violation:
        cycle = graph.find_cycle()
        assert cycle is not None
        return self._cycle_violation(aprog, graph, cycle)

    def _violation(self, aprog, graph, exc: CycleDetected) -> Violation:
        if exc.u == exc.v:
            cycle = [exc.u]
        else:
            cycle = graph.cycle_through_edge(exc.u, exc.v)
        return self._cycle_violation(aprog, graph, cycle)

    def _cycle_violation(self, aprog, graph, cycle: List[int]) -> Violation:
        return Violation(
            kind=ViolationKind.CYCLE,
            message=(
                f"the inferred global memory order contains a cycle of "
                f"{len(cycle)} operation(s): "
                + " <= ".join(aprog.describe(node) for node in cycle)
                + f" <= {aprog.describe(cycle[0])}"
            ),
            cycle=cycle,
            reasons=graph.cycle_reasons(cycle),
        )
