"""The reference checker: a literal implementation of Fig. 2.

Rules applied, exactly as in the paper (Sec. 4); throughout, ``S``, ``S'``
and ``L`` are accesses to the same address, ``map`` is the value→store map
and ``;`` / ``<=`` are program / global memory order:

* **R1–R3** (static): program-order edges per the LoadOp, StoreStore and
  Membar axioms — produced by :func:`repro.core.policy.static_edges`.
* **R4** (observed): ``Val[L]=Val[S]  and  not S;L   =>  S <= L``.
* **R5** (observed): ``Val[L]=Val[S]  and  S';L      =>  S' <= S``
  where ``S'`` is the last same-address store preceding ``L`` in program
  order.
* **R6** (inferred): ``Val[L]=Val[S]  and  S' <= L   =>  S' <= S``.
* **R7** (inferred): ``Val[L]=Val[S]  and  S  <= S'  =>  L <= S'``.

R6/R7 are iterated to a fixed point; the graph is checked for cycles after
every iteration (the paper flags a violation as soon as a cycle is found).
This engine performs the predecessor/successor discovery for R6/R7 by
plain breadth-first traversal each iteration — the straightforward reading
of the pseudo-code, kept as the readable reference and as the ablation
baseline for :class:`repro.core.closure.ClosureChecker`.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple

from repro import telemetry
from repro.core.graph import ConstraintGraph, CycleDetected
from repro.core.policy import MemoryModel, TSO, static_edges
from repro.core.prep import prepare
from repro.core.result import (
    CheckResult,
    CheckStats,
    EdgeReason,
    Violation,
    ViolationKind,
)
from repro.model.expansion import AnalysisProgram, OpKind


def precheck_violation(aprog: AnalysisProgram) -> Optional[Violation]:
    """Turn expansion-time failures into a Violation (or None)."""
    if not aprog.precheck_failures:
        return None
    codes = {code for code, _ in aprog.precheck_failures}
    kind = (
        ViolationKind.UNMAPPED_VALUE if codes == {"unmapped"} else ViolationKind.PRECHECK
    )
    message = "; ".join(msg for _, msg in aprog.precheck_failures)
    return Violation(kind=kind, message=message)


def po_prev_stores(aprog: AnalysisProgram) -> Dict[int, int]:
    """For each load, the last same-address store preceding it in program
    order (the ``S'`` of rule R5); loads with no such store are absent."""
    result: Dict[int, int] = {}
    for stream in aprog.per_proc:
        last_store_to: Dict[int, int] = {}
        for op_id in stream:
            op = aprog.ops[op_id]
            if op.kind == OpKind.LOAD:
                prev = last_store_to.get(op.addr)
                if prev is not None:
                    result[op_id] = prev
            elif op.kind == OpKind.STORE:
                last_store_to[op.addr] = op_id
    return result


def observed_edges(
    aprog: AnalysisProgram,
) -> Iterable[Tuple[int, int, EdgeReason, str]]:
    """Yield the R4/R5 edges ``(src, dst, reason, rule)`` for all loads."""
    prev_store = po_prev_stores(aprog)
    for op in aprog.ops:
        if not op.is_load:
            continue
        load = op.id
        store = aprog.map_value(op.addr, op.value)
        if store is None:
            continue  # precheck failure already recorded
        s_op = aprog.ops[store]
        same_proc_earlier = (
            s_op.proc == op.proc and not s_op.is_root and s_op.po < op.po
        )
        if not same_proc_earlier:
            yield store, load, EdgeReason(
                "R4",
                f"{aprog.describe(load)} observed the value of "
                f"{aprog.describe(store)}, which is not an earlier store of "
                "the same processor, so the store must be globally visible "
                "before the load binds (Value axiom)",
            ), "R4"
        s_prime = prev_store.get(load)
        if s_prime is not None and s_prime != store:
            yield s_prime, store, EdgeReason(
                "R5",
                f"{aprog.describe(load)} observed {aprog.describe(store)} "
                f"despite the program-order-earlier {aprog.describe(s_prime)}; "
                "by the Value axiom that earlier store must be globally "
                "ordered before the observed one",
            ), "R5"


class BaselineChecker:
    """Fig. 2 implemented with per-iteration graph traversal."""

    name = "baseline"

    def __init__(self, model: MemoryModel = TSO) -> None:
        self.model = model

    def run(self, aprog: AnalysisProgram) -> CheckResult:
        """Check one analysis program; return the verdict with a witness."""
        start = time.perf_counter()
        stats = CheckStats(nodes=aprog.n)

        violation = precheck_violation(aprog)
        if violation is not None:
            stats.seconds = time.perf_counter() - start
            telemetry.record_check(stats, self.name)
            return CheckResult(
                ok=False, model_name=self.model.name, engine=self.name,
                violation=violation, stats=stats, aprog=aprog,
            )

        graph = ConstraintGraph(aprog)
        self._graph = graph
        try:
            for u, v, rule in static_edges(aprog, self.model):
                if graph.add_edge(u, v, EdgeReason(rule, "program order")):
                    stats.static_edges += 1
            for u, v, reason, _rule in observed_edges(aprog):
                if graph.add_edge(u, v, reason):
                    stats.observed_edges += 1
            violation = self._fixed_point(aprog, graph, stats)
        except CycleDetected as exc:
            violation = self._self_loop_violation(aprog, graph, exc)

        stats.seconds = time.perf_counter() - start
        telemetry.record_check(stats, self.name)
        return CheckResult(
            ok=violation is None,
            model_name=self.model.name,
            engine=self.name,
            violation=violation,
            stats=stats,
            aprog=aprog,
            graph=graph,
        )

    # ------------------------------------------------------------------

    def _fixed_point(
        self, aprog: AnalysisProgram, graph: ConstraintGraph, stats: CheckStats
    ) -> Optional[Violation]:
        """Iterate R6/R7 until no edges are added; cycle-check each pass.

        The R6/R7 work lists come from :func:`repro.core.prep.prepare`,
        computed once: loads arrive with their observed store already
        resolved (loads whose value maps to no store — a recorded
        precheck failure — are excluded up front rather than re-resolved
        and re-skipped every pass), and stores nobody observed never
        enter the R7 loop at all.
        """
        prep = prepare(aprog)

        # Cycle may already exist from static + observed edges.
        violation = self._cycle_violation(aprog, graph)
        if violation is not None:
            return violation

        changed = True
        while changed:
            changed = False
            stats.iterations += 1
            for load, addr, target, _target_first in prep.loads:
                changed |= self._apply_r6(aprog, graph, stats, load, addr, target)
            for store, addr, observers in prep.stores:
                changed |= self._apply_r7(
                    aprog, graph, stats, store, addr, observers
                )
            violation = self._cycle_violation(aprog, graph)
            if violation is not None:
                return violation
        return None

    def _apply_r6(
        self, aprog: AnalysisProgram, graph: ConstraintGraph,
        stats: CheckStats, load: int, addr: int, target: int,
    ) -> bool:
        """R6: every same-address store predecessor of L precedes map(L)."""
        changed = False
        visited = self._reachable(graph, load, addr, forward=False)
        stats.traversals += 1
        stats.traversal_visits += len(visited)
        for s_prime in visited:
            node = aprog.ops[s_prime]
            if not node.is_store or node.addr != addr or s_prime == target:
                continue
            reason = EdgeReason(
                "R6",
                f"{aprog.describe(s_prime)} precedes {aprog.describe(load)} "
                f"in the global order, and the load observed "
                f"{aprog.describe(target)}; by the Value axiom the preceding "
                "store must come before the observed one",
            )
            if graph.add_edge(s_prime, target, reason):
                stats.inferred_edges += 1
                changed = True
        return changed

    def _apply_r7(
        self, aprog: AnalysisProgram, graph: ConstraintGraph,
        stats: CheckStats, store: int, addr: int,
        observers: List[Tuple[int, int]],
    ) -> bool:
        """R7: loads of S precede every same-address store successor of S."""
        changed = False
        visited = self._reachable(graph, store, addr, forward=True)
        stats.traversals += 1
        stats.traversal_visits += len(visited)
        for s_prime in visited:
            node = aprog.ops[s_prime]
            if not node.is_store or node.addr != addr or s_prime == store:
                continue
            for load, _load_last in observers:
                reason = EdgeReason(
                    "R7",
                    f"{aprog.describe(load)} observed {aprog.describe(store)} "
                    f"which precedes {aprog.describe(s_prime)}; had the load "
                    "bound after the later store it could not have observed "
                    "the earlier one (Value axiom)",
                )
                if graph.add_edge(load, s_prime, reason):
                    stats.inferred_edges += 1
                    changed = True
        return changed

    def _reachable(
        self, graph: ConstraintGraph, start: int, addr: int, forward: bool
    ) -> List[int]:
        """Nodes reachable from ``start`` (excluding it), by *bounded* BFS.

        This is the paper's traversal optimization ("we implement
        optimizations to bound the predecessor and successor subgraph
        traversal when it is known that no new constraints can be
        added"): the search does not expand beyond a store to the same
        address.  Any same-address store *behind* one already found is
        ordered through it by transitivity, so the edge R6/R7 would add
        for it is implied by the edge added for the nearer store —
        nothing new can come from continuing.

        The bounding is also what gives the analyzer the paper's Fig. 9
        behaviour: with few shared addresses, traversals stop almost
        immediately; with many, they wander much further before hitting
        a same-address store.
        """
        aprog = graph.aprog
        adj = graph.succ if forward else graph.pred
        seen = {start}
        frontier = [start]
        order: List[int] = []
        while frontier:
            nxt = []
            for node in frontier:
                for child in adj[node]:
                    if child in seen:
                        continue
                    seen.add(child)
                    order.append(child)
                    child_op = aprog.ops[child]
                    if child_op.is_store and child_op.addr == addr:
                        continue  # bound: do not expand past it
                    nxt.append(child)
            frontier = nxt
        return order

    def _cycle_violation(
        self, aprog: AnalysisProgram, graph: ConstraintGraph
    ) -> Optional[Violation]:
        cycle = graph.find_cycle()
        if cycle is None:
            return None
        return Violation(
            kind=ViolationKind.CYCLE,
            message=(
                f"the inferred global memory order contains a cycle of "
                f"{len(cycle)} operation(s): "
                + " <= ".join(aprog.describe(n) for n in cycle)
                + f" <= {aprog.describe(cycle[0])}"
            ),
            cycle=cycle,
            reasons=graph.cycle_reasons(cycle),
        )

    def _self_loop_violation(
        self, aprog: AnalysisProgram, graph: ConstraintGraph, exc: CycleDetected
    ) -> Violation:
        return Violation(
            kind=ViolationKind.CYCLE,
            message=(
                f"operation {aprog.describe(exc.u)} is required to precede "
                "itself (atomic-group redirection collapsed an inferred edge "
                "into a self-loop)"
            ),
            cycle=[exc.u],
            reasons=[EdgeReason("?", "self-loop")],
        )
