"""Vectorized compute kernels for the chain-frontier checker engines.

The vc engine (``core/vc.py``) made the R1–R7 analysis incremental:
frontier vectors over a chain decomposition answer R6/R7 candidate
queries in O(k), and Pearce–Kelly keeps cycle detection local.  What is
left on the table at paper scale is pure interpreter overhead — per-item
``bisect`` calls, per-(candidate, observer) suppression tests, and
per-entry frontier merges are all tight Python loops over small numbers.
This module is the compute layer that batches those loops into a few
array operations per *address* per fixed-point round:

* :func:`build_frontiers` — both frontier matrices as row-major
  ``(n, k)`` int64 arrays via the initial closure DP: the frontier
  merge is ``np.maximum``/``np.minimum`` over parent/child chain rows,
  one row per node in topological order (scalar reference:
  :func:`build_frontiers_scalar`).
* :func:`refresh_forward`/:func:`refresh_backward` — delta closure
  propagation: after a round of edge inserts, re-close the frontier
  matrices by re-merging only the rows downstream of a change, in
  topological order.  One wavefront sweep per round replaces the scalar
  engine's per-edge flood (hundreds of thousands of single-entry
  updates at paper scale).
* :class:`AddrSpanIndex` + :func:`r6_spans`/:func:`r7_spans` — batched
  R6/R7 candidate discovery.  Each address's per-chain sorted store
  positions are concatenated into one strictly increasing array by
  offsetting chain ``j``'s positions by ``j * (n + 2)``, so *all* chain
  interval queries of all work items resolve in a single
  ``np.searchsorted`` call instead of two ``bisect`` calls per (item,
  chain).  Watermark vectors make the scan a delta: every (item,
  candidate) pair is enumerated at most once across the whole fixed
  point — sound because frontiers move monotonically and inserted edges
  are permanent, so a pair once examined never needs re-examination.
* :func:`suppression_mask` — the R7 implied-edge test for a whole batch
  of (candidate, observer) pairs as one fancy-indexed compare against
  the backward-frontier view.
* packed-bitset kernels (:func:`packed_closure`, :func:`or_sweep`,
  :func:`mask_row`, :func:`packed_bit`) — closure reachability as
  bit-packed uint64 rows built by word-wise OR sweeps over the
  topological order; the matrix engine's representation, hoisted here
  so it can be unit-tested against the Python-int reference
  (:func:`repro.core.closure.compute_closure`).

numpy is an *optional* extra (``pip install repro[fast]``).  Every
kernel has a scalar reference implementation used both by the
randomized kernel unit tests and as the automatic fallback path — the
vck engine degrades to the shared scalar code rather than failing to
import (see ``docs/performance.md``).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Sequence, Tuple

try:  # pragma: no cover - exercised via the no-numpy fallback test
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False


# ---------------------------------------------------------------------------
# Frontier matrices
# ---------------------------------------------------------------------------


def build_frontiers(
    n: int,
    k: int,
    order: Sequence[int],
    pred: Sequence[Sequence[int]],
    succ: Sequence[Sequence[int]],
    chain_of: Sequence[int],
    pos_of: Sequence[int],
    out=None,
):
    """One-pass closure DP producing both frontier matrices.

    Returns ``(m_to, m_from)`` as ``(n, k)`` int64 arrays: ``m_to[v][c]``
    is the highest position in chain ``c`` reaching ``v`` (-1: none),
    ``m_from[v][c]`` the lowest position reachable from ``v``
    (``n + 1``: none); both include ``v`` itself.  This is the frontier
    merge kernel — ``np.maximum``/``np.minimum`` over the already-final
    parent/child chain rows, nodes visited in topological order
    (scalar reference: :func:`build_frontiers_scalar`).

    ``out``, when given, is a pre-allocated ``(m_to, m_from)`` pair of
    ``(n, k)`` int64 arrays to fill in place instead of allocating —
    the wipe is a constant-fill, so a checker context can hand the same
    buffers to every seed of a batch (see :mod:`repro.core.context`).
    """
    inf = n + 1
    if out is not None:
        m_to, m_from = out
        m_to.fill(-1)
        m_from.fill(inf)
    else:
        m_to = np.full((n, k), -1, dtype=np.int64)
        m_from = np.full((n, k), inf, dtype=np.int64)
    for node in order:
        parents = pred[node]
        row = m_to[node]
        if len(parents) == 1:
            row[:] = m_to[parents[0]]
        elif parents:
            np.maximum.reduce(m_to[parents], axis=0, out=row)
        chain = chain_of[node]
        if pos_of[node] > row[chain]:
            row[chain] = pos_of[node]
    for node in reversed(order):
        children = succ[node]
        row = m_from[node]
        if len(children) == 1:
            row[:] = m_from[children[0]]
        elif children:
            np.minimum.reduce(m_from[children], axis=0, out=row)
        chain = chain_of[node]
        if pos_of[node] < row[chain]:
            row[chain] = pos_of[node]
    return m_to, m_from


def build_frontiers_scalar(
    n: int,
    k: int,
    order: Sequence[int],
    pred: Sequence[Sequence[int]],
    succ: Sequence[Sequence[int]],
    chain_of: Sequence[int],
    pos_of: Sequence[int],
) -> Tuple[List[List[int]], List[List[int]]]:
    """Reference implementation of :func:`build_frontiers` (pure Python,
    row-major lists)."""
    inf = n + 1
    rows_to: List[List[int]] = [None] * n  # type: ignore[list-item]
    for node in order:
        rows = [rows_to[parent] for parent in pred[node]]
        if not rows:
            vec = [-1] * k
        elif len(rows) == 1:
            vec = list(rows[0])
        else:
            vec = list(map(max, *rows))
        if pos_of[node] > vec[chain_of[node]]:
            vec[chain_of[node]] = pos_of[node]
        rows_to[node] = vec
    rows_from: List[List[int]] = [None] * n  # type: ignore[list-item]
    for node in reversed(order):
        rows = [rows_from[child] for child in succ[node]]
        if not rows:
            vec = [inf] * k
        elif len(rows) == 1:
            vec = list(rows[0])
        else:
            vec = list(map(min, *rows))
        if pos_of[node] < vec[chain_of[node]]:
            vec[chain_of[node]] = pos_of[node]
        rows_from[node] = vec
    return rows_to, rows_from


def sweep_schedule(order, neighbors):
    """Level schedule for batched closure sweeps.

    Groups the nodes by longest-path depth from their ``neighbors``
    side (``pred`` for a forward sweep over ``order``, ``succ`` for a
    backward sweep over ``reversed(order)``) and flattens each group's
    ``[node] + neighbors[node]`` lists into reduceat-ready arrays.
    Within a level no node depends on another, so a whole level's rows
    merge in one ``np.maximum.reduceat``/``np.minimum.reduceat`` call.
    Depth-0 nodes have no neighbors and are omitted — their rows are
    already final.

    Returns a list of ``(targets, concat, starts)`` int64 array
    triples, one per level ``>= 1``.
    """
    n = len(order)
    level = [0] * n
    depth = 0
    for node in order:
        lv = 0
        for nb in neighbors[node]:
            lnb = level[nb]
            if lnb >= lv:
                lv = lnb + 1
        level[node] = lv
        if lv > depth:
            depth = lv
    targets: List[List[int]] = [[] for _ in range(depth + 1)]
    concat: List[List[int]] = [[] for _ in range(depth + 1)]
    starts: List[List[int]] = [[] for _ in range(depth + 1)]
    for node in order:
        lv = level[node]
        if lv == 0:
            continue
        starts[lv].append(len(concat[lv]))
        targets[lv].append(node)
        concat[lv].append(node)
        concat[lv].extend(neighbors[node])
    return [
        (
            np.asarray(targets[lv], dtype=np.int64),
            np.asarray(concat[lv], dtype=np.int64),
            np.asarray(starts[lv], dtype=np.int64),
        )
        for lv in range(1, depth + 1)
        if targets[lv]
    ]


def run_sweep(mat, schedule, minimize: bool = False) -> None:
    """Execute a closure sweep over a :func:`sweep_schedule`.

    For each level, gathers every target's ``[own row] + neighbor
    rows`` block and folds each block with one segmented reduce.
    Including the node's own (current) row makes the merge monotone —
    stale entries are valid bounds, so the same sweep serves both the
    from-scratch build and the post-round delta refresh.
    """
    reduce_op = np.minimum.reduceat if minimize else np.maximum.reduceat
    for targets, concat, starts in schedule:
        mat[targets] = reduce_op(mat[concat], starts, axis=0)


def refresh_forward(m_to, order, pred, succ, sources) -> int:
    """Delta closure propagation: re-close ``m_to`` after edge inserts.

    ``sources`` are the target endpoints of edges added since the last
    refresh; their rows were already improved by the insertion-time
    shallow merge, so the sweep *pushes*: each dirty node's (final) row
    is compared against every child row and merged in only where it
    improves it, marking the child dirty.  Visiting nodes in
    topological ``order`` makes each row final before it is pushed, and
    the push style propagates past pre-merged source rows — a pull
    recompute would see "no change" at the source and kill the
    wavefront one hop early.  Rows only ever move up, so the in-place
    ``np.maximum`` merge is exact — stale entries are valid lower
    bounds.  Returns the number of rows pushed (the propagation
    wavefront, for kernel accounting).
    """
    n = len(order)
    dirty = bytearray(n)
    for node in sources:
        dirty[node] = 1
    touched = 0
    maximum = np.maximum
    for node in order:
        if not dirty[node]:
            continue
        touched += 1
        row = m_to[node]
        for child in succ[node]:
            child_row = m_to[child]
            if (row > child_row).any():
                maximum(child_row, row, out=child_row)
                dirty[child] = 1
    return touched


def refresh_backward(m_from, order, pred, succ, sources) -> int:
    """Mirror of :func:`refresh_forward` for the backward frontiers:
    ``sources`` are the source endpoints of new edges, the push sweep
    runs in reverse topological order merging each dirty node's row
    upward into its parents with ``np.minimum``."""
    n = len(order)
    dirty = bytearray(n)
    for node in sources:
        dirty[node] = 1
    touched = 0
    minimum = np.minimum
    for node in reversed(order):
        if not dirty[node]:
            continue
        touched += 1
        row = m_from[node]
        for parent in pred[node]:
            parent_row = m_from[parent]
            if (row < parent_row).any():
                minimum(parent_row, row, out=parent_row)
                dirty[parent] = 1
    return touched


# ---------------------------------------------------------------------------
# Batched R6/R7 candidate discovery
# ---------------------------------------------------------------------------


class AddrSpanIndex:
    """One address's store positions, flattened for batched searches.

    Chain ``j`` of the address contributes its sorted store positions
    offset by ``j * stride`` (``stride = n + 2`` exceeds every encoded
    position *and* the ``inf`` sentinel), so the concatenation is
    strictly increasing and a single sorted search answers interval
    queries for any (item, chain) pair.  ``flat_nodes`` maps each slot
    back to its store's node id.
    """

    __slots__ = (
        "chains", "stride", "flat_enc", "flat_nodes", "seg_end",
        "chains_np", "flat_enc_np", "flat_nodes_np", "seg_end_np", "offsets_np",
    )

    def __init__(
        self,
        entries: Sequence[Tuple[int, Sequence[int]]],
        chain_nodes: Sequence[Sequence[int]],
        n: int,
    ) -> None:
        self.chains: List[int] = [chain for chain, _ in entries]
        self.stride = n + 2
        flat_enc: List[int] = []
        flat_nodes: List[int] = []
        seg_end: List[int] = []
        for j, (chain, positions) in enumerate(entries):
            offset = j * self.stride
            members = chain_nodes[chain]
            flat_enc.extend(pos + offset for pos in positions)
            flat_nodes.extend(members[pos] for pos in positions)
            seg_end.append(len(flat_enc))
        self.flat_enc = flat_enc
        self.flat_nodes = flat_nodes
        self.seg_end = seg_end
        if HAVE_NUMPY:
            self.chains_np = np.asarray(self.chains, dtype=np.int64)
            self.flat_enc_np = np.asarray(flat_enc, dtype=np.int64)
            self.flat_nodes_np = np.asarray(flat_nodes, dtype=np.int64)
            self.seg_end_np = np.asarray(seg_end, dtype=np.int64)
            self.offsets_np = (
                np.arange(len(self.chains), dtype=np.int64) * self.stride
            )


def concat_ranges(starts, counts):
    """Flatten ``[starts[i], starts[i] + counts[i])`` index ranges.

    The standard multi-range gather: the result indexes ``counts.sum()``
    elements, range ``i``'s slots appearing consecutively in order.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    shifted = np.cumsum(counts) - counts
    return np.repeat(starts - shifted, counts) + np.arange(total, dtype=np.int64)


def concat_ranges_scalar(starts: Sequence[int], counts: Sequence[int]) -> List[int]:
    """Reference implementation of :func:`concat_ranges` (pure Python)."""
    out: List[int] = []
    for start, count in zip(starts, counts):
        out.extend(range(start, start + count))
    return out


def r6_spans(index: AddrSpanIndex, lo_enc, hi_enc, watermark):
    """Batched delta R6 discovery for one address.

    ``lo_enc``/``hi_enc`` are flattened (item-major) encoded interval
    bounds — chain ``j``'s frontier position plus ``j * stride`` — for
    every (item, chain) pair; candidates are the stores in
    ``(lo, hi]`` not yet scanned per the ``watermark`` (updated in
    place to the new high-water index).  Returns ``(pair, cand)``:
    the flat (item, chain) row of each discovered candidate and its
    store node id, item-major, chains in index order, positions
    ascending — the scalar engines' enumeration order.
    """
    flat = index.flat_enc_np
    lo_idx = np.searchsorted(flat, lo_enc, side="right")
    hi_idx = np.searchsorted(flat, hi_enc, side="right")
    starts = np.maximum(lo_idx, watermark)
    counts = np.maximum(hi_idx - starts, 0)
    np.maximum(watermark, hi_idx, out=watermark)
    if not counts.any():
        return None, None
    pair = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    cand = index.flat_nodes_np[concat_ranges(starts, counts)]
    return pair, cand


def r7_spans(index: AddrSpanIndex, lo_enc, watermark):
    """Batched delta R7 discovery for one address.

    Candidates are the stores at encoded position ``>= lo`` not yet
    scanned: the scanned region is a *suffix* ``[watermark, seg_end)``
    per (item, chain), because R7's lower bound only ever moves down as
    backward frontiers improve.  ``watermark`` starts at each chain's
    segment end and is updated in place to the new low-water index.
    """
    flat = index.flat_enc_np
    lo_idx = np.searchsorted(flat, lo_enc, side="left")
    counts = np.maximum(watermark - lo_idx, 0)
    np.minimum(watermark, lo_idx, out=watermark)
    if not counts.any():
        return None, None
    pair = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    cand = index.flat_nodes_np[concat_ranges(lo_idx, counts)]
    return pair, cand


def r6_spans_scalar(
    index: AddrSpanIndex,
    lo: Sequence[Sequence[int]],
    hi: Sequence[Sequence[int]],
    watermark: List[List[int]],
) -> Tuple[List[int], List[int]]:
    """Reference implementation of :func:`r6_spans`: per-(item, chain)
    ``bisect`` interval queries with the same watermark delta."""
    pairs: List[int] = []
    cands: List[int] = []
    flat_enc, flat_nodes = index.flat_enc, index.flat_nodes
    stride = index.stride
    m = len(index.chains)
    for i, (lo_row, hi_row) in enumerate(zip(lo, hi)):
        marks = watermark[i]
        for j in range(m):
            offset = j * stride
            lo_idx = bisect_right(flat_enc, lo_row[j] + offset)
            hi_idx = bisect_right(flat_enc, hi_row[j] + offset)
            start = max(lo_idx, marks[j])
            if hi_idx > marks[j]:
                marks[j] = hi_idx
            for slot in range(start, hi_idx):
                pairs.append(i * m + j)
                cands.append(flat_nodes[slot])
    return pairs, cands


def r7_spans_scalar(
    index: AddrSpanIndex,
    lo: Sequence[Sequence[int]],
    watermark: List[List[int]],
) -> Tuple[List[int], List[int]]:
    """Reference implementation of :func:`r7_spans`."""
    pairs: List[int] = []
    cands: List[int] = []
    flat_enc, flat_nodes = index.flat_enc, index.flat_nodes
    stride = index.stride
    m = len(index.chains)
    for i, lo_row in enumerate(lo):
        marks = watermark[i]
        for j in range(m):
            lo_idx = bisect_left(flat_enc, lo_row[j] + j * stride)
            end = marks[j]
            if lo_idx < end:
                marks[j] = lo_idx
            for slot in range(lo_idx, end):
                pairs.append(i * m + j)
                cands.append(flat_nodes[slot])
    return pairs, cands


def suppression_mask(from_mat, nodes, chains, limits):
    """Batched R7 implied-edge test.

    Element ``t`` asks whether observer ``nodes[t]`` already reaches the
    candidate's group entry point — i.e. whether its backward frontier
    in ``chains[t]`` is at or below ``limits[t]``.  Returns the boolean
    *keep* mask (True: not suppressed, the edge must be inserted).
    """
    return from_mat[nodes, chains] > limits


def suppression_mask_scalar(
    from_rows: Sequence[Sequence[int]],
    nodes: Sequence[int],
    chains: Sequence[int],
    limits: Sequence[int],
) -> List[bool]:
    """Reference implementation of :func:`suppression_mask` over
    row-major frontier lists."""
    return [
        from_rows[node][chain] > limit
        for node, chain, limit in zip(nodes, chains, limits)
    ]


# ---------------------------------------------------------------------------
# Packed uint64 bitset kernels (the matrix engine's representation)
# ---------------------------------------------------------------------------


def words_for(n: int) -> int:
    """Packed words needed for ``n`` bits (64 per word)."""
    return (n + 63) // 64


def packed_bit(matrix, row: int, col: int) -> bool:
    """Test bit ``col`` of packed row ``row``."""
    return bool((int(matrix[row, col >> 6]) >> (col & 63)) & 1)


def set_packed_bit(matrix, row: int, col: int) -> None:
    """Set bit ``col`` of packed row ``row``."""
    matrix[row, col >> 6] |= np.uint64(1 << (col & 63))


def mask_row(n: int, members: Sequence[int]):
    """Pack a member list into one uint64 row bitset."""
    row = np.zeros(words_for(n), dtype=np.uint64)
    for member in members:
        row[member >> 6] |= np.uint64(1 << (member & 63))
    return row


def or_sweep(reach, order: Sequence[int], neighbors: Sequence[Sequence[int]]) -> None:
    """Word-wise OR sweep: fold each node's neighbor rows into its own.

    ``order`` must be topological with neighbors already final —
    reversed order with ``succ`` builds descendant sets, forward order
    with ``pred`` ancestor sets.  Each node's own bit is set first, so
    reach sets are reflexive like the scalar engines'.
    """
    for node in order:
        row = reach[node]
        row[node >> 6] |= np.uint64(1 << (node & 63))
        for neighbor in neighbors[node]:
            np.bitwise_or(row, reach[neighbor], out=row)


def packed_closure(n: int, order: Sequence[int], succ, pred):
    """Both packed reachability matrices via two OR sweeps.

    Returns ``(reach_from, reach_to)`` — row ``v`` of ``reach_from`` is
    ``v``'s descendant set (64 nodes per word), row ``v`` of
    ``reach_to`` its ancestor set.  Scalar reference: the Python-int
    bitsets of :func:`repro.core.closure.compute_closure`.
    """
    nwords = words_for(n)
    reach_from = np.zeros((n, nwords), dtype=np.uint64)
    reach_to = np.zeros((n, nwords), dtype=np.uint64)
    or_sweep(reach_from, list(reversed(order)), succ)
    or_sweep(reach_to, order, pred)
    return reach_from, reach_to
