"""The analysis constraint graph (Sec. 4).

Nodes are word-sized memory operations; a directed edge ``u -> v`` records
the inferred relation ``u <= v`` in the global memory order.  Since ``<=``
is transitive, any *path* implies the relation; a *cycle* implies the
relations cannot form a valid order — a memory-model violation.

Atomic groups are modelled exactly as the paper describes: "incoming edges
incident to any node in the set [are forced] to point to its first node;
outgoing edges from any node in the set similarly leave from its last
node."  :meth:`ConstraintGraph.add_edge` performs that redirection, except
for edges internal to a single group (the ``L <= S`` chain of a swap).

Every explicit edge carries an :class:`~repro.core.result.EdgeReason` so
failures can be explained edge by edge (Sec. 3.4).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.result import EdgeReason
from repro.model.expansion import AnalysisProgram


class CycleDetected(Exception):
    """Raised internally when an added edge immediately closes a cycle.

    Carries the offending edge; the checker turns it into a
    :class:`~repro.core.result.Violation` with a full cycle witness.
    """

    def __init__(self, u: int, v: int) -> None:
        super().__init__(f"edge {u}->{v} closes a cycle")
        self.u = u
        self.v = v


class ConstraintGraph:
    """Adjacency-list constraint graph with atomic-group redirection."""

    def __init__(self, aprog: AnalysisProgram) -> None:
        self.aprog = aprog
        self.n = 0
        self.succ: List[List[int]] = []
        self.pred: List[List[int]] = []
        self._succ_sets: List[set] = []
        # Redirection tables: _group[i] is node i's atomic group (-1 if
        # none), _red_src[i]/_red_dst[i] its group-last/group-first.
        # redirect() is called once per prospective edge — several per
        # node per round — so three list reads beat the op/group dict
        # walk it would otherwise repeat millions of times.
        self._group: List[int] = []
        self._red_src: List[int] = []
        self._red_dst: List[int] = []
        self.reasons: Dict[Tuple[int, int], EdgeReason] = {}
        self.edge_count = 0
        self.grow()

    def grow(self) -> None:
        """Extend adjacency storage to cover ops appended to the program.

        The streaming checker feeds a *live* ``AnalysisProgram`` whose op
        list grows as the simulator emits records; batch engines never
        need this (their program is complete at construction).  A newly
        appended op extends its atomic group, moving the group's last
        node — the redirection table is patched for every member.
        """
        aprog = self.aprog
        while self.n < aprog.n:
            i = self.n
            self.succ.append([])
            self.pred.append([])
            self._succ_sets.append(set())
            group = aprog.ops[i].group
            self._group.append(group)
            if group == -1:
                self._red_src.append(i)
                self._red_dst.append(i)
            else:
                members = aprog.groups[group]
                last = members[-1]
                self._red_src.append(last)
                self._red_dst.append(members[0])
                for member in members:
                    if member < i:
                        self._red_src[member] = last
            self.n += 1

    def redirect(self, u: int, v: int) -> Tuple[int, int]:
        """Apply atomic-group redirection to a prospective edge ``u -> v``.

        Returns the effective ``(source, destination)`` pair: outgoing
        edges leave from the group's last node, incoming edges land on the
        group's first node.  Edges within one group are left untouched.
        """
        gu = self._group[u]
        if gu != -1 and gu == self._group[v]:
            return u, v
        return self._red_src[u], self._red_dst[v]

    def has_edge(self, u: int, v: int) -> bool:
        """True if the explicit (non-transitive) edge ``u -> v`` exists."""
        return v in self._succ_sets[u]

    def add_edge(self, u: int, v: int, reason: EdgeReason) -> bool:
        """Add ``u -> v`` (after redirection); return True if it is new.

        Raises:
            CycleDetected: if the redirected edge is a self-loop, which is
                an immediate one-node cycle.
        """
        # redirect() + add_redirected(), inlined: this is the guaranteed
        # phase's per-edge path, hot enough for the two calls to show up.
        gu = self._group[u]
        if gu == -1 or gu != self._group[v]:
            u = self._red_src[u]
            v = self._red_dst[v]
        if u == v:
            raise CycleDetected(u, v)
        succ_set = self._succ_sets[u]
        if v in succ_set:
            return False
        succ_set.add(v)
        self.succ[u].append(v)
        self.pred[v].append(u)
        self.reasons[(u, v)] = reason
        self.edge_count += 1
        return True

    def add_redirected(self, u: int, v: int, reason: EdgeReason) -> bool:
        """:meth:`add_edge` for endpoints already redirected by the
        caller — the incremental engines redirect once up front and
        insert millions of edges, so the second redirection is pure
        overhead on their hot path."""
        if v in self._succ_sets[u]:
            return False
        self._succ_sets[u].add(v)
        self.succ[u].append(v)
        self.pred[v].append(u)
        self.reasons[(u, v)] = reason
        self.edge_count += 1
        return True

    def reason_of(self, u: int, v: int) -> EdgeReason:
        """The reason recorded for explicit edge ``u -> v``."""
        return self.reasons[(u, v)]

    # ------------------------------------------------------------------
    # Cycle detection / witness extraction
    # ------------------------------------------------------------------

    def find_cycle(self) -> Optional[List[int]]:
        """Find any cycle; return its node sequence or ``None`` if acyclic.

        Iterative three-colour DFS (white/grey/black); a back edge to a
        grey node closes a cycle, which is read off the DFS stack.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        color = [WHITE] * self.n
        for start in range(self.n):
            if color[start] != WHITE:
                continue
            # stack holds (node, iterator position)
            stack: List[Tuple[int, int]] = [(start, 0)]
            color[start] = GREY
            path = [start]
            while stack:
                node, idx = stack[-1]
                if idx < len(self.succ[node]):
                    stack[-1] = (node, idx + 1)
                    child = self.succ[node][idx]
                    if color[child] == GREY:
                        at = path.index(child)
                        return path[at:]
                    if color[child] == WHITE:
                        color[child] = GREY
                        stack.append((child, 0))
                        path.append(child)
                else:
                    color[node] = BLACK
                    stack.pop()
                    path.pop()
        return None

    def shortest_path(self, src: int, dst: int) -> Optional[List[int]]:
        """BFS shortest path from ``src`` to ``dst`` over explicit edges."""
        if src == dst:
            return [src]
        parent = {src: -1}
        frontier = [src]
        while frontier:
            nxt = []
            for node in frontier:
                for child in self.succ[node]:
                    if child in parent:
                        continue
                    parent[child] = node
                    if child == dst:
                        path = [dst]
                        while path[-1] != src:
                            path.append(parent[path[-1]])
                        path.reverse()
                        return path
                    nxt.append(child)
            frontier = nxt
        return None

    def cycle_through_edge(self, u: int, v: int) -> List[int]:
        """A cycle witness containing edge ``u -> v`` (which closes it).

        Used when an engine detects, while adding ``u -> v``, that ``u``
        was already reachable from ``v``: the witness is the explicit path
        ``v ~> u`` plus the new edge.
        """
        if u == v:
            return [u]
        path = self.shortest_path(v, u)
        if path is None:
            raise ValueError(f"no path {v} ~> {u}; edge {u}->{v} closes no cycle")
        return path

    def cycle_reasons(self, cycle: List[int]) -> List[EdgeReason]:
        """Per-edge reasons around a cycle (``cycle[i] -> cycle[i+1]``)."""
        out = []
        for i, node in enumerate(cycle):
            nxt = cycle[(i + 1) % len(cycle)]
            out.append(self.reasons.get((node, nxt), EdgeReason("?", "edge of cycle")))
        return out
