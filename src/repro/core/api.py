"""One-call checking API — the front door of the library.

Typical use::

    from repro import check_litmus, TSO

    result = check_litmus('''
        P0: S[B]#91 ; S[A]#1 ; L[A]=2
        P1: S[A]#2
        P2: S[B]#92 ; L[A]=2 ; L[B]=92
        P3: L[B]=92 ; L[B]=91
    ''')
    assert not result.ok        # the paper's Fig. 3 violation
    print(result.explain())

or, end to end against the simulator substrate::

    from repro import GeneratorConfig, generate_program, TsoMachine, check

    program = generate_program(GeneratorConfig(nprocs=4, ops_per_proc=200), seed=7)
    execution = TsoMachine(program, seed=7).run()
    assert check(program, execution).ok
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import telemetry
from repro.core.checker import BaselineChecker
from repro.core.closure import ClosureChecker
from repro.core.context import CheckContext
from repro.core.kernels import HAVE_NUMPY
from repro.core.policy import MemoryModel, TSO
from repro.core.result import CheckResult
from repro.core.stream import StreamingChecker
from repro.core.vc import VectorClockChecker
from repro.core.vck import KernelVectorChecker
from repro.model.expansion import AnalysisProgram, expand
from repro.model.program import Program, parse_litmus
from repro.model.trace import Execution

#: Registered checker engines, by name.  The dense-matrix engine is
#: numpy-only and appears only when the ``repro[fast]`` extra is
#: installed; ``vck`` is always registered and falls back to the shared
#: scalar path without numpy (see ``docs/performance.md``).
ENGINES = {
    "baseline": BaselineChecker,
    "closure": ClosureChecker,
    "stream": StreamingChecker,
    "vc": VectorClockChecker,
    "vck": KernelVectorChecker,
}
if HAVE_NUMPY:
    from repro.core.matrix import MatrixChecker

    ENGINES["matrix"] = MatrixChecker

#: The production default: the incremental vector-clock engine (see
#: ``docs/engines.md`` for the six engines and when to pick each).
DEFAULT_ENGINE = "vc"


def make_checker(
    model: MemoryModel = TSO,
    engine: str = DEFAULT_ENGINE,
    context: Optional["CheckContext"] = None,
):
    """Instantiate a checker engine by name (see :data:`ENGINES`).

    ``context`` is an optional :class:`~repro.core.context.CheckContext`
    whose scratch buffers the engine reuses across runs (the batched
    campaign path).  Engines that accept it natively get it as a
    constructor argument; the rest carry it as a plain ``context``
    attribute and simply ignore it — so one reuse-parity suite can run
    every engine against the same context.
    """
    try:
        cls = ENGINES[engine]
    except KeyError:
        raise ValueError(f"unknown engine {engine!r}; choose from {sorted(ENGINES)}")
    if context is None:
        return cls(model)
    try:
        return cls(model, context=context)
    except TypeError:
        checker = cls(model)
        checker.context = context
        context.checks += 1
        return checker


def check_execution(
    execution: Execution,
    initial: Optional[Dict[int, int]] = None,
    word_names: Optional[Dict[int, str]] = None,
    model: MemoryModel = TSO,
    engine: str = DEFAULT_ENGINE,
    context: Optional["CheckContext"] = None,
) -> CheckResult:
    """Check a raw execution trace against a memory model.

    This is the standalone analysis interface of Sec. 3.3: it needs only
    the dynamic operation stream with load/store values (for instance one
    parsed back from :meth:`repro.model.trace.Execution.load` after a
    what-if edit), plus initial memory values.
    """
    with telemetry.span("expand"):
        aprog = expand(execution, initial=initial, word_names=word_names)
    with telemetry.span("check", engine=engine, model=model.name):
        return make_checker(model, engine, context=context).run(aprog)


def check(
    program: Program,
    execution: Execution,
    model: MemoryModel = TSO,
    engine: str = DEFAULT_ENGINE,
    context: Optional["CheckContext"] = None,
) -> CheckResult:
    """Check a program's observed execution against a memory model."""
    return check_execution(
        execution,
        initial=program.initial,
        word_names=program.word_names,
        model=model,
        engine=engine,
        context=context,
    )


def check_litmus(
    text: str, model: MemoryModel = TSO, engine: str = DEFAULT_ENGINE
) -> CheckResult:
    """Parse the paper's litmus notation and check the described outcome."""
    program, execution = parse_litmus(text)
    return check(program, execution, model=model, engine=engine)
