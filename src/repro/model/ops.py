"""Instruction-level operations emitted by the test generator.

The paper's generator (Sec. 3.1) produces SPARC V9 assembler; this
reproduction keeps the same *operation vocabulary* as an abstract
instruction set that the simulator substrate executes directly:

* 32/64/128-bit loads and stores (word-aligned),
* swap and compare-and-swap atomics (CAS preceded by a same-address load,
  whose result is the compare value, exactly as in Sec. 3.1),
* memory barriers,
* 64-byte block loads and stores,
* prefetch variants (strong and weak),
* non-faulting loads to valid or faulting addresses,
* cache-line and pipeline flushes,
* unpredictable conditional branches resolved by a per-CPU LFSR at run time.

All data accesses are in units of 4-byte words (``WORD_SIZE``) and
word-aligned; the analysis phase (:mod:`repro.model.expansion`) splits
multi-word accesses into word-sized operations grouped atomically, which is
the paper's "nodes ... are expanded so that all loads, stores and swaps in
the analysis graph are of a uniform size".

Store values are *counter-sourced*: an :class:`IStore` (and the store half
of atomics) does not carry a literal value; the value is drawn from a
per-CPU running counter at execution time, mirroring the paper's
unique-store-value scheme ("two running counters ... used as the source of
store values").  The value actually written is recorded in the dynamic
trace (:class:`repro.model.trace.DynRecord`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Analysis granularity in bytes.  Every access address must be a multiple
#: of this, and every access size a multiple of this.
WORD_SIZE = 4

#: Size in bytes of a block load/store (SPARC VIS block operations).
BLOCK_SIZE = 64

#: Access sizes (bytes) allowed for plain loads and stores.
SCALAR_SIZES = (4, 8, 16)

#: Access sizes (bytes) allowed for swap / compare-and-swap.
ATOMIC_SIZES = (4, 8)


class PrefetchVariant(enum.Enum):
    """SPARC prefetch function codes modelled by the generator (Sec. 3.1)."""

    READ_ONCE = "read_once"
    READ_MANY = "read_many"
    WRITE_ONCE = "write_once"
    WRITE_MANY = "write_many"


def _check_access(addr: int, size: int, allowed: Tuple[int, ...]) -> None:
    if size not in allowed:
        raise ValueError(f"access size {size} not in {allowed}")
    if addr < 0 or addr % WORD_SIZE != 0:
        raise ValueError(f"address {addr:#x} is not word-aligned")
    if addr % size != 0:
        raise ValueError(f"address {addr:#x} is not aligned to size {size}")


@dataclass(frozen=True)
class Instr:
    """Base class for all generated instructions.

    Instructions are immutable; dynamic outcomes (values loaded, branch
    directions, CAS success) live in :class:`repro.model.trace.DynRecord`.
    """

    def words(self) -> int:
        """Number of 4-byte words this instruction touches (0 if none)."""
        return 0

    def mnemonic(self) -> str:
        """Short human-readable mnemonic used in program listings."""
        return type(self).__name__


@dataclass(frozen=True)
class ILoad(Instr):
    """A plain load of ``size`` bytes from word-aligned ``addr``.

    ``cacheable=False`` models an access through a non-cacheable ASI
    (Sec. 2: "non-cacheable accesses with or without side-effect";
    Sec. 3.1: "memory access instructions to various Address Space
    Identifiers").  Non-cacheable accesses bypass the cache hierarchy
    but obey the same TSO axioms, so the analysis treats them uniformly.
    """

    addr: int
    size: int = WORD_SIZE
    cacheable: bool = True

    def __post_init__(self) -> None:
        _check_access(self.addr, self.size, SCALAR_SIZES)

    def words(self) -> int:
        return self.size // WORD_SIZE

    def mnemonic(self) -> str:
        asi = "" if self.cacheable else " !nc"
        return f"LD{self.size * 8}  [{self.addr:#x}]{asi}"


@dataclass(frozen=True)
class IStore(Instr):
    """A plain store of ``size`` bytes to word-aligned ``addr``.

    The stored value is counter-sourced at run time; each word of the
    access receives its own fresh unique value.  ``cacheable=False``
    marks a non-cacheable (ASI) store: it drains through the memory
    controller's uncached write path — the other of the "different write
    queues" in the Sec. 5.1 memory-controller bug.
    """

    addr: int
    size: int = WORD_SIZE
    cacheable: bool = True

    def __post_init__(self) -> None:
        _check_access(self.addr, self.size, SCALAR_SIZES)

    def words(self) -> int:
        return self.size // WORD_SIZE

    def mnemonic(self) -> str:
        asi = "" if self.cacheable else " !nc"
        return f"ST{self.size * 8}  [{self.addr:#x}]{asi}"


@dataclass(frozen=True)
class ISwap(Instr):
    """An atomic swap: read the old value and write a fresh counter value.

    Modelled after SPARC ``swap`` (32-bit) and the swap-like use of
    ``casx``; sizes of 4 or 8 bytes are supported.
    """

    addr: int
    size: int = WORD_SIZE

    def __post_init__(self) -> None:
        _check_access(self.addr, self.size, ATOMIC_SIZES)

    def words(self) -> int:
        return self.size // WORD_SIZE

    def mnemonic(self) -> str:
        return f"SWAP{self.size * 8} [{self.addr:#x}]"


@dataclass(frozen=True)
class ICas(Instr):
    """A compare-and-swap whose compare value comes from a prior load.

    Sec. 3.1: "Compare and swap instructions are emitted with a preceding
    load of the same size to the same address.  The value returned by the
    load is used as the compare value for the CAS instruction."

    ``compare_from`` is the index (within the same thread) of that load
    instruction.  At run time the CAS succeeds iff memory still holds the
    value that load observed; the analysis phase converts a successful CAS
    into a swap and a failed CAS into a plain load (Sec. 3.3).
    """

    addr: int
    size: int
    compare_from: int

    def __post_init__(self) -> None:
        _check_access(self.addr, self.size, ATOMIC_SIZES)
        if self.compare_from < 0:
            raise ValueError("compare_from must be a valid instruction index")

    def words(self) -> int:
        return self.size // WORD_SIZE

    def mnemonic(self) -> str:
        return f"CAS{self.size * 8}  [{self.addr:#x}] cmp@{self.compare_from}"


@dataclass(frozen=True)
class IMembar(Instr):
    """A full memory barrier.

    Sec. 3.1: "these require that all previous instructions on the issuing
    processor are globally visible before the next instruction is issued."
    """

    def mnemonic(self) -> str:
        return "MEMBAR"


@dataclass(frozen=True)
class IBlockLoad(Instr):
    """A 64-byte block load (SPARC VIS ``ldda``-style).

    Expanded for analysis into eight 8-byte atomic chunks issued in program
    order; see :mod:`repro.model.expansion` for the ordering discussion.
    """

    addr: int

    def __post_init__(self) -> None:
        if self.addr < 0 or self.addr % BLOCK_SIZE != 0:
            raise ValueError(f"block address {self.addr:#x} must be 64-byte aligned")

    def words(self) -> int:
        return BLOCK_SIZE // WORD_SIZE

    def mnemonic(self) -> str:
        return f"BLD   [{self.addr:#x}]"


@dataclass(frozen=True)
class IBlockStore(Instr):
    """A 64-byte block store (SPARC VIS ``stda``-style), counter-sourced."""

    addr: int

    def __post_init__(self) -> None:
        if self.addr < 0 or self.addr % BLOCK_SIZE != 0:
            raise ValueError(f"block address {self.addr:#x} must be 64-byte aligned")

    def words(self) -> int:
        return BLOCK_SIZE // WORD_SIZE

    def mnemonic(self) -> str:
        return f"BST   [{self.addr:#x}]"


@dataclass(frozen=True)
class IPrefetch(Instr):
    """A prefetch hint; no programmer-visible effect (dropped in analysis).

    ``strong`` prefetches may take TLB-miss traps; weak ones are silently
    dropped on a miss (Sec. 3.1).  The simulator uses prefetches only to
    perturb cache state.
    """

    addr: int
    variant: PrefetchVariant = PrefetchVariant.READ_ONCE
    strong: bool = False

    def __post_init__(self) -> None:
        if self.addr < 0 or self.addr % WORD_SIZE != 0:
            raise ValueError(f"address {self.addr:#x} is not word-aligned")

    def mnemonic(self) -> str:
        kind = "strong" if self.strong else "weak"
        return f"PREF  [{self.addr:#x}] {self.variant.value},{kind}"


@dataclass(frozen=True)
class INonFaultingLoad(Instr):
    """A non-faulting load (SPARC ASI_PRIMARY_NOFAULT style).

    If ``faulting`` is true the target address is invalid and the load must
    return 0; otherwise it must behave exactly like a regular load
    (Sec. 3.1 / 3.3).
    """

    addr: int
    size: int = WORD_SIZE
    faulting: bool = False

    def __post_init__(self) -> None:
        _check_access(self.addr, self.size, SCALAR_SIZES)

    def words(self) -> int:
        return self.size // WORD_SIZE

    def mnemonic(self) -> str:
        tag = "!fault" if self.faulting else "ok"
        return f"NFLD{self.size * 8} [{self.addr:#x}] {tag}"


@dataclass(frozen=True)
class IFlushCache(Instr):
    """Flush the cache line containing ``addr``; no visible data effect."""

    addr: int

    def __post_init__(self) -> None:
        if self.addr < 0 or self.addr % WORD_SIZE != 0:
            raise ValueError(f"address {self.addr:#x} is not word-aligned")

    def mnemonic(self) -> str:
        return f"FLUSH [{self.addr:#x}]"


@dataclass(frozen=True)
class IFlushPipe(Instr):
    """Flush the execution pipeline; no visible data effect."""

    def mnemonic(self) -> str:
        return "FLUSHW"


@dataclass(frozen=True)
class IInterrupt(Instr):
    """Send an inter-processor interrupt to ``target`` (Sec. 3.1).

    Interrupts carry no data; their test value is perturbation — the
    receiving processor's interrupt entry is serializing, so its store
    buffer drains before it executes anything further.  Dropped during
    analysis (no programmer-visible data effect).
    """

    target: int

    def __post_init__(self) -> None:
        if self.target < 0:
            raise ValueError("interrupt target must be a processor id")

    def mnemonic(self) -> str:
        return f"IPI   ->P{self.target}"


@dataclass(frozen=True)
class IBranch(Instr):
    """An unpredictable conditional branch over the next ``skip`` instructions.

    The direction is decided at run time by the per-CPU software LFSR
    (Sec. 3.1) and recorded in the dynamic trace, which is how the analysis
    phase "resolves branches ... to model the dynamic sequence of memory
    operations".
    """

    skip: int = 1

    def __post_init__(self) -> None:
        if self.skip < 1:
            raise ValueError("branch must skip at least one instruction")

    def mnemonic(self) -> str:
        return f"BR    +{self.skip}"
