"""Expansion of a dynamic execution into the uniform analysis-op stream.

Sec. 3.3 of the paper: before analysis, "the nodes in the program
representation ... are first expanded to form nodes in an analysis graph
... unrolling loops and resolving branches ... Nodes representing
instructions which cover multiple shared words of interest are expanded,
so that all loads, stores and swaps in the analysis graph are of a uniform
size."  This module performs that expansion at 4-byte word granularity:

* multi-word loads/stores become one word-sized op per word, grouped into
  an *atomic group* (the SPARC architecture requires aligned accesses of
  up to 64 bits — and this substrate, of up to 128 bits — to be atomic);
* swaps become an atomic group of load-ops followed by store-ops;
* CAS is resolved from its observed outcome: a successful CAS becomes a
  swap, a failed one a plain load (Sec. 3.3);
* 64-byte block operations become eight 8-byte atomic chunks in program
  order (this substrate's block ops are the strongly-ordered "commit"
  flavour, so program-order rules apply to the chunks);
* prefetches, cache/pipeline flushes and branches are dropped — no
  programmer-visible data effect;
* non-faulting loads to faulting addresses are checked to have returned
  zero and then dropped; valid ones become regular loads;
* a synthetic *root store* per shared address writes the initial value
  (the paper's "synthetic node at the root of the graph acts like a set
  of stores writing initial values").

The expansion also builds the value→store map the analysis algorithm
requires.  The paper keys the map by value alone (store values are
globally unique); this reproduction keys it by ``(address, value)``, which
is equivalent under the uniqueness requirement and additionally tolerates
reuse of a value at *different* addresses (e.g. every location starting
at 0).  A load observing a value never written to its address is recorded
as an up-front failure ("a load reading a value never written to that
address is signaled as a failure at the outset").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.model.ops import (
    WORD_SIZE,
    IBlockLoad,
    IBlockStore,
    IBranch,
    ICas,
    IFlushCache,
    IFlushPipe,
    IInterrupt,
    ILoad,
    IMembar,
    INonFaultingLoad,
    IPrefetch,
    IStore,
    ISwap,
    Instr,
)
from repro.model.trace import DynRecord, Execution


class ExpansionError(ValueError):
    """Raised when a trace is structurally unusable for analysis.

    Examples: a record whose value tuple does not match its instruction's
    word count, or a store value reused at the same address (which breaks
    the unique-store-value requirement the whole algorithm rests on).
    """


class UnmappedValueError(ExpansionError):
    """A load observed a value that no store ever wrote to its address."""


class OpKind(enum.IntEnum):
    """Kind of a word-sized analysis operation."""

    LOAD = 0
    STORE = 1
    MEMBAR = 2


#: Sentinel processor id for synthetic root stores.
ROOT_PROC = -1

#: Sentinel group id for ops not in any atomic group.
NO_GROUP = -1


@dataclass
class AnalysisOp:
    """One word-sized node of the analysis graph.

    Attributes:
        id: global node id (root stores come first).
        proc: issuing processor, or ``ROOT_PROC`` for root stores.
        po: position in the processor's dynamic op stream (-1 for roots).
        kind: load / store / membar.
        addr: word address (``None`` for membars).
        value: value read (loads) or written (stores); ``None`` for membars.
        group: atomic group id, or ``NO_GROUP``.
        origin: ``(proc, record_index)`` of the dynamic record this op was
            expanded from, for debug rendering; ``None`` for roots.
    """

    id: int
    proc: int
    po: int
    kind: OpKind
    addr: Optional[int]
    value: Optional[int]
    group: int = NO_GROUP
    origin: Optional[Tuple[int, int]] = None

    @property
    def is_load(self) -> bool:
        """True for load ops."""
        return self.kind == OpKind.LOAD

    @property
    def is_store(self) -> bool:
        """True for store ops (including synthetic roots)."""
        return self.kind == OpKind.STORE

    @property
    def is_root(self) -> bool:
        """True for synthetic initial-value stores."""
        return self.proc == ROOT_PROC


@dataclass
class AnalysisProgram:
    """The expanded, analysis-ready view of one execution.

    This is the input consumed by every checker engine.  It bundles the
    node list, per-processor program order, atomic-group structure, the
    value→store map and any failures detected during expansion itself.
    """

    ops: List[AnalysisOp]
    per_proc: List[List[int]]
    roots: Dict[int, int]
    groups: Dict[int, List[int]]
    value_map: Dict[Tuple[int, int], int]
    stores_by_addr: Dict[int, List[int]]
    word_names: Dict[int, str] = field(default_factory=dict)
    #: Failures detected during expansion itself, as (code, message) pairs;
    #: codes are "unmapped" (load value never written to its address) and
    #: "nonfaulting" (faulting non-faulting load returned nonzero).
    precheck_failures: List[Tuple[str, str]] = field(default_factory=list)
    #: Lazily filled cache behind :meth:`describe` (reason strings render
    #: the same nodes thousands of times at checker scale).
    _describe_cache: Dict[int, str] = field(default_factory=dict, repr=False)

    @property
    def n(self) -> int:
        """Total node count (including roots)."""
        return len(self.ops)

    @property
    def nprocs(self) -> int:
        """Number of real processors."""
        return len(self.per_proc)

    def group_first(self, op_id: int) -> int:
        """First node of ``op_id``'s atomic group (itself if ungrouped)."""
        group = self.ops[op_id].group
        return op_id if group == NO_GROUP else self.groups[group][0]

    def group_last(self, op_id: int) -> int:
        """Last node of ``op_id``'s atomic group (itself if ungrouped)."""
        group = self.ops[op_id].group
        return op_id if group == NO_GROUP else self.groups[group][-1]

    def map_value(self, addr: int, value: int) -> Optional[int]:
        """The store op that wrote ``value`` to ``addr``, or ``None``."""
        return self.value_map.get((addr, value))

    def readers(self) -> Dict[int, List[int]]:
        """Map each store op id to the load ops that observed its value."""
        result: Dict[int, List[int]] = {}
        for op in self.ops:
            if not op.is_load:
                continue
            store = self.map_value(op.addr, op.value)
            if store is not None:
                result.setdefault(store, []).append(op.id)
        return result

    def name_of(self, addr: int) -> str:
        """Symbolic name of a word address (hex fallback)."""
        return self.word_names.get(addr, f"{addr:#x}")

    def describe(self, op_id: int) -> str:
        """Human-readable one-line description of a node, for diagnostics.

        Memoized: reason strings for the guaranteed-edge phase describe
        every load and its stores, so each node is rendered many times.
        """
        cached = self._describe_cache.get(op_id)
        if cached is not None:
            return cached
        text = self._describe(op_id)
        self._describe_cache[op_id] = text
        return text

    def _describe(self, op_id: int) -> str:
        op = self.ops[op_id]
        if op.is_root:
            return f"init[{self.name_of(op.addr)}]#{op.value}"
        where = f"P{op.proc}.{op.po}"
        if op.kind == OpKind.MEMBAR:
            return f"{where} MEMBAR"
        name = self.name_of(op.addr)
        if op.kind == OpKind.STORE:
            return f"{where} S[{name}]#{op.value}"
        return f"{where} L[{name}]={op.value}"


def expand(
    execution: Execution,
    initial: Optional[Dict[int, int]] = None,
    word_names: Optional[Dict[int, str]] = None,
) -> AnalysisProgram:
    """Expand an execution into an :class:`AnalysisProgram`.

    Args:
        execution: the dynamic trace of one run.
        initial: initial word values (addresses absent default to 0).
        word_names: optional symbolic names for addresses (debug output).

    Raises:
        ExpansionError: on malformed records or duplicate store values at
            the same address.
    """
    initial = dict(initial or {})
    builder = _Builder(initial, word_names or {})
    for pid, proc_records in enumerate(execution.records):
        builder.begin_proc(pid)
        for rec_idx, rec in enumerate(proc_records):
            builder.add_record(pid, rec_idx, rec)
    return builder.finish()


class _Builder:
    """Incremental construction of an AnalysisProgram."""

    def __init__(self, initial: Dict[int, int], word_names: Dict[int, str]) -> None:
        self._initial = initial
        self._word_names = word_names
        self._ops: List[AnalysisOp] = []
        self._per_proc: List[List[int]] = []
        self._groups: Dict[int, List[int]] = {}
        self._next_group = 0
        self._addresses: Set[int] = set(initial)
        self._failures: List[Tuple[str, str]] = []
        self._roots: Dict[int, int] = {}
        self._stores_by_addr: Dict[int, List[int]] = {}
        self._value_map: Dict[Tuple[int, int], int] = {}
        # (pid, rec_idx, instr, loaded words, stored words, kind sequence)
        self._pending: List[Tuple[int, int, DynRecord]] = []

    def begin_proc(self, pid: int) -> None:
        while len(self._per_proc) <= pid:
            self._per_proc.append([])

    def add_record(self, pid: int, rec_idx: int, rec: DynRecord) -> None:
        self._pending.append((pid, rec_idx, rec))
        instr = rec.instr
        addr = getattr(instr, "addr", None)
        if addr is not None and instr.words():
            for w in range(instr.words()):
                self._addresses.add(addr + w * WORD_SIZE)

    def _init_roots(self) -> None:
        """Emit the synthetic root stores, one per address, ids first."""
        for addr in sorted(self._addresses):
            op = AnalysisOp(
                id=len(self._ops),
                proc=ROOT_PROC,
                po=-1,
                kind=OpKind.STORE,
                addr=addr,
                value=self._initial.get(addr, 0),
            )
            self._ops.append(op)
            self._roots[addr] = op.id
            self._stores_by_addr[addr] = [op.id]
            self._value_map[(addr, op.value)] = op.id

    def _build_aprog(self) -> AnalysisProgram:
        """Wrap the builder's (shared, still-mutable) state in the program
        view every checker engine consumes."""
        return AnalysisProgram(
            ops=self._ops,
            per_proc=self._per_proc,
            roots=self._roots,
            groups=self._groups,
            value_map=self._value_map,
            stores_by_addr=self._stores_by_addr,
            word_names=self._word_names,
            precheck_failures=self._failures,
        )

    def finish(self) -> AnalysisProgram:
        # Root stores first so their ids are stable and dense.
        self._init_roots()
        for pid, rec_idx, rec in self._pending:
            self._expand_record(pid, rec_idx, rec)
        aprog = self._build_aprog()
        self._check_load_values(aprog)
        return aprog

    # ------------------------------------------------------------------

    def _new_group(self) -> int:
        gid = self._next_group
        self._next_group += 1
        self._groups[gid] = []
        return gid

    def _emit(
        self,
        pid: int,
        kind: OpKind,
        addr: Optional[int],
        value: Optional[int],
        group: int,
        origin: Tuple[int, int],
    ) -> AnalysisOp:
        op = AnalysisOp(
            id=len(self._ops),
            proc=pid,
            po=len(self._per_proc[pid]),
            kind=kind,
            addr=addr,
            value=value,
            group=group,
            origin=origin,
        )
        self._ops.append(op)
        self._per_proc[pid].append(op.id)
        if group != NO_GROUP:
            self._groups[group].append(op.id)
        if kind == OpKind.STORE:
            key = (addr, value)
            if key in self._value_map:
                raise ExpansionError(
                    f"store value {value} written twice to address {addr:#x}: "
                    "unique-store-value requirement violated"
                )
            self._value_map[key] = op.id
            self._stores_by_addr.setdefault(addr, []).append(op.id)
        return op

    def _words_of(self, rec: DynRecord, which: str) -> Tuple[int, ...]:
        values = getattr(rec, which)
        expected = rec.instr.words()
        if values is None or len(values) != expected:
            raise ExpansionError(
                f"{rec.instr.mnemonic()}: expected {expected} {which} word(s), "
                f"got {values!r}"
            )
        return values

    def _expand_record(self, pid: int, rec_idx: int, rec: DynRecord) -> None:
        instr = rec.instr
        origin = (pid, rec_idx)

        if isinstance(
            instr, (IPrefetch, IFlushCache, IFlushPipe, IBranch, IInterrupt)
        ):
            return  # no programmer-visible data effect (Sec. 3.3)

        if isinstance(instr, INonFaultingLoad):
            loaded = self._words_of(rec, "loaded")
            if instr.faulting:
                if any(v != 0 for v in loaded):
                    self._failures.append((
                        "nonfaulting",
                        f"P{pid}.{rec_idx}: non-faulting load to faulting address "
                        f"{instr.addr:#x} returned {loaded}, expected zeros",
                    ))
                return  # checked, then ignored for the rest of the analysis
            instr = ILoad(addr=instr.addr, size=instr.size)
            rec = DynRecord(instr=instr, loaded=loaded)

        if isinstance(instr, ILoad):
            loaded = self._words_of(rec, "loaded")
            group = self._new_group() if len(loaded) > 1 else NO_GROUP
            for w, value in enumerate(loaded):
                self._emit(
                    pid, OpKind.LOAD, instr.addr + w * WORD_SIZE, value, group,
                    origin,
                )
            return

        if isinstance(instr, IStore):
            stored = self._words_of(rec, "stored")
            group = self._new_group() if len(stored) > 1 else NO_GROUP
            for w, value in enumerate(stored):
                self._emit(
                    pid, OpKind.STORE, instr.addr + w * WORD_SIZE, value, group,
                    origin,
                )
            return

        if isinstance(instr, ISwap):
            self._emit_atomic(pid, origin, rec)
            return

        if isinstance(instr, ICas):
            if rec.cas_ok:
                self._emit_atomic(pid, origin, rec)
            else:
                # Failed compare: the CAS degenerates to a plain load.
                loaded = self._words_of(rec, "loaded")
                group = self._new_group() if len(loaded) > 1 else NO_GROUP
                for w, value in enumerate(loaded):
                    self._emit(
                        pid, OpKind.LOAD, instr.addr + w * WORD_SIZE, value, group,
                        origin,
                    )
            return

        if isinstance(instr, IBlockLoad):
            loaded = self._words_of(rec, "loaded")
            for chunk in range(0, len(loaded), 2):
                group = self._new_group()
                for w in (chunk, chunk + 1):
                    self._emit(
                        pid, OpKind.LOAD, instr.addr + w * WORD_SIZE, loaded[w],
                        group, origin,
                    )
            return

        if isinstance(instr, IBlockStore):
            stored = self._words_of(rec, "stored")
            for chunk in range(0, len(stored), 2):
                group = self._new_group()
                for w in (chunk, chunk + 1):
                    self._emit(
                        pid, OpKind.STORE, instr.addr + w * WORD_SIZE, stored[w],
                        group, origin,
                    )
            return

        if isinstance(instr, IMembar):
            self._emit(pid, OpKind.MEMBAR, None, None, NO_GROUP, origin)
            return

        raise ExpansionError(f"cannot expand instruction {instr!r}")

    def _emit_atomic(
        self, pid: int, origin: Tuple[int, int], rec: DynRecord
    ) -> None:
        """Emit an atomic [loads; stores] group for a swap or successful CAS."""
        instr = rec.instr
        loaded = self._words_of(rec, "loaded")
        stored = self._words_of(rec, "stored")
        group = self._new_group()
        for w, value in enumerate(loaded):
            self._emit(pid, OpKind.LOAD, instr.addr + w * WORD_SIZE, value, group,
                       origin)
        for w, value in enumerate(stored):
            self._emit(pid, OpKind.STORE, instr.addr + w * WORD_SIZE, value, group,
                       origin)

    def _check_load_values(self, aprog: AnalysisProgram) -> None:
        """Flag loads whose value was never written to their address."""
        for op in aprog.ops:
            if op.is_load and aprog.map_value(op.addr, op.value) is None:
                self._failures.append((
                    "unmapped",
                    f"{aprog.describe(op.id)}: value {op.value} was never "
                    f"written to {aprog.name_of(op.addr)} (unmapped load value)",
                ))


class StreamExpander(_Builder):
    """Incremental expansion for the streaming checker.

    Where :func:`expand` consumes a *completed* execution in two phases
    (collect addresses, then expand), this variant is fed one
    :class:`~repro.model.trace.DynRecord` at a time, as the simulator
    emits them, and appends the resulting analysis ops to a *live*
    :class:`AnalysisProgram` whose containers are shared with the checker
    consuming it.

    The price of streaming is that the address universe must be declared
    up front: root-store ids come first and are dense, so a never-seen
    address arriving mid-stream cannot get a root retroactively.  Feeding
    a record that touches an undeclared address raises
    :class:`ExpansionError`.

    Unmapped-load detection is *not* performed here (a matching store may
    simply not have been fed yet); the streaming checker tracks
    unresolved loads itself and reports survivors when the session
    finishes.
    """

    def __init__(
        self,
        addresses: Sequence[int],
        initial: Optional[Dict[int, int]] = None,
        word_names: Optional[Dict[int, str]] = None,
        nprocs: int = 0,
    ) -> None:
        super().__init__(dict(initial or {}), dict(word_names or {}))
        self._addresses.update(addresses)
        self._init_roots()
        if nprocs > 0:
            self.begin_proc(nprocs - 1)
        self.aprog = self._build_aprog()

    def feed(self, pid: int, rec_idx: int, rec: DynRecord) -> List[int]:
        """Expand one dynamic record; return the new analysis-op ids."""
        self.begin_proc(pid)
        instr = rec.instr
        addr = getattr(instr, "addr", None)
        if addr is not None and instr.words():
            for w in range(instr.words()):
                word = addr + w * WORD_SIZE
                if word not in self._roots:
                    raise ExpansionError(
                        f"P{pid}.{rec_idx} touches address {word:#x}, which "
                        "was not declared when the stream session opened"
                    )
        before = len(self._ops)
        self._expand_record(pid, rec_idx, rec)
        return list(range(before, len(self._ops)))
