"""Program representation, execution traces, and analysis-graph expansion.

This subpackage models the *test program* side of TSOtool (Sec. 3 of the
paper): the instruction set the generator emits (:mod:`repro.model.ops`),
whole multithreaded programs (:mod:`repro.model.program`), the dynamic
execution record produced by a test run (:mod:`repro.model.trace`), and the
expansion of a (program, execution) pair into the uniform word-sized
operation stream that the analysis algorithm consumes
(:mod:`repro.model.expansion`).
"""

from repro.model.ops import (
    WORD_SIZE,
    Instr,
    ILoad,
    IStore,
    ISwap,
    ICas,
    IMembar,
    IBlockLoad,
    IBlockStore,
    IPrefetch,
    INonFaultingLoad,
    IFlushCache,
    IFlushPipe,
    IBranch,
    PrefetchVariant,
)
from repro.model.program import Program, Thread, parse_litmus, format_program
from repro.model.trace import DynRecord, Execution
from repro.model.expansion import (
    AnalysisOp,
    AnalysisProgram,
    ExpansionError,
    UnmappedValueError,
    expand,
)

__all__ = [
    "WORD_SIZE",
    "Instr",
    "ILoad",
    "IStore",
    "ISwap",
    "ICas",
    "IMembar",
    "IBlockLoad",
    "IBlockStore",
    "IPrefetch",
    "INonFaultingLoad",
    "IFlushCache",
    "IFlushPipe",
    "IBranch",
    "PrefetchVariant",
    "Program",
    "Thread",
    "parse_litmus",
    "format_program",
    "DynRecord",
    "Execution",
    "AnalysisOp",
    "AnalysisProgram",
    "ExpansionError",
    "UnmappedValueError",
    "expand",
]
