"""Dynamic execution traces: what a test run actually observed.

A test run (Step 2 in Fig. 1) turns the static :class:`~repro.model.program.Program`
into a per-processor sequence of *dynamic records*: which instructions
actually executed (branches resolved), the values every load observed, the
values counter-sourced stores actually wrote, and whether each CAS
succeeded.  The analysis phase consumes exactly this information.

The paper's standalone analysis interface (Sec. 3.3) accepts "a program
description along with the values of all loads and stores"; the text
format implemented by :meth:`Execution.dump` / :meth:`Execution.load` is
this reproduction's version of that interface, and it also supports the
Sec. 3.4 *what-if* workflow — dump, hand-edit a load value, re-analyze.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.model.ops import (
    WORD_SIZE,
    IBlockLoad,
    IBlockStore,
    IBranch,
    ICas,
    IFlushCache,
    IFlushPipe,
    IInterrupt,
    ILoad,
    IMembar,
    INonFaultingLoad,
    IPrefetch,
    IStore,
    ISwap,
    Instr,
    PrefetchVariant,
)


@dataclass(frozen=True)
class DynRecord:
    """The dynamic outcome of one executed instruction.

    Attributes:
        instr: the static instruction this record belongs to.
        loaded: word values observed, in address order, for instructions
            with a load component (loads, swaps, CAS, block loads,
            non-faulting loads); ``None`` otherwise.
        stored: word values written, in address order, for instructions
            with a store component (stores, swaps, successful CAS, block
            stores); ``None`` otherwise.
        cas_ok: for CAS only — whether the compare succeeded.
        taken: for branches only — whether the branch was taken (skipping
            its ``skip`` successor instructions).
        faulted: for non-faulting loads only — whether the access faulted
            (and hence must have returned zeros).
    """

    instr: Instr
    loaded: Optional[Tuple[int, ...]] = None
    stored: Optional[Tuple[int, ...]] = None
    cas_ok: Optional[bool] = None
    taken: Optional[bool] = None
    faulted: Optional[bool] = None

    def with_loaded(self, loaded: Sequence[int]) -> "DynRecord":
        """Return a copy with a different observed-load tuple (what-if edits)."""
        return replace(self, loaded=tuple(loaded))


@dataclass
class Execution:
    """The complete observed outcome of one run: per-processor record lists.

    The same test program can legally produce different executions on
    different runs (Sec. 3: "the analysis result always applies to the
    correctness of a particular run"), so programs and executions are kept
    as separate objects.
    """

    records: List[List[DynRecord]]

    @property
    def nprocs(self) -> int:
        """Number of processors in the trace."""
        return len(self.records)

    def total_records(self) -> int:
        """Total number of dynamic records across all processors."""
        return sum(len(r) for r in self.records)

    def memory_operations(self) -> int:
        """Total data-carrying memory operations (loads+stores+atomics)."""
        count = 0
        for proc in self.records:
            for rec in proc:
                if rec.loaded is not None or rec.stored is not None:
                    count += 1
        return count

    # ------------------------------------------------------------------
    # Text serialization (the standalone analysis interface of Sec. 3.3)
    # ------------------------------------------------------------------

    def dump(self) -> str:
        """Serialize to the standalone-analysis text format.

        One line per dynamic record::

            P<pid> <OPCODE> [field=value ...]

        The format is line-oriented and hand-editable so a user can apply
        the Sec. 3.4 what-if workflow: guess a corrected load value, edit
        the line, and re-run the analyzer via :meth:`load`.
        """
        lines = ["# tsotool trace v1"]
        for pid, proc in enumerate(self.records):
            for rec in proc:
                lines.append(f"P{pid} {_encode_record(rec)}")
        return "\n".join(lines) + "\n"

    @classmethod
    def load(cls, text: str) -> "Execution":
        """Parse the text produced by :meth:`dump` (possibly hand-edited)."""
        per_proc: Dict[int, List[DynRecord]] = {}
        for lineno, raw in enumerate(text.splitlines(), 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                head, rest = line.split(None, 1)
                if not head.startswith("P"):
                    raise ValueError("record must start with P<pid>")
                pid = int(head[1:])
                rec = _decode_record(rest)
            except ValueError as exc:
                raise ValueError(f"trace line {lineno}: {exc}") from exc
            per_proc.setdefault(pid, []).append(rec)
        nprocs = max(per_proc) + 1 if per_proc else 0
        return cls(records=[per_proc.get(p, []) for p in range(nprocs)])


def _ints(values: Optional[Sequence[int]]) -> str:
    assert values is not None
    return ",".join(str(v) for v in values)


def _encode_record(rec: DynRecord) -> str:
    """Encode a single record as opcode + key=value fields."""
    instr = rec.instr
    if isinstance(instr, ICas):
        parts = [
            f"CAS addr={instr.addr} size={instr.size} cmp_from={instr.compare_from}",
            f"loaded={_ints(rec.loaded)}",
            f"ok={int(bool(rec.cas_ok))}",
        ]
        if rec.cas_ok:
            parts.append(f"stored={_ints(rec.stored)}")
        return " ".join(parts)
    if isinstance(instr, ISwap):
        return (
            f"SWAP addr={instr.addr} size={instr.size} "
            f"loaded={_ints(rec.loaded)} stored={_ints(rec.stored)}"
        )
    if isinstance(instr, IBlockStore):
        return f"BST addr={instr.addr} stored={_ints(rec.stored)}"
    if isinstance(instr, IBlockLoad):
        return f"BLD addr={instr.addr} loaded={_ints(rec.loaded)}"
    if isinstance(instr, IStore):
        nc = "" if instr.cacheable else " nc=1"
        return f"ST addr={instr.addr} size={instr.size}{nc} stored={_ints(rec.stored)}"
    if isinstance(instr, INonFaultingLoad):
        return (
            f"NFLD addr={instr.addr} size={instr.size} "
            f"faulted={int(bool(rec.faulted))} loaded={_ints(rec.loaded)}"
        )
    if isinstance(instr, ILoad):
        nc = "" if instr.cacheable else " nc=1"
        return f"LD addr={instr.addr} size={instr.size}{nc} loaded={_ints(rec.loaded)}"
    if isinstance(instr, IMembar):
        return "MEMBAR"
    if isinstance(instr, IBranch):
        return f"BR skip={instr.skip} taken={int(bool(rec.taken))}"
    if isinstance(instr, IPrefetch):
        return (
            f"PREF addr={instr.addr} variant={instr.variant.value} "
            f"strong={int(instr.strong)}"
        )
    if isinstance(instr, IFlushCache):
        return f"FLUSH addr={instr.addr}"
    if isinstance(instr, IFlushPipe):
        return "FLUSHW"
    if isinstance(instr, IInterrupt):
        return f"IPI target={instr.target}"
    raise ValueError(f"cannot encode instruction {instr!r}")


def _decode_record(rest: str) -> DynRecord:
    """Decode the opcode + fields part of a trace line."""
    parts = rest.split()
    opcode, fields = parts[0], {}
    for part in parts[1:]:
        if "=" not in part:
            raise ValueError(f"bad field {part!r}")
        key, val = part.split("=", 1)
        fields[key] = val

    def addr() -> int:
        return int(fields["addr"])

    def size() -> int:
        return int(fields.get("size", WORD_SIZE))

    def words(key: str) -> Tuple[int, ...]:
        return tuple(int(v) for v in fields[key].split(","))

    cacheable = not bool(int(fields.get("nc", "0")))
    if opcode == "LD":
        return DynRecord(
            instr=ILoad(addr=addr(), size=size(), cacheable=cacheable),
            loaded=words("loaded"),
        )
    if opcode == "ST":
        return DynRecord(
            instr=IStore(addr=addr(), size=size(), cacheable=cacheable),
            stored=words("stored"),
        )
    if opcode == "SWAP":
        return DynRecord(
            instr=ISwap(addr=addr(), size=size()),
            loaded=words("loaded"),
            stored=words("stored"),
        )
    if opcode == "CAS":
        ok = bool(int(fields["ok"]))
        return DynRecord(
            instr=ICas(addr=addr(), size=size(), compare_from=int(fields["cmp_from"])),
            loaded=words("loaded"),
            stored=words("stored") if ok else None,
            cas_ok=ok,
        )
    if opcode == "BST":
        return DynRecord(instr=IBlockStore(addr=addr()), stored=words("stored"))
    if opcode == "BLD":
        return DynRecord(instr=IBlockLoad(addr=addr()), loaded=words("loaded"))
    if opcode == "NFLD":
        return DynRecord(
            instr=INonFaultingLoad(
                addr=addr(), size=size(), faulting=bool(int(fields["faulted"]))
            ),
            loaded=words("loaded"),
            faulted=bool(int(fields["faulted"])),
        )
    if opcode == "MEMBAR":
        return DynRecord(instr=IMembar())
    if opcode == "BR":
        return DynRecord(
            instr=IBranch(skip=int(fields["skip"])), taken=bool(int(fields["taken"]))
        )
    if opcode == "PREF":
        return DynRecord(
            instr=IPrefetch(
                addr=addr(),
                variant=PrefetchVariant(fields["variant"]),
                strong=bool(int(fields["strong"])),
            )
        )
    if opcode == "FLUSH":
        return DynRecord(instr=IFlushCache(addr=addr()))
    if opcode == "FLUSHW":
        return DynRecord(instr=IFlushPipe())
    if opcode == "IPI":
        return DynRecord(instr=IInterrupt(target=int(fields["target"])))
    raise ValueError(f"unknown opcode {opcode!r}")
