"""Multithreaded test programs and the paper's litmus notation.

A :class:`Program` is the static artifact of the generation phase (Step 1
in Fig. 1): one instruction list per processor plus initial memory
contents.  Programs carry no dynamic information; observed load values,
branch directions and CAS outcomes live in
:class:`repro.model.trace.Execution`.

The paper presents examples in a compact notation — ``S[A]#1`` is a store
writing 1 to location A, ``L[B]=92`` a load observing 92 — which couples a
program with an observed outcome.  :func:`parse_litmus` accepts that
notation (one ``Pn:`` line per processor, operations separated by ``;``)
and returns the ``(Program, Execution)`` pair ready for analysis, which is
how the Fig. 3/5/6/7 examples are encoded in :mod:`repro.generator.litmus`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.model.ops import (
    WORD_SIZE,
    IBranch,
    ICas,
    ILoad,
    IMembar,
    IStore,
    ISwap,
    Instr,
)
from repro.model.trace import DynRecord, Execution


@dataclass
class Thread:
    """The instruction sequence executed by one logical processor."""

    instrs: List[Instr] = field(default_factory=list)

    def append(self, instr: Instr) -> int:
        """Append ``instr`` and return its index within the thread."""
        self.instrs.append(instr)
        return len(self.instrs) - 1

    def __len__(self) -> int:
        return len(self.instrs)

    def __iter__(self):
        return iter(self.instrs)


@dataclass
class Program:
    """A complete multithreaded test program.

    Attributes:
        threads: one :class:`Thread` per processor, index = processor id.
        initial: initial value of each shared word (word address -> value);
            addresses absent from the mapping start at 0.
        word_names: optional symbolic names for word addresses, used only
            for pretty-printing and litmus round-trips.
    """

    threads: List[Thread]
    initial: Dict[int, int] = field(default_factory=dict)
    word_names: Dict[int, str] = field(default_factory=dict)

    @property
    def nprocs(self) -> int:
        """Number of processors (threads) in the program."""
        return len(self.threads)

    def addresses(self) -> Set[int]:
        """All word addresses touched by any data access in the program."""
        words: Set[int] = set()
        for thread in self.threads:
            for instr in thread:
                addr = getattr(instr, "addr", None)
                if addr is None:
                    continue
                nwords = instr.words()
                if nwords == 0:  # prefetch/flush: touches the word for cache purposes only
                    continue
                for w in range(nwords):
                    words.add(addr + w * WORD_SIZE)
        words.update(self.initial)
        return words

    def initial_value(self, word_addr: int) -> int:
        """Initial value of the word at ``word_addr`` (0 if unspecified)."""
        return self.initial.get(word_addr, 0)

    def name_of(self, word_addr: int) -> str:
        """Symbolic name for a word address, falling back to hex."""
        return self.word_names.get(word_addr, f"{word_addr:#x}")

    def validate(self) -> None:
        """Check structural well-formedness; raise ``ValueError`` if broken.

        Verifies that every CAS points back at an earlier same-address,
        same-size load in its own thread (the Sec. 3.1 pairing), and that
        branches do not skip past the end of the thread.
        """
        for pid, thread in enumerate(self.threads):
            for idx, instr in enumerate(thread):
                if isinstance(instr, ICas):
                    if instr.compare_from >= idx:
                        raise ValueError(
                            f"P{pid}[{idx}]: CAS compare_from {instr.compare_from} "
                            "does not precede the CAS"
                        )
                    src = thread.instrs[instr.compare_from]
                    if not isinstance(src, ILoad) or src.addr != instr.addr or src.size != instr.size:
                        raise ValueError(
                            f"P{pid}[{idx}]: CAS compare_from must reference a load "
                            "of the same size to the same address"
                        )
                if isinstance(instr, IBranch) and idx + instr.skip >= len(thread):
                    raise ValueError(f"P{pid}[{idx}]: branch skips past end of thread")


# ---------------------------------------------------------------------------
# Litmus notation
# ---------------------------------------------------------------------------

_TOKEN_RES = {
    "store": re.compile(r"^(?:S|BST)\[(\w+)\]#(-?\d+)$"),
    "load": re.compile(r"^L\[(\w+)\]=(-?\d+)$"),
    "swap": re.compile(r"^SWAP\[(\w+)\]=(-?\d+),#(-?\d+)$"),
    "cas": re.compile(r"^CAS\[(\w+)\]=(-?\d+),#(-?\d+)$"),
    "casf": re.compile(r"^CASF\[(\w+)\]=(-?\d+)$"),
    "membar": re.compile(r"^(?:M|MEMBAR)$"),
}

_PROC_RE = re.compile(r"^P(\d+)\s*:\s*(.*)$")
_INIT_RE = re.compile(r"^init\s+(.*)$", re.IGNORECASE)


class LitmusError(ValueError):
    """Raised when litmus text cannot be parsed."""


def _alloc_addr(name: str, table: Dict[str, int]) -> int:
    if name not in table:
        table[name] = len(table) * WORD_SIZE
    return table[name]


def parse_litmus(text: str) -> Tuple[Program, Execution]:
    """Parse the paper's litmus notation into a ``(Program, Execution)`` pair.

    Grammar (blank lines and ``#`` comments ignored)::

        init A=0 B=5          # optional; unlisted locations start at 0
        P0: S[B]#91 ; S[A]#1 ; L[A]=2
        P1: S[A]#2
        P2: SWAP[A]=1,#2 ; M ; CAS[B]=0,#7 ; CASF[B]=9

    ``S[A]#v`` stores v to A (``BST[A]#v`` is accepted as a synonym, used
    when transcribing the Fig. 6 block-store example); ``L[A]=v`` is a load
    observing v; ``SWAP[A]=old,#new`` an atomic swap; ``CAS[A]=old,#new`` a
    compare-and-swap that succeeded; ``CASF[A]=old`` one that failed (and
    therefore degenerates to a load, Sec. 3.3); ``M`` a full membar.

    Each ``CAS``/``CASF`` is emitted with its Sec. 3.1 companion load
    implicitly: the compare value is taken to be the ``old`` value written
    in the notation, and the implicit load is *not* added to the program —
    the notation describes dynamic outcomes directly, so the compare value
    is recorded on the CAS's own record.
    """
    addr_table: Dict[str, int] = {}
    init_named: Dict[str, int] = {}
    proc_lines: Dict[int, str] = {}

    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip() if not _looks_like_op_line(raw) else raw.strip()
        if not line:
            continue
        m = _INIT_RE.match(line)
        if m:
            for part in m.group(1).split():
                if "=" not in part:
                    raise LitmusError(f"bad init clause: {part!r}")
                name, val = part.split("=", 1)
                init_named[name] = int(val)
            continue
        m = _PROC_RE.match(line)
        if m:
            pid = int(m.group(1))
            if pid in proc_lines:
                raise LitmusError(f"duplicate processor line P{pid}")
            proc_lines[pid] = m.group(2)
            continue
        raise LitmusError(f"unrecognized line: {raw!r}")

    if not proc_lines:
        raise LitmusError("no processor lines found")
    nprocs = max(proc_lines) + 1

    threads: List[Thread] = [Thread() for _ in range(nprocs)]
    records: List[List[DynRecord]] = [[] for _ in range(nprocs)]

    for pid in range(nprocs):
        body = proc_lines.get(pid, "")
        for tok in filter(None, (t.strip() for t in body.split(";"))):
            _parse_op(tok, threads[pid], records[pid], addr_table)

    initial = {_alloc_addr(n, addr_table): v for n, v in init_named.items()}
    word_names = {addr: name for name, addr in addr_table.items()}
    program = Program(threads=threads, initial=initial, word_names=word_names)
    program.validate()
    execution = Execution(records=records)
    return program, execution


def _looks_like_op_line(raw: str) -> bool:
    # '#' introduces store values inside op lines, so only strip comments
    # from lines that are not processor bodies.
    return bool(_PROC_RE.match(raw.strip()))


def _parse_op(
    tok: str,
    thread: Thread,
    records: List[DynRecord],
    addr_table: Dict[str, int],
) -> None:
    m = _TOKEN_RES["store"].match(tok)
    if m:
        addr = _alloc_addr(m.group(1), addr_table)
        instr = IStore(addr=addr, size=WORD_SIZE)
        thread.append(instr)
        records.append(DynRecord(instr=instr, stored=(int(m.group(2)),)))
        return
    m = _TOKEN_RES["load"].match(tok)
    if m:
        addr = _alloc_addr(m.group(1), addr_table)
        instr = ILoad(addr=addr, size=WORD_SIZE)
        thread.append(instr)
        records.append(DynRecord(instr=instr, loaded=(int(m.group(2)),)))
        return
    m = _TOKEN_RES["swap"].match(tok)
    if m:
        addr = _alloc_addr(m.group(1), addr_table)
        instr = ISwap(addr=addr, size=WORD_SIZE)
        thread.append(instr)
        records.append(
            DynRecord(instr=instr, loaded=(int(m.group(2)),), stored=(int(m.group(3)),))
        )
        return
    m = _TOKEN_RES["cas"].match(tok)
    if m:
        addr = _alloc_addr(m.group(1), addr_table)
        load = ILoad(addr=addr, size=WORD_SIZE)
        load_idx = thread.append(load)
        records.append(DynRecord(instr=load, loaded=(int(m.group(2)),)))
        instr = ICas(addr=addr, size=WORD_SIZE, compare_from=load_idx)
        thread.append(instr)
        records.append(
            DynRecord(
                instr=instr,
                loaded=(int(m.group(2)),),
                stored=(int(m.group(3)),),
                cas_ok=True,
            )
        )
        return
    m = _TOKEN_RES["casf"].match(tok)
    if m:
        addr = _alloc_addr(m.group(1), addr_table)
        load = ILoad(addr=addr, size=WORD_SIZE)
        load_idx = thread.append(load)
        records.append(DynRecord(instr=load, loaded=(int(m.group(2)),)))
        instr = ICas(addr=addr, size=WORD_SIZE, compare_from=load_idx)
        thread.append(instr)
        records.append(
            DynRecord(instr=instr, loaded=(int(m.group(2)),), cas_ok=False)
        )
        return
    if _TOKEN_RES["membar"].match(tok):
        instr = IMembar()
        thread.append(instr)
        records.append(DynRecord(instr=instr))
        return
    raise LitmusError(f"unrecognized operation: {tok!r}")


def format_program(program: Program) -> str:
    """Render a program as one ``Pn:`` mnemonic line per processor."""
    lines = []
    if program.initial:
        inits = " ".join(
            f"{program.name_of(a)}={v}" for a, v in sorted(program.initial.items())
        )
        lines.append(f"init {inits}")
    for pid, thread in enumerate(program.threads):
        body = " ; ".join(instr.mnemonic() for instr in thread)
        lines.append(f"P{pid}: {body}")
    return "\n".join(lines)
