"""SPARC V9 assembly emission for generated test programs.

Produces one assembler routine per thread, following the run-time
conventions Sec. 3.1 describes:

* **Unique store values** — "two running counters, one each in a
  floating point register and an integer register ... used as the source
  of store values".  Scalar stores draw from the integer counter
  (``%l0``, stepped by ``%l1``); block stores draw from the floating-
  point counter (``%f2``, stepped by ``%f4``), since VIS block stores
  move floating-point registers.
* **Load observability** — "code to observe and save the results of all
  the load operations ... buffered in two sets of processor registers
  ... When a results buffer is full, its contents are flushed to
  memory."  Load results rotate through ``%o0``–``%o5``; a six-entry
  flush writes them to the per-thread results area.
* **Branch randomization** — "a dynamic software LFSR is maintained on
  each processor": ``%l6`` holds the LFSR state and unpredictable
  branches test its low bit after a Galois step.

Register conventions (documented in the emitted header):

========  =====================================================
``%i0``   base address of the shared-memory region
``%i1``   base address of this thread's results area
``%l0``   integer unique-value counter; ``%l1`` its stride
``%l6``   software LFSR state; ``%l7`` scratch
``%o0-5`` load-result buffer; ``%o7`` flush cursor
``%g1``   scratch (addresses, CAS compare values)
``%f0-62``  floating-point counter and block-transfer registers
========  =====================================================

Emission is text-only: this reproduction has no SPARC hardware to
assemble for, but the backend keeps the generator's artifacts usable in
an environment that does, and it is exercised structurally by
``tests/emit/test_sparc.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.model.ops import (
    WORD_SIZE,
    IBlockLoad,
    IBlockStore,
    IBranch,
    ICas,
    IFlushCache,
    IFlushPipe,
    IInterrupt,
    ILoad,
    IMembar,
    INonFaultingLoad,
    IPrefetch,
    IStore,
    ISwap,
    Instr,
    PrefetchVariant,
)
from repro.model.program import Program

#: How many load results are buffered in registers before a flush.
RESULT_BUFFER_SLOTS = 6

#: Prefetch function codes (SPARC V9 ``prefetch [addr], #n``).
_PREFETCH_FCN = {
    (PrefetchVariant.READ_ONCE, False): 0,
    (PrefetchVariant.READ_MANY, False): 1,
    (PrefetchVariant.READ_ONCE, True): 20,
    (PrefetchVariant.READ_MANY, True): 21,
    (PrefetchVariant.WRITE_ONCE, False): 2,
    (PrefetchVariant.WRITE_MANY, False): 3,
    (PrefetchVariant.WRITE_ONCE, True): 22,
    (PrefetchVariant.WRITE_MANY, True): 23,
}

_LOAD_OPCODE = {4: "lduw", 8: "ldx", 16: "ldq"}
_STORE_OPCODE = {4: "stw", 8: "stx", 16: "stq"}


@dataclass(frozen=True)
class EmitConfig:
    """Knobs for the assembler backend.

    Attributes:
        value_stride: increment between unique store values (the low
            bits encode the CPU id at run time, mirroring
            :meth:`repro.sim.cpu.Cpu.next_value`).
        lfsr_taps: Galois feedback mask for the branch LFSR.
        comment_ops: annotate every emitted instruction with its source
            operation (useful for debug; off for dense output).
    """

    value_stride: int = 256
    lfsr_taps: int = 0x80200003
    comment_ops: bool = True


class _ThreadEmitter:
    """Emits one thread's routine."""

    def __init__(self, pid: int, program: Program, config: EmitConfig) -> None:
        self.pid = pid
        self.program = program
        self.config = config
        self.lines: List[str] = []
        self._pending_results = 0
        self._flushed_results = 0
        self._label_serial = 0

    # -- helpers --------------------------------------------------------

    def _op(self, text: str, comment: str = "") -> None:
        if comment and self.config.comment_ops:
            self.lines.append(f"\t{text:<40s}! {comment}")
        else:
            self.lines.append(f"\t{text}")

    def _label(self, stem: str) -> str:
        self._label_serial += 1
        return f".L{self.pid}_{stem}_{self._label_serial}"

    def _addr(self, byte_addr: int) -> str:
        return f"[%i0 + {byte_addr}]"

    def _bump_int_counter(self) -> None:
        self._op("add     %l0, %l1, %l0", "next unique store value")

    def _result_reg(self) -> str:
        reg = f"%o{self._pending_results}"
        self._pending_results += 1
        return reg

    def _flush_results_if_full(self) -> None:
        if self._pending_results < RESULT_BUFFER_SLOTS:
            return
        self._op("! -- results buffer full: flush to memory --")
        for slot in range(self._pending_results):
            offset = (self._flushed_results + slot) * 8
            self._op(f"stx     %o{slot}, [%i1 + {offset}]",
                     f"save load result {self._flushed_results + slot}")
        self._flushed_results += self._pending_results
        self._pending_results = 0

    def _record_result(self, src_reg: str) -> None:
        reg = self._result_reg()
        if reg != src_reg:
            self._op(f"mov     {src_reg}, {reg}", "buffer load result")
        self._flush_results_if_full()

    # -- instruction emission -------------------------------------------

    def emit(self) -> List[str]:
        self.lines.append(f"tsotool_thread_{self.pid}:")
        self._op("save    %sp, -192, %sp")
        self._op(f"set     {1 + self.pid}, %l0", "integer value counter seed")
        self._op(f"set     {self.config.value_stride}, %l1", "value stride")
        self._op(f"set     0x{0xDEADBEEF ^ (self.pid * 0x9E37):x}, %l6",
                 "software LFSR seed")
        for index, instr in enumerate(self.program.threads[self.pid]):
            self.lines.append(f".L{self.pid}_op{index}:")
            self._emit_instr(index, instr)
        self._final_flush()
        self._op("ret")
        self._op("restore")
        return self.lines

    def _final_flush(self) -> None:
        if self._pending_results:
            self._op("! -- final results flush --")
            for slot in range(self._pending_results):
                offset = (self._flushed_results + slot) * 8
                self._op(f"stx     %o{slot}, [%i1 + {offset}]")
            self._flushed_results += self._pending_results
            self._pending_results = 0

    def _emit_instr(self, index: int, instr: Instr) -> None:
        if isinstance(instr, INonFaultingLoad):
            self._op(
                f"{_LOAD_OPCODE[instr.size]}a {self._addr(instr.addr)} "
                "%asi_pnf, %g1",
                f"non-faulting load ({'faulting' if instr.faulting else 'valid'} page)",
            )
            self._record_result("%g1")
            return
        if isinstance(instr, ILoad):
            if instr.cacheable:
                self._op(
                    f"{_LOAD_OPCODE[instr.size]}    {self._addr(instr.addr)}, %g1",
                    instr.mnemonic(),
                )
            else:
                self._op(
                    f"{_LOAD_OPCODE[instr.size]}a   {self._addr(instr.addr)} "
                    "#ASI_REAL_IO, %g1",
                    instr.mnemonic(),
                )
            self._record_result("%g1")
            return
        if isinstance(instr, IStore):
            for word in range(instr.words()):
                self._bump_int_counter()
                if word == 0 and instr.words() == 1:
                    if instr.cacheable:
                        self._op(
                            f"{_STORE_OPCODE[instr.size]}     %l0, {self._addr(instr.addr)}",
                            instr.mnemonic(),
                        )
                    else:
                        self._op(
                            f"{_STORE_OPCODE[instr.size]}a    %l0, "
                            f"{self._addr(instr.addr)} #ASI_REAL_IO",
                            instr.mnemonic(),
                        )
                else:
                    self._op(
                        f"stw     %l0, {self._addr(instr.addr + word * WORD_SIZE)}",
                        f"{instr.mnemonic()} word {word}",
                    )
            return
        if isinstance(instr, ISwap):
            self._bump_int_counter()
            self._op(f"mov     %l0, %g1", "swap write value")
            self._op(f"swap    {self._addr(instr.addr)}, %g1", instr.mnemonic())
            self._record_result("%g1")
            return
        if isinstance(instr, ICas):
            # The compare value is the result of the companion load,
            # still live in the newest result register (the generator
            # emits the load immediately before the CAS).
            self._bump_int_counter()
            self._op("mov     %l0, %g1", "CAS new value")
            width = "casa" if instr.size == 4 else "casxa"
            self._op(
                f"{width}    {self._addr(instr.addr)}, %g2, %g1",
                f"{instr.mnemonic()} (compare in %g2 from companion load)",
            )
            self._record_result("%g1")
            return
        if isinstance(instr, IMembar):
            self._op("membar  #Sync", "full memory barrier")
            return
        if isinstance(instr, IBlockStore):
            self._op("fmovd   %f2, %f32", "stage fp unique values")
            for i in range(1, 8):
                self._op(f"faddd   %f2, %f4, %f2")
                self._op(f"fmovd   %f2, %f{32 + 2 * i}")
            self._op(f"faddd   %f2, %f4, %f2", "advance fp counter")
            self._op(
                f"stda    %f32, {self._addr(instr.addr)} #ASI_BLK_P",
                instr.mnemonic(),
            )
            return
        if isinstance(instr, IBlockLoad):
            self._op(
                f"ldda    {self._addr(instr.addr)} #ASI_BLK_P, %f32",
                instr.mnemonic(),
            )
            self._op("membar  #Sync", "block-load completion")
            for i in range(2):
                self._op(f"std     %f{32 + 8 * i}, [%i1 + {self._flushed_results * 8}]",
                         "spill sampled block data")
            return
        if isinstance(instr, IPrefetch):
            fcn = _PREFETCH_FCN[(instr.variant, instr.strong)]
            self._op(f"prefetch {self._addr(instr.addr)}, #{fcn}",
                     instr.mnemonic())
            return
        if isinstance(instr, IFlushCache):
            self._op(f"add     %i0, {instr.addr}, %g1")
            self._op("flush   %g1", instr.mnemonic())
            return
        if isinstance(instr, IFlushPipe):
            self._op("flushw", instr.mnemonic())
            return
        if isinstance(instr, IInterrupt):
            self._op(f"set     {instr.target}, %g1", "cross-call target CPU")
            self._op("call    tsotool_send_ipi", instr.mnemonic())
            self._op("nop")
            return
        if isinstance(instr, IBranch):
            target = f".L{self.pid}_op{index + instr.skip + 1}"
            self._emit_lfsr_step()
            self._op("andcc   %l6, 1, %g0", "test LFSR output bit")
            self._op(f"bne,pn  %icc, {target}", instr.mnemonic())
            self._op("nop")
            return
        raise ValueError(f"cannot emit {instr!r}")

    def _emit_lfsr_step(self) -> None:
        skip = self._label("lfsr")
        self._op("andcc   %l6, 1, %g0", "LFSR: test bit 0")
        self._op("srlx    %l6, 1, %l6")
        self._op(f"be,pt   %icc, {skip}")
        self._op("nop")
        self._op(f"set     0x{self.config.lfsr_taps:x}, %l7")
        self._op("xor     %l6, %l7, %l6", "Galois feedback")
        self.lines.append(f"{skip}:")


def emit_sparc(program: Program, config: Optional[EmitConfig] = None) -> str:
    """Emit a complete SPARC V9 assembly module for ``program``.

    One routine per thread (``tsotool_thread_<pid>``), plus a header
    documenting the register conventions and the shared-region layout.
    The caller's harness is expected to pass the shared-region base in
    ``%i0`` and a per-thread results area in ``%i1``, and to bind each
    routine to one processor.
    """
    config = config or EmitConfig()
    program.validate()
    lines = [
        "! Generated by repro (TSOtool reproduction) - SPARC V9 test program",
        f"! threads: {program.nprocs}, shared words: {len(program.addresses())}",
        "! conventions: %i0 = shared base, %i1 = results area,",
        "!              %l0/%l1 = integer unique-value counter/stride,",
        "!              %f2/%f4 = fp unique-value counter/stride,",
        "!              %l6 = software LFSR, %o0-%o5 = result buffer",
        "\t.text",
        "\t.align  8",
    ]
    for addr in sorted(program.initial):
        lines.append(
            f"! init word +{addr:#x} = {program.initial[addr]}"
        )
    for pid in range(program.nprocs):
        lines.append("")
        lines.append(f"\t.global tsotool_thread_{pid}")
        lines.extend(_ThreadEmitter(pid, program, config).emit())
    return "\n".join(lines) + "\n"
