"""Test-program emission backends (Sec. 3.1).

"This program sequence is then mapped to either a set of assembler
instructions, or a series of instructions in some other language
suitable for the test environment."  The simulator substrate executes
the internal representation directly; this subpackage provides the
assembler mapping for environments that need source text —
:mod:`repro.emit.sparc` emits SPARC V9 assembly with the paper's
unique-store-value counters, load-result buffering and software LFSR,
and :mod:`repro.emit.c11` emits a compilable C11/pthreads program whose
output pipes straight back into the checker — Step 2 on real (x86 = TSO)
hardware.
"""

from repro.emit.c11 import C11_MIX, EmitC11Config, c11_generator_config, emit_c11
from repro.emit.sparc import EmitConfig, emit_sparc

__all__ = [
    "EmitConfig",
    "emit_sparc",
    "C11_MIX",
    "EmitC11Config",
    "c11_generator_config",
    "emit_c11",
]
