"""One-command reproduction report: every headline result in one file.

``tsotool report -o REPORT.md`` (or :func:`build_report`) runs the whole
evaluation — litmus conformance, Tables 1 and 2, the Fig. 8/9 runtime
series, the engine ablation — and renders a single markdown document
with paper-vs-measured values, so a reviewer can regenerate the entire
story in one sitting and diff it against EXPERIMENTS.md.

Scaled-down by default (a few minutes of compute); the knobs accept the
paper-scale settings when more patience is available.
"""

from __future__ import annotations

import platform
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.campaign import (
    CampaignConfig,
    format_table1,
    format_table2,
    run_campaign,
)
from repro.analysis.runtime import format_series, sweep_runtime
from repro.core.api import check_litmus
from repro.core.checker import BaselineChecker
from repro.core.closure import ClosureChecker
from repro.core.policy import PSO, SC, TSO
from repro.generator.litmus import LITMUS_LIBRARY
from repro.sched.spec import SchedSpec

_MODELS = {"TSO": TSO, "SC": SC, "PSO": PSO}


@dataclass
class ReportConfig:
    """Scale knobs for the one-command report."""

    tests_per_bug: int = 10
    fig8_procs: Sequence[int] = (2, 4, 8, 16)
    fig9_words: Sequence[int] = (4, 16, 64)
    ops_points: Sequence[int] = (400, 800)
    ablation_ops: int = 600
    seed: int = 2004
    #: Worker processes for the campaign (the runtime sweeps stay
    #: sequential: parallel points contend for cores and would skew the
    #: Fig. 8/9 timings).
    workers: int = 1
    #: Also run the campaign under the PCT scheduler and report both
    #: detection rates side by side (roughly doubles campaign time).
    compare_scheds: bool = True


def _litmus_section() -> List[str]:
    lines = [
        "## Litmus conformance",
        "",
        "| case | " + " | ".join(_MODELS) + " | expected |",
        "|---|" + "|".join([":--:"] * len(_MODELS)) + "|---|",
    ]
    mismatches = 0
    for case in LITMUS_LIBRARY:
        cells = []
        for name, model in _MODELS.items():
            if name not in case.expect:
                cells.append("—")
                continue
            verdict = check_litmus(case.text, model=model).ok
            mark = "pass" if verdict else "FAIL"
            if verdict != case.expect[name]:
                mark += " (!)"
                mismatches += 1
            cells.append(mark)
        expected = ", ".join(
            f"{m}:{'pass' if ok else 'FAIL'}" for m, ok in case.expect.items()
        )
        lines.append(f"| {case.name} | " + " | ".join(cells) + f" | {expected} |")
    lines.append("")
    lines.append(
        f"**{len(LITMUS_LIBRARY)} cases, {mismatches} mismatches** "
        "(every paper figure and classic shape behaves as documented)."
    )
    return lines


def _campaign_section(config: ReportConfig) -> List[str]:
    result = run_campaign(
        config=CampaignConfig(tests_per_bug=config.tests_per_bug,
                              seed=config.seed),
        workers=config.workers,
    )
    missed = result.missed()
    # Wall clock and summed per-hunt CPU are distinct axes: with N
    # workers the CPU total can approach N x the wall clock.
    lines = [
        "## Tables 1 and 2 — the bug-hunting campaign",
        "",
        "```",
        format_table1(result),
        "```",
        "",
        "```",
        format_table2(result),
        "```",
        "",
        f"{len(result.hunts) - len(missed)}/{len(result.hunts)} seeded bugs "
        f"detected in {result.wall_seconds:.1f}s wall clock, "
        f"{result.cpu_seconds:.1f}s analysis CPU summed over "
        f"{result.stats.workers if result.stats else 1} worker(s) "
        "(paper totals: 7/69/25/5 by class; 4/49/6/14/9/12 by unit).",
    ]
    if result.stats is not None:
        lines.append("")
        lines.append(f"Throughput: {result.stats.throughput_line()}")
    lines.append("")
    lines.append("Scheduler effectiveness (detection rate per policy):")
    lines.append(f"* {result.detection_line()}")
    if config.compare_scheds:
        pct_result = run_campaign(
            config=CampaignConfig(
                tests_per_bug=config.tests_per_bug, seed=config.seed,
                sched=SchedSpec(kind="pct"),
            ),
            workers=config.workers,
        )
        lines.append(f"* {pct_result.detection_line()}")
    for hunt in missed:
        tag = "hung" if hunt.hung else "missed"
        lines.append(f"* {tag}: {hunt.spec.name}")
    return lines


def _runtime_section(config: ReportConfig) -> List[str]:
    fig8 = sweep_runtime(
        proc_counts=config.fig8_procs, word_counts=[16],
        ops_points=config.ops_points, seed=8,
    )
    fig9 = sweep_runtime(
        proc_counts=[4], word_counts=config.fig9_words,
        ops_points=config.ops_points, seed=9,
    )
    return [
        "## Figures 8 and 9 — analysis runtime",
        "",
        "```",
        format_series(fig8, "Fig. 8: runtime vs ops, by processor count"),
        "```",
        "",
        "```",
        format_series(fig9, "Fig. 9: runtime vs ops, by shared addresses"),
        "```",
        "",
        "Shape notes: near-linear in operations; denser with more "
        "processors (the paper's claim); the shared-address wall-clock "
        "trend inverts here — see EXPERIMENTS.md for the mechanism "
        "measurement and discussion.",
    ]


def _ablation_section(config: ReportConfig) -> List[str]:
    from repro.analysis.runtime import _MEASURE_MIX
    from repro.generator.config import GeneratorConfig
    from repro.generator.generator import generate_program
    from repro.model.expansion import expand
    from repro.sim.machine import TsoMachine

    gconfig = GeneratorConfig(
        nprocs=4, ops_per_proc=config.ablation_ops // 4, shared_words=16,
        mix=_MEASURE_MIX, loop_prob=0.0,
    )
    program = generate_program(gconfig, seed=17)
    execution = TsoMachine(program, seed=17).run()
    aprog = expand(execution, initial=program.initial)
    baseline = BaselineChecker().run(aprog)
    closure = ClosureChecker().run(aprog)
    speedup = baseline.stats.seconds / max(closure.stats.seconds, 1e-9)
    return [
        "## Engine ablation",
        "",
        f"* Fig. 2 traversal engine: {baseline.stats.seconds * 1e3:.1f} ms "
        f"({baseline.stats.traversals} bounded traversals, "
        f"{baseline.stats.traversal_visits} nodes visited)",
        f"* bitset closure engine:   {closure.stats.seconds * 1e3:.1f} ms",
        f"* speedup: {speedup:.1f}x on {aprog.n} nodes "
        "(identical verdicts, property-tested)",
    ]


def build_report(config: Optional[ReportConfig] = None) -> str:
    """Run the evaluation and render the markdown report."""
    config = config or ReportConfig()
    start = time.perf_counter()
    sections: List[str] = [
        "# TSOtool reproduction report",
        "",
        f"Host: Python {platform.python_version()} on {platform.machine()}; "
        f"campaign seed {config.seed}.",
        "",
    ]
    sections.extend(_litmus_section())
    sections.append("")
    sections.extend(_campaign_section(config))
    sections.append("")
    sections.extend(_runtime_section(config))
    sections.append("")
    sections.extend(_ablation_section(config))
    sections.append("")
    sections.append(
        f"_Generated in {time.perf_counter() - start:.1f}s; see "
        "EXPERIMENTS.md for the full paper-vs-measured discussion._"
    )
    return "\n".join(sections) + "\n"
