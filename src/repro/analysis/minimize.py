"""Failing-trace minimization — the paper's debuggability future work.

Sec. 7: "In future, we expect to ... make TSOtool failures easier to
debug."  A randomly generated failing run carries hundreds of
operations, almost all irrelevant to the violation; this module shrinks
it to a minimal failing core with delta debugging over the dynamic
records:

1. drop whole processors that contribute nothing to the failure;
2. ddmin-style chunk removal over each processor's record list;
3. a final one-by-one sweep.

A candidate reduction is accepted only if the reduced trace still fails
**with a cycle violation** — removals that merely orphan a load's value
(turning the failure into an unmapped-value precheck) would "minimize"
toward a different, uninteresting failure, so they are rejected.

The result is typically litmus-sized (the Sec. 5.1 bug write-ups are
two-to-four operations per processor) and feeds directly into the
what-if workflow or the DOT rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.api import check_execution
from repro.core.policy import PSO, SC, TSO, MemoryModel
from repro.core.result import CheckResult, ViolationKind
from repro.model.trace import DynRecord, Execution
from repro.sched.trace import ScheduleTrace


@dataclass
class MinimizationResult:
    """A minimal failing trace plus accounting."""

    execution: Execution
    result: CheckResult
    original_records: int
    checks_run: int

    @property
    def minimized_records(self) -> int:
        """Record count of the minimized trace."""
        return self.execution.total_records()


def _fails_with_cycle(
    records: List[List[DynRecord]],
    initial: Optional[Dict[int, int]],
    model: MemoryModel,
) -> Optional[CheckResult]:
    """The check result if this candidate still fails with a cycle."""
    try:
        result = check_execution(Execution(records=records), initial=initial,
                                 model=model)
    except ValueError:
        return None
    if result.ok or result.violation is None:
        return None
    if result.violation.kind != ViolationKind.CYCLE:
        return None
    return result


def minimize_failure(
    execution: Execution,
    initial: Optional[Dict[int, int]] = None,
    model: MemoryModel = TSO,
    max_checks: int = 5_000,
) -> MinimizationResult:
    """Shrink a failing execution to a minimal failing core.

    Args:
        execution: a trace that fails the check with a cycle violation.
        initial: initial memory values (as for
            :func:`repro.core.api.check_execution`).
        model: memory model to minimize against.
        max_checks: budget on re-analysis calls; minimization stops
            early (still sound — the trace fails) when exhausted.

    Raises:
        ValueError: if the input does not fail with a cycle to begin with.
    """
    records = [list(proc) for proc in execution.records]
    state = _State(initial, model, max_checks)
    result = _fails_with_cycle(records, initial, model)
    if result is None:
        raise ValueError("input execution does not fail with a cycle")

    records, result = _drop_processors(records, result, state)
    records, result = _ddmin_chunks(records, result, state)
    records, result = _one_by_one(records, result, state)

    return MinimizationResult(
        execution=Execution(records=records),
        result=result,
        original_records=execution.total_records(),
        checks_run=state.checks,
    )


def minimize_recorded(
    trace: ScheduleTrace, max_checks: int = 5_000
) -> MinimizationResult:
    """Replay a recorded hunt exactly, then shrink its failing trace.

    The schedule replay regenerates the *identical* failing execution —
    interleaving, fault firings and all — so the reduction starts from
    the exact run that was detected, not a fresh random run that may
    fail differently (or not at all).  The memory model and initial
    values come from the trace's own metadata.

    Raises:
        ValueError: if the replayed run does not fail with a cycle
            (monitor/environment detections have nothing to shrink), or
            if the trace is not a campaign hunt trace.
    """
    # Deferred: repro.analysis.replay pulls in the whole sim stack,
    # which plain execution-level minimization does not need.
    from repro.analysis.replay import replay_hunt

    replayed = replay_hunt(trace)
    models = {"TSO": TSO, "SC": SC, "PSO": PSO}
    model = models[str(trace.meta["model"])]
    return minimize_failure(
        replayed.observed,
        initial=dict(replayed.program.initial),
        model=model,
        max_checks=max_checks,
    )


class _State:
    def __init__(self, initial, model, max_checks) -> None:
        self.initial = initial
        self.model = model
        self.max_checks = max_checks
        self.checks = 0

    def attempt(self, records) -> Optional[CheckResult]:
        if self.checks >= self.max_checks:
            return None
        self.checks += 1
        return _fails_with_cycle(records, self.initial, self.model)


def _drop_processors(records, result, state):
    """Try emptying whole processors (keep indices stable)."""
    for pid in range(len(records)):
        if not records[pid]:
            continue
        candidate = [list(p) for p in records]
        candidate[pid] = []
        attempt = state.attempt(candidate)
        if attempt is not None:
            records, result = candidate, attempt
    return records, result


def _ddmin_chunks(records, result, state):
    """Remove halving chunks per processor until nothing shrinks."""
    changed = True
    while changed:
        changed = False
        for pid in range(len(records)):
            chunk = max(1, len(records[pid]) // 2)
            while chunk >= 1:
                start = 0
                while start < len(records[pid]):
                    candidate = [list(p) for p in records]
                    del candidate[pid][start:start + chunk]
                    attempt = state.attempt(candidate)
                    if attempt is not None:
                        records, result = candidate, attempt
                        changed = True
                    else:
                        start += chunk
                chunk //= 2
    return records, result


def _one_by_one(records, result, state):
    """Final sweep: every remaining record must be load-bearing."""
    pid = 0
    while pid < len(records):
        idx = 0
        while idx < len(records[pid]):
            candidate = [list(p) for p in records]
            del candidate[pid][idx]
            attempt = state.attempt(candidate)
            if attempt is not None:
                records, result = candidate, attempt
            else:
                idx += 1
        pid += 1
    return records, result


def render_minimized(minimized: MinimizationResult) -> str:
    """A litmus-style listing of the minimal failing core."""
    lines = [
        f"minimal failing core: {minimized.minimized_records} of "
        f"{minimized.original_records} records "
        f"({minimized.checks_run} re-analyses)",
    ]
    for pid, proc in enumerate(minimized.execution.records):
        if not proc:
            continue
        parts = []
        for rec in proc:
            part = rec.instr.mnemonic()
            if rec.loaded is not None:
                part += f" ={list(rec.loaded)}"
            if rec.stored is not None:
                part += f" #{list(rec.stored)}"
            parts.append(part)
        lines.append(f"  P{pid}: " + " ; ".join(parts))
    lines.append(minimized.result.explain())
    return "\n".join(lines)
