"""Coverage-guided generator tuning (Sec. 3.1).

"Users can improve the quality of testcases generated using tools which
report test coverage."  This module closes that loop automatically: a
random-search tuner proposes instruction-mix/layout variations, scores
each candidate by running it and measuring a coverage objective
(:mod:`repro.analysis.coverage`), and keeps the best.

Objectives are plain callables on a :class:`~repro.analysis.coverage.CoverageReport`;
two ready-made ones cover the common goals — maximize racing-pair
coverage (good for ordering bugs) and maximize atomic contention (good
for atomicity bugs).  ``examples/coverage_tuning.py`` shows the tuner
measurably improving detection of a low-rate fault.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple

from repro.analysis.coverage import CoverageReport, measure_coverage
from repro.generator.config import GeneratorConfig, InstructionMix
from repro.generator.generator import generate_program
from repro.sim.machine import MachineConfig, TsoMachine

#: An objective maps a coverage report to a score (higher = better).
Objective = Callable[[CoverageReport], float]


def race_pair_objective(report: CoverageReport) -> float:
    """Racing processor pairs per memory operation (ordering-bug fuel)."""
    return report.race_pairs / max(report.total_memory_ops, 1)


def atomic_contention_objective(report: CoverageReport) -> float:
    """Contended atomic words plus failed-CAS events (atomicity fuel).

    A small per-atomic-op term keeps the objective smooth where no
    contention has materialized yet, so hill-climbing has a gradient to
    follow from atomics-free mixes.
    """
    atomics = sum(
        report.instr_counts.get(kind, 0) for kind in ("swap", "cas_ok", "cas_fail")
    )
    return (
        report.atomic_contended_words * 10.0
        + report.instr_counts.get("cas_fail", 0)
        + 0.1 * atomics
    )


@dataclass
class TuningResult:
    """Outcome of a tuning run."""

    best_config: GeneratorConfig
    best_score: float
    baseline_score: float
    evaluations: int
    history: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Best/baseline score ratio (1.0 = no gain)."""
        if self.baseline_score <= 0:
            return float("inf") if self.best_score > 0 else 1.0
        return self.best_score / self.baseline_score


def _score(
    config: GeneratorConfig, objective: Objective, seeds, machine_config
) -> float:
    total = 0.0
    for seed in seeds:
        program = generate_program(config, seed=seed)
        machine = TsoMachine(program, seed=seed, config=machine_config)
        execution = machine.run()
        total += objective(measure_coverage(program, execution, machine))
    return total / len(seeds)


def _mutate(config: GeneratorConfig, rng: random.Random) -> GeneratorConfig:
    """One random variation: scale a mix weight, or tweak layout knobs."""
    mix = config.mix
    choice = rng.random()
    if choice < 0.6:
        weights = {
            f: getattr(mix, f)
            for f in (
                "load", "store", "swap", "cas", "membar", "block_load",
                "block_store", "nonfaulting_load", "prefetch", "flush",
                "branch", "interrupt", "nc_load", "nc_store",
            )
        }
        field_name = rng.choice(list(weights))
        factor = rng.choice([0.0, 0.25, 0.5, 2.0, 4.0, 8.0])
        weights[field_name] = weights[field_name] * factor
        if all(w == 0 for w in weights.values()):
            weights["load"] = 1.0
        return replace(config, mix=InstructionMix(**weights))
    if choice < 0.8:
        words = rng.choice([1, 2, 4, 8, 16, 32])
        return replace(config, shared_words=words)
    return replace(config, stride_words=rng.choice([1, 4, 16]))


def tune(
    base: Optional[GeneratorConfig] = None,
    objective: Objective = race_pair_objective,
    rounds: int = 20,
    seeds_per_eval: int = 3,
    machine_config: Optional[MachineConfig] = None,
    seed: int = 0,
) -> TuningResult:
    """Random-search tuning of the generator toward an objective.

    Args:
        base: starting configuration (defaults to the stock one).
        objective: coverage score to maximize.
        rounds: candidate configurations to evaluate.
        seeds_per_eval: runs averaged per candidate (noise control).
        machine_config: machine used for scoring runs.
        seed: tuner PRNG seed; the whole search is deterministic.
    """
    rng = random.Random(seed)
    base = base or GeneratorConfig()
    machine_config = machine_config or MachineConfig()
    eval_seeds = [seed * 1_000 + i for i in range(seeds_per_eval)]

    baseline = _score(base, objective, eval_seeds, machine_config)
    best_config, best_score = base, baseline
    history: List[Tuple[int, float]] = [(0, baseline)]

    for round_index in range(1, rounds + 1):
        candidate = _mutate(best_config, rng)
        try:
            score = _score(candidate, objective, eval_seeds, machine_config)
        except ValueError:
            continue  # mutation produced an invalid config; skip it
        if score > best_score:
            best_config, best_score = candidate, score
        history.append((round_index, best_score))

    return TuningResult(
        best_config=best_config,
        best_score=best_score,
        baseline_score=baseline,
        evaluations=len(history),
        history=history,
    )
