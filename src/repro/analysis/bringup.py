"""Silicon bring-up simulation: all bugs present at once.

The Table 1/2 campaign hunts each seeded bug in isolation, but that is
not how bring-up works: first silicon arrives with *all* its bugs live
simultaneously ("TSOtool has found numerous bugs during both the design
simulation and silicon bringup processes").  This harness plays that
story out:

1. attach every hardware bug of a CPU roster to one machine;
2. run generated tests until one fails;
3. *attribute* the failure — re-run the same (program, seed) with one
   candidate fault active at a time until a single fault reproduces it
   (the debugging the paper describes: "most of these bugs involved
   complex interaction ... and require a detailed understanding of the
   design to root-cause");
4. "fix" the attributed bug (drop it from the roster) and continue until
   the roster is clean or the budget runs out.

The output is a bring-up diary: which bug fell to which test, how many
tests each took, and how many attribution re-runs the root-causing cost.
Monitor and environment bugs are excluded — they are not hardware state
and their triage differs (see :mod:`repro.analysis.campaign`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.api import check
from repro.core.policy import TSO, MemoryModel
from repro.generator.config import GeneratorConfig
from repro.generator.generator import generate_program
from repro.sim.cpus import BugSpec, CpuConfig
from repro.sim.faults import BugClass
from repro.sim.machine import MachineConfig, TsoMachine


@dataclass
class BringupEvent:
    """One fixed bug: how it was found and root-caused."""

    bug: str
    mechanism: str
    unit: str
    tests_to_failure: int
    failing_seed: int
    attribution_runs: int
    attributed: bool  # False = interaction, no single fault reproduced it

    def row(self) -> str:
        """One diary line."""
        how = "single-fault repro" if self.attributed else "interaction (ddmin)"
        return (
            f"{self.bug:28s} {self.unit:12s} {self.mechanism:28s} "
            f"found after {self.tests_to_failure:2d} test(s), "
            f"root-caused in {self.attribution_runs:2d} rerun(s) [{how}]"
        )


@dataclass
class BringupLog:
    """The full bring-up session."""

    cpu: str
    events: List[BringupEvent] = field(default_factory=list)
    remaining: List[str] = field(default_factory=list)
    total_tests: int = 0

    @property
    def fixed(self) -> int:
        """Bugs found and fixed."""
        return len(self.events)

    def render(self) -> str:
        """The bring-up diary."""
        lines = [
            f"bring-up of {self.cpu}: {self.fixed} hardware bugs fixed "
            f"over {self.total_tests} tests"
        ]
        lines.extend("  " + event.row() for event in self.events)
        if self.remaining:
            lines.append(f"  still latent: {', '.join(self.remaining)}")
        return "\n".join(lines)


def _hardware_specs(cpu: CpuConfig) -> List[BugSpec]:
    return [
        spec for spec in cpu.bugs
        if spec.bug_class in (BugClass.ARCHITECTURE, BugClass.DESIGN)
    ]


def _run_with(specs: Sequence[BugSpec], program, seed, machine_config, model):
    faults = [spec.instantiate() for spec in specs]
    machine = TsoMachine(program, seed=seed, config=machine_config, faults=faults)
    observed = machine.run()
    result = check(program, observed, model=model)
    return result, faults


def bringup(
    cpu: CpuConfig,
    generator: Optional[GeneratorConfig] = None,
    machine_config: Optional[MachineConfig] = None,
    model: MemoryModel = TSO,
    max_tests: int = 400,
    seed: int = 1965,  # first SPARC bring-up was a while ago
) -> BringupLog:
    """Run a bring-up session for one CPU roster.

    Returns the diary; deterministic per (cpu, seed).
    """
    generator = generator or GeneratorConfig(
        nprocs=4, ops_per_proc=80, shared_words=6
    )
    machine_config = machine_config or MachineConfig()
    active = list(_hardware_specs(cpu))
    log = BringupLog(cpu=cpu.name)

    test_seed = seed
    tests_since_fix = 0
    while active and log.total_tests < max_tests:
        test_seed += 1
        log.total_tests += 1
        tests_since_fix += 1
        program = generate_program(generator, seed=test_seed)
        result, faults = _run_with(
            active, program, test_seed, machine_config, model
        )
        if result.ok:
            continue

        # Root-cause: which single fault reproduces this failure?
        suspect, runs = _attribute(
            active, faults, program, test_seed, machine_config, model
        )
        attributed = suspect is not None
        if suspect is None:
            # Interaction failure: fall back to the fault that fired most
            # during the failing run (the paper's "detailed understanding
            # of the design" stands in for this heuristic).
            fired = max(faults, key=lambda f: f.activations)
            suspect = next(s for s in active if s.name == fired.name)
        log.events.append(
            BringupEvent(
                bug=suspect.name,
                mechanism=suspect.mechanism.__name__,
                unit=suspect.unit.value,
                tests_to_failure=tests_since_fix,
                failing_seed=test_seed,
                attribution_runs=runs,
                attributed=attributed,
            )
        )
        active = [spec for spec in active if spec.name != suspect.name]
        tests_since_fix = 0

    log.remaining = [spec.name for spec in active]
    return log


def _attribute(
    active: Sequence[BugSpec],
    failing_faults,
    program,
    seed: int,
    machine_config,
    model,
) -> Tuple[Optional[BugSpec], int]:
    """Find a single fault that reproduces the failure on the same test.

    Candidates are scanned in order of how often they fired during the
    failing run — the debug engineer follows the hottest signal first.
    """
    by_activations = sorted(
        range(len(active)),
        key=lambda i: failing_faults[i].activations,
        reverse=True,
    )
    runs = 0
    for index in by_activations:
        if failing_faults[index].activations == 0:
            continue  # never fired: cannot be the culprit on this run
        runs += 1
        result, _faults = _run_with(
            [active[index]], program, seed, machine_config, model
        )
        if not result.ok:
            return active[index], runs
    return None, runs
