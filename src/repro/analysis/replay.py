"""Exact re-execution of a recorded hunt from its ScheduleTrace.

A campaign worker that detects a seeded bug records the complete
schedule of the detecting run (see :func:`repro.analysis.campaign.hunt_bug`)
into a :class:`~repro.sched.trace.ScheduleTrace` whose ``meta`` carries
everything needed to rebuild the run from scratch: generator config,
machine config, machine seed, memory model and the fault spec.  This
module is the consumer side — :func:`replay_hunt` turns a trace file
back into the identical failing execution, ready for triage, rendering
or minimization, in any later process.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.policy import PSO, SC, TSO, MemoryModel
from repro.generator.config import GeneratorConfig, InstructionMix
from repro.generator.generator import generate_program
from repro.model.program import Program
from repro.model.trace import Execution
from repro.sched.trace import ReplayPolicy, ScheduleTrace
from repro.sim import faults as faults_mod
from repro.sim.cpus import BugSpec
from repro.sim.faults import BugClass, Fault, FuncUnit
from repro.sim.machine import MachineConfig, TsoMachine

_MODELS: Dict[str, MemoryModel] = {"TSO": TSO, "SC": SC, "PSO": PSO}


def hunt_trace_meta(
    spec: BugSpec,
    cpu_name: str,
    generator: GeneratorConfig,
    machine: MachineConfig,
    model: MemoryModel,
    seed: int,
    via: str,
) -> Dict[str, object]:
    """The reconstruction metadata stamped into a hunt's trace.

    Everything here is JSON-safe and sufficient for :func:`replay_hunt`
    to rebuild the exact run: the program is regenerated from
    ``generator`` + ``seed``, the fault from the spec fields, and the
    machine from ``machine`` + ``seed`` (faults draw their own RNG from
    the machine seed at attach, so the fault's firing pattern replays
    too).
    """
    machine_dict = dataclasses.asdict(machine)
    machine_dict.pop("sched", None)  # replay supplies the policy itself
    return {
        "kind": "hunt",
        "bug": spec.name,
        "cpu": cpu_name,
        "seed": seed,
        "via": via,
        "model": model.name,
        "generator": dataclasses.asdict(generator),
        "machine": machine_dict,
        "fault": {
            "name": spec.name,
            "mechanism": spec.mechanism.__name__,
            "unit": spec.unit.value,
            "bug_class": spec.bug_class.value,
            "rate": spec.rate,
        },
    }


def generator_from_meta(data: Dict[str, object]) -> GeneratorConfig:
    """Rebuild a GeneratorConfig from its ``dataclasses.asdict`` form.

    JSON round-trips stringify the ``size_weights`` keys and listify
    ``patterns``; both are restored here.
    """
    d = dict(data)
    d["mix"] = InstructionMix(**d["mix"])  # type: ignore[arg-type]
    d["size_weights"] = {
        int(k): float(v)
        for k, v in d["size_weights"].items()  # type: ignore[union-attr]
    }
    d["patterns"] = tuple(d["patterns"])  # type: ignore[arg-type]
    return GeneratorConfig(**d)  # type: ignore[arg-type]


def machine_config_from_meta(data: Dict[str, object]) -> MachineConfig:
    """Rebuild a MachineConfig from trace meta (scheduler spec excluded)."""
    d = dict(data)
    d.pop("sched", None)
    return MachineConfig(**d)  # type: ignore[arg-type]


def bug_spec_from_meta(data: Dict[str, object]) -> BugSpec:
    """Rebuild the BugSpec of a recorded hunt from trace meta."""
    mechanism = getattr(faults_mod, str(data["mechanism"]))
    if not (isinstance(mechanism, type) and issubclass(mechanism, Fault)):
        raise ValueError(f"unknown fault mechanism {data['mechanism']!r}")
    rate = data.get("rate")
    return BugSpec(
        name=str(data["name"]),
        mechanism=mechanism,
        unit=FuncUnit(data["unit"]),
        bug_class=BugClass(data["bug_class"]),
        rate=None if rate is None else float(rate),
    )


@dataclass
class ReplayedHunt:
    """One exactly re-executed hunt: the run plus its fresh triage."""

    trace: ScheduleTrace
    spec: BugSpec
    program: Program
    machine: TsoMachine
    observed: Execution
    detected: bool
    via: str


def replay_hunt(trace: ScheduleTrace) -> ReplayedHunt:
    """Re-execute a recorded hunt choice-for-choice and re-triage it.

    Raises:
        ValueError: if the trace was not recorded by a campaign hunt
            (its meta lacks the reconstruction fields).
        repro.sched.trace.ScheduleDivergence: if the rebuilt machine
            asks a question the trace did not answer — meaning the
            environment no longer matches the recorded run.
    """
    # Deferred import: campaign.py imports this module for the meta
    # builder, so the triage helper must be resolved lazily.
    from repro.analysis.campaign import _triage

    meta = trace.meta
    for key in ("generator", "machine", "fault", "seed", "model"):
        if key not in meta:
            raise ValueError(f"trace meta lacks {key!r}; not a hunt trace")
    model = _MODELS.get(str(meta["model"]))
    if model is None:
        raise ValueError(f"unknown memory model {meta['model']!r}")
    spec = bug_spec_from_meta(meta["fault"])  # type: ignore[arg-type]
    generator = generator_from_meta(meta["generator"])  # type: ignore[arg-type]
    machine_config = machine_config_from_meta(meta["machine"])  # type: ignore[arg-type]
    seed = int(meta["seed"])  # type: ignore[arg-type]

    program = generate_program(generator, seed=seed)
    machine = TsoMachine(
        program,
        seed=seed,
        config=machine_config,
        faults=[spec.instantiate()],
        policy=ReplayPolicy(trace),
    )
    observed = machine.run()
    detected, via = _triage(spec, program, machine, observed, model)
    return ReplayedHunt(
        trace=trace,
        spec=spec,
        program=program,
        machine=machine,
        observed=observed,
        detected=detected,
        via=via,
    )
