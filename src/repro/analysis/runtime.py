"""Analysis-runtime measurement — the harness behind Figures 8 and 9.

Fig. 8 plots analysis runtime against total memory operations for 2, 4,
8 and 16 processors at 16 shared words; Fig. 9 the same sweep for a
varying number of shared addresses at 4 processors.  The paper's claims
are about shape, not absolute numbers (theirs is a 450 MHz
UltraSPARC-II):

* runtime scales roughly linearly with total operations for fixed
  processor/address counts;
* more processors → denser cross-processor ordering → slower;
* more shared addresses → sparser graph, more dispersed relations, more
  R6/R7 traversal → slower.

:func:`sweep_runtime` generates *passing* runs on the golden machine (a
violation would end analysis early and skew timing) and times the
checker on each, returning the series to print or benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.pool import ProgressFn, run_tasks
from repro.core.api import DEFAULT_ENGINE, make_checker
from repro.core.policy import TSO, MemoryModel
from repro.core.result import PoolStats
from repro.generator.config import GeneratorConfig, InstructionMix
from repro.generator.generator import generate_program
from repro.model.expansion import expand
from repro.sim.machine import MachineConfig, TsoMachine


@dataclass
class RuntimePoint:
    """One measurement: a configuration and its analysis runtime."""

    nprocs: int
    shared_words: int
    total_ops: int
    nodes: int
    edges: int
    iterations: int
    seconds: float
    #: Closure rebuilds the engine paid (per-pass engines: one per
    #: iteration; the vc engine: exactly one, its headline property).
    closure_rebuilds: int = 0

    def row(self) -> str:
        """Fixed-width text row for the harness output."""
        return (
            f"procs={self.nprocs:<3d} words={self.shared_words:<4d} "
            f"ops={self.total_ops:<7d} nodes={self.nodes:<7d} "
            f"edges={self.edges:<8d} iters={self.iterations:<3d} "
            f"rebuilds={self.closure_rebuilds:<3d} "
            f"time={self.seconds * 1e3:9.2f} ms"
        )


#: A measurement-friendly mix: loads/stores/atomics only, so node count
#: tracks the requested op count closely.
_MEASURE_MIX = InstructionMix(
    load=40.0, store=40.0, swap=3.0, cas=3.0, membar=3.0,
    block_load=0.0, block_store=0.0, nonfaulting_load=0.0,
    prefetch=0.0, flush=0.0, branch=0.0, interrupt=0.0,
)


def measure_runtime(
    nprocs: int,
    shared_words: int,
    total_ops: int,
    seed: int = 0,
    model: MemoryModel = TSO,
    engine: str = DEFAULT_ENGINE,
    repeats: int = 1,
    max_attempts: int = 3,
) -> RuntimePoint:
    """Generate one passing run and time its analysis.

    ``total_ops`` is split evenly across processors.  The reported time
    is the minimum over ``repeats`` checker invocations (generation and
    simulation are excluded — the paper times only the analysis).

    The golden machine should always produce a passing run; if analysis
    fails anyway (a checker bug, or a mis-tuned generator config), the
    point is regenerated with a derived seed up to ``max_attempts``
    times — *never* unboundedly — and then a :class:`RuntimeError`
    naming the offending :class:`~repro.generator.config.GeneratorConfig`
    is raised.
    """
    config = GeneratorConfig(
        nprocs=nprocs,
        ops_per_proc=max(1, total_ops // nprocs),
        shared_words=shared_words,
        mix=_MEASURE_MIX,
        loop_prob=0.0,
    )
    max_attempts = max(1, max_attempts)
    last_result = None
    for attempt in range(max_attempts):
        # Attempt 0 uses the caller's seed verbatim (the historical
        # behaviour); retries derive fresh, well-separated seeds.
        attempt_seed = seed + attempt * 1_000_003
        program = generate_program(config, seed=attempt_seed)
        machine = TsoMachine(program, seed=attempt_seed, config=MachineConfig())
        execution = machine.run()
        aprog = expand(
            execution, initial=program.initial, word_names=program.word_names
        )
        checker = make_checker(model, engine)
        best: Optional[float] = None
        result = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            result = checker.run(aprog)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        assert result is not None and best is not None
        if result.ok:
            return RuntimePoint(
                nprocs=nprocs,
                shared_words=shared_words,
                total_ops=total_ops,
                nodes=result.stats.nodes,
                edges=result.stats.edges,
                iterations=result.stats.iterations,
                seconds=best,
                closure_rebuilds=result.stats.closure_rebuilds,
            )
        last_result = result
    assert last_result is not None
    raise RuntimeError(
        f"no passing run after {max_attempts} attempt(s) on the golden "
        f"machine (seed={seed}, model={model}, engine={engine!r}) — this "
        f"is a checker or generator bug; generator config: {config!r}; "
        "last failure:\n" + last_result.explain()
    )


@dataclass
class SweepResult:
    """An ordered list of sweep points plus batch execution stats.

    Behaves as a sequence of :class:`RuntimePoint` (iteration, indexing,
    ``len``) so pre-pool callers keep working unchanged; ``stats`` adds
    the :class:`~repro.core.result.PoolStats` of the batch.  Points
    whose worker hung on every attempt are *omitted* from ``points``
    but counted in ``stats.hung``.
    """

    points: List[RuntimePoint] = field(default_factory=list)
    stats: Optional[PoolStats] = None

    def __iter__(self) -> Iterator[RuntimePoint]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def __getitem__(self, index):
        return self.points[index]


def _measure_task(task: Tuple[int, int, int, int, str]) -> RuntimePoint:
    """Picklable pool entry point: measure one sweep point in a worker."""
    nprocs, words, ops, seed, engine = task
    return measure_runtime(nprocs, words, ops, seed=seed, engine=engine)


def sweep_runtime(
    proc_counts: Sequence[int],
    word_counts: Sequence[int],
    ops_points: Sequence[int],
    seed: int = 0,
    engine: str = DEFAULT_ENGINE,
    workers: int = 1,
    task_timeout: Optional[float] = None,
    progress: Optional[ProgressFn] = None,
) -> SweepResult:
    """Cartesian runtime sweep over processors × shared words × ops.

    With ``workers > 1`` points are measured across a process pool
    (:mod:`repro.analysis.pool`); every point carries its own seed, so
    the series is identical to the sequential sweep in any worker
    configuration.  Note that concurrent points contend for cores, so
    parallel sweeps trade per-point timing fidelity for wall-clock
    throughput — use ``workers=1`` when publishing Fig. 8/9 numbers.
    """
    tasks: List[Tuple[int, int, int, int, str]] = []
    for nprocs in proc_counts:
        for words in word_counts:
            for ops in ops_points:
                tasks.append((nprocs, words, ops, seed, engine))
    results, stats = run_tasks(
        _measure_task,
        tasks,
        workers=workers,
        task_timeout=task_timeout,
        labels=[f"procs={t[0]} words={t[1]} ops={t[2]}" for t in tasks],
        progress=progress,
    )
    return SweepResult(
        points=[p for p in results if p is not None], stats=stats
    )


def format_series(points: Iterable[RuntimePoint], title: str) -> str:
    """Render a sweep as the text the benchmark harness prints."""
    lines = [title]
    lines.extend("  " + p.row() for p in points)
    return "\n".join(lines)
