"""Analysis-runtime measurement — the harness behind Figures 8 and 9.

Fig. 8 plots analysis runtime against total memory operations for 2, 4,
8 and 16 processors at 16 shared words; Fig. 9 the same sweep for a
varying number of shared addresses at 4 processors.  The paper's claims
are about shape, not absolute numbers (theirs is a 450 MHz
UltraSPARC-II):

* runtime scales roughly linearly with total operations for fixed
  processor/address counts;
* more processors → denser cross-processor ordering → slower;
* more shared addresses → sparser graph, more dispersed relations, more
  R6/R7 traversal → slower.

:func:`sweep_runtime` generates *passing* runs on the golden machine (a
violation would end analysis early and skew timing) and times the
checker on each, returning the series to print or benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.api import make_checker
from repro.core.policy import TSO, MemoryModel
from repro.generator.config import GeneratorConfig, InstructionMix
from repro.generator.generator import generate_program
from repro.model.expansion import expand
from repro.sim.machine import MachineConfig, TsoMachine


@dataclass
class RuntimePoint:
    """One measurement: a configuration and its analysis runtime."""

    nprocs: int
    shared_words: int
    total_ops: int
    nodes: int
    edges: int
    iterations: int
    seconds: float

    def row(self) -> str:
        """Fixed-width text row for the harness output."""
        return (
            f"procs={self.nprocs:<3d} words={self.shared_words:<4d} "
            f"ops={self.total_ops:<7d} nodes={self.nodes:<7d} "
            f"edges={self.edges:<8d} iters={self.iterations:<3d} "
            f"time={self.seconds * 1e3:9.2f} ms"
        )


#: A measurement-friendly mix: loads/stores/atomics only, so node count
#: tracks the requested op count closely.
_MEASURE_MIX = InstructionMix(
    load=40.0, store=40.0, swap=3.0, cas=3.0, membar=3.0,
    block_load=0.0, block_store=0.0, nonfaulting_load=0.0,
    prefetch=0.0, flush=0.0, branch=0.0, interrupt=0.0,
)


def measure_runtime(
    nprocs: int,
    shared_words: int,
    total_ops: int,
    seed: int = 0,
    model: MemoryModel = TSO,
    engine: str = "closure",
    repeats: int = 1,
) -> RuntimePoint:
    """Generate one passing run and time its analysis.

    ``total_ops`` is split evenly across processors.  The reported time
    is the minimum over ``repeats`` checker invocations (generation and
    simulation are excluded — the paper times only the analysis).
    """
    config = GeneratorConfig(
        nprocs=nprocs,
        ops_per_proc=max(1, total_ops // nprocs),
        shared_words=shared_words,
        mix=_MEASURE_MIX,
        loop_prob=0.0,
    )
    program = generate_program(config, seed=seed)
    machine = TsoMachine(program, seed=seed, config=MachineConfig())
    execution = machine.run()
    aprog = expand(
        execution, initial=program.initial, word_names=program.word_names
    )
    checker = make_checker(model, engine)
    best: Optional[float] = None
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = checker.run(aprog)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    assert result is not None
    if not result.ok:
        raise RuntimeError(
            "golden machine produced a failing run — this is a bug: \n"
            + result.explain()
        )
    return RuntimePoint(
        nprocs=nprocs,
        shared_words=shared_words,
        total_ops=total_ops,
        nodes=result.stats.nodes,
        edges=result.stats.edges,
        iterations=result.stats.iterations,
        seconds=best,
    )


def sweep_runtime(
    proc_counts: Sequence[int],
    word_counts: Sequence[int],
    ops_points: Sequence[int],
    seed: int = 0,
    engine: str = "closure",
) -> List[RuntimePoint]:
    """Cartesian runtime sweep over processors × shared words × ops."""
    points = []
    for nprocs in proc_counts:
        for words in word_counts:
            for ops in ops_points:
                points.append(
                    measure_runtime(nprocs, words, ops, seed=seed, engine=engine)
                )
    return points


def format_series(points: Iterable[RuntimePoint], title: str) -> str:
    """Render a sweep as the text the benchmark harness prints."""
    lines = [title]
    lines.extend("  " + p.row() for p in points)
    return "\n".join(lines)
