"""Parallel execution engine for campaign hunts and runtime sweeps.

TSOtool's value comes from running *many* pseudo-random racy tests
against a machine (Sec. 3); each (cpu, bug, seed) hunt and each
runtime-sweep point is independent and deterministic given its seed, so
the workload is embarrassingly parallel.  :func:`run_tasks` shards a
list of picklable task specs across a pool of worker *processes* with:

* a hard per-task timeout — a wedged simulation (or a genuinely hung
  analysis) cannot stall the batch; the worker is killed and replaced;
* retry-once on worker crash, task exception, broken pipe or timeout —
  a task that fails twice is recorded as **hung** in the
  :class:`~repro.core.result.PoolStats` (never silently dropped) and its
  result slot stays ``None``;
* deterministic results — every task carries its own derived seed, so
  results are identical to the sequential path regardless of worker
  count or scheduling order (results are returned in task order).

Workers are fed one task at a time over per-worker pipes, so the parent
always knows exactly which task a dead or overdue worker was running —
there is no window in which a task can be lost between a shared queue
and a crash.  A pipe that fails mid-task is treated exactly like a
worker death (the process may well still be alive with the fd gone):
the worker is killed, the task retried or recorded hung, and a
replacement spawned — never polled again.

With ``workers <= 1`` everything runs inline in the parent process (no
multiprocessing at all), which is the default.  The inline path applies
the *same* retry/hung accounting to a task that raises as the pool path
does for a task that raises in a worker, and emits the same
``retry``/``hung`` :class:`PoolEvent` stream — batch semantics do not
depend on the worker count.  Only timeout enforcement needs real
worker processes.

When :mod:`repro.telemetry` is enabled, the batch runs under a
``pool.batch`` span, queue wait time is accumulated in the
``pool.queue_wait`` timer, per-task compute time lands in the
``pool.task_seconds`` histogram, every retry/hang emits a
``pool.retry``/``pool.hung`` event, and every replacement worker spawned
for a dead/overdue one bumps the ``pool.respawns`` counter (also
tracked in :attr:`~repro.core.result.PoolStats.respawns`).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import sys
import time
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.core.result import PoolStats

#: How often (seconds) the parent scans for overdue / dead workers.
_POLL_INTERVAL = 0.05

#: Grace period for workers to exit after the shutdown sentinel.
_SHUTDOWN_GRACE = 2.0


@dataclass(frozen=True)
class PoolEvent:
    """One progress notification from :func:`run_tasks`.

    Attributes:
        kind: ``done`` (task finished), ``retry`` (task re-queued after a
            crash or timeout), or ``hung`` (task abandoned after its
            retry budget).
        index: position of the task in the input sequence.
        label: the task's display label.
        worker: id of the worker that ran (or was killed running) it.
        seconds: wall time of this attempt as measured where it ran —
            the worker for pooled tasks, the parent for inline ones.
            0.0 only when no measurement could be taken (the worker was
            killed or crashed before reporting).
        attempt: 1-based attempt number that produced this event.
        completed: tasks finally resolved so far (done + hung).
        total: total number of tasks in the batch.
    """

    kind: str
    index: int
    label: str
    worker: int
    seconds: float
    attempt: int
    completed: int
    total: int

    def render(self) -> str:
        """One-line progress rendering for the CLI."""
        base = f"[worker {self.worker}] {self.completed}/{self.total} {self.label}"
        if self.kind == "done":
            return f"{base} done in {self.seconds:.2f}s"
        if self.kind == "retry":
            return f"{base} timed out/crashed on attempt {self.attempt}, retrying"
        return f"{base} HUNG after {self.attempt} attempts"


#: Progress callback type.
ProgressFn = Callable[[PoolEvent], None]

#: Streaming-result callback type: ``(task index, result value)``.
ResultFn = Callable[[int, Any], None]


def _emit(
    progress: Optional[ProgressFn],
    stats: PoolStats,
    kind: str,
    index: int,
    label: str,
    worker: int,
    seconds: float,
    attempt: int,
) -> None:
    """Report one pool event to the progress callback and to telemetry.

    The single emission point for both execution paths, called only
    *after* ``stats`` reflects the event, so ``PoolEvent.completed``
    (resolved tasks: done + hung) always includes the event being
    reported — identically inline and pooled.
    """
    tel = telemetry.get_telemetry()
    if tel.enabled:
        # A failed attempt that ran (and was measured) still burned that
        # time; only unmeasured deaths (kill, crash) are left out of the
        # histogram, identically inline and pooled.
        if kind == "done" or seconds > 0.0:
            tel.record("pool.task_seconds", seconds)
        if kind != "done":
            tel.event(
                f"pool.{kind}", index=index, label=label, worker=worker,
                attempt=attempt, seconds=seconds,
            )
    if progress is not None:
        progress(PoolEvent(
            kind=kind, index=index, label=label, worker=worker,
            seconds=seconds, attempt=attempt,
            completed=stats.completed + stats.hung, total=stats.tasks,
        ))


def _mp_context() -> multiprocessing.context.BaseContext:
    """Pick a start method: ``fork`` where safe (fast), else ``spawn``.

    macOS nominally offers ``fork`` but system frameworks abort in
    forked children, so it gets ``spawn`` like Windows does.
    """
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods and sys.platform != "darwin":
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def _worker_main(
    worker_id: int,
    fn: Callable[[Any], Any],
    conn: "multiprocessing.connection.Connection",
) -> None:
    """Worker loop: receive one task at a time, run it, send the result.

    Messages to the parent are ``(index, "done", seconds, cpu_seconds,
    value)`` or ``(index, "error", seconds, cpu_seconds, repr)``; a
    ``None`` task is the shutdown sentinel.  The echoed task index is
    the parent's staleness check: a reply that does not name the task
    the parent believes this worker is running (a late or duplicate
    send) is dropped, never misattributed to whatever task the worker
    holds now.

    Telemetry: the worker attaches to the campaign's JSONL sink (path
    inherited through the environment) and flushes its cumulative
    snapshot after every task — a worker killed by the parent gets no
    ``atexit``, so per-task flushes are the durability story.
    """
    telemetry.init_worker()
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        index, task = item
        start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            value = fn(task)
        except BaseException as exc:  # noqa: BLE001 - report, parent decides
            telemetry.get_telemetry().flush()
            conn.send((
                index, "error", time.perf_counter() - start,
                time.process_time() - cpu_start, repr(exc),
            ))
        else:
            telemetry.get_telemetry().flush()
            conn.send((
                index, "done", time.perf_counter() - start,
                time.process_time() - cpu_start, value,
            ))


class _Worker:
    """Parent-side handle: process, pipe, and the task it is running."""

    def __init__(self, worker_id: int, ctx, fn: Callable[[Any], Any]) -> None:
        self.id = worker_id
        parent_conn, child_conn = ctx.Pipe()
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, fn, child_conn),
            daemon=True,
            name=f"tsotool-pool-{worker_id}",
        )
        self.process.start()
        # The parent's copy of the child end must close so worker death
        # surfaces as EOF on self.conn.
        child_conn.close()
        #: (task index, attempt, monotonic start) while busy, else None.
        self.busy: Optional[Tuple[int, int, float]] = None

    def assign(self, index: int, attempt: int, task: Any) -> None:
        self.conn.send((index, task))
        self.busy = (index, attempt, time.monotonic())

    def kill(self) -> None:
        """Terminate immediately (timeout path) and reap the process."""
        self.process.terminate()
        self.process.join(timeout=_SHUTDOWN_GRACE)
        if self.process.is_alive():  # pragma: no cover - stubborn child
            self.process.kill()
            self.process.join(timeout=_SHUTDOWN_GRACE)
        self.conn.close()

    def shutdown(self) -> None:
        """Polite shutdown (sentinel), escalating to terminate."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=_SHUTDOWN_GRACE)
        if self.process.is_alive():
            self.kill()
        else:
            self.conn.close()


def run_tasks(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    *,
    workers: int = 1,
    task_timeout: Optional[float] = None,
    retries: int = 1,
    labels: Optional[Sequence[str]] = None,
    progress: Optional[ProgressFn] = None,
    on_result: Optional[ResultFn] = None,
) -> Tuple[List[Optional[Any]], PoolStats]:
    """Run ``fn`` over ``tasks``, optionally sharded across processes.

    Args:
        fn: a picklable (module-level) function of one task.
        tasks: picklable task specs; each must fully determine its own
            result (carry its own seed) so ordering cannot matter.
        workers: process count; ``<= 1`` runs inline with no
            multiprocessing (and therefore no timeout enforcement —
            exception retry/hung accounting still applies).
        task_timeout: hard per-task wall-clock limit in seconds; an
            overdue worker is killed and the task retried or recorded
            hung.  ``None`` disables the limit.  Only real worker
            processes can be killed, so a timeout with ``workers <= 1``
            cannot be enforced and raises a :class:`RuntimeWarning`.
        retries: how many *additional* attempts a crashed, raising or
            timed-out task gets before being recorded as hung
            (default: one); applied identically inline and pooled.
        labels: display names for progress events (defaults to
            ``task[i]``'s ``str``).
        progress: optional callback receiving a :class:`PoolEvent` per
            completion, retry, and hang.
        on_result: optional callback invoked in the *parent* process the
            moment a task resolves successfully, with ``(index, value)``
            — before the batch finishes.  This is what lets a caller
            persist results incrementally (the campaign service's
            crash-safe store depends on it); hung tasks never reach it.
            An exception raised by the callback aborts the batch.

    Returns:
        ``(results, stats)`` where ``results[i]`` is ``fn(tasks[i])`` or
        ``None`` for a hung task, in input order, and ``stats`` is the
        batch :class:`~repro.core.result.PoolStats`.
    """
    tasks = list(tasks)
    names = [str(t) for t in tasks] if labels is None else list(labels)
    if len(names) != len(tasks):
        raise ValueError("labels must match tasks one-to-one")
    if workers <= 1 and task_timeout is not None:
        warnings.warn(
            f"task_timeout={task_timeout} has no effect with "
            f"workers={workers}: the inline path cannot kill an overdue "
            "task; use workers >= 2 to enforce a timeout",
            RuntimeWarning,
            stacklevel=2,
        )
    stats = PoolStats(tasks=len(tasks), workers=max(1, workers))
    results: List[Optional[Any]] = [None] * len(tasks)
    start = time.perf_counter()
    with telemetry.span(
        "pool.batch", workers=stats.workers, tasks=len(tasks)
    ):
        if workers <= 1:
            _run_inline(
                fn, tasks, names, results, stats, retries, progress, on_result
            )
        else:
            _run_pool(
                fn, tasks, names, results, stats,
                workers=workers, task_timeout=task_timeout,
                retries=retries, progress=progress, on_result=on_result,
            )
    stats.wall_seconds = time.perf_counter() - start
    return results, stats


def _run_inline(
    fn: Callable[[Any], Any],
    tasks: List[Any],
    names: List[str],
    results: List[Optional[Any]],
    stats: PoolStats,
    retries: int,
    progress: Optional[ProgressFn],
    on_result: Optional[ResultFn] = None,
) -> None:
    """The sequential path: a plain loop over ``fn``, pool semantics.

    A raising task must not crash the batch — ``workers=1`` gets the
    same retry budget, the same ``hung`` accounting and the same
    ``retry``/``hung`` events as a raising task under ``workers>1``
    (where the worker reports ``error`` and the parent retries).  Only
    ``Exception`` is caught: KeyboardInterrupt and friends still abort
    the batch, matching what they do to the pool parent.
    """
    for index, task in enumerate(tasks):
        for attempt in range(1, max(0, retries) + 2):
            t0 = time.perf_counter()
            c0 = time.process_time()
            try:
                value = fn(task)
            except Exception:  # noqa: BLE001 - same contract as the pool
                elapsed = time.perf_counter() - t0
                stats.cpu_seconds += time.process_time() - c0
                if attempt <= retries:
                    stats.retries += 1
                    _emit(progress, stats, "retry", index, names[index],
                          0, elapsed, attempt)
                    continue
                stats.hung += 1
                _emit(progress, stats, "hung", index, names[index],
                      0, elapsed, attempt)
                break
            results[index] = value
            elapsed = time.perf_counter() - t0
            stats.completed += 1
            stats.cpu_seconds += time.process_time() - c0
            stats.per_worker[0] = stats.per_worker.get(0, 0) + 1
            if on_result is not None:
                on_result(index, value)
            _emit(progress, stats, "done", index, names[index],
                  0, elapsed, attempt)
            break


def _run_pool(
    fn: Callable[[Any], Any],
    tasks: List[Any],
    names: List[str],
    results: List[Optional[Any]],
    stats: PoolStats,
    *,
    workers: int,
    task_timeout: Optional[float],
    retries: int,
    progress: Optional[ProgressFn],
    on_result: Optional[ResultFn] = None,
) -> None:
    """The multiprocessing path of :func:`run_tasks`."""
    ctx = _mp_context()
    nworkers = min(workers, len(tasks)) or 1
    tel = telemetry.get_telemetry()
    #: FIFO of (index, attempt, enqueue time) still to dispatch; retries
    #: re-enter at the tail, behind every not-yet-attempted task.  A
    #: deque so popping the head is O(1) — with a list, a large campaign
    #: batch pays O(n^2) in head pops alone.
    queue: Deque[Tuple[int, int, float]] = deque(
        (i, 1, time.monotonic()) for i in range(len(tasks))
    )
    resolved = 0  # done + hung
    #: Per-task resolution ledger: once a slot is True the task's fate
    #: is final, and any further message naming it (a duplicate send, a
    #: reply that limped in after its worker was written off) is
    #: dropped — delivered-at-most-once is what lets ``on_result``
    #: persist results without its own dedup.
    resolved_flags: List[bool] = [False] * len(tasks)
    pool: Dict[int, _Worker] = {}
    next_id = 0

    def spawn() -> _Worker:
        nonlocal next_id
        worker = _Worker(next_id, ctx, fn)
        pool[worker.id] = worker
        next_id += 1
        return worker

    def respawn() -> _Worker:
        """Replace a dead/overdue/unreachable worker — and leave a trace:
        every replacement is counted in ``stats.respawns`` and the
        ``pool.respawns`` telemetry counter."""
        stats.respawns += 1
        if tel.enabled:
            tel.count("pool.respawns")
        return spawn()

    def retry_or_hang(
        index: int, attempt: int, worker_id: int, seconds: float = 0.0
    ) -> None:
        """A task's attempt died (crash, broken pipe or timeout):
        requeue or give up.  ``seconds`` is the attempt's measured wall
        time when the worker lived to report it, else 0.0."""
        nonlocal resolved
        if resolved_flags[index]:  # pragma: no cover - defensive
            return
        if attempt <= retries:
            stats.retries += 1
            queue.append((index, attempt + 1, time.monotonic()))
            _emit(progress, stats, "retry", index, names[index],
                  worker_id, seconds, attempt)
        else:
            stats.hung += 1
            resolved += 1
            resolved_flags[index] = True
            _emit(progress, stats, "hung", index, names[index],
                  worker_id, seconds, attempt)

    def reap(worker: _Worker, index: int, attempt: int) -> None:
        """Kill a dead/overdue/unreachable worker and replace it."""
        del pool[worker.id]
        worker.kill()
        retry_or_hang(index, attempt, worker.id)
        respawn()

    def dispatch() -> None:
        """Hand queued tasks to idle workers."""
        for worker in pool.values():
            if not queue:
                return
            if worker.busy is None:
                index, attempt, enqueued = queue.popleft()
                worker.assign(index, attempt, tasks[index])
                if tel.enabled:
                    tel.observe(
                        "pool.queue_wait", time.monotonic() - enqueued
                    )

    for _ in range(nworkers):
        spawn()
    try:
        while resolved < len(tasks):
            dispatch()
            ready = multiprocessing.connection.wait(
                [w.conn for w in pool.values() if w.busy is not None],
                timeout=_POLL_INTERVAL,
            )
            for conn in ready:
                worker = next(w for w in pool.values() if w.conn is conn)
                assert worker.busy is not None
                index, attempt, _started = worker.busy
                try:
                    msg_index, kind, seconds, cpu_seconds, payload = conn.recv()
                except (EOFError, OSError):
                    # The pipe failed mid-task.  The process may still be
                    # alive (e.g. the task closed its own fds), in which
                    # case `wait` would report this dead conn ready on
                    # every poll forever — a busy-loop with no timeout to
                    # break it.  Treat a failed recv as worker death:
                    # kill, account, respawn; never poll this conn again.
                    reap(worker, index, attempt)
                    continue
                if msg_index != index or resolved_flags[msg_index]:
                    # A reply for a task this worker is *not* currently
                    # running, or for a task whose fate is already
                    # sealed: the late echo of a timed-out-then-retried
                    # task, or an outright duplicate send.  Before the
                    # index rode along in the message, this reply was
                    # silently credited to the worker's current task —
                    # the double-``on_result`` bug.  Drop it; the
                    # worker's real reply (if any) is still coming.
                    stats.stale_results += 1
                    if tel.enabled:
                        tel.count("pool.stale_results")
                    continue
                worker.busy = None
                if kind == "done":
                    results[index] = payload
                    stats.completed += 1
                    stats.cpu_seconds += cpu_seconds
                    stats.per_worker[worker.id] = (
                        stats.per_worker.get(worker.id, 0) + 1
                    )
                    resolved += 1
                    resolved_flags[index] = True
                    if on_result is not None:
                        on_result(index, payload)
                    _emit(progress, stats, "done", index, names[index],
                          worker.id, seconds, attempt)
                else:  # "error": the task raised inside the worker.
                    # The worker measured the failed attempt; account its
                    # compute time just like the inline path does.
                    stats.cpu_seconds += cpu_seconds
                    retry_or_hang(index, attempt, worker.id, seconds)
            now = time.monotonic()
            for worker in list(pool.values()):
                if worker.busy is None:
                    if not worker.process.is_alive():
                        # Idle worker died (should not happen): replace it.
                        del pool[worker.id]
                        worker.kill()
                        respawn()
                    continue
                index, attempt, started = worker.busy
                overdue = (
                    task_timeout is not None and now - started > task_timeout
                )
                if overdue or not worker.process.is_alive():
                    del pool[worker.id]
                    worker.kill()
                    retry_or_hang(index, attempt, worker.id)
                    respawn()
    finally:
        for worker in pool.values():
            worker.shutdown()
