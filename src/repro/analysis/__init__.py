"""Experiment harnesses and post-run analysis tooling.

* :mod:`~repro.analysis.campaign` — the Table 1/2 bug-hunting campaign.
* :mod:`~repro.analysis.runtime` — the Figure 8/9 runtime measurements.
* :mod:`~repro.analysis.coverage` — Sec. 3.1 test-coverage reporting.
* :mod:`~repro.analysis.tuning` — coverage-guided generator tuning.
* :mod:`~repro.analysis.repro_study` — the Sec. 5.2 failure-reproduction
  experiment.
* :mod:`~repro.analysis.minimize` — failing-trace delta debugging.
* :mod:`~repro.analysis.bringup` — silicon bring-up simulation (all bugs
  live at once, root-caused one by one).
* :mod:`~repro.analysis.pool` — the parallel execution engine behind
  campaigns and sweeps (worker processes, timeouts, retries).
"""

from repro.analysis.bringup import BringupEvent, BringupLog, bringup
from repro.analysis.campaign import (
    BugHunt,
    CampaignConfig,
    CampaignResult,
    format_table1,
    format_table2,
    hunt_bug,
    run_campaign,
)
from repro.analysis.coverage import CoverageReport, measure_coverage
from repro.analysis.minimize import (
    MinimizationResult,
    minimize_failure,
    render_minimized,
)
from repro.analysis.repro_study import (
    ReproductionPoint,
    reproduction_study,
    sweep_reproduction,
)
from repro.analysis.pool import PoolEvent, run_tasks
from repro.analysis.report import ReportConfig, build_report
from repro.analysis.runtime import (
    RuntimePoint,
    SweepResult,
    measure_runtime,
    sweep_runtime,
)
from repro.analysis.stats import (
    LatencySummary,
    bootstrap_detection_rate,
    detection_latency,
    latency_by_mechanism,
    latency_by_unit,
    render_campaign_stats,
)
from repro.analysis.tuning import (
    TuningResult,
    atomic_contention_objective,
    race_pair_objective,
    tune,
)

__all__ = [
    "BringupEvent",
    "BringupLog",
    "bringup",
    "BugHunt",
    "CampaignConfig",
    "CampaignResult",
    "format_table1",
    "format_table2",
    "hunt_bug",
    "run_campaign",
    "CoverageReport",
    "measure_coverage",
    "MinimizationResult",
    "minimize_failure",
    "render_minimized",
    "ReproductionPoint",
    "reproduction_study",
    "sweep_reproduction",
    "ReportConfig",
    "build_report",
    "PoolEvent",
    "run_tasks",
    "RuntimePoint",
    "SweepResult",
    "measure_runtime",
    "sweep_runtime",
    "LatencySummary",
    "bootstrap_detection_rate",
    "detection_latency",
    "latency_by_mechanism",
    "latency_by_unit",
    "render_campaign_stats",
    "TuningResult",
    "atomic_contention_objective",
    "race_pair_objective",
    "tune",
]
