"""Statistical summaries for campaign results.

The paper reports raw bug counts; this module adds the statistics a
verification lead actually tracks during a campaign: detection-latency
distributions (tests to first failure per bug), per-mechanism and
per-unit difficulty, and bootstrap confidence intervals on detection
rates — all derived from :class:`~repro.analysis.campaign.CampaignResult`
objects or raw hunt lists, with no dependencies beyond the stdlib.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.campaign import BugHunt, CampaignResult


@dataclass
class LatencySummary:
    """Distribution summary of tests-to-detection for a set of hunts."""

    count: int
    detected: int
    mean: float
    median: float
    p90: float
    maximum: int

    def row(self) -> str:
        """Fixed-width text row."""
        return (
            f"n={self.count:<4d} detected={self.detected:<4d} "
            f"mean={self.mean:5.2f} median={self.median:4.1f} "
            f"p90={self.p90:4.1f} max={self.maximum}"
        )


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    index = q * (len(sorted_values) - 1)
    low = int(math.floor(index))
    high = int(math.ceil(index))
    if low == high:
        return float(sorted_values[low])
    frac = index - low
    return sorted_values[low] * (1 - frac) + sorted_values[high] * frac


def detection_latency(hunts: Iterable[BugHunt]) -> LatencySummary:
    """Summarize tests-to-detection over detected hunts.

    Undetected hunts contribute to ``count`` but not to the latency
    distribution (their latency is right-censored at the budget).
    """
    hunts = list(hunts)
    latencies = sorted(h.tests_run for h in hunts if h.detected)
    detected = len(latencies)
    if not latencies:
        return LatencySummary(
            count=len(hunts), detected=0, mean=float("nan"),
            median=float("nan"), p90=float("nan"), maximum=0,
        )
    return LatencySummary(
        count=len(hunts),
        detected=detected,
        mean=sum(latencies) / detected,
        median=_quantile(latencies, 0.5),
        p90=_quantile(latencies, 0.9),
        maximum=latencies[-1],
    )


def latency_by_mechanism(result: CampaignResult) -> Dict[str, LatencySummary]:
    """Detection-latency summaries grouped by fault mechanism."""
    groups: Dict[str, List[BugHunt]] = {}
    for hunt in result.hunts:
        groups.setdefault(hunt.spec.mechanism.__name__, []).append(hunt)
    return {name: detection_latency(hunts) for name, hunts in groups.items()}


def latency_by_unit(result: CampaignResult) -> Dict[str, LatencySummary]:
    """Detection-latency summaries grouped by functional unit."""
    groups: Dict[str, List[BugHunt]] = {}
    for hunt in result.hunts:
        groups.setdefault(hunt.unit.value, []).append(hunt)
    return {name: detection_latency(hunts) for name, hunts in groups.items()}


def bootstrap_detection_rate(
    successes: int,
    trials: int,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float, float]:
    """(rate, low, high): bootstrap CI on a binomial detection rate.

    Percentile bootstrap over Bernoulli resamples; deterministic per
    seed.  Degenerate inputs (0 trials) return NaNs.
    """
    if trials <= 0:
        nan = float("nan")
        return nan, nan, nan
    rate = successes / trials
    rng = random.Random(seed)
    samples = []
    for _ in range(resamples):
        hits = sum(1 for _ in range(trials) if rng.random() < rate)
        samples.append(hits / trials)
    samples.sort()
    alpha = (1 - confidence) / 2
    return rate, _quantile(samples, alpha), _quantile(samples, 1 - alpha)


def render_campaign_stats(result: CampaignResult) -> str:
    """A text block with the full statistical picture of a campaign."""
    lines = ["campaign statistics"]
    overall = detection_latency(result.hunts)
    lines.append(f"  overall            {overall.row()}")
    lines.append("  by mechanism:")
    for name, summary in sorted(latency_by_mechanism(result).items()):
        lines.append(f"    {name:28s} {summary.row()}")
    lines.append("  by functional unit:")
    for name, summary in sorted(latency_by_unit(result).items()):
        lines.append(f"    {name:28s} {summary.row()}")
    rate, low, high = bootstrap_detection_rate(
        sum(1 for h in result.hunts if h.detected), len(result.hunts)
    )
    lines.append(
        f"  detection rate     {rate:.1%} "
        f"(95% bootstrap CI {low:.1%} – {high:.1%})"
    )
    return "\n".join(lines)
